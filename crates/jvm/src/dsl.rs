//! A typed mini-language that compiles to MJVM bytecode.
//!
//! The paper's benchmarks are ordinary Java programs; ours are written
//! in this embedded DSL and compiled to the MJVM's stack bytecode,
//! playing the role of `javac`. The DSL is deliberately Java-shaped:
//! statically typed expressions, locals, `if`/`while`/`for`, arrays,
//! objects with virtual methods, and static method calls.
//!
//! ```
//! use jem_jvm::dsl::*;
//! use jem_jvm::value::Type;
//!
//! let mut m = ModuleBuilder::new();
//! m.func(
//!     "square",
//!     vec![("x", DType::Int)],
//!     Some(DType::Int),
//!     vec![ret(var("x").mul(var("x")))],
//! );
//! let program = m.compile().unwrap();
//! jem_jvm::verify::verify_program(&program).unwrap();
//! ```

use crate::bytecode::{ClassId, Cond, FBin, IBin, MethodId, Op};
use crate::class::Program;
use crate::class::{MethodAttrs, MethodSig, ProgramBuilder};
use crate::value::Type;
use std::collections::HashMap;
use std::fmt;

/// DSL-level types. Richer than VM [`Type`]s: arrays know their
/// element type and objects their class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DType {
    /// 32-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// Array with the given element type.
    Arr(Box<DType>),
    /// Instance of the named class.
    Obj(String),
}

impl DType {
    /// Shorthand for `Arr(Int)`.
    pub fn int_arr() -> DType {
        DType::Arr(Box::new(DType::Int))
    }

    /// Shorthand for `Arr(Float)`.
    pub fn float_arr() -> DType {
        DType::Arr(Box::new(DType::Float))
    }

    /// Shorthand for `Obj(name)`.
    pub fn obj(name: &str) -> DType {
        DType::Obj(name.to_string())
    }

    /// The VM-level category this type lowers to.
    pub fn vm_type(&self) -> Type {
        match self {
            DType::Int => Type::Int,
            DType::Float => Type::Float,
            DType::Arr(_) | DType::Obj(_) => Type::Ref,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DType::Int => write!(f, "int"),
            DType::Float => write!(f, "float"),
            DType::Arr(e) => write!(f, "{e}[]"),
            DType::Obj(c) => write!(f, "{c}"),
        }
    }
}

/// Arithmetic operators, resolved to int or float forms by operand
/// type at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
    /// `a % b` (int only)
    Rem,
    /// `a & b` (int only)
    And,
    /// `a | b` (int only)
    Or,
    /// `a ^ b` (int only)
    Xor,
    /// `a << b` (int only)
    Shl,
    /// `a >> b` (int only)
    Shr,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i32),
    /// Float literal.
    FloatLit(f64),
    /// The null reference, typed.
    Null(DType),
    /// Read a local variable.
    Var(String),
    /// Binary arithmetic.
    Bin(ArithOp, Box<Expr>, Box<Expr>),
    /// Comparison producing 0/1.
    Cmp(Cond, Box<Expr>, Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// Logical negation of a 0/1 int.
    Not(Box<Expr>),
    /// int → float.
    ToF(Box<Expr>),
    /// float → int (truncating).
    ToI(Box<Expr>),
    /// `arr[idx]`.
    Index(Box<Expr>, Box<Expr>),
    /// `arr.length`.
    Len(Box<Expr>),
    /// Static call to a module function.
    Call(String, Vec<Expr>),
    /// Virtual call `recv.method(args)`.
    CallVirt {
        /// Receiver expression (must be `Obj`).
        recv: Box<Expr>,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `new C()` (fields zero-initialized).
    New(String),
    /// `new T[len]`.
    NewArr(DType, Box<Expr>),
    /// `obj.field`.
    Field(Box<Expr>, String),
}

#[allow(clippy::should_implement_trait)] // builder methods mirror Java operators by design
impl Expr {
    fn bx(self) -> Box<Expr> {
        Box::new(self)
    }

    /// `self + rhs`
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Bin(ArithOp::Add, self.bx(), rhs.bx())
    }
    /// `self - rhs`
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Bin(ArithOp::Sub, self.bx(), rhs.bx())
    }
    /// `self * rhs`
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Bin(ArithOp::Mul, self.bx(), rhs.bx())
    }
    /// `self / rhs`
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Bin(ArithOp::Div, self.bx(), rhs.bx())
    }
    /// `self % rhs`
    pub fn rem(self, rhs: Expr) -> Expr {
        Expr::Bin(ArithOp::Rem, self.bx(), rhs.bx())
    }
    /// `self & rhs`
    pub fn bitand(self, rhs: Expr) -> Expr {
        Expr::Bin(ArithOp::And, self.bx(), rhs.bx())
    }
    /// `self | rhs`
    pub fn bitor(self, rhs: Expr) -> Expr {
        Expr::Bin(ArithOp::Or, self.bx(), rhs.bx())
    }
    /// `self ^ rhs`
    pub fn bitxor(self, rhs: Expr) -> Expr {
        Expr::Bin(ArithOp::Xor, self.bx(), rhs.bx())
    }
    /// `self << rhs`
    pub fn shl(self, rhs: Expr) -> Expr {
        Expr::Bin(ArithOp::Shl, self.bx(), rhs.bx())
    }
    /// `self >> rhs`
    pub fn shr(self, rhs: Expr) -> Expr {
        Expr::Bin(ArithOp::Shr, self.bx(), rhs.bx())
    }
    /// `self == rhs` (0/1)
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Cmp(Cond::Eq, self.bx(), rhs.bx())
    }
    /// `self != rhs` (0/1)
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::Cmp(Cond::Ne, self.bx(), rhs.bx())
    }
    /// `self < rhs` (0/1)
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Cmp(Cond::Lt, self.bx(), rhs.bx())
    }
    /// `self <= rhs` (0/1)
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Cmp(Cond::Le, self.bx(), rhs.bx())
    }
    /// `self > rhs` (0/1)
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Cmp(Cond::Gt, self.bx(), rhs.bx())
    }
    /// `self >= rhs` (0/1)
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Cmp(Cond::Ge, self.bx(), rhs.bx())
    }
    /// `-self`
    pub fn neg(self) -> Expr {
        Expr::Neg(self.bx())
    }
    /// `!self` for 0/1 ints
    pub fn not(self) -> Expr {
        Expr::Not(self.bx())
    }
    /// `(float) self`
    pub fn to_f(self) -> Expr {
        Expr::ToF(self.bx())
    }
    /// `(int) self`
    pub fn to_i(self) -> Expr {
        Expr::ToI(self.bx())
    }
    /// `self[idx]`
    pub fn index(self, idx: Expr) -> Expr {
        Expr::Index(self.bx(), idx.bx())
    }
    /// `self.length`
    pub fn len(self) -> Expr {
        Expr::Len(self.bx())
    }
    /// `self.field`
    pub fn field(self, name: &str) -> Expr {
        Expr::Field(self.bx(), name.to_string())
    }
    /// `self.method(args)` (virtual dispatch)
    pub fn vcall(self, method: &str, args: Vec<Expr>) -> Expr {
        Expr::CallVirt {
            recv: self.bx(),
            method: method.to_string(),
            args,
        }
    }
}

/// Integer literal.
pub fn iconst(v: i32) -> Expr {
    Expr::IntLit(v)
}

/// Float literal.
pub fn fconst(v: f64) -> Expr {
    Expr::FloatLit(v)
}

/// Variable reference.
pub fn var(name: &str) -> Expr {
    Expr::Var(name.to_string())
}

/// Static call to a module function.
pub fn call(name: &str, args: Vec<Expr>) -> Expr {
    Expr::Call(name.to_string(), args)
}

/// `new C()`.
pub fn new_obj(class: &str) -> Expr {
    Expr::New(class.to_string())
}

/// `new T[len]`.
pub fn new_arr(elem: DType, len: Expr) -> Expr {
    Expr::NewArr(elem, Box::new(len))
}

/// The typed null reference.
pub fn null(ty: DType) -> Expr {
    Expr::Null(ty)
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Declare and initialize a new local.
    Let(String, Expr),
    /// Assign an existing local.
    Assign(String, Expr),
    /// `arr[idx] = val`.
    SetIndex(Expr, Expr, Expr),
    /// `obj.field = val`.
    SetField(Expr, String, Expr),
    /// `if (cond) { .. } else { .. }`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond) { .. }`.
    While(Expr, Vec<Stmt>),
    /// `for (name = start; name < end; name++) { .. }`.
    For(String, Expr, Expr, Vec<Stmt>),
    /// `return expr;`.
    Return(Option<Expr>),
    /// Evaluate for side effects; a non-void result is discarded.
    Expr(Expr),
}

/// Declare and initialize a local (type inferred from the expression).
pub fn let_(name: &str, value: Expr) -> Stmt {
    Stmt::Let(name.to_string(), value)
}

/// Assign an existing local.
pub fn assign(name: &str, value: Expr) -> Stmt {
    Stmt::Assign(name.to_string(), value)
}

/// `arr[idx] = val`.
pub fn set_index(arr: Expr, idx: Expr, val: Expr) -> Stmt {
    Stmt::SetIndex(arr, idx, val)
}

/// `obj.field = val`.
pub fn set_field(obj: Expr, field: &str, val: Expr) -> Stmt {
    Stmt::SetField(obj, field.to_string(), val)
}

/// Two-armed conditional.
pub fn if_else(cond: Expr, then: Vec<Stmt>, els: Vec<Stmt>) -> Stmt {
    Stmt::If(cond, then, els)
}

/// One-armed conditional.
pub fn if_(cond: Expr, then: Vec<Stmt>) -> Stmt {
    Stmt::If(cond, then, vec![])
}

/// `while` loop.
pub fn while_(cond: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::While(cond, body)
}

/// Counted loop over `[start, end)`.
pub fn for_(name: &str, start: Expr, end: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::For(name.to_string(), start, end, body)
}

/// `return expr;`
pub fn ret(value: Expr) -> Stmt {
    Stmt::Return(Some(value))
}

/// `return;`
pub fn ret_void() -> Stmt {
    Stmt::Return(None)
}

/// Evaluate an expression as a statement.
pub fn expr_stmt(e: Expr) -> Stmt {
    Stmt::Expr(e)
}

/// A compile-time error in a DSL program.
#[derive(Debug, Clone, PartialEq)]
pub struct DslError {
    /// Function being compiled.
    pub func: String,
    /// Reason.
    pub reason: String,
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dsl error in {}: {}", self.func, self.reason)
    }
}

impl std::error::Error for DslError {}

/// A function definition awaiting compilation.
#[derive(Debug, Clone)]
struct DslFunc {
    name: String,
    /// Owning class name, or `None` for a module-level static.
    class: Option<String>,
    is_virtual: bool,
    params: Vec<(String, DType)>,
    ret: Option<DType>,
    body: Vec<Stmt>,
    attrs: MethodAttrs,
}

/// A class definition awaiting compilation.
#[derive(Debug, Clone)]
struct DslClass {
    name: String,
    super_class: Option<String>,
    fields: Vec<(String, DType)>,
}

/// Top-level builder for a DSL module.
#[derive(Debug, Default)]
pub struct ModuleBuilder {
    classes: Vec<DslClass>,
    funcs: Vec<DslFunc>,
}

/// Name of the synthetic class holding module-level functions.
pub const MODULE_CLASS: &str = "Module";

impl ModuleBuilder {
    /// A fresh module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a class with fields (superclass must be declared first).
    pub fn class(&mut self, name: &str, super_class: Option<&str>, fields: &[(&str, DType)]) {
        self.classes.push(DslClass {
            name: name.to_string(),
            super_class: super_class.map(str::to_string),
            fields: fields
                .iter()
                .map(|(n, t)| ((*n).to_string(), t.clone()))
                .collect(),
        });
    }

    /// Define a module-level (static) function.
    pub fn func(
        &mut self,
        name: &str,
        params: Vec<(&str, DType)>,
        ret: Option<DType>,
        body: Vec<Stmt>,
    ) {
        self.func_with_attrs(name, params, ret, body, MethodAttrs::default());
    }

    /// Define a module-level function with paper annotations
    /// (potential-method marker, size parameter, …).
    pub fn func_with_attrs(
        &mut self,
        name: &str,
        params: Vec<(&str, DType)>,
        ret: Option<DType>,
        body: Vec<Stmt>,
        attrs: MethodAttrs,
    ) {
        self.funcs.push(DslFunc {
            name: name.to_string(),
            class: None,
            is_virtual: false,
            params: params
                .into_iter()
                .map(|(n, t)| (n.to_string(), t))
                .collect(),
            ret,
            body,
            attrs,
        });
    }

    /// Define a virtual method on a class. Inside the body the
    /// receiver is available as the variable `this`.
    pub fn virtual_method(
        &mut self,
        class: &str,
        name: &str,
        params: Vec<(&str, DType)>,
        ret: Option<DType>,
        body: Vec<Stmt>,
    ) {
        self.funcs.push(DslFunc {
            name: name.to_string(),
            class: Some(class.to_string()),
            is_virtual: true,
            params: params
                .into_iter()
                .map(|(n, t)| (n.to_string(), t))
                .collect(),
            ret,
            body,
            attrs: MethodAttrs::default(),
        });
    }

    /// Compile the module to an MJVM [`Program`].
    ///
    /// # Errors
    /// A [`DslError`] describing the first type or resolution error.
    pub fn compile(self) -> Result<Program, DslError> {
        let mut pb = ProgramBuilder::new();

        // Class layout phase.
        let module_class = pb.add_class(MODULE_CLASS, None, &[]);
        let mut class_ids: HashMap<String, ClassId> = HashMap::new();
        class_ids.insert(MODULE_CLASS.to_string(), module_class);
        let mut class_fields: HashMap<String, Vec<(String, DType)>> = HashMap::new();
        class_fields.insert(MODULE_CLASS.to_string(), vec![]);

        for c in &self.classes {
            let super_id = match &c.super_class {
                Some(s) => Some(*class_ids.get(s).ok_or_else(|| DslError {
                    func: format!("class {}", c.name),
                    reason: format!("unknown superclass {s}"),
                })?),
                None => None,
            };
            let fields_vm: Vec<(&str, Type)> = c
                .fields
                .iter()
                .map(|(n, t)| (n.as_str(), t.vm_type()))
                .collect();
            let id = pb.add_class(&c.name, super_id, &fields_vm);
            class_ids.insert(c.name.clone(), id);
            // Resolved (inherited + own) DSL field list for typing.
            let mut all = match &c.super_class {
                Some(s) => class_fields[s].clone(),
                None => vec![],
            };
            all.extend(c.fields.iter().cloned());
            class_fields.insert(c.name.clone(), all);
        }

        // Method declaration phase: add every method with placeholder
        // code so ids and vtable slots exist before bodies compile.
        let mut func_ids: HashMap<String, (MethodId, Vec<DType>, Option<DType>)> = HashMap::new();
        let mut vmethods: HashMap<(String, String), VirtSig> = HashMap::new();
        let mut declared: Vec<MethodId> = Vec::with_capacity(self.funcs.len());

        for f in &self.funcs {
            let sig = MethodSig::new(
                f.params.iter().map(|(_, t)| t.vm_type()).collect(),
                f.ret.as_ref().map(DType::vm_type),
            );
            let placeholder = vec![Op::Nop];
            let param_tys: Vec<DType> = f.params.iter().map(|(_, t)| t.clone()).collect();
            if f.is_virtual {
                let class_name = f.class.as_deref().expect("virtual methods have a class");
                let class_id = *class_ids.get(class_name).ok_or_else(|| DslError {
                    func: f.name.clone(),
                    reason: format!("unknown class {class_name}"),
                })?;
                let nlocals = (1 + f.params.len()) as u16;
                let (id, slot) = pb.add_virtual_method(
                    class_id,
                    &f.name,
                    sig,
                    nlocals,
                    placeholder,
                    f.attrs.clone(),
                );
                vmethods.insert(
                    (class_name.to_string(), f.name.clone()),
                    (slot, param_tys, f.ret.clone()),
                );
                declared.push(id);
            } else {
                if func_ids.contains_key(&f.name) {
                    return Err(DslError {
                        func: f.name.clone(),
                        reason: "duplicate function name".into(),
                    });
                }
                let nlocals = f.params.len() as u16;
                let id = pb.add_static_method(
                    module_class,
                    &f.name,
                    sig,
                    nlocals,
                    placeholder,
                    f.attrs.clone(),
                );
                func_ids.insert(f.name.clone(), (id, param_tys, f.ret.clone()));
                declared.push(id);
            }
        }

        // Propagate virtual-method visibility through subclasses so a
        // call on a subclass instance finds inherited slots.
        // (Resolution walks up the declared class chain at lookup.)
        let mut program = pb.finish();

        let resolver = Resolver {
            class_ids: &class_ids,
            class_fields: &class_fields,
            class_supers: self
                .classes
                .iter()
                .map(|c| (c.name.clone(), c.super_class.clone()))
                .collect(),
            func_ids: &func_ids,
            vmethods: &vmethods,
        };

        // Body compilation phase.
        for (f, id) in self.funcs.iter().zip(&declared) {
            let mut ctx = FuncCtx::new(f, &resolver)?;
            ctx.compile_body(&f.body)?;
            let (code, nlocals) = ctx.finish(f)?;
            let m = &mut program.methods[id.0 as usize];
            m.code = code;
            m.nlocals = nlocals;
        }

        Ok(program)
    }
}

/// Signature of a resolvable callable: vtable slot (virtual only),
/// parameter types, return type.
type VirtSig = (u16, Vec<DType>, Option<DType>);

/// Name-resolution context shared by all function compilations.
struct Resolver<'a> {
    class_ids: &'a HashMap<String, ClassId>,
    class_fields: &'a HashMap<String, Vec<(String, DType)>>,
    class_supers: HashMap<String, Option<String>>,
    func_ids: &'a HashMap<String, (MethodId, Vec<DType>, Option<DType>)>,
    vmethods: &'a HashMap<(String, String), VirtSig>,
}

impl Resolver<'_> {
    fn field_slot(&self, class: &str, field: &str) -> Option<(u16, DType)> {
        let fields = self.class_fields.get(class)?;
        fields
            .iter()
            .position(|(n, _)| n == field)
            .map(|i| (i as u16, fields[i].1.clone()))
    }

    /// Find the vtable slot for `method` on `class`, walking up the
    /// inheritance chain.
    fn vmethod(&self, class: &str, method: &str) -> Option<VirtSig> {
        let mut cur = Some(class.to_string());
        while let Some(c) = cur {
            if let Some(found) = self.vmethods.get(&(c.clone(), method.to_string())) {
                return Some(found.clone());
            }
            cur = self.class_supers.get(&c).cloned().flatten();
        }
        None
    }
}

/// Per-function compilation state.
struct FuncCtx<'a> {
    fname: String,
    resolver: &'a Resolver<'a>,
    code: Vec<Op>,
    /// name → (slot, type); lexically innermost wins (names may
    /// shadow, each `let` takes a fresh slot).
    scopes: Vec<Vec<(String, u16, DType)>>,
    next_slot: u16,
    ret: Option<DType>,
}

impl<'a> FuncCtx<'a> {
    fn new(f: &DslFunc, resolver: &'a Resolver<'a>) -> Result<Self, DslError> {
        let mut ctx = FuncCtx {
            fname: f.name.clone(),
            resolver,
            code: Vec::new(),
            scopes: vec![Vec::new()],
            next_slot: 0,
            ret: f.ret.clone(),
        };
        if f.is_virtual {
            let class = f.class.clone().expect("virtual has class");
            ctx.declare("this", DType::Obj(class))?;
        }
        for (n, t) in &f.params {
            ctx.declare(n, t.clone())?;
        }
        Ok(ctx)
    }

    fn err(&self, reason: impl Into<String>) -> DslError {
        DslError {
            func: self.fname.clone(),
            reason: reason.into(),
        }
    }

    fn declare(&mut self, name: &str, ty: DType) -> Result<u16, DslError> {
        let slot = self.next_slot;
        self.next_slot = self
            .next_slot
            .checked_add(1)
            .ok_or_else(|| self.err("too many locals"))?;
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .push((name.to_string(), slot, ty));
        Ok(slot)
    }

    fn lookup(&self, name: &str) -> Option<(u16, DType)> {
        for scope in self.scopes.iter().rev() {
            for (n, slot, ty) in scope.iter().rev() {
                if n == name {
                    return Some((*slot, ty.clone()));
                }
            }
        }
        None
    }

    fn emit(&mut self, op: Op) {
        self.code.push(op);
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    /// Emit a branch with placeholder target; returns the index to
    /// patch.
    fn emit_branch(&mut self, op: Op) -> usize {
        self.code.push(op);
        self.code.len() - 1
    }

    fn patch(&mut self, at: usize, target: u32) {
        self.code[at] = self.code[at].with_branch_target(target);
    }

    // ---- expressions ----

    fn compile_expr(&mut self, e: &Expr) -> Result<DType, DslError> {
        match e {
            Expr::IntLit(v) => {
                self.emit(Op::IConst(*v));
                Ok(DType::Int)
            }
            Expr::FloatLit(v) => {
                self.emit(Op::FConst(*v));
                Ok(DType::Float)
            }
            Expr::Null(ty) => {
                if ty.vm_type() != Type::Ref {
                    return Err(self.err(format!("null must be a reference type, not {ty}")));
                }
                self.emit(Op::NullConst);
                Ok(ty.clone())
            }
            Expr::Var(name) => {
                let (slot, ty) = self
                    .lookup(name)
                    .ok_or_else(|| self.err(format!("unknown variable {name}")))?;
                self.emit(Op::Load(slot));
                Ok(ty)
            }
            Expr::Bin(op, a, b) => {
                let ta = self.compile_expr(a)?;
                let tb = self.compile_expr(b)?;
                if ta != tb {
                    return Err(self.err(format!("operand types differ: {ta} vs {tb}")));
                }
                match (&ta, op) {
                    (DType::Int, _) => {
                        self.emit(Op::IArith(ibin_of(*op)));
                        Ok(DType::Int)
                    }
                    (DType::Float, ArithOp::Add | ArithOp::Sub | ArithOp::Mul | ArithOp::Div) => {
                        self.emit(Op::FArith(fbin_of(*op)));
                        Ok(DType::Float)
                    }
                    (DType::Float, _) => Err(self.err(format!("{op:?} is not defined on floats"))),
                    _ => Err(self.err(format!("arithmetic on non-numeric type {ta}"))),
                }
            }
            Expr::Cmp(cond, a, b) => {
                let ta = self.compile_expr(a)?;
                let tb = self.compile_expr(b)?;
                if ta != tb {
                    return Err(self.err(format!("comparison types differ: {ta} vs {tb}")));
                }
                match ta {
                    DType::Int => {
                        // a ? b → 0/1 via ICmp then compare to 0.
                        self.emit(Op::ICmp);
                        self.emit_cond_to_bool(*cond);
                        Ok(DType::Int)
                    }
                    DType::Float => {
                        self.emit(Op::FCmp);
                        self.emit_cond_to_bool(*cond);
                        Ok(DType::Int)
                    }
                    other => Err(self.err(format!("cannot compare {other}"))),
                }
            }
            Expr::Neg(a) => match self.compile_expr(a)? {
                DType::Int => {
                    self.emit(Op::INeg);
                    Ok(DType::Int)
                }
                DType::Float => {
                    self.emit(Op::FNeg);
                    Ok(DType::Float)
                }
                other => Err(self.err(format!("cannot negate {other}"))),
            },
            Expr::Not(a) => {
                let t = self.compile_expr(a)?;
                if t != DType::Int {
                    return Err(self.err(format!("logical not on {t}")));
                }
                self.emit_cond_to_bool(Cond::Eq);
                Ok(DType::Int)
            }
            Expr::ToF(a) => {
                let t = self.compile_expr(a)?;
                if t != DType::Int {
                    return Err(self.err(format!("to_f on {t}")));
                }
                self.emit(Op::I2F);
                Ok(DType::Float)
            }
            Expr::ToI(a) => {
                let t = self.compile_expr(a)?;
                if t != DType::Float {
                    return Err(self.err(format!("to_i on {t}")));
                }
                self.emit(Op::F2I);
                Ok(DType::Int)
            }
            Expr::Index(arr, idx) => {
                let ta = self.compile_expr(arr)?;
                let elem = match ta {
                    DType::Arr(e) => *e,
                    other => return Err(self.err(format!("indexing non-array {other}"))),
                };
                let ti = self.compile_expr(idx)?;
                if ti != DType::Int {
                    return Err(self.err(format!("index must be int, got {ti}")));
                }
                self.emit(Op::ALoad(elem.vm_type()));
                Ok(elem)
            }
            Expr::Len(arr) => {
                let ta = self.compile_expr(arr)?;
                if !matches!(ta, DType::Arr(_)) {
                    return Err(self.err(format!("length of non-array {ta}")));
                }
                self.emit(Op::ArrLen);
                Ok(DType::Int)
            }
            Expr::Call(name, args) => {
                let (id, params, ret) = self
                    .resolver
                    .func_ids
                    .get(name)
                    .cloned()
                    .ok_or_else(|| self.err(format!("unknown function {name}")))?;
                if args.len() != params.len() {
                    return Err(self.err(format!(
                        "{name} expects {} args, got {}",
                        params.len(),
                        args.len()
                    )));
                }
                for (arg, want) in args.iter().zip(&params) {
                    let got = self.compile_expr(arg)?;
                    if &got != want {
                        return Err(
                            self.err(format!("argument to {name}: expected {want}, got {got}"))
                        );
                    }
                }
                self.emit(Op::Call(id));
                Ok(ret.unwrap_or(DType::Int)) // void results handled by Stmt::Expr
            }
            Expr::CallVirt { recv, method, args } => {
                let tr = self.compile_expr(recv)?;
                let class = match &tr {
                    DType::Obj(c) => c.clone(),
                    other => return Err(self.err(format!("virtual call on non-object {other}"))),
                };
                let (slot, params, ret) = self
                    .resolver
                    .vmethod(&class, method)
                    .ok_or_else(|| self.err(format!("no virtual method {class}.{method}")))?;
                if args.len() != params.len() {
                    return Err(self.err(format!(
                        "{class}.{method} expects {} args, got {}",
                        params.len(),
                        args.len()
                    )));
                }
                for (arg, want) in args.iter().zip(&params) {
                    let got = self.compile_expr(arg)?;
                    if &got != want {
                        return Err(self.err(format!(
                            "argument to {class}.{method}: expected {want}, got {got}"
                        )));
                    }
                }
                self.emit(Op::CallVirt {
                    slot,
                    argc: args.len() as u8,
                });
                Ok(ret.unwrap_or(DType::Int))
            }
            Expr::New(class) => {
                let id = self
                    .resolver
                    .class_ids
                    .get(class)
                    .copied()
                    .ok_or_else(|| self.err(format!("unknown class {class}")))?;
                self.emit(Op::New(id));
                Ok(DType::Obj(class.clone()))
            }
            Expr::NewArr(elem, len) => {
                let tl = self.compile_expr(len)?;
                if tl != DType::Int {
                    return Err(self.err(format!("array length must be int, got {tl}")));
                }
                self.emit(Op::NewArr(elem.vm_type()));
                Ok(DType::Arr(Box::new(elem.clone())))
            }
            Expr::Field(obj, name) => {
                let to = self.compile_expr(obj)?;
                let class = match &to {
                    DType::Obj(c) => c.clone(),
                    other => return Err(self.err(format!("field access on non-object {other}"))),
                };
                let (slot, ty) = self
                    .resolver
                    .field_slot(&class, name)
                    .ok_or_else(|| self.err(format!("no field {class}.{name}")))?;
                self.emit(Op::GetField(slot, ty.vm_type()));
                Ok(ty)
            }
        }
    }

    /// Turn the -1/0/1 comparison word on the stack into a 0/1 boolean
    /// for condition `cond` (vs zero).
    fn emit_cond_to_bool(&mut self, cond: Cond) {
        // stack: cmpword → bool. Branchy encoding, like javac's.
        let br_true = self.emit_branch(Op::BrZ(cond, u32::MAX));
        self.emit(Op::IConst(0));
        let done = self.emit_branch(Op::Goto(u32::MAX));
        let t_true = self.here();
        self.emit(Op::IConst(1));
        let t_done = self.here();
        self.patch(br_true, t_true);
        self.patch(done, t_done);
    }

    /// Compile `cond`; jump to a placeholder false-target when it is
    /// false. Returns the patch index for the false branch.
    fn compile_cond_false_jump(&mut self, cond: &Expr) -> Result<usize, DslError> {
        match cond {
            Expr::Cmp(c, a, b) => {
                let ta = self.compile_expr(a)?;
                let tb = self.compile_expr(b)?;
                if ta != tb {
                    return Err(self.err(format!("comparison types differ: {ta} vs {tb}")));
                }
                match ta {
                    DType::Int => Ok(self.emit_branch(Op::ICmpBr(c.negate(), u32::MAX))),
                    DType::Float => {
                        self.emit(Op::FCmp);
                        Ok(self.emit_branch(Op::BrZ(c.negate(), u32::MAX)))
                    }
                    other => Err(self.err(format!("cannot compare {other}"))),
                }
            }
            other => {
                let t = self.compile_expr(other)?;
                if t != DType::Int {
                    return Err(self.err(format!("condition must be int, got {t}")));
                }
                Ok(self.emit_branch(Op::BrZ(Cond::Eq, u32::MAX)))
            }
        }
    }

    // ---- statements ----

    fn compile_body(&mut self, body: &[Stmt]) -> Result<(), DslError> {
        for s in body {
            self.compile_stmt(s)?;
        }
        Ok(())
    }

    fn compile_block(&mut self, body: &[Stmt]) -> Result<(), DslError> {
        self.scopes.push(Vec::new());
        let result = self.compile_body(body);
        self.scopes.pop();
        result
    }

    fn compile_stmt(&mut self, s: &Stmt) -> Result<(), DslError> {
        match s {
            Stmt::Let(name, value) => {
                let ty = self.compile_expr(value)?;
                let slot = self.declare(name, ty)?;
                self.emit(Op::Store(slot));
                Ok(())
            }
            Stmt::Assign(name, value) => {
                let (slot, want) = self
                    .lookup(name)
                    .ok_or_else(|| self.err(format!("assignment to unknown variable {name}")))?;
                let got = self.compile_expr(value)?;
                if got != want {
                    return Err(
                        self.err(format!("assignment to {name}: expected {want}, got {got}"))
                    );
                }
                self.emit(Op::Store(slot));
                Ok(())
            }
            Stmt::SetIndex(arr, idx, val) => {
                let ta = self.compile_expr(arr)?;
                let elem = match ta {
                    DType::Arr(e) => *e,
                    other => return Err(self.err(format!("indexing non-array {other}"))),
                };
                let ti = self.compile_expr(idx)?;
                if ti != DType::Int {
                    return Err(self.err(format!("index must be int, got {ti}")));
                }
                let tv = self.compile_expr(val)?;
                if tv != elem {
                    return Err(self.err(format!("store of {tv} into {elem}[] element")));
                }
                self.emit(Op::AStore(elem.vm_type()));
                Ok(())
            }
            Stmt::SetField(obj, field, val) => {
                let to = self.compile_expr(obj)?;
                let class = match &to {
                    DType::Obj(c) => c.clone(),
                    other => return Err(self.err(format!("field store on non-object {other}"))),
                };
                let (slot, want) = self
                    .resolver
                    .field_slot(&class, field)
                    .ok_or_else(|| self.err(format!("no field {class}.{field}")))?;
                let got = self.compile_expr(val)?;
                if got != want {
                    return Err(
                        self.err(format!("store of {got} into field {class}.{field}: {want}"))
                    );
                }
                self.emit(Op::PutField(slot));
                Ok(())
            }
            Stmt::If(cond, then, els) => {
                let false_jump = self.compile_cond_false_jump(cond)?;
                self.compile_block(then)?;
                if els.is_empty() {
                    let after = self.here();
                    self.patch(false_jump, after);
                } else {
                    // No jump over the else-arm when the then-arm
                    // cannot fall through (it ended in return/goto) —
                    // emitting one would create an unreachable branch
                    // with a possibly out-of-range target.
                    let then_falls_through = !self.code.last().is_some_and(|op| op.is_terminator());
                    let skip_else =
                        then_falls_through.then(|| self.emit_branch(Op::Goto(u32::MAX)));
                    let else_start = self.here();
                    self.patch(false_jump, else_start);
                    self.compile_block(els)?;
                    let after = self.here();
                    if let Some(skip_else) = skip_else {
                        self.patch(skip_else, after);
                    }
                }
                Ok(())
            }
            Stmt::While(cond, body) => {
                let start = self.here();
                let exit_jump = self.compile_cond_false_jump(cond)?;
                self.compile_block(body)?;
                self.emit(Op::Goto(start));
                let after = self.here();
                self.patch(exit_jump, after);
                Ok(())
            }
            Stmt::For(name, start, end, body) => {
                // Hoist the bound into a hidden local so it is
                // evaluated once, then lower to a while loop.
                self.scopes.push(Vec::new());
                let ts = self.compile_expr(start)?;
                if ts != DType::Int {
                    return Err(self.err(format!("for start must be int, got {ts}")));
                }
                let islot = self.declare(name, DType::Int)?;
                self.emit(Op::Store(islot));
                let te = self.compile_expr(end)?;
                if te != DType::Int {
                    return Err(self.err(format!("for bound must be int, got {te}")));
                }
                let bslot = self.declare(&format!("$bound_{name}"), DType::Int)?;
                self.emit(Op::Store(bslot));

                let loop_start = self.here();
                self.emit(Op::Load(islot));
                self.emit(Op::Load(bslot));
                let exit_jump = self.emit_branch(Op::ICmpBr(Cond::Ge, u32::MAX));
                self.compile_block(body)?;
                self.emit(Op::Load(islot));
                self.emit(Op::IConst(1));
                self.emit(Op::IArith(IBin::Add));
                self.emit(Op::Store(islot));
                self.emit(Op::Goto(loop_start));
                let after = self.here();
                self.patch(exit_jump, after);
                self.scopes.pop();
                Ok(())
            }
            Stmt::Return(value) => match (value, self.ret.clone()) {
                (None, None) => {
                    self.emit(Op::Ret);
                    Ok(())
                }
                (Some(e), Some(want)) => {
                    let got = self.compile_expr(e)?;
                    if got != want {
                        return Err(self.err(format!("return type: expected {want}, got {got}")));
                    }
                    self.emit(Op::RetVal);
                    Ok(())
                }
                (None, Some(t)) => Err(self.err(format!("missing return value of type {t}"))),
                (Some(_), None) => Err(self.err("return value in void function".to_string())),
            },
            Stmt::Expr(e) => {
                // Calls may be void; anything else leaves a value to pop.
                let leaves_value = match e {
                    Expr::Call(name, _) => self
                        .resolver
                        .func_ids
                        .get(name)
                        .map(|(_, _, r)| r.is_some())
                        .unwrap_or(true),
                    Expr::CallVirt { recv, method, .. } => {
                        // Resolve the receiver type cheaply: compile in
                        // a scratch context is overkill; re-resolve by
                        // typing the receiver expression "statically".
                        // We just compile and check below.
                        let _ = (recv, method);
                        true // determined after compilation below
                    }
                    _ => true,
                };
                match e {
                    Expr::CallVirt { .. } => {
                        // Need the real return type: compile and pop if
                        // non-void. compile_expr returns the declared
                        // ret or Int-default for void; detect void via
                        // resolver inside a small pre-pass:
                        let is_void = self.virt_is_void(e)?;
                        let _ = self.compile_expr(e)?;
                        if !is_void {
                            self.emit(Op::Pop);
                        }
                        Ok(())
                    }
                    _ => {
                        let _ = self.compile_expr(e)?;
                        if leaves_value {
                            self.emit(Op::Pop);
                        }
                        Ok(())
                    }
                }
            }
        }
    }

    /// Whether a `CallVirt` expression targets a void method (requires
    /// typing the receiver without emitting code, which we approximate
    /// by looking the variable/field chain up; falls back to non-void).
    fn virt_is_void(&mut self, e: &Expr) -> Result<bool, DslError> {
        if let Expr::CallVirt { recv, method, .. } = e {
            let class = self.static_obj_type(recv);
            if let Some(class) = class {
                if let Some((_, _, ret)) = self.resolver.vmethod(&class, method) {
                    return Ok(ret.is_none());
                }
            }
        }
        Ok(false)
    }

    /// Best-effort static object-type resolution for receivers that
    /// are variables, `new` expressions, or field chains.
    fn static_obj_type(&self, e: &Expr) -> Option<String> {
        match e {
            Expr::Var(name) => match self.lookup(name)?.1 {
                DType::Obj(c) => Some(c),
                _ => None,
            },
            Expr::New(c) => Some(c.clone()),
            Expr::Field(obj, f) => {
                let c = self.static_obj_type(obj)?;
                match self.resolver.field_slot(&c, f)?.1 {
                    DType::Obj(c2) => Some(c2),
                    _ => None,
                }
            }
            Expr::Null(DType::Obj(c)) => Some(c.clone()),
            _ => None,
        }
    }

    fn finish(mut self, f: &DslFunc) -> Result<(Vec<Op>, u16), DslError> {
        // Implicit return for void functions whose body can fall off
        // the end.
        if self.ret.is_none() {
            match self.code.last() {
                Some(op) if op.is_terminator() => {}
                _ => self.emit(Op::Ret),
            }
        } else {
            match self.code.last() {
                Some(op) if op.is_terminator() => {}
                _ => {
                    return Err(
                        self.err(format!("non-void function {} may fall off the end", f.name))
                    )
                }
            }
        }
        Ok((self.code, self.next_slot))
    }
}

fn ibin_of(op: ArithOp) -> IBin {
    match op {
        ArithOp::Add => IBin::Add,
        ArithOp::Sub => IBin::Sub,
        ArithOp::Mul => IBin::Mul,
        ArithOp::Div => IBin::Div,
        ArithOp::Rem => IBin::Rem,
        ArithOp::And => IBin::And,
        ArithOp::Or => IBin::Or,
        ArithOp::Xor => IBin::Xor,
        ArithOp::Shl => IBin::Shl,
        ArithOp::Shr => IBin::Shr,
    }
}

fn fbin_of(op: ArithOp) -> FBin {
    match op {
        ArithOp::Add => FBin::Add,
        ArithOp::Sub => FBin::Sub,
        ArithOp::Mul => FBin::Mul,
        ArithOp::Div => FBin::Div,
        _ => unreachable!("checked by caller"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_program;

    #[test]
    fn compiles_square() {
        let mut m = ModuleBuilder::new();
        m.func(
            "square",
            vec![("x", DType::Int)],
            Some(DType::Int),
            vec![ret(var("x").mul(var("x")))],
        );
        let p = m.compile().unwrap();
        verify_program(&p).unwrap();
        let f = p.find_method(MODULE_CLASS, "square").unwrap();
        assert_eq!(p.method(f).sig.params, vec![Type::Int]);
    }

    #[test]
    fn compiles_loop_and_verifies() {
        let mut m = ModuleBuilder::new();
        m.func(
            "sum_to",
            vec![("n", DType::Int)],
            Some(DType::Int),
            vec![
                let_("acc", iconst(0)),
                for_(
                    "i",
                    iconst(0),
                    var("n"),
                    vec![assign("acc", var("acc").add(var("i")))],
                ),
                ret(var("acc")),
            ],
        );
        let p = m.compile().unwrap();
        verify_program(&p).unwrap();
    }

    #[test]
    fn compiles_if_else_and_while() {
        let mut m = ModuleBuilder::new();
        m.func(
            "collatz_len",
            vec![("n", DType::Int)],
            Some(DType::Int),
            vec![
                let_("steps", iconst(0)),
                let_("x", var("n")),
                while_(
                    var("x").gt(iconst(1)),
                    vec![
                        if_else(
                            var("x").rem(iconst(2)).eq(iconst(0)),
                            vec![assign("x", var("x").div(iconst(2)))],
                            vec![assign("x", var("x").mul(iconst(3)).add(iconst(1)))],
                        ),
                        assign("steps", var("steps").add(iconst(1))),
                    ],
                ),
                ret(var("steps")),
            ],
        );
        let p = m.compile().unwrap();
        verify_program(&p).unwrap();
    }

    #[test]
    fn compiles_arrays() {
        let mut m = ModuleBuilder::new();
        m.func(
            "fill",
            vec![("n", DType::Int)],
            Some(DType::int_arr()),
            vec![
                let_("a", new_arr(DType::Int, var("n"))),
                for_(
                    "i",
                    iconst(0),
                    var("a").len(),
                    vec![set_index(var("a"), var("i"), var("i").mul(iconst(2)))],
                ),
                ret(var("a")),
            ],
        );
        let p = m.compile().unwrap();
        verify_program(&p).unwrap();
    }

    #[test]
    fn compiles_float_math() {
        let mut m = ModuleBuilder::new();
        m.func(
            "area",
            vec![("r", DType::Float)],
            Some(DType::Float),
            vec![ret(fconst(std::f64::consts::PI)
                .mul(var("r"))
                .mul(var("r")))],
        );
        m.func(
            "round_up",
            vec![("x", DType::Float)],
            Some(DType::Int),
            vec![if_else(
                var("x").gt(var("x").to_i().to_f()),
                vec![ret(var("x").to_i().add(iconst(1)))],
                vec![ret(var("x").to_i())],
            )],
        );
        let p = m.compile().unwrap();
        verify_program(&p).unwrap();
    }

    #[test]
    fn compiles_static_calls() {
        let mut m = ModuleBuilder::new();
        m.func(
            "helper",
            vec![("x", DType::Int)],
            Some(DType::Int),
            vec![ret(var("x").add(iconst(1)))],
        );
        m.func(
            "main",
            vec![],
            Some(DType::Int),
            vec![ret(call("helper", vec![iconst(41)]))],
        );
        let p = m.compile().unwrap();
        verify_program(&p).unwrap();
    }

    #[test]
    fn compiles_objects_and_virtual_calls() {
        let mut m = ModuleBuilder::new();
        m.class("Counter", None, &[("count", DType::Int)]);
        m.virtual_method(
            "Counter",
            "bump",
            vec![("by", DType::Int)],
            None,
            vec![set_field(
                var("this"),
                "count",
                var("this").field("count").add(var("by")),
            )],
        );
        m.func(
            "main",
            vec![],
            Some(DType::Int),
            vec![
                let_("c", new_obj("Counter")),
                expr_stmt(var("c").vcall("bump", vec![iconst(5)])),
                expr_stmt(var("c").vcall("bump", vec![iconst(2)])),
                ret(var("c").field("count")),
            ],
        );
        let p = m.compile().unwrap();
        verify_program(&p).unwrap();
    }

    #[test]
    fn inherited_virtual_methods_resolve() {
        let mut m = ModuleBuilder::new();
        m.class("Base", None, &[]);
        m.virtual_method("Base", "f", vec![], Some(DType::Int), vec![ret(iconst(1))]);
        m.class("Derived", Some("Base"), &[]);
        m.func(
            "main",
            vec![],
            Some(DType::Int),
            vec![
                let_("d", new_obj("Derived")),
                ret(var("d").vcall("f", vec![])),
            ],
        );
        let p = m.compile().unwrap();
        verify_program(&p).unwrap();
    }

    #[test]
    fn rejects_type_errors() {
        let mut m = ModuleBuilder::new();
        m.func(
            "bad",
            vec![("x", DType::Int)],
            Some(DType::Int),
            vec![ret(var("x").add(fconst(1.0)))],
        );
        let err = m.compile().unwrap_err();
        assert!(err.reason.contains("operand types differ"), "{err}");
    }

    #[test]
    fn rejects_unknown_variable() {
        let mut m = ModuleBuilder::new();
        m.func("bad", vec![], Some(DType::Int), vec![ret(var("nope"))]);
        let err = m.compile().unwrap_err();
        assert!(err.reason.contains("unknown variable"), "{err}");
    }

    #[test]
    fn rejects_missing_return() {
        let mut m = ModuleBuilder::new();
        m.func("bad", vec![], Some(DType::Int), vec![let_("x", iconst(1))]);
        let err = m.compile().unwrap_err();
        assert!(err.reason.contains("fall off the end"), "{err}");
    }

    #[test]
    fn rejects_float_modulo() {
        let mut m = ModuleBuilder::new();
        m.func(
            "bad",
            vec![("x", DType::Float)],
            Some(DType::Float),
            vec![ret(var("x").rem(var("x")))],
        );
        let err = m.compile().unwrap_err();
        assert!(err.reason.contains("not defined on floats"), "{err}");
    }

    #[test]
    fn rejects_duplicate_function() {
        let mut m = ModuleBuilder::new();
        m.func("f", vec![], None, vec![ret_void()]);
        m.func("f", vec![], None, vec![ret_void()]);
        let err = m.compile().unwrap_err();
        assert!(err.reason.contains("duplicate"), "{err}");
    }

    #[test]
    fn rejects_arity_mismatch() {
        let mut m = ModuleBuilder::new();
        m.func(
            "g",
            vec![("x", DType::Int)],
            Some(DType::Int),
            vec![ret(var("x"))],
        );
        m.func(
            "main",
            vec![],
            Some(DType::Int),
            vec![ret(call("g", vec![]))],
        );
        let err = m.compile().unwrap_err();
        assert!(err.reason.contains("expects 1 args"), "{err}");
    }

    #[test]
    fn shadowing_in_nested_scopes() {
        let mut m = ModuleBuilder::new();
        m.func(
            "f",
            vec![("x", DType::Int)],
            Some(DType::Int),
            vec![
                let_("y", iconst(1)),
                if_(
                    var("x").gt(iconst(0)),
                    vec![
                        let_("y", fconst(2.0)), // shadows outer int y
                        expr_stmt(var("y").add(fconst(1.0))),
                    ],
                ),
                ret(var("y")),
            ],
        );
        let p = m.compile().unwrap();
        verify_program(&p).unwrap();
    }

    #[test]
    fn null_literals_typed() {
        let mut m = ModuleBuilder::new();
        m.class("Node", None, &[("next", DType::obj("Node"))]);
        m.func(
            "make",
            vec![],
            Some(DType::obj("Node")),
            vec![
                let_("n", new_obj("Node")),
                set_field(var("n"), "next", null(DType::obj("Node"))),
                ret(var("n")),
            ],
        );
        let p = m.compile().unwrap();
        verify_program(&p).unwrap();
    }
}

//! Method inlining — the paper's Local3 optimization.
//!
//! "Local3 performs virtual method inlining in addition to the
//! optimizations performed by Local2." Virtual call sites are
//! devirtualized by class-hierarchy analysis (if every class providing
//! the vtable slot resolves to the same implementation, the dispatch
//! is unambiguous) and then inlined; small static calls are inlined
//! too. Inlining grows the emitted code — which is why Local3 code is
//! bigger and sometimes *cheaper to download pre-compiled at a lower
//! level* (the code-size/performance tradeoff the paper discusses for
//! remote compilation).

use crate::bytecode::MethodId;
use crate::class::Program;
use crate::lower;
use crate::nir::{Block, BlockId, NFunc, NInst, VReg};
use crate::opt::PassReport;

/// Inlining policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct InlineConfig {
    /// Maximum callee size (NIR instructions) to inline.
    pub max_callee_insts: usize,
    /// Stop once the function has grown past this multiple of its
    /// original size.
    pub max_growth: f64,
    /// Maximum number of call sites to inline.
    pub max_sites: usize,
}

impl Default for InlineConfig {
    fn default() -> Self {
        InlineConfig {
            max_callee_insts: 32,
            max_growth: 1.8,
            max_sites: 16,
        }
    }
}

/// Run the pass.
pub fn run(func: &mut NFunc, program: &Program, config: &InlineConfig) -> PassReport {
    let mut work_units = 0u64;
    let mut changed = false;
    let original_len = func.len().max(1);
    let mut sites_done = 0usize;

    // Repeatedly find the first inlinable site and splice it. One at a
    // time keeps block bookkeeping simple; budgets bound the loop.
    loop {
        if sites_done >= config.max_sites
            || func.len() as f64 > original_len as f64 * config.max_growth
        {
            break;
        }
        let Some((bi, ii, target, dest, arg_regs)) =
            find_site(func, program, config, &mut work_units)
        else {
            break;
        };
        splice(
            func,
            program,
            bi,
            ii,
            target,
            dest,
            arg_regs,
            &mut work_units,
        );
        sites_done += 1;
        changed = true;
    }

    debug_assert_eq!(func.validate(), Ok(()));
    PassReport {
        work_units,
        changed,
    }
}

/// An inlinable call site: (block, index, callee, dest, args
/// including the receiver for virtual calls).
type Site = (usize, usize, MethodId, Option<VReg>, Vec<VReg>);

/// Locate the next inlinable call site.
fn find_site(
    func: &NFunc,
    program: &Program,
    config: &InlineConfig,
    work_units: &mut u64,
) -> Option<Site> {
    for (bi, block) in func.blocks.iter().enumerate() {
        for (ii, inst) in block.insts.iter().enumerate() {
            *work_units += 1;
            match inst {
                NInst::CallOp { d, target, args } => {
                    if *target == func.method {
                        continue; // no self-inlining
                    }
                    if callee_size_ok(program, *target, config) {
                        return Some((bi, ii, *target, *d, args.clone()));
                    }
                }
                NInst::CallVirtOp {
                    d,
                    slot,
                    recv,
                    args,
                } => {
                    // CHA devirtualization: unique implementation
                    // across every class that has this slot.
                    let mut unique: Option<MethodId> = None;
                    let mut ambiguous = false;
                    for class in &program.classes {
                        if let Some(&m) = class.vtable.get(*slot as usize) {
                            match unique {
                                None => unique = Some(m),
                                Some(u) if u == m => {}
                                Some(_) => {
                                    ambiguous = true;
                                    break;
                                }
                            }
                        }
                    }
                    *work_units += program.classes.len() as u64;
                    if ambiguous {
                        continue;
                    }
                    let Some(target) = unique else { continue };
                    if target == func.method {
                        continue;
                    }
                    if callee_size_ok(program, target, config) {
                        let mut full_args = vec![*recv];
                        full_args.extend(args.iter().copied());
                        return Some((bi, ii, target, *d, full_args));
                    }
                }
                _ => {}
            }
        }
    }
    None
}

fn callee_size_ok(program: &Program, target: MethodId, config: &InlineConfig) -> bool {
    // Estimate from bytecode length (cheap); exact NIR size is checked
    // at splice time implicitly via growth budget.
    program.method(target).code.len() <= config.max_callee_insts
}

/// Splice `target`'s lowered body in place of the call at
/// `func.blocks[bi].insts[ii]`.
#[allow(clippy::too_many_arguments)]
fn splice(
    func: &mut NFunc,
    program: &Program,
    bi: usize,
    ii: usize,
    target: MethodId,
    dest: Option<VReg>,
    arg_regs: Vec<VReg>,
    work_units: &mut u64,
) {
    let callee = lower::lower(program, target);
    *work_units += callee.work_units + 3 * callee.func.len() as u64;
    let mut cf = callee.func;

    let reg_offset = func.nregs;
    let block_offset = func.blocks.len() as u32 + 1; // +1: continuation block
    func.nregs += cf.nregs;

    // Split the caller block: [0, ii) stays; call is replaced by arg
    // moves + jump into the callee; [ii+1, ..) becomes the
    // continuation block.
    let tail: Vec<NInst> = func.blocks[bi].insts.split_off(ii + 1);
    let call = func.blocks[bi]
        .insts
        .pop()
        .expect("call instruction present");
    debug_assert!(matches!(
        call,
        NInst::CallOp { .. } | NInst::CallVirtOp { .. }
    ));

    // Argument copies into the callee's (offset) parameter registers.
    for (i, &a) in arg_regs.iter().enumerate() {
        func.blocks[bi].insts.push(NInst::Mov {
            d: VReg(reg_offset + i as u32),
            s: a,
        });
    }
    func.blocks[bi].insts.push(NInst::Jmp {
        target: BlockId(block_offset),
    });

    // Continuation block gets the tail.
    let continuation = BlockId(func.blocks.len() as u32);
    func.blocks.push(Block { insts: tail });

    // Append remapped callee blocks; returns become mov+jump to the
    // continuation.
    for block in &mut cf.blocks {
        for inst in &mut block.insts {
            inst.map_regs(&mut |r| VReg(r.0 + reg_offset));
            inst.map_blocks(&mut |b| BlockId(b.0 + block_offset));
        }
        let mut insts = std::mem::take(&mut block.insts);
        if let Some(NInst::Ret { val }) = insts.last().cloned() {
            insts.pop();
            if let (Some(d), Some(v)) = (dest, val) {
                insts.push(NInst::Mov { d, s: v });
            }
            insts.push(NInst::Jmp {
                target: continuation,
            });
        }
        func.blocks.push(Block { insts });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use crate::verify::verify_program;

    fn lower_main(m: ModuleBuilder, name: &str) -> (crate::class::Program, NFunc) {
        let p = m.compile().unwrap();
        verify_program(&p).unwrap();
        let id = p.find_method(MODULE_CLASS, name).unwrap();
        let f = lower::lower(&p, id).func;
        (p, f)
    }

    fn count_calls(f: &NFunc) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, NInst::CallOp { .. } | NInst::CallVirtOp { .. }))
            .count()
    }

    #[test]
    fn inlines_small_static_call() {
        let mut m = ModuleBuilder::new();
        m.func(
            "inc",
            vec![("x", DType::Int)],
            Some(DType::Int),
            vec![ret(var("x").add(iconst(1)))],
        );
        m.func(
            "main",
            vec![("x", DType::Int)],
            Some(DType::Int),
            vec![ret(call("inc", vec![var("x")]))],
        );
        let (p, mut f) = lower_main(m, "main");
        assert_eq!(count_calls(&f), 1);
        let r = run(&mut f, &p, &InlineConfig::default());
        assert!(r.changed);
        assert_eq!(count_calls(&f), 0, "{f}");
        f.validate().unwrap();
    }

    #[test]
    fn devirtualizes_monomorphic_call() {
        let mut m = ModuleBuilder::new();
        m.class("C", None, &[("v", DType::Int)]);
        m.virtual_method(
            "C",
            "get",
            vec![],
            Some(DType::Int),
            vec![ret(var("this").field("v"))],
        );
        m.func(
            "main",
            vec![],
            Some(DType::Int),
            vec![let_("c", new_obj("C")), ret(var("c").vcall("get", vec![]))],
        );
        let (p, mut f) = lower_main(m, "main");
        let r = run(&mut f, &p, &InlineConfig::default());
        assert!(r.changed);
        assert_eq!(count_calls(&f), 0, "{f}");
    }

    #[test]
    fn keeps_polymorphic_virtual_calls() {
        let mut m = ModuleBuilder::new();
        m.class("A", None, &[]);
        m.virtual_method("A", "id", vec![], Some(DType::Int), vec![ret(iconst(1))]);
        m.class("B", Some("A"), &[]);
        m.virtual_method("B", "id", vec![], Some(DType::Int), vec![ret(iconst(2))]);
        m.func(
            "main",
            vec![],
            Some(DType::Int),
            vec![let_("a", new_obj("A")), ret(var("a").vcall("id", vec![]))],
        );
        let (p, mut f) = lower_main(m, "main");
        let before = count_calls(&f);
        let r = run(&mut f, &p, &InlineConfig::default());
        assert!(!r.changed);
        assert_eq!(count_calls(&f), before);
    }

    #[test]
    fn skips_big_callees() {
        let mut m = ModuleBuilder::new();
        // A function with a long body (40+ statements).
        let mut body = vec![let_("s", iconst(0))];
        for i in 0..40 {
            body.push(assign("s", var("s").add(iconst(i))));
        }
        body.push(ret(var("s")));
        m.func("big", vec![("x", DType::Int)], Some(DType::Int), body);
        m.func(
            "main",
            vec![],
            Some(DType::Int),
            vec![ret(call("big", vec![iconst(1)]))],
        );
        let (p, mut f) = lower_main(m, "main");
        let r = run(
            &mut f,
            &p,
            &InlineConfig {
                max_callee_insts: 10,
                ..Default::default()
            },
        );
        assert!(!r.changed);
    }

    #[test]
    fn no_self_inlining() {
        let mut m = ModuleBuilder::new();
        m.func(
            "rec",
            vec![("x", DType::Int)],
            Some(DType::Int),
            vec![if_else(
                var("x").le(iconst(0)),
                vec![ret(iconst(0))],
                vec![ret(call("rec", vec![var("x").sub(iconst(1))]))],
            )],
        );
        let p = m.compile().unwrap();
        let id = p.find_method(MODULE_CLASS, "rec").unwrap();
        let mut f = lower::lower(&p, id).func;
        let r = run(&mut f, &p, &InlineConfig::default());
        assert!(!r.changed);
    }

    #[test]
    fn inlining_grows_code() {
        let mut m = ModuleBuilder::new();
        m.func(
            "helper",
            vec![("x", DType::Int)],
            Some(DType::Int),
            vec![ret(var("x").mul(var("x")).add(var("x")))],
        );
        m.func(
            "main",
            vec![("x", DType::Int)],
            Some(DType::Int),
            vec![ret(
                call("helper", vec![var("x")]).add(call("helper", vec![var("x").add(iconst(1))]))
            )],
        );
        let (p, mut f) = lower_main(m, "main");
        let before = f.len();
        run(&mut f, &p, &InlineConfig::default());
        assert!(f.len() > before, "inlining should grow the function");
        f.validate().unwrap();
    }
}

//! Common sub-expression elimination (local value numbering).
//!
//! One of the paper's Local2 optimizations. Within each basic block,
//! available pure expressions and heap reads are tracked; a
//! recomputation is replaced by a register copy. Heap reads are
//! invalidated by stores and calls; every availability entry is
//! invalidated when one of its operand registers (or its holding
//! register) is redefined — mandatory, because NIR registers are
//! positional and reused heavily.

use crate::bytecode::{FBin, IBin};
use crate::nir::{NFunc, NInst, VReg};
use crate::opt::PassReport;
use crate::value::Type;
use std::collections::HashMap;

/// Canonical expression key. Commutative int ops are normalized by
/// operand order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Key {
    IBin(IBin, VReg, VReg),
    IShl(VReg, u8),
    INeg(VReg),
    ICmp(VReg, VReg),
    FBin(FBin, VReg, VReg),
    FNeg(VReg),
    FCmp(VReg, VReg),
    I2F(VReg),
    F2I(VReg),
    IConstK(i32),
    FConstK(u64),
    ALoad(VReg, VReg, Type),
    GetField(VReg, u16),
    ArrLen(VReg),
}

impl Key {
    fn of(inst: &NInst) -> Option<Key> {
        Some(match *inst {
            NInst::IBinOp { op, a, b, .. } => {
                let (a, b) = if commutes(op) && b < a {
                    (b, a)
                } else {
                    (a, b)
                };
                Key::IBin(op, a, b)
            }
            NInst::IShlImm { a, k, .. } => Key::IShl(a, k),
            NInst::INegOp { a, .. } => Key::INeg(a),
            NInst::ICmpOp { a, b, .. } => Key::ICmp(a, b),
            NInst::FBinOp { op, a, b, .. } => {
                // Float add/mul are not strictly associative but ARE
                // commutative bit-for-bit in IEEE-754.
                let (a, b) = if matches!(op, FBin::Add | FBin::Mul) && b < a {
                    (b, a)
                } else {
                    (a, b)
                };
                Key::FBin(op, a, b)
            }
            NInst::FNegOp { a, .. } => Key::FNeg(a),
            NInst::FCmpOp { a, b, .. } => Key::FCmp(a, b),
            NInst::I2FOp { a, .. } => Key::I2F(a),
            NInst::F2IOp { a, .. } => Key::F2I(a),
            NInst::IConst { v, .. } => Key::IConstK(v),
            NInst::FConst { v, .. } => Key::FConstK(v.to_bits()),
            NInst::ALoadOp { arr, idx, ty, .. } => Key::ALoad(arr, idx, ty),
            NInst::GetFieldOp { obj, slot, .. } => Key::GetField(obj, slot),
            NInst::ArrLenOp { arr, .. } => Key::ArrLen(arr),
            _ => return None,
        })
    }

    fn operands(&self) -> [Option<VReg>; 2] {
        match *self {
            Key::IBin(_, a, b)
            | Key::ICmp(a, b)
            | Key::FBin(_, a, b)
            | Key::FCmp(a, b)
            | Key::ALoad(a, b, _) => [Some(a), Some(b)],
            Key::IShl(a, _)
            | Key::INeg(a)
            | Key::FNeg(a)
            | Key::I2F(a)
            | Key::F2I(a)
            | Key::GetField(a, _)
            | Key::ArrLen(a) => [Some(a), None],
            Key::IConstK(_) | Key::FConstK(_) => [None, None],
        }
    }

    fn is_heap_read(&self) -> bool {
        matches!(self, Key::ALoad(..) | Key::GetField(..) | Key::ArrLen(..))
    }
}

fn commutes(op: IBin) -> bool {
    matches!(op, IBin::Add | IBin::Mul | IBin::And | IBin::Or | IBin::Xor)
}

/// Run the pass.
pub fn run(func: &mut NFunc) -> PassReport {
    let mut work_units = 0u64;
    let mut changed = false;

    for block in &mut func.blocks {
        let mut avail: HashMap<Key, VReg> = HashMap::new();
        for inst in &mut block.insts {
            work_units += 1;
            let key = Key::of(inst);

            // Try to reuse an available value.
            if let (Some(key), Some(d)) = (key, inst.def()) {
                if let Some(&src) = avail.get(&key) {
                    if src != d {
                        *inst = NInst::Mov { d, s: src };
                        changed = true;
                    } else {
                        // Recomputing into the same register the value
                        // already lives in: keep as-is (DCE may drop a
                        // self-mov later, but a recompute is simply
                        // redundant).
                        *inst = NInst::Mov { d, s: src };
                        changed = true;
                    }
                }
            }

            // Invalidate on heap clobber.
            if inst.clobbers_heap() {
                avail.retain(|k, _| !k.is_heap_read());
            }

            // Invalidate entries whose operands or holder die.
            if let Some(d) = inst.def() {
                avail.retain(|k, &mut v| v != d && !k.operands().contains(&Some(d)));
            }

            // Record this computation (recompute the key: the inst may
            // have become a Mov, which is not a keyed expression).
            if let Some(key) = Key::of(inst) {
                if let Some(d) = inst.def() {
                    avail.insert(key, d);
                }
            }
        }
    }

    PassReport {
        work_units,
        changed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::MethodId;
    use crate::nir::Block;

    fn func_with(insts: Vec<NInst>) -> NFunc {
        let mut insts = insts;
        insts.push(NInst::Ret { val: Some(VReg(0)) });
        NFunc {
            method: MethodId(0),
            blocks: vec![Block { insts }],
            nregs: 16,
            nlocals: 4,
        }
    }

    fn add(d: u32, a: u32, b: u32) -> NInst {
        NInst::IBinOp {
            op: IBin::Add,
            d: VReg(d),
            a: VReg(a),
            b: VReg(b),
        }
    }

    #[test]
    fn eliminates_repeated_add() {
        let mut f = func_with(vec![add(4, 1, 2), add(5, 1, 2)]);
        let r = run(&mut f);
        assert!(r.changed);
        assert_eq!(
            f.blocks[0].insts[1],
            NInst::Mov {
                d: VReg(5),
                s: VReg(4)
            }
        );
    }

    #[test]
    fn commutative_operands_normalize() {
        let mut f = func_with(vec![add(4, 1, 2), add(5, 2, 1)]);
        run(&mut f);
        assert_eq!(
            f.blocks[0].insts[1],
            NInst::Mov {
                d: VReg(5),
                s: VReg(4)
            }
        );
    }

    #[test]
    fn subtraction_does_not_commute() {
        let sub = |d: u32, a: u32, b: u32| NInst::IBinOp {
            op: IBin::Sub,
            d: VReg(d),
            a: VReg(a),
            b: VReg(b),
        };
        let mut f = func_with(vec![sub(4, 1, 2), sub(5, 2, 1)]);
        let r = run(&mut f);
        assert!(!r.changed);
    }

    #[test]
    fn invalidated_by_operand_redefinition() {
        let mut f = func_with(vec![
            add(4, 1, 2),
            NInst::IConst { d: VReg(1), v: 9 }, // kills r1
            add(5, 1, 2),                       // must recompute
        ]);
        run(&mut f);
        assert!(matches!(f.blocks[0].insts[2], NInst::IBinOp { .. }));
    }

    #[test]
    fn invalidated_by_holder_redefinition() {
        let mut f = func_with(vec![
            add(4, 1, 2),
            NInst::IConst { d: VReg(4), v: 0 }, // kills the holder r4
            add(5, 1, 2),                       // must recompute
        ]);
        run(&mut f);
        assert!(matches!(f.blocks[0].insts[2], NInst::IBinOp { .. }));
    }

    #[test]
    fn heap_reads_cse_until_clobbered() {
        let aload = |d: u32| NInst::ALoadOp {
            d: VReg(d),
            arr: VReg(1),
            idx: VReg(2),
            ty: Type::Int,
        };
        let mut f = func_with(vec![
            aload(4),
            aload(5), // same location, no clobber: CSE
            NInst::AStoreOp {
                arr: VReg(1),
                idx: VReg(3),
                val: VReg(4),
                ty: Type::Int,
            },
            aload(6), // after a store: must reload
        ]);
        run(&mut f);
        assert_eq!(
            f.blocks[0].insts[1],
            NInst::Mov {
                d: VReg(5),
                s: VReg(4)
            }
        );
        assert!(matches!(f.blocks[0].insts[3], NInst::ALoadOp { .. }));
    }

    #[test]
    fn calls_clobber_heap_reads() {
        let aload = |d: u32| NInst::ALoadOp {
            d: VReg(d),
            arr: VReg(1),
            idx: VReg(2),
            ty: Type::Int,
        };
        let mut f = func_with(vec![
            aload(4),
            NInst::CallOp {
                d: None,
                target: MethodId(0),
                args: vec![],
            },
            aload(5),
        ]);
        run(&mut f);
        assert!(matches!(f.blocks[0].insts[2], NInst::ALoadOp { .. }));
    }

    #[test]
    fn constants_are_reused() {
        let mut f = func_with(vec![
            NInst::IConst { d: VReg(4), v: 42 },
            NInst::IConst { d: VReg(5), v: 42 },
        ]);
        run(&mut f);
        assert_eq!(
            f.blocks[0].insts[1],
            NInst::Mov {
                d: VReg(5),
                s: VReg(4)
            }
        );
    }

    #[test]
    fn no_cse_across_blocks() {
        let mut f = NFunc {
            method: MethodId(0),
            blocks: vec![
                Block {
                    insts: vec![
                        add(4, 1, 2),
                        NInst::Jmp {
                            target: crate::nir::BlockId(1),
                        },
                    ],
                },
                Block {
                    insts: vec![add(5, 1, 2), NInst::Ret { val: Some(VReg(5)) }],
                },
            ],
            nregs: 8,
            nlocals: 4,
        };
        let r = run(&mut f);
        // Local value numbering must not reuse across the block edge.
        assert!(!r.changed);
    }
}

//! Constant folding, algebraic simplification, and strength reduction.
//!
//! One of the paper's Local2 optimizations. Tracks constants locally
//! (per basic block) and rewrites:
//!
//! * `c1 op c2` → the folded constant (except trapping div/rem by 0),
//! * `x * 2^k` → `x << k` (strength reduction proper),
//! * `x * 1`, `x + 0`, `x - 0` → `mov`,
//! * `x * 0` → `0`.

use crate::arith;
use crate::bytecode::IBin;
use crate::nir::{NFunc, NInst, VReg};
use crate::opt::PassReport;
use std::collections::HashMap;

/// Run the pass.
pub fn run(func: &mut NFunc) -> PassReport {
    let mut work_units = 0u64;
    let mut changed = false;

    for block in &mut func.blocks {
        let mut consts: HashMap<VReg, i32> = HashMap::new();
        let mut fconsts: HashMap<VReg, f64> = HashMap::new();
        for inst in &mut block.insts {
            work_units += 1;
            let replacement: Option<NInst> = match inst {
                NInst::IBinOp { op, d, a, b } => {
                    let ca = consts.get(a).copied();
                    let cb = consts.get(b).copied();
                    match (ca, cb) {
                        (Some(x), Some(y)) => {
                            // Fold fully-constant expressions; leave
                            // trapping cases to runtime.
                            arith::ibin(*op, x, y)
                                .ok()
                                .map(|v| NInst::IConst { d: *d, v })
                        }
                        _ => simplify_ibin(*op, *d, *a, *b, ca, cb),
                    }
                }
                NInst::INegOp { d, a } => consts.get(a).map(|&x| NInst::IConst {
                    d: *d,
                    v: x.wrapping_neg(),
                }),
                NInst::ICmpOp { d, a, b } => match (consts.get(a), consts.get(b)) {
                    (Some(&x), Some(&y)) => Some(NInst::IConst {
                        d: *d,
                        v: arith::icmp(x, y),
                    }),
                    _ => None,
                },
                NInst::I2FOp { d, a } => consts.get(a).map(|&x| NInst::FConst {
                    d: *d,
                    v: f64::from(x),
                }),
                NInst::F2IOp { d, a } => fconsts.get(a).map(|&x| NInst::IConst {
                    d: *d,
                    v: arith::f2i(x),
                }),
                NInst::FBinOp { op, d, a, b } => match (fconsts.get(a), fconsts.get(b)) {
                    (Some(&x), Some(&y)) => Some(NInst::FConst {
                        d: *d,
                        v: arith::fbin(*op, x, y),
                    }),
                    _ => None,
                },
                NInst::FNegOp { d, a } => fconsts.get(a).map(|&x| NInst::FConst { d: *d, v: -x }),
                _ => None,
            };

            if let Some(new) = replacement {
                if *inst != new {
                    *inst = new;
                    changed = true;
                }
            }

            // Update the constant environment with this def.
            if let Some(d) = inst.def() {
                consts.remove(&d);
                fconsts.remove(&d);
                match inst {
                    NInst::IConst { d, v } => {
                        consts.insert(*d, *v);
                    }
                    NInst::FConst { d, v } => {
                        fconsts.insert(*d, *v);
                    }
                    NInst::Mov { d, s } => {
                        if let Some(&v) = consts.get(s) {
                            consts.insert(*d, v);
                        } else if let Some(&v) = fconsts.get(s) {
                            fconsts.insert(*d, v);
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    PassReport {
        work_units,
        changed,
    }
}

/// Simplifications where exactly one operand is a known constant.
fn simplify_ibin(
    op: IBin,
    d: VReg,
    a: VReg,
    b: VReg,
    ca: Option<i32>,
    cb: Option<i32>,
) -> Option<NInst> {
    match (op, ca, cb) {
        // x * 2^k and 2^k * x → shift.
        (IBin::Mul, _, Some(c)) if c > 0 && c.count_ones() == 1 && c > 1 => Some(NInst::IShlImm {
            d,
            a,
            k: c.trailing_zeros() as u8,
        }),
        (IBin::Mul, Some(c), _) if c > 0 && c.count_ones() == 1 && c > 1 => Some(NInst::IShlImm {
            d,
            a: b,
            k: c.trailing_zeros() as u8,
        }),
        // Identity and absorbing elements.
        (IBin::Mul, _, Some(1)) => Some(NInst::Mov { d, s: a }),
        (IBin::Mul, Some(1), _) => Some(NInst::Mov { d, s: b }),
        (IBin::Mul, _, Some(0)) | (IBin::Mul, Some(0), _) => Some(NInst::IConst { d, v: 0 }),
        (IBin::Add, _, Some(0)) => Some(NInst::Mov { d, s: a }),
        (IBin::Add, Some(0), _) => Some(NInst::Mov { d, s: b }),
        (IBin::Sub, _, Some(0)) => Some(NInst::Mov { d, s: a }),
        (IBin::Shl, _, Some(k)) if (0..31).contains(&k) => {
            Some(NInst::IShlImm { d, a, k: k as u8 })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::MethodId;
    use crate::nir::{Block, VReg};

    fn func_with(insts: Vec<NInst>) -> NFunc {
        let mut insts = insts;
        insts.push(NInst::Ret { val: Some(VReg(0)) });
        NFunc {
            method: MethodId(0),
            blocks: vec![Block { insts }],
            nregs: 8,
            nlocals: 2,
        }
    }

    #[test]
    fn folds_constants() {
        let mut f = func_with(vec![
            NInst::IConst { d: VReg(1), v: 6 },
            NInst::IConst { d: VReg(2), v: 7 },
            NInst::IBinOp {
                op: IBin::Mul,
                d: VReg(0),
                a: VReg(1),
                b: VReg(2),
            },
        ]);
        let r = run(&mut f);
        assert!(r.changed);
        assert_eq!(f.blocks[0].insts[2], NInst::IConst { d: VReg(0), v: 42 });
    }

    #[test]
    fn reduces_mul_by_pow2_to_shift() {
        let mut f = func_with(vec![
            NInst::IConst { d: VReg(1), v: 8 },
            NInst::IBinOp {
                op: IBin::Mul,
                d: VReg(0),
                a: VReg(2),
                b: VReg(1),
            },
        ]);
        run(&mut f);
        assert_eq!(
            f.blocks[0].insts[1],
            NInst::IShlImm {
                d: VReg(0),
                a: VReg(2),
                k: 3
            }
        );
    }

    #[test]
    fn mul_by_one_becomes_mov() {
        let mut f = func_with(vec![
            NInst::IConst { d: VReg(1), v: 1 },
            NInst::IBinOp {
                op: IBin::Mul,
                d: VReg(0),
                a: VReg(2),
                b: VReg(1),
            },
        ]);
        run(&mut f);
        assert_eq!(
            f.blocks[0].insts[1],
            NInst::Mov {
                d: VReg(0),
                s: VReg(2)
            }
        );
    }

    #[test]
    fn does_not_fold_trapping_division() {
        let mut f = func_with(vec![
            NInst::IConst { d: VReg(1), v: 5 },
            NInst::IConst { d: VReg(2), v: 0 },
            NInst::IBinOp {
                op: IBin::Div,
                d: VReg(0),
                a: VReg(1),
                b: VReg(2),
            },
        ]);
        run(&mut f);
        // Division by constant zero must stay and trap at runtime.
        assert!(matches!(
            f.blocks[0].insts[2],
            NInst::IBinOp { op: IBin::Div, .. }
        ));
    }

    #[test]
    fn constant_env_invalidated_on_redefine() {
        let mut f = func_with(vec![
            NInst::IConst { d: VReg(1), v: 4 },
            NInst::IBinOp {
                // Redefines r1 with a non-constant.
                op: IBin::Add,
                d: VReg(1),
                a: VReg(2),
                b: VReg(3),
            },
            NInst::IBinOp {
                // r1 is no longer the constant 4: must NOT become a shift.
                op: IBin::Mul,
                d: VReg(0),
                a: VReg(2),
                b: VReg(1),
            },
        ]);
        run(&mut f);
        assert!(matches!(
            f.blocks[0].insts[2],
            NInst::IBinOp { op: IBin::Mul, .. }
        ));
    }

    #[test]
    fn folds_float_constants() {
        let mut f = func_with(vec![
            NInst::FConst { d: VReg(1), v: 2.0 },
            NInst::FConst { d: VReg(2), v: 3.0 },
            NInst::FBinOp {
                op: crate::bytecode::FBin::Mul,
                d: VReg(3),
                a: VReg(1),
                b: VReg(2),
            },
            NInst::F2IOp {
                d: VReg(0),
                a: VReg(3),
            },
        ]);
        run(&mut f);
        assert_eq!(f.blocks[0].insts[3], NInst::IConst { d: VReg(0), v: 6 });
    }

    #[test]
    fn consts_propagate_through_movs() {
        let mut f = func_with(vec![
            NInst::IConst { d: VReg(1), v: 16 },
            NInst::Mov {
                d: VReg(2),
                s: VReg(1),
            },
            NInst::IBinOp {
                op: IBin::Mul,
                d: VReg(0),
                a: VReg(3),
                b: VReg(2),
            },
        ]);
        run(&mut f);
        assert_eq!(
            f.blocks[0].insts[2],
            NInst::IShlImm {
                d: VReg(0),
                a: VReg(3),
                k: 4
            }
        );
    }
}

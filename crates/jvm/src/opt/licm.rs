//! Loop-invariant code motion.
//!
//! One of the paper's Local2 optimizations. Natural loops are found
//! via back edges (`b → h` where `h` dominates `b`); pure instructions
//! whose operands are not defined anywhere in the loop are hoisted
//! into a freshly created preheader, computing into a fresh temporary
//! register, with a `mov` left behind to preserve the positional
//! register contract.
//!
//! Only side-effect-free, non-trapping instructions move
//! ([`NInst::is_pure`]), so hoisting is safe even when the loop body
//! would not have executed.

use crate::nir::{Block, BlockId, NFunc, NInst, VReg};
use crate::opt::{dominators, PassReport};
use std::collections::BTreeSet;

/// Run the pass.
pub fn run(func: &mut NFunc) -> PassReport {
    let mut work_units = 0u64;
    let mut changed = false;

    let n = func.blocks.len();
    let dom = dominators(func);
    work_units += (n * n) as u64 / 4 + n as u64; // dominator analysis

    // Collect loops: header → body blocks. Loops sharing a header are
    // merged.
    let preds = func.predecessors();
    let mut loops: Vec<(usize, BTreeSet<usize>)> = Vec::new();
    for (b, block) in func.blocks.iter().enumerate() {
        let Some(term) = block.insts.last() else {
            continue;
        };
        for succ in term.successors() {
            let h = succ.0 as usize;
            if dom[b][h] {
                // back edge b → h: natural loop = h + all nodes
                // reaching b without passing through h.
                let mut body: BTreeSet<usize> = BTreeSet::new();
                body.insert(h);
                let mut stack = vec![b];
                while let Some(x) = stack.pop() {
                    if body.insert(x) {
                        for p in &preds[x] {
                            stack.push(p.0 as usize);
                        }
                    }
                    work_units += 1;
                }
                if let Some(existing) = loops.iter_mut().find(|(hh, _)| *hh == h) {
                    existing.1.extend(body);
                } else {
                    loops.push((h, body));
                }
            }
        }
    }

    // Hoist from innermost-like order (more blocks = outer; process
    // smaller loops first so inner-loop invariants land in inner
    // preheaders).
    loops.sort_by_key(|(_, body)| body.len());

    for (header, body) in loops {
        // Registers defined anywhere in the loop.
        let mut defined: BTreeSet<VReg> = BTreeSet::new();
        for &b in &body {
            for inst in &func.blocks[b].insts {
                work_units += 1;
                if let Some(d) = inst.def() {
                    defined.insert(d);
                }
            }
        }

        // Register-pressure guard: every hoisted value lives in a
        // fresh register across the whole loop; hoisting more values
        // than the register file can hold trades recomputation for
        // spill traffic, which is a net loss. Cap per loop.
        const MAX_HOISTS_PER_LOOP: usize = 6;
        let mut hoisted: Vec<NInst> = Vec::new();
        let mut next_reg = func.nregs;
        // Fixpoint: hoisting can expose more invariants (an operand
        // fed by a hoisted mov stays "defined in loop", so this mostly
        // converges in one or two rounds).
        loop {
            let mut moved_this_round = false;
            for &b in &body {
                let block = &mut func.blocks[b];
                for inst in &mut block.insts {
                    work_units += 1;
                    if hoisted.len() >= MAX_HOISTS_PER_LOOP {
                        break;
                    }
                    if !inst.is_pure() || inst.is_terminator() {
                        continue;
                    }
                    if matches!(inst, NInst::Mov { .. }) {
                        continue; // hoisting movs is pointless churn
                    }
                    let Some(d) = inst.def() else { continue };
                    if inst.uses().iter().any(|u| defined.contains(u)) {
                        continue;
                    }
                    // Hoist: t = <expr>  (preheader) ; mov d, t (here).
                    let t = VReg(next_reg);
                    next_reg += 1;
                    let mut moved = inst.clone();
                    if let Some(dd) = moved.def() {
                        moved.map_regs(&mut |r| if r == dd { t } else { r });
                    }
                    hoisted.push(moved);
                    *inst = NInst::Mov { d, s: t };
                    moved_this_round = true;
                    changed = true;
                }
            }
            if !moved_this_round {
                break;
            }
        }
        func.nregs = next_reg;

        if hoisted.is_empty() {
            continue;
        }

        // Create the preheader and retarget outside edges.
        let pre = func.blocks.len();
        let mut insts = hoisted;
        insts.push(NInst::Jmp {
            target: BlockId(header as u32),
        });
        func.blocks.push(Block { insts });
        for (b, block) in func.blocks.iter_mut().enumerate() {
            if b == pre || body.contains(&b) {
                continue;
            }
            if let Some(term) = block.insts.last_mut() {
                term.map_blocks(&mut |t| {
                    if t.0 as usize == header {
                        BlockId(pre as u32)
                    } else {
                        t
                    }
                });
            }
        }
    }

    debug_assert_eq!(func.validate(), Ok(()));
    PassReport {
        work_units,
        changed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{Cond, IBin, MethodId};

    /// while (r1 < r0) { r2 = r3 * r4; r1 = r1 + r2 }
    /// r3*r4 is invariant.
    fn loop_func() -> NFunc {
        NFunc {
            method: MethodId(0),
            blocks: vec![
                // b0: entry
                Block {
                    insts: vec![NInst::Jmp { target: BlockId(1) }],
                },
                // b1: header: if r1 >= r0 goto b3 else b2
                Block {
                    insts: vec![NInst::BrCond {
                        cond: Cond::Ge,
                        a: VReg(1),
                        b: VReg(0),
                        then_: BlockId(3),
                        else_: BlockId(2),
                    }],
                },
                // b2: body
                Block {
                    insts: vec![
                        NInst::IBinOp {
                            op: IBin::Mul,
                            d: VReg(2),
                            a: VReg(3),
                            b: VReg(4),
                        },
                        NInst::IBinOp {
                            op: IBin::Add,
                            d: VReg(1),
                            a: VReg(1),
                            b: VReg(2),
                        },
                        NInst::Jmp { target: BlockId(1) },
                    ],
                },
                // b3: exit
                Block {
                    insts: vec![NInst::Ret { val: Some(VReg(1)) }],
                },
            ],
            nregs: 5,
            nlocals: 5,
        }
    }

    #[test]
    fn hoists_invariant_multiply() {
        let mut f = loop_func();
        let r = run(&mut f);
        assert!(r.changed);
        f.validate().unwrap();
        // A preheader was appended holding the multiply.
        let pre = f.blocks.last().unwrap();
        assert!(
            pre.insts
                .iter()
                .any(|i| matches!(i, NInst::IBinOp { op: IBin::Mul, .. })),
            "preheader missing hoisted op: {f}"
        );
        // The body now movs instead of multiplying.
        assert!(matches!(f.blocks[2].insts[0], NInst::Mov { .. }));
        // Entry was retargeted to the preheader.
        assert_eq!(f.blocks[0].insts[0], NInst::Jmp { target: BlockId(4) });
        // Back edge still goes to the header directly.
        assert_eq!(
            *f.blocks[2].insts.last().unwrap(),
            NInst::Jmp { target: BlockId(1) }
        );
    }

    #[test]
    fn does_not_hoist_variant_code() {
        let mut f = loop_func();
        // Make the multiply depend on the induction variable r1.
        f.blocks[2].insts[0] = NInst::IBinOp {
            op: IBin::Mul,
            d: VReg(2),
            a: VReg(1),
            b: VReg(4),
        };
        let r = run(&mut f);
        assert!(!r.changed);
    }

    #[test]
    fn does_not_hoist_heap_or_calls() {
        let mut f = loop_func();
        f.blocks[2].insts[0] = NInst::ALoadOp {
            d: VReg(2),
            arr: VReg(3),
            idx: VReg(4),
            ty: crate::value::Type::Int,
        };
        let r = run(&mut f);
        assert!(!r.changed, "heap loads must not be hoisted: {f}");
    }

    #[test]
    fn does_not_hoist_trapping_division() {
        let mut f = loop_func();
        f.blocks[2].insts[0] = NInst::IBinOp {
            op: IBin::Div,
            d: VReg(2),
            a: VReg(3),
            b: VReg(4),
        };
        let r = run(&mut f);
        assert!(!r.changed, "div can trap and must stay put");
    }

    #[test]
    fn straightline_code_untouched() {
        let mut f = NFunc {
            method: MethodId(0),
            blocks: vec![
                Block {
                    insts: vec![NInst::Jmp { target: BlockId(1) }],
                },
                Block {
                    insts: vec![
                        NInst::IBinOp {
                            op: IBin::Add,
                            d: VReg(0),
                            a: VReg(1),
                            b: VReg(2),
                        },
                        NInst::Ret { val: Some(VReg(0)) },
                    ],
                },
            ],
            nregs: 3,
            nlocals: 3,
        };
        let r = run(&mut f);
        assert!(!r.changed);
    }

    #[test]
    fn execution_semantics_preserved() {
        // Run the loop function through the (tested) executor semantics
        // indirectly: compare the sum computed by interpreting NIR by
        // hand before and after LICM.
        fn simulate(f: &NFunc, n: i32) -> i32 {
            // Tiny NIR evaluator sufficient for this test.
            let mut regs = vec![0i32; f.nregs as usize];
            regs[0] = n; // bound
            regs[1] = 0; // acc
            regs[3] = 3;
            regs[4] = 7;
            let mut b = 0usize;
            let mut fuel = 10_000;
            loop {
                fuel -= 1;
                assert!(fuel > 0, "runaway");
                let block = &f.blocks[b];
                for inst in &block.insts {
                    match *inst {
                        NInst::IBinOp { op, d, a, b } => {
                            regs[d.0 as usize] =
                                crate::arith::ibin(op, regs[a.0 as usize], regs[b.0 as usize])
                                    .unwrap()
                        }
                        NInst::Mov { d, s } => regs[d.0 as usize] = regs[s.0 as usize],
                        NInst::Jmp { target } => {
                            b = target.0 as usize;
                        }
                        NInst::BrCond {
                            cond,
                            a,
                            b: rb,
                            then_,
                            else_,
                        } => {
                            b = if cond.eval(regs[a.0 as usize], regs[rb.0 as usize]) {
                                then_.0 as usize
                            } else {
                                else_.0 as usize
                            };
                        }
                        NInst::Ret { val } => return regs[val.unwrap().0 as usize],
                        _ => unreachable!(),
                    }
                }
            }
        }
        let base = loop_func();
        let mut opt = loop_func();
        run(&mut opt);
        for n in [0, 1, 21, 100] {
            assert_eq!(simulate(&base, n), simulate(&opt, n), "n={n}");
        }
    }
}

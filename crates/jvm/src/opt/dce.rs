//! Redundancy elimination: dead-code removal.
//!
//! The paper's Local2 "redundancy elimination". A global backward
//! liveness analysis over the CFG finds pure instructions whose
//! results are never used (these are mostly the register-copy traffic
//! left behind by naive stack lowering, CSE and LICM) and removes
//! them, along with self-moves.

use crate::nir::{NFunc, NInst, VReg};
use crate::opt::PassReport;
use std::collections::BTreeSet;

/// Run the pass (iterates internally to a fixpoint).
pub fn run(func: &mut NFunc) -> PassReport {
    let mut total_units = 0u64;
    let mut changed_any = false;
    // Each sweep may expose more dead code (a dead chain); iterate.
    for _ in 0..8 {
        let (units, changed) = sweep(func);
        total_units += units;
        if changed {
            changed_any = true;
        } else {
            break;
        }
    }
    debug_assert_eq!(func.validate(), Ok(()));
    PassReport {
        work_units: total_units,
        changed: changed_any,
    }
}

fn sweep(func: &mut NFunc) -> (u64, bool) {
    let n = func.blocks.len();
    let mut work_units = 0u64;

    // Backward liveness: live-in per block.
    let mut live_in: Vec<BTreeSet<VReg>> = vec![BTreeSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..n).rev() {
            // live-out = union of successors' live-in.
            let mut live: BTreeSet<VReg> = BTreeSet::new();
            if let Some(term) = func.blocks[b].insts.last() {
                for s in term.successors() {
                    live.extend(live_in[s.0 as usize].iter().copied());
                }
            }
            // Walk the block backwards.
            for inst in func.blocks[b].insts.iter().rev() {
                work_units += 1;
                if let Some(d) = inst.def() {
                    live.remove(&d);
                }
                live.extend(inst.uses());
            }
            if live != live_in[b] {
                live_in[b] = live;
                changed = true;
            }
        }
    }

    // Removal sweep, recomputing liveness within each block backwards.
    let mut removed = false;
    for b in 0..n {
        let mut live: BTreeSet<VReg> = BTreeSet::new();
        if let Some(term) = func.blocks[b].insts.last() {
            for s in term.successors() {
                live.extend(live_in[s.0 as usize].iter().copied());
            }
        }
        let insts = &mut func.blocks[b].insts;
        let mut keep: Vec<bool> = vec![true; insts.len()];
        for (i, inst) in insts.iter().enumerate().rev() {
            work_units += 1;
            let removable = if inst.is_terminator() {
                false
            } else if let NInst::Mov { d, s } = inst {
                *d == *s || !live.contains(d)
            } else if inst.is_pure() {
                inst.def().is_some_and(|d| !live.contains(&d))
            } else {
                false
            };
            if removable {
                keep[i] = false;
                removed = true;
                // A removed instruction contributes neither defs nor
                // uses to liveness above it.
                continue;
            }
            if let Some(d) = inst.def() {
                live.remove(&d);
            }
            live.extend(inst.uses());
        }
        if keep.iter().any(|k| !k) {
            let mut it = keep.iter();
            insts.retain(|_| *it.next().expect("keep mask matches length"));
        }
    }

    (work_units, removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{Cond, IBin, MethodId};
    use crate::nir::{Block, BlockId};

    fn func_with(insts: Vec<NInst>) -> NFunc {
        NFunc {
            method: MethodId(0),
            blocks: vec![Block { insts }],
            nregs: 16,
            nlocals: 4,
        }
    }

    #[test]
    fn removes_unused_pure_computation() {
        let mut f = func_with(vec![
            NInst::IBinOp {
                op: IBin::Add,
                d: VReg(5),
                a: VReg(1),
                b: VReg(2),
            },
            NInst::Ret { val: Some(VReg(1)) },
        ]);
        let r = run(&mut f);
        assert!(r.changed);
        assert_eq!(f.blocks[0].insts.len(), 1);
    }

    #[test]
    fn keeps_used_computation() {
        let mut f = func_with(vec![
            NInst::IBinOp {
                op: IBin::Add,
                d: VReg(5),
                a: VReg(1),
                b: VReg(2),
            },
            NInst::Ret { val: Some(VReg(5)) },
        ]);
        let r = run(&mut f);
        assert!(!r.changed);
        assert_eq!(f.blocks[0].insts.len(), 2);
    }

    #[test]
    fn removes_dead_chains() {
        let mut f = func_with(vec![
            NInst::IConst { d: VReg(5), v: 1 },
            NInst::IBinOp {
                op: IBin::Add,
                d: VReg(6),
                a: VReg(5),
                b: VReg(5),
            },
            NInst::Mov {
                d: VReg(7),
                s: VReg(6),
            },
            NInst::Ret { val: Some(VReg(0)) },
        ]);
        run(&mut f);
        assert_eq!(f.blocks[0].insts.len(), 1, "{f}");
    }

    #[test]
    fn removes_self_moves() {
        let mut f = func_with(vec![
            NInst::Mov {
                d: VReg(1),
                s: VReg(1),
            },
            NInst::Ret { val: Some(VReg(1)) },
        ]);
        run(&mut f);
        assert_eq!(f.blocks[0].insts.len(), 1);
    }

    #[test]
    fn keeps_side_effects() {
        let mut f = func_with(vec![
            NInst::AStoreOp {
                arr: VReg(1),
                idx: VReg(2),
                val: VReg(3),
                ty: crate::value::Type::Int,
            },
            NInst::CallOp {
                d: Some(VReg(9)), // result unused but the call stays
                target: MethodId(0),
                args: vec![],
            },
            NInst::Ret { val: None },
        ]);
        let r = run(&mut f);
        assert!(!r.changed);
        assert_eq!(f.blocks[0].insts.len(), 3);
    }

    #[test]
    fn liveness_flows_across_blocks() {
        // r5 defined in b0, used in b2 (via branch through b1):
        // must not be removed.
        let mut f = NFunc {
            method: MethodId(0),
            blocks: vec![
                Block {
                    insts: vec![
                        NInst::IConst { d: VReg(5), v: 3 },
                        NInst::Jmp { target: BlockId(1) },
                    ],
                },
                Block {
                    insts: vec![NInst::BrCond {
                        cond: Cond::Eq,
                        a: VReg(0),
                        b: VReg(0),
                        then_: BlockId(2),
                        else_: BlockId(2),
                    }],
                },
                Block {
                    insts: vec![NInst::Ret { val: Some(VReg(5)) }],
                },
            ],
            nregs: 6,
            nlocals: 1,
        };
        let r = run(&mut f);
        assert!(!r.changed);
    }

    #[test]
    fn dead_across_loop_removed_live_kept() {
        // Loop increments r1 (live, returned) and computes a dead r5.
        let mut f = NFunc {
            method: MethodId(0),
            blocks: vec![
                Block {
                    insts: vec![NInst::Jmp { target: BlockId(1) }],
                },
                Block {
                    insts: vec![NInst::BrCond {
                        cond: Cond::Ge,
                        a: VReg(1),
                        b: VReg(0),
                        then_: BlockId(3),
                        else_: BlockId(2),
                    }],
                },
                Block {
                    insts: vec![
                        NInst::IBinOp {
                            op: IBin::Add,
                            d: VReg(5),
                            a: VReg(2),
                            b: VReg(3),
                        },
                        NInst::IConst { d: VReg(4), v: 1 },
                        NInst::IBinOp {
                            op: IBin::Add,
                            d: VReg(1),
                            a: VReg(1),
                            b: VReg(4),
                        },
                        NInst::Jmp { target: BlockId(1) },
                    ],
                },
                Block {
                    insts: vec![NInst::Ret { val: Some(VReg(1)) }],
                },
            ],
            nregs: 6,
            nlocals: 4,
        };
        run(&mut f);
        // The dead add of r5 is gone; the induction increment remains.
        let body = &f.blocks[2].insts;
        assert_eq!(body.len(), 3, "{f}");
        assert!(body
            .iter()
            .any(|i| matches!(i, NInst::IBinOp { d: VReg(1), .. })));
    }
}

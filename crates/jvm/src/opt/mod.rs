//! JIT optimization passes.
//!
//! The paper's three compilation levels map to pass pipelines:
//!
//! * **Local1** — plain translation ([`crate::lower`]), no passes.
//! * **Local2** — "common sub-expression elimination, loop invariant
//!   code motion, strength reduction, and redundancy elimination":
//!   [`strength`], [`cse`], [`licm`], [`dce`].
//! * **Local3** — Local2 plus "virtual method inlining": [`inline`]
//!   first, then the Local2 pipeline over the enlarged body.
//!
//! Every pass returns the *work units* it expended (IR nodes visited),
//! which the energy model converts into compilation energy — this is
//! how "the energy expended in local compilation increases with the
//! degree of optimization" (paper Fig 8) emerges from the system
//! rather than being hard-coded.

pub mod copyprop;
pub mod cse;
pub mod dce;
pub mod inline;
pub mod licm;
pub mod strength;

/// Outcome of one pass application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassReport {
    /// Work units expended (charged as compile energy).
    pub work_units: u64,
    /// Whether the pass changed the function.
    pub changed: bool,
}

impl PassReport {
    /// Merge two sequential reports.
    #[must_use]
    pub fn merge(self, other: PassReport) -> PassReport {
        PassReport {
            work_units: self.work_units + other.work_units,
            changed: self.changed || other.changed,
        }
    }
}

/// Dominator computation shared by loop-based passes.
///
/// Returns `dom[b]` = set of blocks dominating `b` (as a bitset in a
/// `Vec<u64>` word-chunked representation would be overkill here;
/// block counts are small, so we use a boolean matrix).
pub(crate) fn dominators(func: &crate::nir::NFunc) -> Vec<Vec<bool>> {
    let n = func.blocks.len();
    let preds = func.predecessors();
    // dom[entry] = {entry}; dom[b] = {b} ∪ ⋂ dom[preds]
    let mut dom = vec![vec![true; n]; n];
    dom[0] = vec![false; n];
    dom[0][0] = true;
    let mut changed = true;
    while changed {
        changed = false;
        for b in 1..n {
            let mut new: Vec<bool> = match preds[b].split_first() {
                None => {
                    // Unreachable: dominated by everything (vacuous).
                    vec![true; n]
                }
                Some((first, rest)) => {
                    let mut acc = dom[first.0 as usize].clone();
                    for p in rest {
                        for (a, d) in acc.iter_mut().zip(&dom[p.0 as usize]) {
                            *a = *a && *d;
                        }
                    }
                    acc
                }
            };
            new[b] = true;
            if new != dom[b] {
                dom[b] = new;
                changed = true;
            }
        }
    }
    dom
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{Cond, MethodId};
    use crate::nir::{Block, BlockId, NFunc, NInst, VReg};

    /// entry(0) → 1 → {2, 3}; 2 → 4; 3 → 4; 4 → ret
    fn diamond() -> NFunc {
        NFunc {
            method: MethodId(0),
            blocks: vec![
                Block {
                    insts: vec![NInst::Jmp { target: BlockId(1) }],
                },
                Block {
                    insts: vec![NInst::BrCond {
                        cond: Cond::Eq,
                        a: VReg(0),
                        b: VReg(0),
                        then_: BlockId(2),
                        else_: BlockId(3),
                    }],
                },
                Block {
                    insts: vec![NInst::Jmp { target: BlockId(4) }],
                },
                Block {
                    insts: vec![NInst::Jmp { target: BlockId(4) }],
                },
                Block {
                    insts: vec![NInst::Ret { val: None }],
                },
            ],
            nregs: 1,
            nlocals: 1,
        }
    }

    #[test]
    fn dominators_of_diamond() {
        let f = diamond();
        let dom = dominators(&f);
        // 1 dominates 2, 3, 4; neither 2 nor 3 dominates 4.
        assert!(dom[2][1] && dom[3][1] && dom[4][1]);
        assert!(!dom[4][2] && !dom[4][3]);
        // Everything dominated by entry.
        for d in &dom {
            assert!(d[0]);
        }
        // Self-domination.
        for (b, d) in dom.iter().enumerate() {
            assert!(d[b]);
        }
    }
}

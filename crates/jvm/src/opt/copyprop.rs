//! Local copy propagation.
//!
//! Part of the paper's Local2 "redundancy elimination". Naive stack
//! lowering produces long chains of register copies (every bytecode
//! `load`/`store` becomes a `mov`); this pass rewrites uses through
//! those copies so the copies themselves become dead and fall to DCE.
//! Operates per basic block (the positional-register discipline makes
//! cross-block copy tracking unnecessary for the common patterns).

use crate::nir::{NFunc, NInst, VReg};
use crate::opt::PassReport;
use std::collections::HashMap;

/// Run the pass.
pub fn run(func: &mut NFunc) -> PassReport {
    let mut work_units = 0u64;
    let mut changed = false;

    for block in &mut func.blocks {
        // copy_of[r] = s: r currently holds the same value as s.
        // Uses are rewritten to the chain root; the def of each
        // instruction is left untouched (map_regs visits it too, so it
        // is explicitly excluded).
        let mut copy_of: HashMap<VReg, VReg> = HashMap::new();
        for inst in &mut block.insts {
            work_units += 1;
            let before = inst.clone();
            inst.map_uses(&mut |r| resolve(&copy_of, r));
            if *inst != before {
                changed = true;
            }
            if let Some(d) = inst.def() {
                copy_of.remove(&d);
                copy_of.retain(|_, v| *v != d);
            }
            if let NInst::Mov { d, s } = *inst {
                if d != s {
                    copy_of.insert(d, s);
                }
            }
        }
    }

    PassReport {
        work_units,
        changed,
    }
}

/// Follow the copy chain from `r` to its root.
fn resolve(copy_of: &HashMap<VReg, VReg>, r: VReg) -> VReg {
    let mut cur = r;
    let mut fuel = 64; // cycle guard (cycles cannot form, but be safe)
    while let Some(&next) = copy_of.get(&cur) {
        if fuel == 0 {
            break;
        }
        fuel -= 1;
        cur = next;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{IBin, MethodId};
    use crate::nir::Block;

    fn func_with(insts: Vec<NInst>) -> NFunc {
        NFunc {
            method: MethodId(0),
            blocks: vec![Block { insts }],
            nregs: 16,
            nlocals: 4,
        }
    }

    #[test]
    fn propagates_through_stack_movs() {
        // The canonical lowered `acc += i` shape.
        let mut f = func_with(vec![
            NInst::Mov {
                d: VReg(4),
                s: VReg(1),
            }, // push acc
            NInst::Mov {
                d: VReg(5),
                s: VReg(2),
            }, // push i
            NInst::IBinOp {
                op: IBin::Add,
                d: VReg(4),
                a: VReg(4),
                b: VReg(5),
            },
            NInst::Mov {
                d: VReg(1),
                s: VReg(4),
            }, // store acc
            NInst::Ret { val: Some(VReg(1)) },
        ]);
        let r = run(&mut f);
        assert!(r.changed);
        // The add now reads the locals directly.
        assert_eq!(
            f.blocks[0].insts[2],
            NInst::IBinOp {
                op: IBin::Add,
                d: VReg(4),
                a: VReg(1),
                b: VReg(2),
            }
        );
    }

    #[test]
    fn copies_die_on_source_redefinition() {
        let mut f = func_with(vec![
            NInst::Mov {
                d: VReg(4),
                s: VReg(1),
            },
            NInst::IConst { d: VReg(1), v: 99 }, // r1 changes!
            // r4 must NOT be rewritten to r1 here.
            NInst::IBinOp {
                op: IBin::Add,
                d: VReg(5),
                a: VReg(4),
                b: VReg(4),
            },
            NInst::Ret { val: Some(VReg(5)) },
        ]);
        run(&mut f);
        assert_eq!(
            f.blocks[0].insts[2],
            NInst::IBinOp {
                op: IBin::Add,
                d: VReg(5),
                a: VReg(4),
                b: VReg(4),
            }
        );
    }

    #[test]
    fn chains_resolve_to_root() {
        let mut f = func_with(vec![
            NInst::Mov {
                d: VReg(4),
                s: VReg(1),
            },
            NInst::Mov {
                d: VReg(5),
                s: VReg(4),
            },
            NInst::Mov {
                d: VReg(6),
                s: VReg(5),
            },
            NInst::Ret { val: Some(VReg(6)) },
        ]);
        run(&mut f);
        assert_eq!(
            *f.blocks[0].insts.last().unwrap(),
            NInst::Ret { val: Some(VReg(1)) }
        );
    }

    #[test]
    fn defs_are_not_rewritten() {
        let mut f = func_with(vec![
            NInst::Mov {
                d: VReg(4),
                s: VReg(1),
            },
            // Redefines r4; the def must stay r4.
            NInst::IConst { d: VReg(4), v: 3 },
            NInst::Ret { val: Some(VReg(4)) },
        ]);
        run(&mut f);
        assert_eq!(f.blocks[0].insts[1], NInst::IConst { d: VReg(4), v: 3 });
    }

    #[test]
    fn with_dce_removes_stack_traffic() {
        let mut f = func_with(vec![
            NInst::Mov {
                d: VReg(4),
                s: VReg(1),
            },
            NInst::Mov {
                d: VReg(5),
                s: VReg(2),
            },
            NInst::IBinOp {
                op: IBin::Add,
                d: VReg(6),
                a: VReg(4),
                b: VReg(5),
            },
            NInst::Ret { val: Some(VReg(6)) },
        ]);
        run(&mut f);
        crate::opt::dce::run(&mut f);
        // Only the add and the ret survive.
        assert_eq!(f.blocks[0].insts.len(), 2, "{f}");
    }
}

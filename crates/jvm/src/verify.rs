//! The MJVM bytecode verifier.
//!
//! "When a class is loaded, Java Virtual Machine verifies the class
//! file to guarantee that the class file is well formed and that the
//! program does not violate any security policies." Our verifier is a
//! dataflow analysis over each method's bytecode, in the spirit of the
//! JVM specification's type-checking verifier:
//!
//! * every branch target is a valid code index,
//! * the operand stack never underflows and has a consistent depth and
//!   type shape at every join point,
//! * locals are read only after a write of a consistent type (method
//!   parameters are pre-initialized),
//! * calls exist and are applied at the right arity and types,
//! * returns match the method signature,
//! * control cannot fall off the end of the code.
//!
//! Downloaded *native* code cannot be verified ("this verification
//! mechanism does not work for native code"), which is why the remote
//! compilation path in `jem-core` requires a trusted server; the
//! verifier applies only to bytecode.

use crate::bytecode::{MethodId, Op};
use crate::class::Program;
use crate::error::VerifyError;
use crate::value::Type;

/// Upper bound on the operand stack depth we accept.
pub const MAX_STACK: usize = 512;

/// Lattice for local-variable types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LocalTy {
    /// Never written on some path.
    Unknown,
    /// Holds a value of this type.
    Known(Type),
    /// Written with conflicting types on different paths.
    Conflict,
}

impl LocalTy {
    fn join(self, other: LocalTy) -> LocalTy {
        match (self, other) {
            (LocalTy::Unknown, _) | (_, LocalTy::Unknown) => LocalTy::Unknown,
            (LocalTy::Known(a), LocalTy::Known(b)) if a == b => LocalTy::Known(a),
            _ => LocalTy::Conflict,
        }
    }
}

/// Abstract machine state at one code index.
#[derive(Debug, Clone, PartialEq)]
struct AbsState {
    stack: Vec<Type>,
    locals: Vec<LocalTy>,
}

impl AbsState {
    fn join(&self, other: &AbsState) -> Option<AbsState> {
        if self.stack != other.stack {
            return None;
        }
        let locals = self
            .locals
            .iter()
            .zip(&other.locals)
            .map(|(&a, &b)| a.join(b))
            .collect();
        Some(AbsState {
            stack: self.stack.clone(),
            locals,
        })
    }
}

/// Verify every method of a program.
///
/// # Errors
/// The first [`VerifyError`] found.
pub fn verify_program(program: &Program) -> Result<(), VerifyError> {
    for (i, _) in program.methods.iter().enumerate() {
        verify_method(program, MethodId(i as u32))?;
    }
    Ok(())
}

/// Verify a single method.
///
/// # Errors
/// A [`VerifyError`] describing the first violation.
pub fn verify_method(program: &Program, id: MethodId) -> Result<(), VerifyError> {
    let method = program.method(id);
    let name = program.qualified_name(id);
    let fail = |at: Option<usize>, reason: String| VerifyError {
        method: name.clone(),
        at,
        reason,
    };

    if method.code.is_empty() {
        return Err(fail(None, "empty code".into()));
    }
    if (method.nlocals as usize) < method.invoke_arity() {
        return Err(fail(None, "locals do not cover parameters".into()));
    }

    // Structural well-formedness first: every branch target must be in
    // range even in unreachable code (as in the JVM spec), because the
    // JIT front end builds its CFG from all of the code.
    for (pc, op) in method.code.iter().enumerate() {
        if let Some(t) = op.branch_target() {
            if t as usize >= method.code.len() {
                return Err(fail(Some(pc), format!("branch target {t} out of range")));
            }
        }
    }

    // Entry state: receiver + params pre-initialized.
    let mut locals = vec![LocalTy::Unknown; method.nlocals as usize];
    let mut slot = 0;
    if method.is_virtual {
        locals[0] = LocalTy::Known(Type::Ref);
        slot = 1;
    }
    for &p in &method.sig.params {
        locals[slot] = LocalTy::Known(p);
        slot += 1;
    }
    let entry = AbsState {
        stack: Vec::new(),
        locals,
    };

    let code = &method.code;
    let mut states: Vec<Option<AbsState>> = vec![None; code.len()];
    states[0] = Some(entry);
    let mut worklist = vec![0usize];

    while let Some(pc) = worklist.pop() {
        let state = states[pc].clone().expect("worklist entries have states");
        let op = code[pc];
        let mut st = state;

        // Helper closures for stack discipline.
        macro_rules! pop {
            () => {
                st.stack
                    .pop()
                    .ok_or_else(|| fail(Some(pc), "stack underflow".into()))?
            };
        }
        macro_rules! pop_ty {
            ($ty:expr) => {{
                let got = pop!();
                if got != $ty {
                    return Err(fail(
                        Some(pc),
                        format!("expected {} on stack, got {}", $ty, got),
                    ));
                }
            }};
        }
        macro_rules! push {
            ($ty:expr) => {{
                st.stack.push($ty);
                if st.stack.len() > MAX_STACK {
                    return Err(fail(Some(pc), "stack depth limit exceeded".into()));
                }
            }};
        }

        let mut successors: Vec<usize> = Vec::with_capacity(2);
        let mut falls_through = true;

        match op {
            Op::IConst(_) => push!(Type::Int),
            Op::FConst(_) => push!(Type::Float),
            Op::NullConst => push!(Type::Ref),
            Op::Load(n) => {
                let n = n as usize;
                if n >= st.locals.len() {
                    return Err(fail(Some(pc), format!("local {n} out of range")));
                }
                match st.locals[n] {
                    LocalTy::Known(t) => push!(t),
                    LocalTy::Unknown => {
                        return Err(fail(Some(pc), format!("local {n} read before write")))
                    }
                    LocalTy::Conflict => {
                        return Err(fail(
                            Some(pc),
                            format!("local {n} has conflicting types at merge"),
                        ))
                    }
                }
            }
            Op::Store(n) => {
                let n = n as usize;
                if n >= st.locals.len() {
                    return Err(fail(Some(pc), format!("local {n} out of range")));
                }
                let t = pop!();
                st.locals[n] = LocalTy::Known(t);
            }
            Op::Pop => {
                let _ = pop!();
            }
            Op::Dup => {
                let t = *st
                    .stack
                    .last()
                    .ok_or_else(|| fail(Some(pc), "stack underflow".into()))?;
                push!(t);
            }
            Op::Swap => {
                let a = pop!();
                let b = pop!();
                push!(a);
                push!(b);
            }
            Op::IArith(_) => {
                pop_ty!(Type::Int);
                pop_ty!(Type::Int);
                push!(Type::Int);
            }
            Op::INeg => {
                pop_ty!(Type::Int);
                push!(Type::Int);
            }
            Op::ICmp => {
                pop_ty!(Type::Int);
                pop_ty!(Type::Int);
                push!(Type::Int);
            }
            Op::FArith(_) => {
                pop_ty!(Type::Float);
                pop_ty!(Type::Float);
                push!(Type::Float);
            }
            Op::FNeg => {
                pop_ty!(Type::Float);
                push!(Type::Float);
            }
            Op::FCmp => {
                pop_ty!(Type::Float);
                pop_ty!(Type::Float);
                push!(Type::Int);
            }
            Op::I2F => {
                pop_ty!(Type::Int);
                push!(Type::Float);
            }
            Op::F2I => {
                pop_ty!(Type::Float);
                push!(Type::Int);
            }
            Op::Goto(t) => {
                successors.push(t as usize);
                falls_through = false;
            }
            Op::ICmpBr(_, t) => {
                pop_ty!(Type::Int);
                pop_ty!(Type::Int);
                successors.push(t as usize);
            }
            Op::BrZ(_, t) => {
                pop_ty!(Type::Int);
                successors.push(t as usize);
            }
            Op::NewArr(_) => {
                pop_ty!(Type::Int);
                push!(Type::Ref);
            }
            Op::ALoad(ty) => {
                pop_ty!(Type::Int);
                pop_ty!(Type::Ref);
                // The element type is statically declared on the op
                // (like the JVM's iaload/faload/aaload); whether the
                // array actually has that element type is checked at
                // runtime, exactly as the JVM does for aastore-style
                // hazards.
                push!(ty);
            }
            Op::AStore(ty) => {
                pop_ty!(ty);
                pop_ty!(Type::Int);
                pop_ty!(Type::Ref);
            }
            Op::ArrLen => {
                pop_ty!(Type::Ref);
                push!(Type::Int);
            }
            Op::New(cid) => {
                if cid.0 as usize >= program.classes.len() {
                    return Err(fail(Some(pc), format!("unknown class {}", cid.0)));
                }
                push!(Type::Ref);
            }
            Op::GetField(_, ty) => {
                pop_ty!(Type::Ref);
                push!(ty);
            }
            Op::PutField(_) => {
                let _value = pop!();
                pop_ty!(Type::Ref);
            }
            Op::Call(mid) => {
                if mid.0 as usize >= program.methods.len() {
                    return Err(fail(Some(pc), format!("unknown method {}", mid.0)));
                }
                let callee = program.method(mid);
                if callee.is_virtual {
                    return Err(fail(
                        Some(pc),
                        format!("static call to virtual method {}", callee.name),
                    ));
                }
                for &p in callee.sig.params.iter().rev() {
                    let got = pop!();
                    if got != p {
                        return Err(fail(
                            Some(pc),
                            format!("argument type mismatch: expected {p}, got {got}"),
                        ));
                    }
                }
                if let Some(r) = callee.sig.ret {
                    push!(r);
                }
            }
            Op::CallVirt { slot, argc } => {
                let max_slot = program
                    .classes
                    .iter()
                    .map(|c| c.vtable.len())
                    .max()
                    .unwrap_or(0);
                if slot as usize >= max_slot {
                    return Err(fail(Some(pc), format!("vtable slot {slot} out of range")));
                }
                for _ in 0..argc {
                    let _ = pop!();
                }
                pop_ty!(Type::Ref); // receiver
                                    // Virtual return types must agree across all
                                    // implementations in any class providing the slot.
                let mut ret: Option<Option<Type>> = None;
                for class in &program.classes {
                    if let Some(&mid) = class.vtable.get(slot as usize) {
                        let r = program.method(mid).sig.ret;
                        match ret {
                            None => ret = Some(r),
                            Some(prev) if prev == r => {}
                            Some(_) => {
                                return Err(fail(
                                    Some(pc),
                                    format!("inconsistent return types at vtable slot {slot}"),
                                ))
                            }
                        }
                    }
                }
                if let Some(Some(r)) = ret {
                    push!(r);
                }
            }
            Op::Ret => {
                if method.sig.ret.is_some() {
                    return Err(fail(Some(pc), "void return from non-void method".into()));
                }
                falls_through = false;
            }
            Op::RetVal => {
                match method.sig.ret {
                    None => return Err(fail(Some(pc), "value return from void method".into())),
                    Some(r) => {
                        let got = pop!();
                        if got != r {
                            return Err(fail(
                                Some(pc),
                                format!("return type mismatch: expected {r}, got {got}"),
                            ));
                        }
                    }
                }
                falls_through = false;
            }
            Op::Nop => {}
        }

        if falls_through {
            let next = pc + 1;
            if next >= code.len() {
                return Err(fail(Some(pc), "control falls off end of code".into()));
            }
            successors.push(next);
        }

        for succ in successors {
            if succ >= code.len() {
                return Err(fail(Some(pc), format!("branch target {succ} out of range")));
            }
            match &states[succ] {
                None => {
                    states[succ] = Some(st.clone());
                    worklist.push(succ);
                }
                Some(existing) => match existing.join(&st) {
                    None => {
                        return Err(fail(
                            Some(succ),
                            "inconsistent stack shapes at join point".into(),
                        ))
                    }
                    Some(joined) => {
                        if &joined != existing {
                            states[succ] = Some(joined);
                            worklist.push(succ);
                        }
                    }
                },
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{Cond, IBin};
    use crate::class::{MethodAttrs, MethodSig, ProgramBuilder};

    fn one_method(sig: MethodSig, nlocals: u16, code: Vec<Op>) -> (Program, MethodId) {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("T", None, &[]);
        let m = b.add_static_method(c, "f", sig, nlocals, code, MethodAttrs::default());
        (b.finish(), m)
    }

    #[test]
    fn accepts_simple_arithmetic() {
        let (p, m) = one_method(
            MethodSig::new(vec![Type::Int, Type::Int], Some(Type::Int)),
            2,
            vec![Op::Load(0), Op::Load(1), Op::IArith(IBin::Add), Op::RetVal],
        );
        verify_method(&p, m).unwrap();
    }

    #[test]
    fn rejects_stack_underflow() {
        let (p, m) = one_method(MethodSig::new(vec![], None), 0, vec![Op::Pop, Op::Ret]);
        let err = verify_method(&p, m).unwrap_err();
        assert!(err.reason.contains("underflow"), "{err}");
    }

    #[test]
    fn rejects_branch_out_of_range() {
        let (p, m) = one_method(MethodSig::new(vec![], None), 0, vec![Op::Goto(99)]);
        let err = verify_method(&p, m).unwrap_err();
        assert!(err.reason.contains("out of range"), "{err}");
    }

    #[test]
    fn rejects_fall_off_end() {
        let (p, m) = one_method(MethodSig::new(vec![], None), 0, vec![Op::Nop]);
        let err = verify_method(&p, m).unwrap_err();
        assert!(err.reason.contains("falls off end"), "{err}");
    }

    #[test]
    fn rejects_read_before_write() {
        let (p, m) = one_method(
            MethodSig::new(vec![], Some(Type::Int)),
            1,
            vec![Op::Load(0), Op::RetVal],
        );
        let err = verify_method(&p, m).unwrap_err();
        assert!(err.reason.contains("read before write"), "{err}");
    }

    #[test]
    fn rejects_type_confusion_in_arith() {
        let (p, m) = one_method(
            MethodSig::new(vec![Type::Float], Some(Type::Int)),
            1,
            vec![
                Op::IConst(1),
                Op::Load(0),
                Op::IArith(IBin::Add),
                Op::RetVal,
            ],
        );
        let err = verify_method(&p, m).unwrap_err();
        assert!(err.reason.contains("expected int"), "{err}");
    }

    #[test]
    fn rejects_wrong_return_type() {
        let (p, m) = one_method(
            MethodSig::new(vec![], Some(Type::Float)),
            0,
            vec![Op::IConst(0), Op::RetVal],
        );
        let err = verify_method(&p, m).unwrap_err();
        assert!(err.reason.contains("return type mismatch"), "{err}");
    }

    #[test]
    fn rejects_value_return_from_void() {
        let (p, m) = one_method(
            MethodSig::new(vec![], None),
            0,
            vec![Op::IConst(0), Op::RetVal],
        );
        let err = verify_method(&p, m).unwrap_err();
        assert!(err.reason.contains("void"), "{err}");
    }

    #[test]
    fn rejects_inconsistent_join() {
        // One path pushes an extra value before the join.
        let (p, m) = one_method(
            MethodSig::new(vec![Type::Int], None),
            1,
            vec![
                Op::Load(0),          // 0
                Op::BrZ(Cond::Eq, 3), // 1: if zero jump to 3 with empty stack
                Op::IConst(7),        // 2: fall through pushes
                Op::Ret,              // 3: join: empty vs [Int]
            ],
        );
        let err = verify_method(&p, m).unwrap_err();
        assert!(err.reason.contains("join"), "{err}");
    }

    #[test]
    fn accepts_consistent_loop() {
        // for (i = 0; i < n; i++) {}
        let (p, m) = one_method(
            MethodSig::new(vec![Type::Int], None),
            2,
            vec![
                Op::IConst(0),           // 0
                Op::Store(1),            // 1: i = 0
                Op::Load(1),             // 2
                Op::Load(0),             // 3
                Op::ICmpBr(Cond::Ge, 9), // 4: if i >= n exit
                Op::Load(1),             // 5
                Op::IConst(1),           // 6
                Op::IArith(IBin::Add),   // 7
                Op::Store(1),            // 8 (falls to 2? no: next is 9) — fix below
                Op::Ret,                 // 9
            ],
        );
        // The loop above actually falls through to Ret, which is still
        // verifiable; a realistic back edge follows:
        verify_method(&p, m).unwrap();

        let (p2, m2) = one_method(
            MethodSig::new(vec![Type::Int], None),
            2,
            vec![
                Op::IConst(0),            // 0
                Op::Store(1),             // 1
                Op::Load(1),              // 2
                Op::Load(0),              // 3
                Op::ICmpBr(Cond::Ge, 10), // 4
                Op::Load(1),              // 5
                Op::IConst(1),            // 6
                Op::IArith(IBin::Add),    // 7
                Op::Store(1),             // 8
                Op::Goto(2),              // 9: back edge
                Op::Ret,                  // 10
            ],
        );
        verify_method(&p2, m2).unwrap();
    }

    #[test]
    fn rejects_unknown_callee() {
        let (p, m) = one_method(
            MethodSig::new(vec![], None),
            0,
            vec![Op::Call(MethodId(42)), Op::Ret],
        );
        let err = verify_method(&p, m).unwrap_err();
        assert!(err.reason.contains("unknown method"), "{err}");
    }

    #[test]
    fn rejects_call_arg_type_mismatch() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("T", None, &[]);
        let callee = b.add_static_method(
            c,
            "g",
            MethodSig::new(vec![Type::Float], None),
            1,
            vec![Op::Ret],
            MethodAttrs::default(),
        );
        let caller = b.add_static_method(
            c,
            "f",
            MethodSig::new(vec![], None),
            0,
            vec![Op::IConst(1), Op::Call(callee), Op::Ret],
            MethodAttrs::default(),
        );
        let p = b.finish();
        let err = verify_method(&p, caller).unwrap_err();
        assert!(err.reason.contains("argument type"), "{err}");
    }

    #[test]
    fn rejects_empty_code() {
        let (p, m) = one_method(MethodSig::new(vec![], None), 0, vec![]);
        let err = verify_method(&p, m).unwrap_err();
        assert!(err.reason.contains("empty"), "{err}");
    }

    #[test]
    fn verify_program_checks_all_methods() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("T", None, &[]);
        b.add_static_method(
            c,
            "ok",
            MethodSig::new(vec![], None),
            0,
            vec![Op::Ret],
            MethodAttrs::default(),
        );
        b.add_static_method(
            c,
            "bad",
            MethodSig::new(vec![], None),
            0,
            vec![Op::Pop, Op::Ret],
            MethodAttrs::default(),
        );
        let p = b.finish();
        let err = verify_program(&p).unwrap_err();
        assert!(err.method.contains("bad"), "{err}");
    }
}

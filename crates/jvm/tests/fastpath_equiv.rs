//! Differential property tests: the pre-decoded fast-path interpreter
//! ([`jem_jvm::decode`]) is observationally identical to the reference
//! per-op interpreter ([`jem_jvm::interp`]) — same returned value or
//! error, same step count, same cycle count, and *bit-identical*
//! energy accounting (total, per-component breakdown, instruction mix,
//! and cache hit/miss counters).
//!
//! Three obligations are checked:
//!
//! 1. **Random verified programs** (proptest): the same DSL program
//!    generator as `prop_jit_equiv`, extended with float arithmetic
//!    and a static call so the fused-op, batched-run, conversion and
//!    invoke paths are all exercised.
//! 2. **Unverified rogue-return programs** (deterministic): hand-built
//!    bytecode whose callees' runtime return presence contradicts the
//!    static signature. These invalidate the fast path's dataflow
//!    assumptions mid-frame; the taint guard must fall back to per-op
//!    execution and still match the reference engine exactly.
//! 3. **Step-budget cutoffs**: for every budget value across a run's
//!    full length, both engines stop at the same instruction with the
//!    same error and the same machine state — batching must never
//!    over- or under-charge at the boundary.

use jem_jvm::class::{MethodAttrs, MethodSig, ProgramBuilder};
use jem_jvm::dsl::*;
use jem_jvm::verify::verify_program;
use jem_jvm::{MethodId, Op, Program, Type, Value, Vm, VmError};
use proptest::prelude::*;

/// Everything observable about a finished VM, with energies captured
/// as raw bit patterns so `-0.0`/`0.0` or NaN artifacts could never
/// mask a divergence.
#[derive(Debug, Clone, PartialEq)]
struct Fingerprint {
    steps: u64,
    cycles: u64,
    energy_bits: u64,
    component_bits: Vec<(String, u64)>,
    mix: Vec<(String, u64)>,
    icache: Option<jem_energy::CacheStats>,
    dcache: Option<jem_energy::CacheStats>,
    state: jem_energy::MachineState,
}

fn fingerprint(vm: &Vm) -> Fingerprint {
    let m = &vm.machine;
    Fingerprint {
        steps: vm.steps,
        cycles: m.cycles(),
        energy_bits: m.energy().joules().to_bits(),
        component_bits: m
            .breakdown()
            .iter()
            .map(|(c, e)| (format!("{c:?}"), e.joules().to_bits()))
            .collect(),
        mix: {
            use jem_energy::InstrClass::*;
            let mix = m.mix();
            [Load, Store, Branch, AluSimple, AluComplex, Nop]
                .iter()
                .map(|c| (format!("{c:?}"), mix.count(*c)))
                .collect()
        },
        icache: m.icache_stats(),
        dcache: m.dcache_stats(),
        state: m.export_state(),
    }
}

/// Run `id(args)` on a fresh client VM with the chosen engine and
/// budget, returning the outcome plus the machine fingerprint.
fn run_engine(
    program: &Program,
    id: MethodId,
    args: &[Value],
    slow: bool,
    budget: u64,
) -> (Result<Option<Value>, VmError>, Fingerprint) {
    let mut vm = Vm::client(program);
    vm.options.slow_interp = slow;
    vm.options.step_budget = budget;
    let got = vm.invoke(id, args.to_vec());
    let fp = fingerprint(&vm);
    (got, fp)
}

/// Assert both engines agree on result and machine state.
fn assert_engines_agree(program: &Program, id: MethodId, args: &[Value], budget: u64, ctx: &str) {
    let (slow_res, slow_fp) = run_engine(program, id, args, true, budget);
    let (fast_res, fast_fp) = run_engine(program, id, args, false, budget);
    assert_eq!(fast_res, slow_res, "result diverged: {ctx}");
    assert_eq!(fast_fp, slow_fp, "machine state diverged: {ctx}");
}

// ---------------------------------------------------------------
// 1. Random verified programs
// ---------------------------------------------------------------

/// Same expression AST as `prop_jit_equiv`, which together with the
/// module skeleton below covers loads/stores, all integer binops,
/// comparisons, branches, loops and array traffic.
#[derive(Debug, Clone)]
enum E {
    Const(i32),
    Var(u8),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Rem(Box<E>, Box<E>),
    Shl(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    // arr[e & 15]
    Load(Box<E>),
    // g(e) — static call to a helper method
    Call(Box<E>),
}

#[derive(Debug, Clone)]
enum S {
    Assign(u8, E),
    Store(E, E), // arr[e1 & 15] = e2
    If(E, E, Vec<S>, Vec<S>),
    Loop(u8, Vec<S>), // bounded 0..k loop over a fresh counter
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![(-64i32..64).prop_map(E::Const), (0u8..3).prop_map(E::Var),];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Div(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Rem(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Shl(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| E::Load(Box::new(a))),
            inner.clone().prop_map(|a| E::Call(Box::new(a))),
        ]
    })
}

fn stmt_strategy() -> impl Strategy<Value = S> {
    let base = prop_oneof![
        ((0u8..3), expr_strategy()).prop_map(|(v, e)| S::Assign(v, e)),
        (expr_strategy(), expr_strategy()).prop_map(|(i, v)| S::Store(i, v)),
    ];
    base.prop_recursive(2, 16, 4, |inner| {
        let stmts = prop::collection::vec(inner, 1..4);
        prop_oneof![
            (
                expr_strategy(),
                expr_strategy(),
                stmts.clone(),
                stmts.clone()
            )
                .prop_map(|(a, b, t, e)| S::If(a, b, t, e)),
            ((1u8..4), stmts).prop_map(|(k, b)| S::Loop(k, b)),
        ]
    })
}

fn to_expr(e: &E) -> Expr {
    match e {
        E::Const(c) => iconst(*c),
        E::Var(v) => var(&format!("v{v}")),
        E::Add(a, b) => to_expr(a).add(to_expr(b)),
        E::Sub(a, b) => to_expr(a).sub(to_expr(b)),
        E::Mul(a, b) => to_expr(a).mul(to_expr(b)),
        E::Div(a, b) => to_expr(a).div(to_expr(b)),
        E::Rem(a, b) => to_expr(a).rem(to_expr(b)),
        E::Shl(a, b) => to_expr(a).shl(to_expr(b)),
        E::Xor(a, b) => to_expr(a).bitxor(to_expr(b)),
        E::Load(i) => var("arr").index(to_expr(i).bitand(iconst(15))),
        E::Call(a) => call("g", vec![to_expr(a)]),
    }
}

fn to_stmts(stmts: &[S], fresh: &mut u32) -> Vec<Stmt> {
    stmts
        .iter()
        .map(|s| match s {
            S::Assign(v, e) => assign(&format!("v{v}"), to_expr(e)),
            S::Store(i, v) => set_index(var("arr"), to_expr(i).bitand(iconst(15)), to_expr(v)),
            S::If(a, b, t, e) => {
                let mut f1 = *fresh;
                let body_t = to_stmts(t, &mut f1);
                let body_e = to_stmts(e, &mut f1);
                *fresh = f1;
                if_else(to_expr(a).lt(to_expr(b)), body_t, body_e)
            }
            S::Loop(k, b) => {
                let name = format!("i{fresh}");
                *fresh += 1;
                let body = to_stmts(b, fresh);
                for_(&name, iconst(0), iconst(i32::from(*k)), body)
            }
        })
        .collect()
}

fn build(stmts: &[S]) -> (Program, MethodId) {
    let mut m = ModuleBuilder::new();
    // A small helper so random expressions exercise the Call path.
    m.func(
        "g",
        vec![("x", DType::Int)],
        Some(DType::Int),
        vec![ret(var("x").mul(iconst(3)).bitxor(var("x").shr(iconst(2))))],
    );
    let mut fresh = 0;
    let mut body = vec![let_("arr", new_arr(DType::Int, iconst(16)))];
    // Seed the array deterministically from the parameters.
    body.push(for_(
        "s",
        iconst(0),
        iconst(16),
        vec![set_index(
            var("arr"),
            var("s"),
            var("v0").add(var("s").mul(iconst(7))),
        )],
    ));
    body.extend(to_stmts(stmts, &mut fresh));
    // A float tail so FArith / I2F / F2I and their fused forms run.
    body.push(let_(
        "fx",
        var("v1").to_f().div(fconst(3.5)).mul(fconst(1.25)),
    ));
    body.push(assign(
        "fx",
        var("fx").add(var("v2").to_f()).sub(fconst(0.125)).neg(),
    ));
    // Fold the state into one observable value.
    let mut acc = var("v0").bitxor(var("v1")).bitxor(var("fx").to_i());
    for i in 0..16 {
        let prev = acc.clone();
        acc = acc
            .mul(iconst(31))
            .add(var("arr").index(iconst(i)))
            .bitxor(prev.shr(iconst(7)));
    }
    body.push(ret(acc));
    m.func(
        "f",
        vec![("v0", DType::Int), ("v1", DType::Int), ("v2", DType::Int)],
        Some(DType::Int),
        body,
    );
    let p = m.compile().expect("generated programs compile");
    let id = p.find_method(MODULE_CLASS, "f").expect("f exists");
    (p, id)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10 })]

    #[test]
    fn fast_path_matches_reference(
        stmts in prop::collection::vec(stmt_strategy(), 1..5),
        a in -1000i32..1000,
        b in -1000i32..1000,
        c in -1000i32..1000,
    ) {
        let (program, id) = build(&stmts);
        verify_program(&program).expect("generated programs verify");
        let args = vec![Value::Int(a), Value::Int(b), Value::Int(c)];

        let (slow_res, slow_fp) = run_engine(&program, id, &args, true, 50_000_000);
        let (fast_res, fast_fp) = run_engine(&program, id, &args, false, 50_000_000);
        prop_assert_eq!(&fast_res, &slow_res, "result diverged (stmts: {:?})", stmts);
        prop_assert_eq!(&fast_fp, &slow_fp, "machine state diverged (stmts: {:?})", stmts);
    }
}

// ---------------------------------------------------------------
// 2. Unverified rogue-return programs (taint guard)
// ---------------------------------------------------------------

fn attrs() -> MethodAttrs {
    MethodAttrs {
        potential: false,
        local_only: false,
        size_param: None,
    }
}

/// A caller that interleaves batched straight-line stretches with a
/// call to `callee`, inside a loop so tainted frames re-execute the
/// same run sites. Locals: 0 = loop counter, 1 = accumulator.
fn rogue_caller_body(callee: MethodId) -> Vec<Op> {
    let mut code = vec![
        Op::IConst(0),
        Op::Store(0),
        Op::IConst(1),
        Op::Store(1),
        // loop head (index 4)
        Op::Load(1),
        Op::IConst(7),
        Op::IArith(jem_jvm::IBin::Mul),
        Op::IConst(13),
        Op::IArith(jem_jvm::IBin::Add),
        Op::Call(callee),
    ];
    code.extend([
        Op::Store(1),
        // counter += 1, loop while counter < 6
        Op::Load(0),
        Op::IConst(1),
        Op::IArith(jem_jvm::IBin::Add),
        Op::Dup,
        Op::Store(0),
        Op::IConst(6),
        Op::ICmpBr(jem_jvm::Cond::Lt, 4),
        Op::Load(1),
        Op::RetVal,
    ]);
    code
}

/// Callee declares `-> int` but returns nothing: the caller's static
/// stack model expects a push that never happens.
#[test]
fn rogue_missing_return_matches_reference() {
    let mut b = ProgramBuilder::new();
    let c = b.add_class("App", None, &[]);
    let callee = b.add_static_method(
        c,
        "liar",
        MethodSig::new(vec![], Some(Type::Int)),
        0,
        vec![Op::Nop, Op::Ret],
        attrs(),
    );
    let main = b.add_static_method(
        c,
        "main",
        MethodSig::new(vec![], Some(Type::Int)),
        2,
        rogue_caller_body(callee),
        attrs(),
    );
    let p = b.finish();
    assert_engines_agree(&p, main, &[], u64::MAX, "missing-return taint");
}

/// Virtual dispatch where every override *declares* `-> int` (so the
/// static vtable scan confidently predicts a push), but the subclass
/// override returns nothing at runtime. The prediction is violated
/// only when a `Sub` receiver flows through the call site — the taint
/// guard must catch it there.
#[test]
fn rogue_virtual_missing_return_matches_reference() {
    let mut b = ProgramBuilder::new();
    let base = b.add_class("Base", None, &[]);
    let (_m_base, slot) = b.add_virtual_method(
        base,
        "poly",
        MethodSig::new(vec![], Some(Type::Int)),
        1,
        vec![Op::IConst(17), Op::RetVal],
        attrs(),
    );
    let sub = b.add_class("Sub", Some(base), &[]);
    let (_m_sub, slot2) = b.add_virtual_method(
        sub,
        "poly",
        MethodSig::new(vec![], Some(Type::Int)),
        1,
        // Declares a return it never produces.
        vec![Op::Ret],
        attrs(),
    );
    assert_eq!(slot, slot2, "override shares the vtable slot");
    // main(which): pick the receiver class, then loop over the call
    // site with a sentinel beneath the predicted return slot so the
    // honest (Base) and lying (Sub) receivers both execute cleanly.
    let main_code = vec![
        Op::IConst(0),
        Op::Store(1),
        Op::Load(0), // receiver selector: 0 → Base, else Sub
        Op::BrZ(jem_jvm::Cond::Eq, 7),
        Op::New(sub),
        Op::Store(2),
        Op::Goto(9),
        Op::New(base),
        Op::Store(2),
        // loop head (index 9): sentinel, then the virtual call
        Op::IConst(99),
        Op::Load(2),
        Op::CallVirt { slot, argc: 0 },
        // Pops the returned value (Base) or the sentinel (Sub).
        Op::Store(1),
        Op::Load(0),
        Op::IConst(1),
        Op::IArith(jem_jvm::IBin::Add),
        Op::Dup,
        Op::Store(0),
        Op::IConst(9),
        Op::ICmpBr(jem_jvm::Cond::Lt, 9),
        Op::Load(1),
        Op::RetVal,
    ];
    let main = b.add_static_method(
        base,
        "main",
        MethodSig::new(vec![Type::Int], Some(Type::Int)),
        3,
        main_code,
        attrs(),
    );
    let p = b.finish();
    for which in [0, 1] {
        assert_engines_agree(
            &p,
            main,
            &[Value::Int(which)],
            u64::MAX,
            &format!("virtual missing return, which={which}"),
        );
    }
}

/// Virtual dispatch with *inconsistent* override return behaviour:
/// one override returns a value, the other does not, so the static
/// analysis cannot predict the stack effect of the call site at all.
#[test]
fn rogue_inconsistent_virtual_matches_reference() {
    let mut b = ProgramBuilder::new();
    let base = b.add_class("Base", None, &[]);
    let (m_base, slot) = b.add_virtual_method(
        base,
        "poly",
        MethodSig::new(vec![], Some(Type::Int)),
        1,
        vec![Op::IConst(5), Op::RetVal],
        attrs(),
    );
    let sub = b.add_class("Sub", Some(base), &[]);
    let (_m_sub, slot2) = b.add_virtual_method(
        sub,
        "poly",
        MethodSig::new(vec![], Some(Type::Int)),
        1,
        // Lies about its own signature *and* disagrees with Base.
        vec![Op::Ret],
        attrs(),
    );
    assert_eq!(slot, slot2, "override shares the vtable slot");
    let _ = m_base;
    // main(which): news the chosen class, calls poly in a loop.
    let main_code = vec![
        Op::IConst(0),
        Op::Store(1),
        // loop head (index 2)
        Op::Load(0), // receiver selector: 0 → Base, else Sub
        Op::BrZ(jem_jvm::Cond::Eq, 8),
        Op::New(sub),
        Op::Store(2),
        Op::Goto(10),
        Op::Nop,
        Op::New(base),
        Op::Store(2),
        // call site (index 10)
        Op::Load(2),
        Op::CallVirt { slot, argc: 0 },
        Op::Nop,
        // accumulate loop counter arithmetic so runs exist
        Op::Load(1),
        Op::IConst(1),
        Op::IArith(jem_jvm::IBin::Add),
        Op::Dup,
        Op::Store(1),
        Op::IConst(4),
        Op::ICmpBr(jem_jvm::Cond::Lt, 2),
        Op::Load(1),
        Op::RetVal,
    ];
    let main = b.add_static_method(
        base,
        "main",
        MethodSig::new(vec![Type::Int], Some(Type::Int)),
        3,
        main_code,
        attrs(),
    );
    let p = b.finish();
    for which in [0, 1] {
        assert_engines_agree(
            &p,
            main,
            &[Value::Int(which)],
            u64::MAX,
            &format!("inconsistent virtual, which={which}"),
        );
    }
}

// ---------------------------------------------------------------
// 3. Step-budget cutoffs
// ---------------------------------------------------------------

/// Both engines must stop at exactly the same instruction, with the
/// same error and bit-identical machine state, for *every* budget
/// value from 0 to past the program's full length. The fast path may
/// only take a batched run when the whole run fits in the remaining
/// budget, so each cutoff lands inside per-op execution.
#[test]
fn step_budget_cutoffs_match_reference() {
    let mut m = ModuleBuilder::new();
    m.func(
        "g",
        vec![("x", DType::Int)],
        Some(DType::Int),
        vec![ret(var("x").mul(iconst(3)).add(iconst(1)))],
    );
    m.func(
        "f",
        vec![("v0", DType::Int)],
        Some(DType::Int),
        vec![
            let_("acc", iconst(0)),
            let_("fx", fconst(0.0)),
            for_(
                "i",
                iconst(0),
                iconst(8),
                vec![
                    assign(
                        "acc",
                        var("acc")
                            .mul(iconst(31))
                            .add(call("g", vec![var("i").add(var("v0"))]))
                            .bitxor(var("i").shl(iconst(2))),
                    ),
                    assign("fx", var("fx").add(var("i").to_f().div(fconst(2.0)))),
                ],
            ),
            ret(var("acc").bitxor(var("fx").to_i())),
        ],
    );
    let p = m.compile().expect("compiles");
    verify_program(&p).expect("verifies");
    let id = p.find_method(MODULE_CLASS, "f").expect("f exists");
    let args = [Value::Int(9)];

    // Full length first, to know where "past the end" is.
    let (full_res, full_fp) = run_engine(&p, id, &args, true, u64::MAX);
    assert!(full_res.is_ok(), "reference run succeeds: {full_res:?}");
    let total = full_fp.steps;
    assert!(total > 40, "program long enough to slice ({total} steps)");

    for budget in 0..=total + 2 {
        let (slow_res, slow_fp) = run_engine(&p, id, &args, true, budget);
        let (fast_res, fast_fp) = run_engine(&p, id, &args, false, budget);
        assert_eq!(fast_res, slow_res, "result diverged at budget {budget}");
        assert_eq!(
            fast_fp, slow_fp,
            "machine state diverged at budget {budget}"
        );
        if budget < total {
            assert_eq!(
                slow_res,
                Err(VmError::StepBudgetExceeded),
                "budget {budget} should cut the run short"
            );
        }
    }
}

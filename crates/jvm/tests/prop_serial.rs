//! Property test: object serialization round-trips arbitrary object
//! graphs (the offload protocol's correctness precondition).

use jem_jvm::heap::{ArrayData, Heap, HeapObj};
use jem_jvm::serial::{deserialize, deserialize_args, serialize, serialize_args};
use jem_jvm::value::{Handle, Value};
use proptest::prelude::*;

/// Recipe for building a heap graph: a list of object constructors;
/// references may point at any *earlier or later* object (mod count),
/// so cycles and sharing occur naturally.
#[derive(Debug, Clone)]
enum Node {
    Ints(Vec<i32>),
    Floats(Vec<f64>),
    Refs(Vec<usize>), // targets mod node count; usize::MAX % n == some index, fine
    Object {
        class: u32,
        fields: Vec<Option<usize>>,
    },
}

fn node_strategy() -> impl Strategy<Value = Node> {
    prop_oneof![
        prop::collection::vec(any::<i32>(), 0..20).prop_map(Node::Ints),
        prop::collection::vec(-1e9f64..1e9, 0..12).prop_map(Node::Floats),
        prop::collection::vec(0usize..32, 0..8).prop_map(Node::Refs),
        (
            0u32..16,
            prop::collection::vec(prop::option::of(0usize..32), 0..6)
        )
            .prop_map(|(class, fields)| Node::Object { class, fields }),
    ]
}

/// Materialize the recipe in a heap; returns the handles.
fn build(heap: &mut Heap, nodes: &[Node]) -> Vec<Handle> {
    // First pass: allocate shells.
    let handles: Vec<Handle> = nodes
        .iter()
        .map(|n| match n {
            Node::Ints(v) => heap.alloc_int_array(v.len()),
            Node::Floats(v) => heap.alloc_float_array(v.len()),
            Node::Refs(v) => heap.alloc_ref_array(v.len()),
            Node::Object { class, fields } => {
                heap.alloc_object(*class, &vec![jem_jvm::Type::Ref; fields.len()])
            }
        })
        .collect();
    // Second pass: fill, wiring references (cycles welcome).
    let n = handles.len();
    for (i, node) in nodes.iter().enumerate() {
        match node {
            Node::Ints(v) => {
                for (j, &x) in v.iter().enumerate() {
                    heap.array_set(handles[i], j, Value::Int(x)).unwrap();
                }
            }
            Node::Floats(v) => {
                for (j, &x) in v.iter().enumerate() {
                    heap.array_set(handles[i], j, Value::Float(x)).unwrap();
                }
            }
            Node::Refs(v) => {
                for (j, &t) in v.iter().enumerate() {
                    heap.array_set(handles[i], j, Value::Ref(handles[t % n]))
                        .unwrap();
                }
            }
            Node::Object { fields, .. } => {
                for (j, t) in fields.iter().enumerate() {
                    let v = match t {
                        Some(t) => Value::Ref(handles[t % n]),
                        None => Value::Null,
                    };
                    heap.field_set(handles[i], j, v).unwrap();
                }
            }
        }
    }
    handles
}

/// Structural equality of two values across two heaps, cycle-safe.
fn equivalent(ha: &Heap, a: Value, hb: &Heap, b: Value, seen: &mut Vec<(u32, u32)>) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Null, Value::Null) => true,
        (Value::Ref(x), Value::Ref(y)) => {
            if seen.contains(&(x.0, y.0)) {
                return true; // assume equal on back-edges (bisimulation)
            }
            seen.push((x.0, y.0));
            match (ha.get(x).unwrap(), hb.get(y).unwrap()) {
                (HeapObj::Array(ArrayData::Int(u)), HeapObj::Array(ArrayData::Int(v))) => u == v,
                (HeapObj::Array(ArrayData::Float(u)), HeapObj::Array(ArrayData::Float(v))) => {
                    u.len() == v.len() && u.iter().zip(v).all(|(p, q)| p.to_bits() == q.to_bits())
                }
                (HeapObj::Array(ArrayData::Ref(u)), HeapObj::Array(ArrayData::Ref(v))) => {
                    u.len() == v.len()
                        && u.clone()
                            .into_iter()
                            .zip(v.clone())
                            .all(|(p, q)| equivalent(ha, p, hb, q, seen))
                }
                (
                    HeapObj::Object {
                        class: ca,
                        fields: fa,
                    },
                    HeapObj::Object {
                        class: cb,
                        fields: fb,
                    },
                ) => {
                    ca == cb
                        && fa.len() == fb.len()
                        && fa
                            .clone()
                            .into_iter()
                            .zip(fb.clone())
                            .all(|(p, q)| equivalent(ha, p, hb, q, seen))
                }
                _ => false,
            }
        }
        _ => false,
    }
}

proptest! {
    #[test]
    fn graphs_round_trip(nodes in prop::collection::vec(node_strategy(), 1..12), root in 0usize..12) {
        let mut heap = Heap::new();
        let handles = build(&mut heap, &nodes);
        let root = Value::Ref(handles[root % handles.len()]);

        let bytes = serialize(&heap, root).expect("serializes");
        let mut heap2 = Heap::new();
        let back = deserialize(&mut heap2, &bytes).expect("deserializes");

        let mut seen = Vec::new();
        prop_assert!(
            equivalent(&heap, root, &heap2, back, &mut seen),
            "graph changed across round trip"
        );

        // Determinism: serializing the reconstruction yields identical
        // bytes (canonical form).
        let bytes2 = serialize(&heap2, back).expect("serializes again");
        prop_assert_eq!(bytes, bytes2);
    }

    #[test]
    fn scalar_args_round_trip(vals in prop::collection::vec(any::<i32>(), 0..10)) {
        let heap = Heap::new();
        let args: Vec<Value> = vals.iter().map(|&v| Value::Int(v)).collect();
        let bytes = serialize_args(&heap, &args).expect("serializes");
        let mut heap2 = Heap::new();
        let back = deserialize_args(&mut heap2, &bytes).expect("deserializes");
        prop_assert_eq!(args, back);
    }

    #[test]
    fn truncation_never_panics(nodes in prop::collection::vec(node_strategy(), 1..6), cut in 0usize..200) {
        let mut heap = Heap::new();
        let handles = build(&mut heap, &nodes);
        let bytes = serialize(&heap, Value::Ref(handles[0])).expect("serializes");
        let cut = cut.min(bytes.len());
        let mut heap2 = Heap::new();
        // Must return an error or a value — never panic.
        let _ = deserialize(&mut heap2, &bytes[..cut]);
    }
}

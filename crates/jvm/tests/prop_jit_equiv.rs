//! Property test: for randomly generated DSL programs, JIT-compiled
//! code at every optimization level computes exactly what the
//! interpreter computes — including the error (division by zero) when
//! there is one. This is the central correctness obligation of the
//! whole JIT: "compilation must never change observable results".

use jem_jvm::dsl::*;
use jem_jvm::verify::verify_program;
use jem_jvm::{compile, MethodId, OptLevel, Value, Vm};
use proptest::prelude::*;
use std::rc::Rc;

/// A tiny AST we generate and then translate into the DSL. Locals
/// v0..v2 are int parameters; `arr` is a 16-element scratch array.
#[derive(Debug, Clone)]
enum E {
    Const(i32),
    Var(u8),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Rem(Box<E>, Box<E>),
    Shl(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    // arr[e & 15]
    Load(Box<E>),
}

#[derive(Debug, Clone)]
enum S {
    Assign(u8, E),
    Store(E, E), // arr[e1 & 15] = e2
    If(E, E, Vec<S>, Vec<S>),
    Loop(u8, Vec<S>), // bounded 0..k loop over a fresh counter
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![(-64i32..64).prop_map(E::Const), (0u8..3).prop_map(E::Var),];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Div(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Rem(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Shl(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| E::Load(Box::new(a))),
        ]
    })
}

fn stmt_strategy() -> impl Strategy<Value = S> {
    let base = prop_oneof![
        ((0u8..3), expr_strategy()).prop_map(|(v, e)| S::Assign(v, e)),
        (expr_strategy(), expr_strategy()).prop_map(|(i, v)| S::Store(i, v)),
    ];
    base.prop_recursive(2, 16, 4, |inner| {
        let stmts = prop::collection::vec(inner, 1..4);
        prop_oneof![
            (
                expr_strategy(),
                expr_strategy(),
                stmts.clone(),
                stmts.clone()
            )
                .prop_map(|(a, b, t, e)| S::If(a, b, t, e)),
            ((1u8..4), stmts).prop_map(|(k, b)| S::Loop(k, b)),
        ]
    })
}

fn to_expr(e: &E) -> Expr {
    match e {
        E::Const(c) => iconst(*c),
        E::Var(v) => var(&format!("v{v}")),
        E::Add(a, b) => to_expr(a).add(to_expr(b)),
        E::Sub(a, b) => to_expr(a).sub(to_expr(b)),
        E::Mul(a, b) => to_expr(a).mul(to_expr(b)),
        E::Div(a, b) => to_expr(a).div(to_expr(b)),
        E::Rem(a, b) => to_expr(a).rem(to_expr(b)),
        E::Shl(a, b) => to_expr(a).shl(to_expr(b)),
        E::Xor(a, b) => to_expr(a).bitxor(to_expr(b)),
        E::Load(i) => var("arr").index(to_expr(i).bitand(iconst(15))),
    }
}

fn to_stmts(stmts: &[S], fresh: &mut u32) -> Vec<Stmt> {
    stmts
        .iter()
        .map(|s| match s {
            S::Assign(v, e) => assign(&format!("v{v}"), to_expr(e)),
            S::Store(i, v) => set_index(var("arr"), to_expr(i).bitand(iconst(15)), to_expr(v)),
            S::If(a, b, t, e) => {
                let mut f1 = *fresh;
                let body_t = to_stmts(t, &mut f1);
                let body_e = to_stmts(e, &mut f1);
                *fresh = f1;
                if_else(to_expr(a).lt(to_expr(b)), body_t, body_e)
            }
            S::Loop(k, b) => {
                let name = format!("i{fresh}");
                *fresh += 1;
                let body = to_stmts(b, fresh);
                for_(&name, iconst(0), iconst(i32::from(*k)), body)
            }
        })
        .collect()
}

fn build(stmts: &[S]) -> (jem_jvm::Program, MethodId) {
    let mut m = ModuleBuilder::new();
    let mut fresh = 0;
    let mut body = vec![let_("arr", new_arr(DType::Int, iconst(16)))];
    // Seed the array deterministically from the parameters.
    body.push(for_(
        "s",
        iconst(0),
        iconst(16),
        vec![set_index(
            var("arr"),
            var("s"),
            var("v0").add(var("s").mul(iconst(7))),
        )],
    ));
    body.extend(to_stmts(stmts, &mut fresh));
    // Fold the state into one observable value.
    let mut acc = var("v0").bitxor(var("v1")).bitxor(var("v2"));
    for i in 0..16 {
        let prev = acc.clone();
        acc = acc
            .mul(iconst(31))
            .add(var("arr").index(iconst(i)))
            .bitxor(prev.shr(iconst(7)));
    }
    body.push(ret(acc));
    m.func(
        "f",
        vec![("v0", DType::Int), ("v1", DType::Int), ("v2", DType::Int)],
        Some(DType::Int),
        body,
    );
    let p = m.compile().expect("generated programs compile");
    let id = p.find_method(MODULE_CLASS, "f").expect("f exists");
    (p, id)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10 })]

    #[test]
    fn jit_levels_match_interpreter(
        stmts in prop::collection::vec(stmt_strategy(), 1..5),
        a in -1000i32..1000,
        b in -1000i32..1000,
        c in -1000i32..1000,
    ) {
        let (program, id) = build(&stmts);
        verify_program(&program).expect("generated programs verify");

        let args = vec![Value::Int(a), Value::Int(b), Value::Int(c)];

        let mut interp = Vm::client(&program);
        interp.options.step_budget = 50_000_000;
        let expected = interp.invoke(id, args.clone());

        for level in OptLevel::ALL {
            let mut vm = Vm::client(&program);
            vm.options.step_budget = 50_000_000;
            let compiled = compile(&program, id, level);
            compiled.code.func.validate().expect("valid NIR");
            vm.install_native(id, Rc::new(compiled.code));
            let got = vm.invoke(id, args.clone());
            prop_assert_eq!(
                &got, &expected,
                "level {} diverged from interpreter (stmts: {:?})", level, stmts
            );
        }
    }
}

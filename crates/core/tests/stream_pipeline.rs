//! Integration tests for the streaming trace pipeline (PR 5's
//! acceptance criteria, exercised end-to-end on real simulator runs):
//!
//! * the `.jtb` binary round-trip is event-exact and energy-exact —
//!   as a property over seeds and fault severities — and the format is
//!   far smaller than the Chrome JSON export of the same run;
//! * `jem-query` aggregates reconcile *bit-exactly* with the
//!   profiler's per-method × per-mode cells on the same trace;
//! * the online monitors stay silent on clean paper-scenario runs,
//!   provably fire the retry-storm and breaker-flap watchdogs on a
//!   seeded fault run, and never perturb the simulation — monitored
//!   and unmonitored runs are bit-identical in results and (alert-free
//!   cases) in the trace itself.

use std::sync::OnceLock;

use jem_core::{
    run_scenario_traced, scenario_result_to_json, Profile, ResilienceConfig, ScenarioResult,
    Strategy, Workload,
};
use jem_jvm::dsl::*;
use jem_jvm::{Heap, MethodAttrs, MethodId, Program, Value};
use jem_obs::monitor::{Monitor, MonitorConfig, MonitorSink};
use jem_obs::query::{GroupKey, Query, QueryEngine};
use jem_obs::wire::{jtb_bytes, load_trace_bytes, JtbIndex};
use jem_obs::{
    chrome_trace_truncated, RingSink, TraceEvent, TraceEventKind, TraceProfile, TraceShard,
};
use jem_sim::{Scenario, Situation};
use proptest::prelude::*;
use rand::rngs::SmallRng;

/// The synthetic quadratic kernel from `profile_diff.rs`: enough
/// cycles to make modes distinguishable, cheap to run per-seed.
struct Kernel {
    program: Program,
    method: MethodId,
}

impl Kernel {
    fn new() -> Kernel {
        let mut m = ModuleBuilder::new();
        m.func_with_attrs(
            "kernel",
            vec![("n", DType::Int)],
            Some(DType::Int),
            vec![
                let_("acc", iconst(0)),
                for_(
                    "i",
                    iconst(0),
                    var("n"),
                    vec![for_(
                        "j",
                        iconst(0),
                        var("n"),
                        vec![assign(
                            "acc",
                            var("acc")
                                .add(var("i").mul(var("j")))
                                .bitxor(var("acc").shr(iconst(3))),
                        )],
                    )],
                ),
                ret(var("acc")),
            ],
            MethodAttrs {
                potential: true,
                size_param: Some(0),
                ..Default::default()
            },
        );
        let program = m.compile().unwrap();
        let method = program.find_method(MODULE_CLASS, "kernel").unwrap();
        Kernel { program, method }
    }
}

impl Workload for Kernel {
    fn name(&self) -> &str {
        "kernel"
    }
    fn description(&self) -> &str {
        "synthetic quadratic kernel"
    }
    fn program(&self) -> &Program {
        &self.program
    }
    fn potential_method(&self) -> MethodId {
        self.method
    }
    fn sizes(&self) -> Vec<u32> {
        vec![16, 32, 64, 128]
    }
    fn size_meaning(&self) -> &str {
        "loop bound"
    }
    fn make_args(&self, _heap: &mut Heap, size: u32, _rng: &mut SmallRng) -> Vec<Value> {
        vec![Value::Int(size as i32)]
    }
}

fn profile() -> &'static Profile {
    static PROFILE: OnceLock<Profile> = OnceLock::new();
    PROFILE.get_or_init(|| Profile::build(&Kernel::new(), 1))
}

fn run_traced(scenario: &Scenario, strategy: Strategy) -> (ScenarioResult, Vec<TraceEvent>) {
    let w = Kernel::new();
    let mut ring = RingSink::new(1_000_000);
    let result = run_scenario_traced(
        &w,
        profile(),
        scenario,
        strategy,
        &ResilienceConfig::default(),
        &mut ring,
    )
    .expect("scenario run failed");
    assert_eq!(ring.dropped(), 0, "ring must retain the full run");
    (result, ring.into_events())
}

fn degraded_scenario(seed: u64, runs: usize, loss_bad: f64) -> Scenario {
    Scenario::paper_degraded(
        Situation::GoodDominant,
        &Kernel::new().sizes(),
        seed,
        loss_bad,
    )
    .with_runs(runs)
}

fn clean_scenario(seed: u64, runs: usize) -> Scenario {
    Scenario::paper(Situation::GoodDominant, &Kernel::new().sizes(), seed).with_runs(runs)
}

// ---------------------------------------------------------------
// Binary round-trip
// ---------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// encode → decode is event-exact (every field, every float bit)
    /// over seeds and fault severities; the footer's energy partial
    /// sums telescope to the run's delta sum exactly.
    #[test]
    fn jtb_round_trip_is_event_exact(
        seed in 0u64..1000,
        loss_idx in 0usize..3,
    ) {
        let loss_bad = [0.0f64, 0.5, 0.9][loss_idx];
        let scenario = degraded_scenario(seed, 40, loss_bad);
        let (_, events) = run_traced(&scenario, Strategy::AdaptiveAdaptive);
        let shard = TraceShard::new("client", events.clone());
        let bytes = jtb_bytes(std::slice::from_ref(&shard));
        let loaded = load_trace_bytes(&bytes).expect("jtb loads");
        prop_assert_eq!(loaded.dropped, 0);
        prop_assert_eq!(loaded.shards.len(), 1);
        prop_assert_eq!(&loaded.shards[0].events, &events);

        let index = JtbIndex::read(&bytes).expect("footer parses");
        prop_assert_eq!(index.events, events.len() as u64);
        let mut sum = jem_energy::EnergyBreakdown::new();
        for ev in &events {
            sum += ev.delta;
        }
        let footer = index.total_energy();
        for (c, e) in footer.iter() {
            prop_assert_eq!(e.nanojoules(), sum[c].nanojoules(), "component {}", c.name());
        }
    }
}

/// The compact format is what makes full-grid streaming viable: on a
/// real run, `.jtb` must undercut the Chrome JSON export by at least
/// 5× (the acceptance floor; in practice it is far smaller).
#[test]
fn jtb_is_at_least_5x_smaller_than_chrome_json() {
    let scenario = degraded_scenario(3, 80, 0.5);
    let (_, events) = run_traced(&scenario, Strategy::AdaptiveAdaptive);
    let json = format!("{}\n", chrome_trace_truncated(&events, 0).render());
    let jtb = jtb_bytes(&[TraceShard::new("client", events)]);
    assert!(
        jtb.len() * 5 <= json.len(),
        "jtb {} bytes vs chrome json {} bytes",
        jtb.len(),
        json.len()
    );
}

// ---------------------------------------------------------------
// Query ↔ profile reconciliation
// ---------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 6 })]

    /// An unfiltered `--group-by method,mode` query is the profiler's
    /// table — same fold, same merge order, so the float sums are
    /// bit-identical, not merely close.
    #[test]
    fn query_group_by_reconciles_bit_exactly_with_profile(
        seed in 0u64..1000,
        loss_idx in 0usize..3,
    ) {
        let loss_bad = [0.0f64, 0.5, 0.9][loss_idx];
        let scenario = degraded_scenario(seed, 40, loss_bad);
        let (_, events) = run_traced(&scenario, Strategy::AdaptiveAdaptive);

        let p = TraceProfile::fold(&events);
        let mut engine = QueryEngine::new(Query {
            group_by: vec![GroupKey::Method, GroupKey::Mode],
            ..Query::default()
        });
        for ev in &events {
            engine.push(ev.clone());
        }
        let result = engine.finish();

        let rows = p.method_mode_rows();
        prop_assert_eq!(result.rows.len(), rows.len());
        for want in &rows {
            let got = result
                .rows
                .iter()
                .find(|r| r.key[0] == want.method && r.key[1] == want.mode)
                .unwrap_or_else(|| panic!("query lost group {}/{}", want.method, want.mode));
            prop_assert_eq!(got.stats.count, want.stats.events);
            prop_assert_eq!(got.stats.time.nanos(), want.stats.time.nanos());
            for (c, e) in want.stats.energy.iter() {
                // Bitwise equality — the reconciliation guarantee.
                prop_assert_eq!(
                    got.stats.energy[c].nanojoules().to_bits(),
                    e.nanojoules().to_bits(),
                    "component {} of {}/{}", c.name(), want.method, want.mode
                );
            }
        }
    }
}

// ---------------------------------------------------------------
// Online monitors
// ---------------------------------------------------------------

/// Clean paper-scenario runs satisfy every invariant at default
/// thresholds: zero alerts, across seeds and strategies.
#[test]
fn monitors_stay_silent_on_clean_runs() {
    for seed in [2u64, 23, 101, 407, 733] {
        for strategy in [Strategy::AdaptiveAdaptive, Strategy::AdaptiveLocal] {
            let scenario = clean_scenario(seed, 40);
            let (_, events) = run_traced(&scenario, strategy);
            let mut m = Monitor::new(MonitorConfig::default());
            for ev in &events {
                let alerts = m.observe(ev);
                assert!(alerts.is_empty(), "seed {seed} {strategy:?}: {alerts:?}");
            }
            let report = m.finish();
            assert!(report.healthy(), "seed {seed} {strategy:?}: {report:?}");
        }
    }
}

/// Seeded fault runs provably trip the watchdogs once their windows
/// are tightened to the injected fault density. Two runs, because the
/// pathologies are mutually suppressing: with the breaker *on*, flap
/// is visible but the open breaker forbids retries; with the breaker
/// *off* and a generous retry budget, the retry storm rages instead.
#[test]
fn fault_run_fires_retry_storm_and_breaker_flap() {
    let watchdogs = MonitorConfig {
        retry_window: 60,
        retry_max: 2,
        flap_window: 120,
        flap_max: 1,
        ..MonitorConfig::default()
    };

    // Breaker-flap: AA under the default policy keeps probing the
    // degraded channel, cycling closed → open → half-open.
    let scenario = degraded_scenario(7, 120, 0.9);
    let (_, events) = run_traced(&scenario, Strategy::AdaptiveAdaptive);
    let transitions = events
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::BreakerTransition { .. }))
        .count();
    assert!(transitions > 0, "scenario must trip the breaker");
    let mut m = Monitor::new(watchdogs.clone());
    for ev in &events {
        m.observe(ev);
    }
    let report = m.finish();
    assert!(
        report.counts.get("breaker-flap").copied().unwrap_or(0) > 0,
        "breaker-flap must fire ({} transitions): {report:?}",
        transitions
    );
    // The structural invariants still hold even on the degraded run.
    assert_eq!(report.counts.get("conservation"), None, "{report:?}");
    assert_eq!(report.counts.get("negative-delta"), None, "{report:?}");

    // Retry-storm: static Remote with the breaker disabled and a
    // deep retry budget keeps re-attempting through the bursts.
    let w = Kernel::new();
    let mut ring = RingSink::new(1_000_000);
    let storm_cfg = ResilienceConfig {
        retry: jem_core::RetryPolicy {
            max_retries: 4,
            energy_budget: jem_energy::Energy::from_millijoules(100_000.0),
            ..Default::default()
        },
        breaker: jem_core::BreakerPolicy {
            enabled: false,
            ..Default::default()
        },
    };
    run_scenario_traced(
        &w,
        profile(),
        &scenario,
        Strategy::Remote,
        &storm_cfg,
        &mut ring,
    )
    .expect("scenario run failed");
    let events = ring.into_events();
    let retries = events
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::RetryAttempt { .. }))
        .count();
    assert!(retries > 2, "scenario must inject retries ({retries})");
    let mut m = Monitor::new(watchdogs);
    for ev in &events {
        m.observe(ev);
    }
    let report = m.finish();
    assert!(
        report.counts.get("retry-storm").copied().unwrap_or(0) > 0,
        "retry-storm must fire ({} retries): {report:?}",
        retries
    );
    assert_eq!(report.counts.get("conservation"), None, "{report:?}");
    assert_eq!(report.counts.get("negative-delta"), None, "{report:?}");
}

/// Monitoring must never perturb the simulation: a monitored run's
/// results are bit-identical to the unmonitored run at the same seed,
/// and on an alert-free run the exported trace is byte-identical too.
#[test]
fn monitored_run_is_bit_identical_to_unmonitored() {
    // Clean run: identical results AND identical trace.
    let scenario = clean_scenario(42, 40);
    let (plain_result, plain_events) = run_traced(&scenario, Strategy::AdaptiveAdaptive);

    let w = Kernel::new();
    let mut ring = RingSink::new(1_000_000);
    let mut monitored = MonitorSink::new(&mut ring, MonitorConfig::default());
    let monitored_result = run_scenario_traced(
        &w,
        profile(),
        &scenario,
        Strategy::AdaptiveAdaptive,
        &ResilienceConfig::default(),
        &mut monitored,
    )
    .expect("scenario run failed");
    let report = monitored.finish();
    assert!(report.healthy(), "{report:?}");

    let plain_doc = scenario_result_to_json(&plain_result, true).render();
    let monitored_doc = scenario_result_to_json(&monitored_result, true).render();
    assert_eq!(plain_doc, monitored_doc, "results must be bit-identical");
    assert_eq!(
        plain_events,
        ring.into_events(),
        "alert-free monitored trace must be byte-identical"
    );

    // Degraded run with alert-tight thresholds: results still
    // bit-identical; the trace gains only zero-delta alert events.
    let scenario = degraded_scenario(7, 60, 0.9);
    let (plain_result, plain_events) = run_traced(&scenario, Strategy::AdaptiveAdaptive);
    let mut ring = RingSink::new(1_000_000);
    let mut monitored = MonitorSink::new(
        &mut ring,
        MonitorConfig {
            retry_window: 60,
            retry_max: 2,
            flap_window: 120,
            flap_max: 1,
            ..MonitorConfig::default()
        },
    );
    let monitored_result = run_scenario_traced(
        &w,
        profile(),
        &scenario,
        Strategy::AdaptiveAdaptive,
        &ResilienceConfig::default(),
        &mut monitored,
    )
    .expect("scenario run failed");
    let report = monitored.finish();
    assert!(!report.healthy(), "tight thresholds must fire here");

    let plain_doc = scenario_result_to_json(&plain_result, true).render();
    let monitored_doc = scenario_result_to_json(&monitored_result, true).render();
    assert_eq!(
        plain_doc, monitored_doc,
        "alerts must not leak into results"
    );

    let got = ring.into_events();
    let alerts = got
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::Alert { .. }))
        .count() as u64;
    assert_eq!(alerts, report.total_alerts);
    let stripped: Vec<TraceEvent> = got
        .into_iter()
        .filter(|e| !matches!(e.kind, TraceEventKind::Alert { .. }))
        .enumerate()
        .map(|(i, mut e)| {
            // Undo the post-alert seq shift; everything else must
            // match the unmonitored event stream exactly.
            e.seq = i as u64;
            e
        })
        .collect();
    assert_eq!(stripped, plain_events);
}

//! Resume determinism for the checkpoint subsystem: a run that is
//! snapshotted mid-flight and continued from the snapshot must be
//! **bit-identical** to one that ran straight through — same result
//! bytes, same invocation reports, and (when traced to a `.jtb`
//! stream) the same trace bytes. Exercised over seeds × fault
//! severities × checkpoint cadences × strategies.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use jem_core::ckpt::{run_scenario_ckpt, RunSnapshot};
use jem_core::{encode_result, Profile, ResilienceConfig, Strategy, Workload};
use jem_jvm::dsl::*;
use jem_jvm::{set_slow_interp_default, Heap, MethodAttrs, MethodId, Program, Value, Vm};
use jem_obs::FileSink;
use jem_sim::{Scenario, Situation};
use proptest::prelude::*;
use rand::rngs::SmallRng;

/// The synthetic quadratic kernel from `runtime_integration.rs`:
/// enough cycles to make modes distinguishable, cheap to profile.
struct Kernel {
    program: Program,
    method: MethodId,
}

impl Kernel {
    fn new() -> Kernel {
        let mut m = ModuleBuilder::new();
        m.func_with_attrs(
            "kernel",
            vec![("n", DType::Int)],
            Some(DType::Int),
            vec![
                let_("acc", iconst(0)),
                for_(
                    "i",
                    iconst(0),
                    var("n"),
                    vec![for_(
                        "j",
                        iconst(0),
                        var("n"),
                        vec![assign(
                            "acc",
                            var("acc")
                                .add(var("i").mul(var("j")))
                                .bitxor(var("acc").shr(iconst(3))),
                        )],
                    )],
                ),
                ret(var("acc")),
            ],
            MethodAttrs {
                potential: true,
                size_param: Some(0),
                ..Default::default()
            },
        );
        let program = m.compile().unwrap();
        let method = program.find_method(MODULE_CLASS, "kernel").unwrap();
        Kernel { program, method }
    }
}

impl Workload for Kernel {
    fn name(&self) -> &str {
        "kernel"
    }
    fn description(&self) -> &str {
        "synthetic quadratic kernel"
    }
    fn program(&self) -> &Program {
        &self.program
    }
    fn potential_method(&self) -> MethodId {
        self.method
    }
    fn sizes(&self) -> Vec<u32> {
        vec![16, 32, 64, 128]
    }
    fn size_meaning(&self) -> &str {
        "loop bound"
    }
    fn make_args(&self, _heap: &mut Heap, size: u32, _rng: &mut SmallRng) -> Vec<Value> {
        vec![Value::Int(size as i32)]
    }
}

/// The profile is deterministic and expensive to build; share one
/// across all property cases.
fn profile() -> &'static Profile {
    static PROFILE: OnceLock<Profile> = OnceLock::new();
    PROFILE.get_or_init(|| Profile::build(&Kernel::new(), 1))
}

/// A fresh collision-free temp path per traced case.
fn temp_path(tag: &str) -> String {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir()
        .join(format!("jem-ckpt-{}-{tag}-{n}.jtb", std::process::id()))
        .display()
        .to_string()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10 })]

    /// Untraced: every mid-run snapshot round-trips through its byte
    /// encoding, and continuing from *any* of them reproduces the
    /// straight-through result bit-for-bit — across fault severities
    /// (retry chains, breaker trips), cadences and strategies.
    #[test]
    fn resume_from_any_boundary_is_bit_identical(
        seed in 0u64..5000,
        loss_bad in 0.0f64..0.95,
        every in 1usize..7,
        sidx in 0usize..7,
    ) {
        let w = Kernel::new();
        let strategy = Strategy::ALL[sidx];
        let runs = 18;
        let scenario =
            Scenario::paper_degraded(Situation::Uniform, &w.sizes(), seed, loss_bad)
                .with_runs(runs);
        let policy = ResilienceConfig::default();
        let straight =
            run_scenario_ckpt(&w, profile(), &scenario, strategy, &policy, None, None, 0, None)
                .expect("straight run");
        let golden = encode_result(&straight);

        let mut snaps: Vec<Vec<u8>> = Vec::new();
        let mut hook = |s: &RunSnapshot, _writer: Option<Vec<u8>>| snaps.push(s.encode());
        let ckpted = run_scenario_ckpt(
            &w, profile(), &scenario, strategy, &policy, None, None, every, Some(&mut hook),
        )
        .expect("checkpointed run");
        // Capturing is read-only: the checkpointed run itself is
        // unperturbed, and a boundary lands at every cadence multiple
        // strictly before the end.
        prop_assert_eq!(encode_result(&ckpted), golden.clone());
        prop_assert_eq!(snaps.len(), (runs - 1) / every);

        for (i, bytes) in snaps.iter().enumerate() {
            let snap = RunSnapshot::decode(bytes).expect("snapshot decodes");
            prop_assert_eq!(&snap.encode(), bytes, "snapshot {i} round-trip");
            prop_assert_eq!(snap.invocation, (i + 1) * every);
            let resumed = run_scenario_ckpt(
                &w, profile(), &scenario, strategy, &policy, None, Some(&snap), 0, None,
            )
            .expect("resumed run");
            prop_assert_eq!(
                encode_result(&resumed),
                golden.clone(),
                "resume from boundary {i} diverged"
            );
        }
    }

    /// Traced: a `.jtb` stream interrupted at a checkpoint boundary
    /// and resumed through [`FileSink::resume`] finishes byte-equal
    /// to the uninterrupted stream (the crash-safety contract the
    /// chaos harness checks end-to-end on the real bins).
    #[test]
    fn traced_resume_reproduces_trace_bytes(
        seed in 0u64..2000,
        loss_bad in 0.0f64..0.9,
        every in 2usize..6,
    ) {
        let w = Kernel::new();
        let strategy = Strategy::AdaptiveAdaptive;
        let runs = 14;
        let scenario =
            Scenario::paper_degraded(Situation::GoodDominant, &w.sizes(), seed, loss_bad)
                .with_runs(runs);
        let policy = ResilienceConfig::default();

        let golden_path = temp_path("golden");
        let mut golden_sink = FileSink::create(&golden_path).expect("create golden");
        run_scenario_ckpt(
            &w, profile(), &scenario, strategy, &policy,
            Some(&mut golden_sink), None, 0, None,
        )
        .expect("golden run");
        golden_sink.finish().expect("finish golden");
        let golden_bytes = std::fs::read(&golden_path).expect("read golden");

        // First leg: checkpoint at every boundary, keep the last
        // (snapshot, writer-state) pair, then "crash" by dropping the
        // sink without finishing — exactly what SIGKILL leaves behind,
        // plus whatever buffered bytes never made it out.
        let chaos_path = temp_path("chaos");
        let mut last: Option<(Vec<u8>, Vec<u8>)> = None;
        {
            let mut sink = FileSink::create(&chaos_path).expect("create chaos");
            let mut hook = |s: &RunSnapshot, writer: Option<Vec<u8>>| {
                last = Some((s.encode(), writer.expect("FileSink checkpoints")));
            };
            run_scenario_ckpt(
                &w, profile(), &scenario, strategy, &policy,
                Some(&mut sink), None, every, Some(&mut hook),
            )
            .expect("first leg");
            drop(sink);
        }
        let (snap_bytes, writer_state) = last.expect("at least one boundary");
        let snap = RunSnapshot::decode(&snap_bytes).expect("snapshot decodes");

        // Second leg: reopen the torn stream at the checkpointed
        // offset and run the tail.
        let mut resumed_sink =
            FileSink::resume(&chaos_path, &writer_state).expect("resume sink");
        run_scenario_ckpt(
            &w, profile(), &scenario, strategy, &policy,
            Some(&mut resumed_sink), Some(&snap), 0, None,
        )
        .expect("second leg");
        resumed_sink.finish().expect("finish chaos");
        let chaos_bytes = std::fs::read(&chaos_path).expect("read chaos");

        prop_assert_eq!(golden_bytes, chaos_bytes, "trace bytes diverged after resume");
        let _ = std::fs::remove_file(&golden_path);
        let _ = std::fs::remove_file(&chaos_path);
    }
}

/// The fast-path interpreter's pre-decoded method forms, batched-run
/// metadata and per-handler charge plans are *derived* artifacts —
/// never serialized into a [`RunSnapshot`]. A resumed VM therefore
/// starts with those caches cold while a straight-through VM has them
/// warm. This must be invisible: a second invocation on a freshly
/// rebuilt (cold-cache) VM with imported machine state must leave the
/// machine bit-identical to the warm VM that ran both legs — under
/// both interpreter engines.
#[test]
fn cold_decode_cache_resume_is_bit_identical() {
    let w = Kernel::new();
    let args = vec![Value::Int(48)];

    for slow in [false, true] {
        // Warm: one VM runs both invocations, decode caches persist.
        let mut warm = Vm::client(&w.program);
        warm.options.slow_interp = slow;
        let w1 = warm.invoke(w.method, args.clone()).expect("warm leg 1");
        let w2 = warm.invoke(w.method, args.clone()).expect("warm leg 2");
        assert_eq!(w1, w2, "deterministic kernel (slow={slow})");

        // Cold: snapshot the machine after leg 1, rebuild the VM from
        // scratch (empty decode/run/cost caches), import, run leg 2.
        let mut first = Vm::client(&w.program);
        first.options.slow_interp = slow;
        let f1 = first.invoke(w.method, args.clone()).expect("first leg");
        assert_eq!(f1, w1, "first leg result (slow={slow})");
        let mid = first.machine.export_state();

        let mut cold = Vm::client(&w.program);
        cold.options.slow_interp = slow;
        cold.machine.import_state(&mid);
        cold.steps = first.steps;
        let c2 = cold.invoke(w.method, args.clone()).expect("cold leg 2");
        assert_eq!(c2, w2, "cold resume result (slow={slow})");
        assert_eq!(cold.steps, warm.steps, "step counts (slow={slow})");
        assert_eq!(
            cold.machine.export_state(),
            warm.machine.export_state(),
            "machine state after cold-cache resume (slow={slow})"
        );
        assert_eq!(
            cold.machine.energy().joules().to_bits(),
            warm.machine.energy().joules().to_bits(),
            "energy bits after cold-cache resume (slow={slow})"
        );
    }
}

/// Full-stack engine differential: an entire traced, checkpointed and
/// resumed scenario executed on the reference per-op interpreter
/// produces byte-identical `.jtb` trace streams and result encodings
/// to the pre-decoded fast path. (Scenario layers build their own
/// `VmOptions`, so the engine is selected through the process-wide
/// default — the same switch the benches' `--slow-interp` flag uses.)
#[test]
fn traced_scenario_engine_differential() {
    let w = Kernel::new();
    let strategy = Strategy::AdaptiveAdaptive;
    let scenario =
        Scenario::paper_degraded(Situation::Uniform, &w.sizes(), 1234, 0.35).with_runs(12);
    let policy = ResilienceConfig::default();

    let mut outputs: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    for slow in [false, true] {
        set_slow_interp_default(slow);
        let path = temp_path(if slow { "eng-slow" } else { "eng-fast" });
        let mut sink = FileSink::create(&path).expect("create sink");
        let res = run_scenario_ckpt(
            &w,
            profile(),
            &scenario,
            strategy,
            &policy,
            Some(&mut sink),
            None,
            0,
            None,
        )
        .expect("scenario run");
        sink.finish().expect("finish sink");
        let bytes = std::fs::read(&path).expect("read trace");
        let _ = std::fs::remove_file(&path);
        outputs.push((encode_result(&res), bytes));
    }
    set_slow_interp_default(false);

    let (fast_res, fast_trace) = &outputs[0];
    let (slow_res, slow_trace) = &outputs[1];
    assert_eq!(
        fast_res, slow_res,
        "result encodings diverged between engines"
    );
    assert_eq!(
        fast_trace, slow_trace,
        "trace streams diverged between engines"
    );
}

//! Integration tests for the `.jts` sim-time-series timeline layer
//! (this PR's acceptance criteria, exercised on real simulator runs):
//!
//! * sampling is a pure observer — a run with a live [`TimelineSink`]
//!   produces bit-identical results to the same seed without one, as
//!   a property over seeds and fault severities;
//! * the energy-rate series integrate back to the run's final
//!   [`EnergyBreakdown`] *bit-exactly* (the cumulative columns
//!   telescope — no quadrature error, no tolerance);
//! * windowed sums over the `energy.<c>.trace_nj` columns reconcile
//!   bit-exactly with folding the same window of the run's trace
//!   events, because both are the identical sequence of f64 adds;
//! * checkpoint/resume of a mid-run timeline reproduces the
//!   uninterrupted `.jts` byte-for-byte, even with post-checkpoint
//!   garbage appended (crash simulation);
//! * the series-driven energy-rate-anomaly watchdog fires on a seeded
//!   fault run once its window is tightened to the injected fault
//!   density, and stays quiet at defaults on clean runs.

use std::sync::OnceLock;

use jem_core::{
    run_scenario_traced, scenario_result_to_json, Profile, ResilienceConfig, ScenarioResult,
    Strategy, Workload,
};
use jem_energy::Component;
use jem_jvm::dsl::*;
use jem_jvm::{Heap, MethodAttrs, MethodId, Program, Value};
use jem_obs::monitor::{Monitor, MonitorConfig};
use jem_obs::{validate_jts, NullSink, RingSink, Timeline, TimelineSink, TraceEvent, TraceSink};
use jem_sim::{Scenario, Situation};
use proptest::prelude::*;
use rand::rngs::SmallRng;

/// The synthetic quadratic kernel from `stream_pipeline.rs`: enough
/// cycles to make modes distinguishable, cheap to run per-seed.
struct Kernel {
    program: Program,
    method: MethodId,
}

impl Kernel {
    fn new() -> Kernel {
        let mut m = ModuleBuilder::new();
        m.func_with_attrs(
            "kernel",
            vec![("n", DType::Int)],
            Some(DType::Int),
            vec![
                let_("acc", iconst(0)),
                for_(
                    "i",
                    iconst(0),
                    var("n"),
                    vec![for_(
                        "j",
                        iconst(0),
                        var("n"),
                        vec![assign(
                            "acc",
                            var("acc")
                                .add(var("i").mul(var("j")))
                                .bitxor(var("acc").shr(iconst(3))),
                        )],
                    )],
                ),
                ret(var("acc")),
            ],
            MethodAttrs {
                potential: true,
                size_param: Some(0),
                ..Default::default()
            },
        );
        let program = m.compile().unwrap();
        let method = program.find_method(MODULE_CLASS, "kernel").unwrap();
        Kernel { program, method }
    }
}

impl Workload for Kernel {
    fn name(&self) -> &str {
        "kernel"
    }
    fn description(&self) -> &str {
        "synthetic quadratic kernel"
    }
    fn program(&self) -> &Program {
        &self.program
    }
    fn potential_method(&self) -> MethodId {
        self.method
    }
    fn sizes(&self) -> Vec<u32> {
        vec![16, 32, 64, 128]
    }
    fn size_meaning(&self) -> &str {
        "loop bound"
    }
    fn make_args(&self, _heap: &mut Heap, size: u32, _rng: &mut SmallRng) -> Vec<Value> {
        vec![Value::Int(size as i32)]
    }
}

fn profile() -> &'static Profile {
    static PROFILE: OnceLock<Profile> = OnceLock::new();
    PROFILE.get_or_init(|| Profile::build(&Kernel::new(), 1))
}

fn degraded_scenario(seed: u64, runs: usize, loss_bad: f64) -> Scenario {
    Scenario::paper_degraded(
        Situation::GoodDominant,
        &Kernel::new().sizes(),
        seed,
        loss_bad,
    )
    .with_runs(runs)
}

/// A per-test scratch path under the system temp dir.
fn jts_path(name: &str) -> String {
    let dir = std::env::temp_dir().join("jem-core-timeline-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_str().unwrap().to_string()
}

/// 1 sim-ms — the default bench cadence.
const EVERY_NS: f64 = 1e6;

fn run_with_sink(
    scenario: &Scenario,
    strategy: Strategy,
    sink: &mut dyn TraceSink,
) -> ScenarioResult {
    run_scenario_traced(
        &Kernel::new(),
        profile(),
        scenario,
        strategy,
        &ResilienceConfig::default(),
        sink,
    )
    .expect("scenario run failed")
}

/// Replay collected events into a timeline, reproducing the tracer's
/// cumulative ledger (the same sequence of f64 adds, so bit-equal).
fn drive(sink: &mut TimelineSink, events: &[TraceEvent]) {
    let mut ledger = jem_energy::EnergyBreakdown::new();
    for ev in events {
        ledger += ev.delta;
        sink.observe(ev, Some(&ledger));
    }
}

// ---------------------------------------------------------------
// Zero RNG impact + exact integral reconciliation
// ---------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 6 })]

    /// A run sampled by a live `.jts` writer is bit-identical to the
    /// same seed without one, and the energy-rate series integrate
    /// back to the run's final breakdown bit-for-bit.
    #[test]
    fn timeline_run_is_bit_identical_and_integral_exact(
        seed in 0u64..1000,
        loss_idx in 0usize..3,
    ) {
        let loss_bad = [0.0f64, 0.5, 0.9][loss_idx];
        let scenario = degraded_scenario(seed, 30, loss_bad);

        let plain = run_with_sink(&scenario, Strategy::AdaptiveAdaptive, &mut NullSink);

        let path = jts_path(&format!("onoff-{seed}-{loss_idx}.jts"));
        let mut tl_sink = TimelineSink::create(&path, EVERY_NS).unwrap();
        let timed = run_with_sink(&scenario, Strategy::AdaptiveAdaptive, &mut tl_sink);
        tl_sink.finish().unwrap();

        // Zero RNG impact: full results documents, rendered and
        // compared as strings, so every float bit participates.
        prop_assert_eq!(
            scenario_result_to_json(&plain, true).render(),
            scenario_result_to_json(&timed, true).render(),
            "timeline-on run must be bit-identical to timeline-off"
        );

        let bytes = std::fs::read(&path).unwrap();
        validate_jts(&bytes).expect("timeline validates");
        let tl = Timeline::read(&bytes).unwrap();
        prop_assert_eq!(tl.segments.len(), 1);
        // The integral of the rate series telescopes to the final
        // cumulative sample, which carries the tracer's exact ledger:
        // strict equality against the run's breakdown, per component.
        for c in Component::ALL {
            prop_assert_eq!(
                tl.segments[0].rate_integral_nj(c).to_bits(),
                timed.breakdown[c].nanojoules().to_bits(),
                "rate integral of {} must equal the run breakdown bit-for-bit",
                c.name()
            );
        }
    }
}

// ---------------------------------------------------------------
// Windowed reconciliation against the trace
// ---------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 6 })]

    /// For windows `[0, T]` anchored at scheduled sample boundaries,
    /// the timeline's `energy.<c>.trace_nj` value equals folding the
    /// trace's per-event deltas over the same window — bit-exactly,
    /// because both perform the identical f64 additions in order.
    #[test]
    fn windowed_series_reconcile_bit_exactly_with_trace(
        seed in 0u64..1000,
        loss_idx in 0usize..3,
    ) {
        let loss_bad = [0.0f64, 0.5, 0.9][loss_idx];
        let scenario = degraded_scenario(seed, 30, loss_bad);
        let mut ring = RingSink::new(1_000_000);
        run_with_sink(&scenario, Strategy::AdaptiveAdaptive, &mut ring);
        let events = ring.into_events();

        let path = jts_path(&format!("window-{seed}-{loss_idx}.jts"));
        let mut sink = TimelineSink::create(&path, EVERY_NS).unwrap();
        drive(&mut sink, &events);
        sink.finish().unwrap();
        let tl = Timeline::read(&std::fs::read(&path).unwrap()).unwrap();
        let seg = &tl.segments[0];
        let last = events.last().unwrap().at.nanos();

        for frac in [0.25f64, 0.5, 0.75, 1.0] {
            // Snap the window end to a scheduled sample boundary. An
            // event landing exactly on it would be a sampling tie
            // (the forced end-of-invocation sample may interleave);
            // fractional real-run timestamps make that impossible,
            // and we assert it rather than silently skip.
            let t = (last * frac / EVERY_NS).floor() * EVERY_NS;
            prop_assert!(events.iter().all(|e| e.at.nanos() != t));
            for c in Component::ALL {
                let idx = tl
                    .series_index(&format!("energy.{}.trace_nj", c.name()))
                    .expect("trace series present");
                let mut acc = 0.0f64;
                for ev in events.iter().filter(|e| e.at.nanos() <= t) {
                    acc += ev.delta[c].nanojoules();
                }
                prop_assert_eq!(
                    seg.value_at(idx, t).to_bits(),
                    acc.to_bits(),
                    "windowed [0, {}] sum of {} must match the trace fold",
                    t,
                    c.name()
                );
            }
        }
    }
}

// ---------------------------------------------------------------
// Checkpoint / resume
// ---------------------------------------------------------------

/// A timeline checkpointed mid-run, "crashed" (garbage appended past
/// the checkpoint offset), resumed, and completed is byte-identical
/// to one written in a single uninterrupted pass.
#[test]
fn resumed_timeline_is_byte_identical() {
    let scenario = degraded_scenario(7, 40, 0.5);
    let mut ring = RingSink::new(1_000_000);
    run_with_sink(&scenario, Strategy::AdaptiveAdaptive, &mut ring);
    let events = ring.into_events();
    assert!(events.len() > 100, "need a meaningful stream");

    let golden_path = jts_path("resume-golden.jts");
    let mut golden = TimelineSink::create(&golden_path, EVERY_NS).unwrap();
    drive(&mut golden, &events);
    golden.finish().unwrap();
    let golden_bytes = std::fs::read(&golden_path).unwrap();

    for cut in [1, events.len() / 3, events.len() / 2, events.len() - 1] {
        let path = jts_path(&format!("resume-cut{cut}.jts"));
        let mut sink = TimelineSink::create(&path, EVERY_NS).unwrap();
        let mut ledger = jem_energy::EnergyBreakdown::new();
        for ev in &events[..cut] {
            ledger += ev.delta;
            sink.observe(ev, Some(&ledger));
        }
        let state = TraceSink::ckpt_state(&mut sink).expect("timeline checkpoints");
        drop(sink);
        // Crash simulation: bytes written after the checkpoint that
        // the resume must truncate away.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(b"TORN-PARTIAL-BLOCK-GARBAGE").unwrap();
        }
        let mut resumed = TimelineSink::resume(&path, &state).expect("resume succeeds");
        for ev in &events[cut..] {
            ledger += ev.delta;
            resumed.observe(ev, Some(&ledger));
        }
        resumed.finish().unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            golden_bytes,
            "cut at {cut}: resumed timeline must be byte-identical"
        );
    }
}

// ---------------------------------------------------------------
// Series-driven watchdogs
// ---------------------------------------------------------------

/// The energy-rate-anomaly watchdog fires on a seeded fault run once
/// its window matches the injected fault density: retry bursts under
/// heavy loss multiply per-invocation energy without a matching time
/// increase, spiking the rate series far above its sliding mean.
#[test]
fn fault_run_fires_energy_rate_anomaly() {
    let scenario = degraded_scenario(7, 120, 0.9);
    let mut ring = RingSink::new(1_000_000);
    run_with_sink(&scenario, Strategy::AdaptiveAdaptive, &mut ring);
    let events = ring.into_events();

    let mut m = Monitor::new(MonitorConfig {
        rate_window: 10,
        rate_factor: 2.0,
        ..MonitorConfig::default()
    });
    for ev in &events {
        m.observe(ev);
    }
    let report = m.finish();
    assert!(
        report
            .counts
            .get("energy-rate-anomaly")
            .copied()
            .unwrap_or(0)
            > 0,
        "energy-rate-anomaly must fire on the fault run: {report:?}"
    );
    // The structural invariants still hold on the degraded run.
    assert_eq!(report.counts.get("conservation"), None, "{report:?}");
    assert_eq!(report.counts.get("negative-delta"), None, "{report:?}");
}

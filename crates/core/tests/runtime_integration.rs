//! Integration tests of the runtime and profiling machinery on a
//! small synthetic workload (cheap enough for the ordinary suite).

use jem_core::{
    run_scenario, strategy::evaluate, EnergyAwareVm, Mode, Profile, RemoteConfig, Strategy,
    Workload,
};
use jem_energy::Power;
use jem_jvm::dsl::*;
use jem_jvm::{Heap, MethodAttrs, MethodId, OptLevel, Program, Value};
use jem_radio::ChannelClass;
use jem_sim::{Scenario, Situation, SizeDist};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A quadratic-work kernel: enough cycles to make modes distinguishable.
struct Kernel {
    program: Program,
    method: MethodId,
}

impl Kernel {
    fn new() -> Kernel {
        let mut m = ModuleBuilder::new();
        m.func_with_attrs(
            "kernel",
            vec![("n", DType::Int)],
            Some(DType::Int),
            vec![
                let_("acc", iconst(0)),
                for_(
                    "i",
                    iconst(0),
                    var("n"),
                    vec![for_(
                        "j",
                        iconst(0),
                        var("n"),
                        vec![assign(
                            "acc",
                            var("acc")
                                .add(var("i").mul(var("j")))
                                .bitxor(var("acc").shr(iconst(3))),
                        )],
                    )],
                ),
                ret(var("acc")),
            ],
            MethodAttrs {
                potential: true,
                size_param: Some(0),
                ..Default::default()
            },
        );
        let program = m.compile().unwrap();
        let method = program.find_method(MODULE_CLASS, "kernel").unwrap();
        Kernel { program, method }
    }
}

impl Workload for Kernel {
    fn name(&self) -> &str {
        "kernel"
    }
    fn description(&self) -> &str {
        "synthetic quadratic kernel"
    }
    fn program(&self) -> &Program {
        &self.program
    }
    fn potential_method(&self) -> MethodId {
        self.method
    }
    fn sizes(&self) -> Vec<u32> {
        vec![16, 32, 64, 128]
    }
    fn size_meaning(&self) -> &str {
        "loop bound"
    }
    fn make_args(&self, _heap: &mut Heap, size: u32, _rng: &mut SmallRng) -> Vec<Value> {
        vec![Value::Int(size as i32)]
    }
}

#[test]
fn profile_curves_interpolate_between_calibration_points() {
    let w = Kernel::new();
    let p = Profile::build(&w, 1);
    // 48 was not a calibration size; the quadratic fit must still be
    // close to an actual run.
    let mut vm = jem_jvm::Vm::client(w.program());
    let mut rng = SmallRng::seed_from_u64(0);
    let args = w.make_args(&mut vm.heap, 48, &mut rng);
    vm.invoke(w.potential_method(), args).unwrap();
    let actual = vm.machine.energy().nanojoules();
    let est = p.e_interp(48.0).nanojoules();
    let err = ((est - actual) / actual).abs();
    assert!(err < 0.02, "interpolation error {err}");
}

#[test]
fn profile_orderings_hold() {
    let w = Kernel::new();
    let p = Profile::build(&w, 1);
    for &s in &[16u32, 64, 128] {
        let s = f64::from(s);
        // Interpretation costs more than any native level.
        for level in OptLevel::ALL {
            assert!(p.e_interp(s) > p.e_local(level, s), "size {s} {level}");
        }
    }
    // Compile cost grows with level (init excluded and included).
    for loaded in [true, false] {
        assert!(p.e_compile_local(OptLevel::L1, loaded) < p.e_compile_local(OptLevel::L2, loaded));
        assert!(p.e_compile_local(OptLevel::L2, loaded) < p.e_compile_local(OptLevel::L3, loaded));
    }
    // The init makes the cold compile strictly pricier.
    assert!(p.e_compile_local(OptLevel::L1, false) > p.e_compile_local(OptLevel::L1, true));
}

#[test]
fn remote_estimate_tracks_pa_power() {
    let w = Kernel::new();
    let p = Profile::build(&w, 1);
    let e4 = p.e_remote(64.0, Power::from_watts(0.37));
    let e1 = p.e_remote(64.0, Power::from_watts(5.88));
    assert!(e1 > e4);
    // And grows with size (bigger inputs, longer server time).
    assert!(p.e_remote(128.0, Power::from_watts(0.37)) > e4);
}

#[test]
fn evaluate_omits_compile_cost_for_installed_level() {
    let w = Kernel::new();
    let p = Profile::build(&w, 1);
    let with = evaluate(&p, 10, 64.0, Power::from_watts(0.37), None, true);
    let installed = evaluate(
        &p,
        10,
        64.0,
        Power::from_watts(0.37),
        Some(OptLevel::L2),
        true,
    );
    assert!(installed.local[1] < with.local[1]);
    assert_eq!(installed.local[0], with.local[0]);
}

#[test]
fn adaptive_run_reaches_native_steady_state() {
    let w = Kernel::new();
    let p = Profile::build(&w, 1);
    let scenario = Scenario {
        situation: Situation::PoorDominant,
        channel: jem_radio::ChannelProcess::Fixed(ChannelClass::C1),
        sizes: SizeDist::Fixed(128),
        runs: 40,
        seed: 2,
        faults: jem_sim::FaultSpec::NONE,
    };
    let r = run_scenario(&w, &p, &scenario, Strategy::AdaptiveLocal);
    // In a terrible channel with a hot method, AL must end up running
    // native code (after the usual amortization transient), having
    // compiled at most a couple of times.
    let native_runs: u64 = r.stats.local.iter().sum();
    assert!(native_runs >= 15, "stats: {:?}", r.stats);
    assert!(r.stats.local_compiles <= 3);
    // Late invocations execute natively.
    assert!(matches!(r.reports.last().unwrap().mode, Mode::Local(_)));
}

#[test]
fn connection_loss_falls_back_and_completes() {
    let w = Kernel::new();
    let p = Profile::build(&w, 1);
    let mut vm = EnergyAwareVm::new(&w, &p);
    vm.remote_cfg = RemoteConfig {
        loss_probability: 1.0,
        ..Default::default()
    };
    let mut rng = SmallRng::seed_from_u64(3);
    let report = vm
        .invoke_once(Strategy::Remote, 32, ChannelClass::C4, &mut rng)
        .unwrap();
    assert!(report.fell_back);
    assert_eq!(vm.stats.fallbacks, 1);
    // The fallback interpreted locally.
    assert_eq!(vm.stats.interpreted, 1);
}

#[test]
fn run_stats_account_for_every_invocation() {
    let w = Kernel::new();
    let p = Profile::build(&w, 1);
    for strategy in Strategy::ALL {
        let scenario = Scenario::paper(Situation::Uniform, &w.sizes(), 9).with_runs(25);
        let r = run_scenario(&w, &p, &scenario, strategy);
        let executed = r.stats.remote + r.stats.interpreted + r.stats.local.iter().sum::<u64>();
        assert_eq!(executed, 25, "{strategy}: {:?}", r.stats);
        assert!(r.total_energy.nanojoules() > 0.0);
        assert!(r.total_time.nanos() > 0.0);
    }
}

#[test]
fn per_invocation_energies_sum_to_total() {
    let w = Kernel::new();
    let p = Profile::build(&w, 1);
    let scenario = Scenario::paper(Situation::GoodDominant, &w.sizes(), 11).with_runs(20);
    let r = run_scenario(&w, &p, &scenario, Strategy::AdaptiveAdaptive);
    let sum: f64 = r.reports.iter().map(|x| x.energy.nanojoules()).sum();
    let total = r.total_energy.nanojoules();
    assert!(
        (sum - total).abs() < total * 1e-9 + 1.0,
        "sum {sum} vs total {total}"
    );
}

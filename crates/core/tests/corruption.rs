//! Corruption corpus for the crash-safety decoders: every loader that
//! reads bytes off disk after a crash — [`RunSnapshot::decode`],
//! [`CkptFile::decode`], [`decode_result`], the `.jtb` loader and the
//! salvage pass — must survive truncation, bit flips and garbage with
//! a typed error, never a panic and never silently-wrong data.

use jem_core::ckpt::{run_scenario_ckpt, CkptFile, InflightCkpt, RunSnapshot};
use jem_core::{decode_result, encode_result, Profile, ResilienceConfig, Strategy, Workload};
use jem_jvm::dsl::*;
use jem_jvm::{Heap, MethodAttrs, MethodId, Program, Value};
use jem_obs::{jtb_bytes, load_trace_bytes, salvage_jtb, TraceShard};
use jem_sim::{Scenario, Situation};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct Kernel {
    program: Program,
    method: MethodId,
}

impl Kernel {
    fn new() -> Kernel {
        let mut m = ModuleBuilder::new();
        m.func_with_attrs(
            "kernel",
            vec![("n", DType::Int)],
            Some(DType::Int),
            vec![
                let_("acc", iconst(0)),
                for_(
                    "i",
                    iconst(0),
                    var("n"),
                    vec![assign("acc", var("acc").add(var("i")))],
                ),
                ret(var("acc")),
            ],
            MethodAttrs {
                potential: true,
                size_param: Some(0),
                ..Default::default()
            },
        );
        let program = m.compile().unwrap();
        let method = program.find_method(MODULE_CLASS, "kernel").unwrap();
        Kernel { program, method }
    }
}

impl Workload for Kernel {
    fn name(&self) -> &str {
        "kernel"
    }
    fn description(&self) -> &str {
        "linear kernel"
    }
    fn program(&self) -> &Program {
        &self.program
    }
    fn potential_method(&self) -> MethodId {
        self.method
    }
    fn sizes(&self) -> Vec<u32> {
        vec![16, 32, 64]
    }
    fn size_meaning(&self) -> &str {
        "loop bound"
    }
    fn make_args(&self, _heap: &mut Heap, size: u32, _rng: &mut SmallRng) -> Vec<Value> {
        vec![Value::Int(size as i32)]
    }
}

/// One real mid-run snapshot, one completed result, and a populated
/// `.jck` container — the corpus seeds.
fn corpus() -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    let w = Kernel::new();
    let p = Profile::build(&w, 1);
    let scenario = Scenario::paper(Situation::Uniform, &w.sizes(), 9).with_runs(8);
    let mut snap_bytes = None;
    let mut hook = |s: &RunSnapshot, _w: Option<Vec<u8>>| snap_bytes = Some(s.encode());
    let result = run_scenario_ckpt(
        &w,
        &p,
        &scenario,
        Strategy::AdaptiveAdaptive,
        &ResilienceConfig::default(),
        None,
        None,
        4,
        Some(&mut hook),
    )
    .expect("run");
    let snap = snap_bytes.expect("one boundary at invocation 4");
    let result_bytes = encode_result(&result);
    let file = CkptFile {
        fingerprint: "corpus runs=8".into(),
        completed: vec![("unit/a".into(), result_bytes.clone())],
        writer_state: Some(vec![1, 2, 3, 4]),
        inflight: Some(InflightCkpt {
            unit: "unit/b".into(),
            snapshot: snap.clone(),
        }),
    };
    (snap, result_bytes, file.encode())
}

/// A small but complete `.jtb` stream.
fn jtb_corpus() -> Vec<u8> {
    let w = Kernel::new();
    let p = Profile::build(&w, 1);
    let scenario = Scenario::paper(Situation::Uniform, &w.sizes(), 9).with_runs(6);
    let mut sink = jem_obs::RingSink::new(100_000);
    run_scenario_ckpt(
        &w,
        &p,
        &scenario,
        Strategy::AdaptiveAdaptive,
        &ResilienceConfig::default(),
        Some(&mut sink),
        None,
        0,
        None,
    )
    .expect("run");
    jtb_bytes(&[TraceShard::new("corpus", sink.into_events())])
}

#[test]
fn truncated_inputs_give_typed_errors() {
    let (snap, result, file) = corpus();
    // Every strict prefix of a snapshot either fails to parse or
    // leaves trailing structure unaccounted — both are typed errors.
    for cut in 0..snap.len() {
        assert!(
            RunSnapshot::decode(&snap[..cut]).is_err(),
            "snapshot truncated to {cut} bytes decoded"
        );
    }
    for cut in 0..result.len() {
        assert!(
            decode_result(&result[..cut]).is_err(),
            "result truncated to {cut} bytes decoded"
        );
    }
    // The .jck trailer checksums the whole container, so any
    // truncation is caught before field parsing starts.
    for cut in 0..file.len() {
        assert!(
            CkptFile::decode(&file[..cut]).is_err(),
            ".jck truncated to {cut} bytes decoded"
        );
    }
}

#[test]
fn bit_flips_never_panic_and_checksums_catch_them() {
    let (snap, result, file) = corpus();
    // Unchecksummed decoders must never panic on a flip (a flip can
    // still decode — the .jck checksum above them is the integrity
    // gate); the checksummed .jck must reject every single-bit flip.
    for i in 0..snap.len() {
        let mut b = snap.clone();
        b[i] ^= 1 << (i % 8);
        let _ = RunSnapshot::decode(&b);
    }
    for i in 0..result.len() {
        let mut b = result.clone();
        b[i] ^= 1 << (i % 8);
        let _ = decode_result(&b);
    }
    for i in 0..file.len() {
        let mut b = file.clone();
        b[i] ^= 1 << (i % 8);
        assert!(
            CkptFile::decode(&b).is_err(),
            ".jck with bit {} of byte {i} flipped decoded",
            i % 8
        );
    }
}

#[test]
fn garbage_inputs_give_typed_errors() {
    let mut rng = SmallRng::seed_from_u64(42);
    for len in [0usize, 1, 7, 64, 513, 4096] {
        let garbage: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        assert!(RunSnapshot::decode(&garbage).is_err(), "garbage len {len}");
        assert!(decode_result(&garbage).is_err(), "garbage len {len}");
        assert!(CkptFile::decode(&garbage).is_err(), "garbage len {len}");
        assert!(load_trace_bytes(&garbage).is_err(), "garbage len {len}");
    }
}

#[test]
fn torn_jtb_always_salvages_or_errors_cleanly() {
    let bytes = jtb_corpus();
    assert!(load_trace_bytes(&bytes).is_ok(), "corpus must be valid");
    // A torn file (any truncation) either salvages to a loadable
    // recovered trace or reports a typed error — and the loader on
    // the raw torn bytes errors rather than panicking.
    for cut in 0..bytes.len() {
        let torn = &bytes[..cut];
        if cut < bytes.len() {
            let _ = load_trace_bytes(torn);
        }
        match salvage_jtb(torn) {
            Ok((salvaged, report)) => {
                let loaded = load_trace_bytes(&salvaged)
                    .unwrap_or_else(|e| panic!("salvaged cut={cut} does not load: {e}"));
                if !report.already_complete {
                    assert!(
                        loaded.recovered.is_some(),
                        "salvaged cut={cut} missing its recovered marker"
                    );
                }
            }
            Err(_) => {
                // Tears inside the header are unsalvageable by
                // contract; everything after it must salvage.
                assert!(
                    cut < 16,
                    "salvage refused a torn file with an intact header (cut={cut})"
                );
            }
        }
    }
    // Bit flips in the body: salvage and load must not panic.
    let mut rng = SmallRng::seed_from_u64(7);
    for _ in 0..200 {
        let i = rng.gen_range(0..bytes.len());
        let mut b = bytes.clone();
        b[i] ^= 1 << rng.gen_range(0..8);
        let _ = load_trace_bytes(&b);
        let _ = salvage_jtb(&b);
    }
}

//! Property tests for the adaptive machinery: EWMA algebra, decision
//! optimality, and curve-fit sanity.

use jem_core::fit::CurveFit;
use jem_core::predict::{Ewma, MethodState};
use jem_core::strategy::DecisionEstimates;
use jem_core::Mode;
use jem_energy::Energy;
use jem_jvm::OptLevel;
use proptest::prelude::*;

proptest! {
    /// The prediction always lies within the [min, max] envelope of
    /// the observations (a convex combination property).
    #[test]
    fn ewma_stays_within_history_bounds(
        u in 0.0f64..=1.0,
        xs in prop::collection::vec(0.1f64..1e6, 1..50),
    ) {
        let mut e = Ewma::new(u);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in &xs {
            lo = lo.min(x);
            hi = hi.max(x);
            let p = e.update(x);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
        }
    }

    /// With u = 0 the tracker equals the last observation; with u = 1
    /// it never leaves the first.
    #[test]
    fn ewma_extremes(xs in prop::collection::vec(-1e6f64..1e6, 2..20)) {
        let mut fresh = Ewma::new(0.0);
        let mut frozen = Ewma::new(1.0);
        for &x in &xs {
            fresh.update(x);
            frozen.update(x);
        }
        prop_assert_eq!(fresh.value().unwrap(), *xs.last().unwrap());
        prop_assert_eq!(frozen.value().unwrap(), xs[0]);
    }

    /// The invocation counter equals the number of observations and
    /// drives the optimistic remaining-run estimate.
    #[test]
    fn method_state_counts(n in 1usize..100) {
        let mut st = MethodState::new();
        for i in 0..n {
            st.observe(i as f64, 0.37);
        }
        prop_assert_eq!(st.k, n as u64);
        prop_assert_eq!(st.expected_remaining(), n as u64);
    }

    /// argmin picks a candidate whose energy is <= all others.
    #[test]
    fn argmin_is_optimal(
        i in 0.0f64..1e9,
        r in 0.0f64..1e9,
        l1 in 0.0f64..1e9,
        l2 in 0.0f64..1e9,
        l3 in 0.0f64..1e9,
    ) {
        let d = DecisionEstimates {
            interpret: Energy::from_nanojoules(i),
            remote: Energy::from_nanojoules(r),
            local: [
                Energy::from_nanojoules(l1),
                Energy::from_nanojoules(l2),
                Energy::from_nanojoules(l3),
            ],
        };
        let chosen = d.argmin();
        let chosen_energy = match chosen {
            Mode::Interpret => i,
            Mode::Remote => r,
            Mode::Local(OptLevel::L1) => l1,
            Mode::Local(OptLevel::L2) => l2,
            Mode::Local(OptLevel::L3) => l3,
        };
        for e in [i, r, l1, l2, l3] {
            prop_assert!(chosen_energy <= e);
        }
    }

    /// Fitting points sampled from a polynomial of degree <= 3
    /// reproduces them within the adaptive tolerance.
    #[test]
    fn polyfit_recovers_polynomials(
        c0 in -1e3f64..1e3,
        c1 in -10.0f64..10.0,
        c2 in 0.001f64..0.1,
        n in 4usize..12,
    ) {
        let points: Vec<(f64, f64)> = (1..=n)
            .map(|i| {
                let x = i as f64 * 37.0;
                (x, c0 + c1 * x + c2 * x * x)
            })
            .collect();
        // Only meaningful when values stay well away from zero
        // (relative error blows up around roots).
        prop_assume!(points.iter().all(|&(_, y)| y.abs() > 1.0));
        let fit = CurveFit::fit_adaptive(&points, 3, 0.02);
        prop_assert!(fit.max_relative_error(&points) <= 0.05);
    }

    /// eval_nonneg never goes negative anywhere.
    #[test]
    fn eval_nonneg_is_nonneg(
        pts in prop::collection::vec((0.0f64..1e4, -1e6f64..1e6), 2..8),
        x in -1e5f64..1e5,
    ) {
        let fit = CurveFit::fit(&pts, 2);
        prop_assert!(fit.eval_nonneg(x) >= 0.0);
    }
}

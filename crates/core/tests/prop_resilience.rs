//! Property tests for the fault-injection and resilience layer:
//! energy conservation across retry chains, breaker liveness, and
//! bit-for-bit equivalence of the frozen Gilbert–Elliott chain with
//! the legacy flat-loss model.

use std::sync::OnceLock;

use jem_core::{
    run_scenario_with, EnergyAwareVm, FaultInjector, Profile, RemoteConfig, ResilienceConfig,
    RunStats, Strategy, Workload,
};
use jem_energy::Energy;
use jem_jvm::dsl::*;
use jem_jvm::{Heap, MethodAttrs, MethodId, Program, Value};
use jem_sim::{FaultSpec, Scenario, Situation};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The synthetic quadratic kernel from `runtime_integration.rs`:
/// enough cycles to make modes distinguishable, cheap to profile.
struct Kernel {
    program: Program,
    method: MethodId,
}

impl Kernel {
    fn new() -> Kernel {
        let mut m = ModuleBuilder::new();
        m.func_with_attrs(
            "kernel",
            vec![("n", DType::Int)],
            Some(DType::Int),
            vec![
                let_("acc", iconst(0)),
                for_(
                    "i",
                    iconst(0),
                    var("n"),
                    vec![for_(
                        "j",
                        iconst(0),
                        var("n"),
                        vec![assign(
                            "acc",
                            var("acc")
                                .add(var("i").mul(var("j")))
                                .bitxor(var("acc").shr(iconst(3))),
                        )],
                    )],
                ),
                ret(var("acc")),
            ],
            MethodAttrs {
                potential: true,
                size_param: Some(0),
                ..Default::default()
            },
        );
        let program = m.compile().unwrap();
        let method = program.find_method(MODULE_CLASS, "kernel").unwrap();
        Kernel { program, method }
    }
}

impl Workload for Kernel {
    fn name(&self) -> &str {
        "kernel"
    }
    fn description(&self) -> &str {
        "synthetic quadratic kernel"
    }
    fn program(&self) -> &Program {
        &self.program
    }
    fn potential_method(&self) -> MethodId {
        self.method
    }
    fn sizes(&self) -> Vec<u32> {
        vec![16, 32, 64, 128]
    }
    fn size_meaning(&self) -> &str {
        "loop bound"
    }
    fn make_args(&self, _heap: &mut Heap, size: u32, _rng: &mut SmallRng) -> Vec<Value> {
        vec![Value::Int(size as i32)]
    }
}

/// The profile is deterministic and expensive to build; share one
/// across all property cases (the Kernel program is identical every
/// time, so MethodIds line up).
fn profile() -> &'static Profile {
    static PROFILE: OnceLock<Profile> = OnceLock::new();
    PROFILE.get_or_init(|| Profile::build(&Kernel::new(), 1))
}

/// Run `scenario` by hand so the test can also set the legacy
/// flat-loss knob in [`RemoteConfig`] (mirrors `run_scenario_with`).
fn run_manual(
    scenario: &Scenario,
    strategy: Strategy,
    legacy_loss: f64,
    resilience: &ResilienceConfig,
) -> (Energy, RunStats) {
    let w = Kernel::new();
    let p = profile();
    let mut rng = SmallRng::seed_from_u64(scenario.seed);
    let mut channel = scenario.channel.clone();
    let mut vm = EnergyAwareVm::new(&w, p)
        .with_faults(FaultInjector::from_spec(&scenario.faults))
        .with_resilience(*resilience);
    vm.remote_cfg = RemoteConfig {
        loss_probability: legacy_loss,
        ..Default::default()
    };
    for _ in 0..scenario.runs {
        let size = scenario.sizes.sample(&mut rng);
        let true_class = channel.advance(&mut rng);
        vm.invoke_once(strategy, size, true_class, &mut rng)
            .expect("invocation failed");
        vm.end_invocation();
    }
    (vm.total_energy(), vm.stats.clone())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// (a) Energy is conserved across retry chains: the per-invocation
    /// reports sum to the machine's total, and the wasted-energy
    /// accounting never exceeds what was actually spent — however many
    /// retries, fallbacks and breaker trips the fault schedule forces.
    #[test]
    fn energy_is_conserved_across_retry_chains(
        seed in 0u64..1000,
        loss_bad in 0.3f64..0.95,
    ) {
        let w = Kernel::new();
        let scenario =
            Scenario::paper_degraded(Situation::GoodDominant, &w.sizes(), seed, loss_bad)
                .with_runs(25);
        let r = run_scenario_with(
            &w,
            profile(),
            &scenario,
            Strategy::AdaptiveAdaptive,
            &ResilienceConfig::default(),
        )
        .expect("scenario run failed");
        let sum: f64 = r.reports.iter().map(|x| x.energy.nanojoules()).sum();
        let total = r.total_energy.nanojoules();
        prop_assert!(
            (sum - total).abs() < total * 1e-9 + 1.0,
            "per-invocation sum {sum} != total {total}"
        );
        let wasted_sum: f64 = r.reports.iter().map(|x| x.wasted_energy.nanojoules()).sum();
        prop_assert!(
            (wasted_sum - r.stats.wasted_energy.nanojoules()).abs()
                < r.stats.wasted_energy.nanojoules() * 1e-9 + 1.0,
            "wasted-energy reports disagree with stats"
        );
        prop_assert!(
            r.stats.wasted_energy.nanojoules() <= total,
            "wasted {} exceeds total {total}",
            r.stats.wasted_energy.nanojoules()
        );
    }

    /// (b) The breaker never strands a method: even when every remote
    /// interaction fails, every invocation completes (locally), under
    /// every strategy.
    #[test]
    fn breaker_never_strands_a_method(seed in 0u64..1000) {
        let w = Kernel::new();
        let runs = 20;
        for faults in [FaultSpec::flat_loss(1.0), FaultSpec::degraded(1.0)] {
            for strategy in Strategy::ALL {
                let scenario = Scenario::paper(Situation::Uniform, &w.sizes(), seed)
                    .with_runs(runs)
                    .with_faults(faults);
                let r = run_scenario_with(
                    &w,
                    profile(),
                    &scenario,
                    strategy,
                    &ResilienceConfig::default(),
                )
                .expect("scenario run failed");
                prop_assert_eq!(r.reports.len(), runs, "{} dropped invocations", strategy);
                let executed =
                    r.stats.remote + r.stats.interpreted + r.stats.local.iter().sum::<u64>();
                prop_assert_eq!(
                    executed,
                    runs as u64,
                    "{}: {:?}",
                    strategy,
                    r.stats
                );
            }
        }
        // Under total flat loss nothing ever executes remotely.
        let scenario = Scenario::paper(Situation::Uniform, &w.sizes(), seed)
            .with_runs(runs)
            .with_faults(FaultSpec::flat_loss(1.0));
        let r = run_scenario_with(
            &w,
            profile(),
            &scenario,
            Strategy::Remote,
            &ResilienceConfig::default(),
        )
        .expect("scenario run failed");
        prop_assert_eq!(r.stats.remote, 0);
        prop_assert!(r.stats.breaker_trips > 0, "total loss must trip the breaker");
    }

    /// (c) A Gilbert–Elliott chain frozen in `Good` (bad-state entry
    /// probability 0) reproduces the legacy flat-loss model
    /// bit-for-bit: same energy bits, same statistics.
    #[test]
    fn frozen_ge_chain_matches_legacy_flat_loss_bitwise(
        p in 0.05f64..0.95,
        seed in 0u64..1000,
    ) {
        for strategy in [Strategy::Remote, Strategy::AdaptiveAdaptive] {
            let base = Scenario::paper(Situation::GoodDominant, &[16, 32, 64, 128], seed)
                .with_runs(20);
            // New model: frozen GE chain at p, legacy knob off.
            let ge = base.clone().with_faults(FaultSpec::flat_loss(p));
            let (e_ge, s_ge) = run_manual(&ge, strategy, 0.0, &ResilienceConfig::default());
            // Legacy model: flat RemoteConfig loss at p, injector inert.
            let (e_legacy, s_legacy) =
                run_manual(&base, strategy, p, &ResilienceConfig::default());
            prop_assert_eq!(
                e_ge.nanojoules().to_bits(),
                e_legacy.nanojoules().to_bits(),
                "{}: GE {} vs legacy {}",
                strategy,
                e_ge,
                e_legacy
            );
            prop_assert_eq!(format!("{s_ge:?}"), format!("{s_legacy:?}"), "{}", strategy);
        }
    }

    /// Identical seeds give identical energy totals with fault
    /// injection enabled (reproducibility of degraded runs).
    #[test]
    fn identical_seeds_identical_energy_under_faults(
        seed in 0u64..1000,
        loss_bad in 0.2f64..0.9,
    ) {
        let w = Kernel::new();
        let scenario =
            Scenario::paper_degraded(Situation::Uniform, &w.sizes(), seed, loss_bad)
                .with_runs(15);
        let run = || {
            run_scenario_with(
                &w,
                profile(),
                &scenario,
                Strategy::AdaptiveAdaptive,
                &ResilienceConfig::default(),
            )
            .expect("scenario run failed")
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(
            a.total_energy.nanojoules().to_bits(),
            b.total_energy.nanojoules().to_bits()
        );
        prop_assert_eq!(format!("{:?}", a.stats), format!("{:?}", b.stats));
    }
}

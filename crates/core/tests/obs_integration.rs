//! Integration tests for the observability layer: the trace is an
//! energy-conservation ledger, and attaching a sink never perturbs
//! the simulation.
//!
//! * per-event energy deltas sum (telescope) to the run's breakdown,
//!   component by component — including under injected faults, where
//!   retries, breaker trips and fallbacks multiply the emission sites;
//! * traced and untraced runs of the same seed produce bit-identical
//!   energy totals, times and statistics (tracing draws nothing from
//!   the RNG and charges nothing to the machine);
//! * a real run's trace survives the Chrome `trace_event` export and
//!   re-import losslessly.

use std::sync::OnceLock;

use jem_core::{
    run_scenario_traced, run_scenario_with, Profile, ResilienceConfig, ScenarioResult, Strategy,
    Workload,
};
use jem_energy::EnergyBreakdown;
use jem_jvm::dsl::*;
use jem_jvm::{Heap, MethodAttrs, MethodId, Program, Value};
use jem_obs::{chrome_trace, events_from_chrome_trace, Json, RingSink, TraceEvent};
use jem_sim::{Scenario, Situation};
use rand::rngs::SmallRng;

/// The synthetic quadratic kernel from `runtime_integration.rs`:
/// enough cycles to make modes distinguishable, cheap to profile.
struct Kernel {
    program: Program,
    method: MethodId,
}

impl Kernel {
    fn new() -> Kernel {
        let mut m = ModuleBuilder::new();
        m.func_with_attrs(
            "kernel",
            vec![("n", DType::Int)],
            Some(DType::Int),
            vec![
                let_("acc", iconst(0)),
                for_(
                    "i",
                    iconst(0),
                    var("n"),
                    vec![for_(
                        "j",
                        iconst(0),
                        var("n"),
                        vec![assign(
                            "acc",
                            var("acc")
                                .add(var("i").mul(var("j")))
                                .bitxor(var("acc").shr(iconst(3))),
                        )],
                    )],
                ),
                ret(var("acc")),
            ],
            MethodAttrs {
                potential: true,
                size_param: Some(0),
                ..Default::default()
            },
        );
        let program = m.compile().unwrap();
        let method = program.find_method(MODULE_CLASS, "kernel").unwrap();
        Kernel { program, method }
    }
}

impl Workload for Kernel {
    fn name(&self) -> &str {
        "kernel"
    }
    fn description(&self) -> &str {
        "synthetic quadratic kernel"
    }
    fn program(&self) -> &Program {
        &self.program
    }
    fn potential_method(&self) -> MethodId {
        self.method
    }
    fn sizes(&self) -> Vec<u32> {
        vec![16, 32, 64, 128]
    }
    fn size_meaning(&self) -> &str {
        "loop bound"
    }
    fn make_args(&self, _heap: &mut Heap, size: u32, _rng: &mut SmallRng) -> Vec<Value> {
        vec![Value::Int(size as i32)]
    }
}

fn profile() -> &'static Profile {
    static PROFILE: OnceLock<Profile> = OnceLock::new();
    PROFILE.get_or_init(|| Profile::build(&Kernel::new(), 1))
}

/// A faulty scenario that exercises retries, breaker transitions,
/// fallbacks and degraded invocations — the emission-richest path.
fn degraded_scenario(seed: u64, runs: usize) -> Scenario {
    Scenario::paper_degraded(Situation::GoodDominant, &Kernel::new().sizes(), seed, 0.7)
        .with_runs(runs)
}

fn run_traced(scenario: &Scenario, strategy: Strategy) -> (ScenarioResult, Vec<TraceEvent>) {
    let w = Kernel::new();
    let mut ring = RingSink::new(1_000_000);
    let result = run_scenario_traced(
        &w,
        profile(),
        scenario,
        strategy,
        &ResilienceConfig::default(),
        &mut ring,
    )
    .expect("scenario run failed");
    assert_eq!(ring.dropped(), 0, "ring must retain the full run");
    (result, ring.into_events())
}

/// Relative comparison that tolerates only summation-order rounding.
fn close(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 1e-9 * scale
}

#[test]
fn traced_deltas_sum_to_run_breakdown() {
    for (strategy, seed) in [
        (Strategy::AdaptiveAdaptive, 7),
        (Strategy::AdaptiveLocal, 8),
        (Strategy::Remote, 9),
    ] {
        let scenario = degraded_scenario(seed, 60);
        let (result, events) = run_traced(&scenario, strategy);
        assert!(!events.is_empty());

        let mut sum = EnergyBreakdown::new();
        for ev in &events {
            sum += ev.delta;
        }
        for ((c, got), (c2, want)) in sum.iter().zip(result.breakdown.iter()) {
            assert_eq!(c, c2);
            assert!(
                close(got.nanojoules(), want.nanojoules()),
                "{strategy:?}: component {c:?} ledger {} != breakdown {}",
                got.nanojoules(),
                want.nanojoules()
            );
        }
        assert!(close(
            sum.total().nanojoules(),
            result.total_energy.nanojoules()
        ));
    }
}

#[test]
fn trace_stream_is_well_formed() {
    let scenario = degraded_scenario(21, 40);
    let (result, events) = run_traced(&scenario, Strategy::AdaptiveAdaptive);

    let mut last_at = 0.0f64;
    for (i, ev) in events.iter().enumerate() {
        assert_eq!(ev.seq, i as u64, "seq must be dense and ordered");
        assert!(ev.at.nanos() >= last_at, "sim time must be monotone");
        last_at = ev.at.nanos();
        assert!(ev.invocation >= 1 && ev.invocation <= scenario.runs as u64);
    }
    // Exactly one start and one end per invocation.
    let starts = events
        .iter()
        .filter(|e| e.kind.name() == "invocation-start")
        .count();
    let ends = events
        .iter()
        .filter(|e| e.kind.name() == "invocation-end")
        .count();
    assert_eq!(starts, result.reports.len());
    assert_eq!(ends, result.reports.len());
}

#[test]
fn tracing_is_bit_identical_to_untraced() {
    let w = Kernel::new();
    let plain = Scenario::paper(Situation::Uniform, &w.sizes(), 33).with_runs(50);
    let faulty = degraded_scenario(33, 50);
    for scenario in [&plain, &faulty] {
        for strategy in [Strategy::AdaptiveAdaptive, Strategy::AdaptiveLocal] {
            let untraced = run_scenario_with(
                &w,
                profile(),
                scenario,
                strategy,
                &ResilienceConfig::default(),
            )
            .expect("scenario run failed");
            let (traced, events) = run_traced(scenario, strategy);
            if !scenario.faults.is_none() {
                assert!(!events.is_empty());
            }
            assert_eq!(
                untraced.total_energy.nanojoules().to_bits(),
                traced.total_energy.nanojoules().to_bits(),
                "{strategy:?}: tracing changed the energy total"
            );
            assert_eq!(
                untraced.total_time.nanos().to_bits(),
                traced.total_time.nanos().to_bits()
            );
            assert_eq!(untraced.breakdown, traced.breakdown);
            assert_eq!(
                format!("{:?}", untraced.stats),
                format!("{:?}", traced.stats)
            );
            assert_eq!(untraced.reports.len(), traced.reports.len());
            for (a, b) in untraced.reports.iter().zip(&traced.reports) {
                assert_eq!(
                    a.energy.nanojoules().to_bits(),
                    b.energy.nanojoules().to_bits()
                );
                assert_eq!(a.mode, b.mode);
                assert_eq!(a.retries, b.retries);
            }
        }
    }
}

#[test]
fn real_trace_survives_chrome_export_round_trip() {
    let scenario = degraded_scenario(5, 20);
    let (_, events) = run_traced(&scenario, Strategy::AdaptiveAdaptive);
    let doc = chrome_trace(&events);
    let text = doc.render_pretty();
    let back = events_from_chrome_trace(&Json::parse(&text).expect("valid JSON"))
        .expect("well-formed trace");
    assert_eq!(back, events);
}

//! Integration tests for the trace-analysis layer (PR 4's acceptance
//! criteria, exercised end-to-end on real simulator runs):
//!
//! * the profiler's per-cell energy attribution reconciles with the
//!   run's `EnergyBreakdown`, component by component — including on
//!   degraded (fault-injected) runs where retries, fallbacks and
//!   breaker trips multiply the phase frames;
//! * `jem-diff` of a run against itself is empty — as a property over
//!   seeds and loss severities, for traces, results documents and
//!   profiles alike;
//! * collapsed-stack exports are well-formed flamegraph input whose
//!   weights sum back (within rounding) to the run total.

use std::sync::OnceLock;

use jem_core::{
    run_scenario_traced, scenario_result_to_json, Profile, ResilienceConfig, ScenarioResult,
    Strategy, Workload,
};
use jem_jvm::dsl::*;
use jem_jvm::{Heap, MethodAttrs, MethodId, Program, Value};
use jem_obs::diff::{diff_json, diff_traces, DiffPolicy, DiffReport};
use jem_obs::profile::{CollapseWeight, TraceProfile};
use jem_obs::{RingSink, TraceEvent, TraceEventKind};
use jem_sim::{Scenario, Situation};
use proptest::prelude::*;
use rand::rngs::SmallRng;

/// The synthetic quadratic kernel from `runtime_integration.rs`:
/// enough cycles to make modes distinguishable, cheap to profile.
struct Kernel {
    program: Program,
    method: MethodId,
}

impl Kernel {
    fn new() -> Kernel {
        let mut m = ModuleBuilder::new();
        m.func_with_attrs(
            "kernel",
            vec![("n", DType::Int)],
            Some(DType::Int),
            vec![
                let_("acc", iconst(0)),
                for_(
                    "i",
                    iconst(0),
                    var("n"),
                    vec![for_(
                        "j",
                        iconst(0),
                        var("n"),
                        vec![assign(
                            "acc",
                            var("acc")
                                .add(var("i").mul(var("j")))
                                .bitxor(var("acc").shr(iconst(3))),
                        )],
                    )],
                ),
                ret(var("acc")),
            ],
            MethodAttrs {
                potential: true,
                size_param: Some(0),
                ..Default::default()
            },
        );
        let program = m.compile().unwrap();
        let method = program.find_method(MODULE_CLASS, "kernel").unwrap();
        Kernel { program, method }
    }
}

impl Workload for Kernel {
    fn name(&self) -> &str {
        "kernel"
    }
    fn description(&self) -> &str {
        "synthetic quadratic kernel"
    }
    fn program(&self) -> &Program {
        &self.program
    }
    fn potential_method(&self) -> MethodId {
        self.method
    }
    fn sizes(&self) -> Vec<u32> {
        vec![16, 32, 64, 128]
    }
    fn size_meaning(&self) -> &str {
        "loop bound"
    }
    fn make_args(&self, _heap: &mut Heap, size: u32, _rng: &mut SmallRng) -> Vec<Value> {
        vec![Value::Int(size as i32)]
    }
}

fn profile() -> &'static Profile {
    static PROFILE: OnceLock<Profile> = OnceLock::new();
    PROFILE.get_or_init(|| Profile::build(&Kernel::new(), 1))
}

fn run_traced(scenario: &Scenario, strategy: Strategy) -> (ScenarioResult, Vec<TraceEvent>) {
    let w = Kernel::new();
    let mut ring = RingSink::new(1_000_000);
    let result = run_scenario_traced(
        &w,
        profile(),
        scenario,
        strategy,
        &ResilienceConfig::default(),
        &mut ring,
    )
    .expect("scenario run failed");
    assert_eq!(ring.dropped(), 0, "ring must retain the full run");
    (result, ring.into_events())
}

fn degraded_scenario(seed: u64, runs: usize, loss_bad: f64) -> Scenario {
    Scenario::paper_degraded(
        Situation::GoodDominant,
        &Kernel::new().sizes(),
        seed,
        loss_bad,
    )
    .with_runs(runs)
}

#[test]
fn profile_reconciles_with_run_breakdown() {
    for (strategy, seed) in [
        (Strategy::AdaptiveAdaptive, 7),
        (Strategy::AdaptiveLocal, 8),
        (Strategy::Remote, 9),
    ] {
        let scenario = degraded_scenario(seed, 60, 0.7);
        let (result, events) = run_traced(&scenario, strategy);
        let p = TraceProfile::fold(&events);
        // Column sums equal the run's breakdown (the acceptance
        // criterion; 1e-9 tolerates only summation-order rounding).
        p.reconcile(&result.breakdown, 1e-9)
            .unwrap_or_else(|e| panic!("{strategy:?}: {e}"));
        assert_eq!(p.invocations() as usize, scenario.runs);
        // Every cell is rooted at the workload's qualified method.
        for (stack, _) in p.cells() {
            assert_eq!(stack[0], "kernel::Module.kernel", "stack: {stack:?}");
        }
        // The per-method rows cover the same total.
        let rows_total: f64 = p
            .method_mode_rows()
            .iter()
            .map(|r| r.stats.energy.total().nanojoules())
            .sum();
        let want = result.breakdown.total().nanojoules();
        assert!(
            (rows_total - want).abs() <= 1e-9 * want.abs().max(1.0),
            "{strategy:?}: method rows {rows_total} != breakdown {want}"
        );
    }
}

#[test]
fn collapsed_stacks_are_valid_flamegraph_input() {
    let scenario = degraded_scenario(11, 50, 0.7);
    let (result, events) = run_traced(&scenario, Strategy::AdaptiveAdaptive);
    let p = TraceProfile::fold(&events);
    let folded = p.collapsed(CollapseWeight::EnergyNanojoules);
    assert!(!folded.is_empty());
    let mut weight_sum = 0u64;
    for line in folded.lines() {
        // `frame;frame;... integer_weight` — exactly what inferno /
        // flamegraph.pl / speedscope ingest.
        let (stack, weight) = line.rsplit_once(' ').expect("space-separated weight");
        assert!(!stack.is_empty() && !stack.starts_with(';') && !stack.ends_with(';'));
        weight_sum += weight.parse::<u64>().expect("integer weight");
    }
    // Rounded per-cell weights stay within ±0.5 nJ per line of the
    // run's total energy.
    let want = result.breakdown.total().nanojoules();
    let lines = folded.lines().count() as f64;
    assert!(
        (weight_sum as f64 - want).abs() <= 0.5 * lines + 1.0,
        "collapsed weights {weight_sum} vs run total {want}"
    );
}

#[test]
fn different_seeds_produce_a_nonempty_diff() {
    let (ra, ea) = run_traced(&degraded_scenario(7, 40, 0.7), Strategy::AdaptiveAdaptive);
    let (rb, eb) = run_traced(&degraded_scenario(8, 40, 0.7), Strategy::AdaptiveAdaptive);
    let report = diff_traces(&ea, &eb, &DiffPolicy::default());
    assert!(report.has_changes(), "different seeds must not diff empty");
    let mut doc_report = DiffReport::default();
    diff_json(
        &scenario_result_to_json(&ra, false),
        &scenario_result_to_json(&rb, false),
        &DiffPolicy::default(),
        &mut doc_report,
    );
    assert!(doc_report.has_changes());
}

#[test]
fn decision_flips_surface_candidate_energies() {
    // A healthy run vs a heavily degraded one: the breaker forces AA
    // away from remote decisions, so flips (or missing decisions /
    // event-count deltas) must surface with the recorded candidates.
    let (_, ea) = run_traced(&degraded_scenario(7, 60, 0.0), Strategy::AdaptiveAdaptive);
    let (_, eb) = run_traced(&degraded_scenario(7, 60, 0.9), Strategy::AdaptiveAdaptive);
    let report = diff_traces(&ea, &eb, &DiffPolicy::default());
    assert!(report.has_changes());
    let has_behavioural = report
        .entries
        .iter()
        .any(|e| e.path.starts_with("decision-flip") || e.path.starts_with("events/"));
    assert!(has_behavioural, "expected flips or event-count deltas");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10 })]

    /// jem-diff of a run against itself is empty — for the trace, the
    /// results document and the folded profile — over seeds and fault
    /// severities (loss 0 covers the healthy path).
    #[test]
    fn self_diff_is_provably_empty(
        seed in 0u64..1000,
        loss_idx in 0usize..3,
    ) {
        // Fixed severities rather than a continuous range so loss 0
        // (the healthy path) is actually exercised.
        let loss_bad = [0.0f64, 0.5, 0.9][loss_idx];
        let scenario = degraded_scenario(seed, 25, loss_bad);
        let (ra, ea) = run_traced(&scenario, Strategy::AdaptiveAdaptive);
        let (rb, eb) = run_traced(&scenario, Strategy::AdaptiveAdaptive);

        // Identical seeds give byte-identical artifacts, so every
        // layer of the differ must return an empty report.
        let trace_report = diff_traces(&ea, &eb, &DiffPolicy::default());
        prop_assert!(
            trace_report.is_empty(),
            "trace self-diff not empty:\n{}",
            trace_report.render_text()
        );

        let mut doc_report = DiffReport::default();
        diff_json(
            &scenario_result_to_json(&ra, true),
            &scenario_result_to_json(&rb, true),
            &DiffPolicy::default(),
            &mut doc_report,
        );
        prop_assert!(
            doc_report.is_empty(),
            "results self-diff not empty:\n{}",
            doc_report.render_text()
        );

        let mut profile_report = DiffReport::default();
        diff_json(
            &TraceProfile::fold(&ea).to_json(),
            &TraceProfile::fold(&eb).to_json(),
            &DiffPolicy::default(),
            &mut profile_report,
        );
        prop_assert!(profile_report.is_empty());
    }

    /// The profiler conserves energy for every seed/severity: folding
    /// never loses or invents a delta, even with truncated-invocation
    /// flushing in play.
    #[test]
    fn profiler_conserves_energy_under_faults(
        seed in 0u64..1000,
        loss_bad in 0.0f64..0.95,
    ) {
        let scenario = degraded_scenario(seed, 25, loss_bad);
        let (result, events) = run_traced(&scenario, Strategy::AdaptiveAdaptive);
        let p = TraceProfile::fold(&events);
        prop_assert!(p.reconcile(&result.breakdown, 1e-9).is_ok());
        // Every invocation resolved its mode (no truncation markers in
        // a complete stream).
        for (stack, _) in p.cells() {
            prop_assert!(stack[1] != jem_obs::profile::UNKNOWN_MODE, "stack: {stack:?}");
        }
        // Mode labels line up with the run's per-invocation reports.
        let end_modes: std::collections::BTreeSet<String> = events
            .iter()
            .filter_map(|e| match &e.kind {
                TraceEventKind::InvocationEnd { mode, .. } => Some(mode.clone()),
                _ => None,
            })
            .collect();
        let report_modes: std::collections::BTreeSet<String> =
            result.reports.iter().map(|r| r.mode.to_string()).collect();
        prop_assert_eq!(end_modes, report_modes);
    }
}

//! Remote compilation: downloading pre-compiled native code.
//!
//! §3.3: "If the server is trusted and the communication channel is
//! safe, the security rules of JVM can be relaxed to allow JVM to
//! download, link and execute pre-compiled native codes of some
//! methods from the server. … Whenever remote compilation is desired,
//! the client passes the fully qualified method name to the server and
//! receives the pre-compiled method from the server. This pre-compiled
//! method also contains necessary information that allows the client
//! JVM to link it with code on the client side."
//!
//! The server keeps pre-compiled versions for its "limited number of
//! preferred client types"; generating them costs the server nothing
//! that the client pays for. The client pays: transmitting the method
//! name, receiving the code bytes (which depend on the optimization
//! level — inlining grows code), and one linking pass over the
//! downloaded bytes.

use crate::estimate::Profile;
use crate::fault::FaultInjector;
use crate::remote::{RemoteConfig, RemoteFailure};
use jem_energy::Energy;
use jem_jvm::costs::serialize_mix;
use jem_jvm::{OptLevel, Vm};
use jem_obs::{TraceEventKind, Tracer};
use jem_radio::{ChannelClass, Link, TransferDirection};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Bytes of the fully-qualified-name request (name + header).
pub const NAME_REQUEST_BYTES: u64 = 64;

/// Accounting for one code download.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DownloadReport {
    /// Level downloaded.
    pub level: OptLevel,
    /// Code bytes received (the whole compilation plan).
    pub code_bytes: u64,
    /// Total client radio energy spent.
    pub radio_energy: Energy,
}

/// Download the pre-compiled plan at `level` from the server and
/// install it into the client VM, charging the client for the
/// transfers and the linking pass.
///
/// The downloaded code bypasses the bytecode verifier — it *cannot* be
/// verified ("this verification mechanism does not work for native
/// code"); trust in the server is a precondition, exactly as in the
/// paper.
pub fn download_and_install(
    client: &mut Vm<'_>,
    profile: &Profile,
    level: OptLevel,
    link: &mut Link,
    class: ChannelClass,
) -> DownloadReport {
    // A none-injector makes no RNG draws, so the throwaway rng never
    // advances and the download cannot fail.
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(0);
    try_download_and_install(
        client,
        profile,
        level,
        link,
        class,
        &RemoteConfig::default(),
        &mut FaultInjector::none(),
        &mut rng,
    )
    .expect("fault-free download cannot fail")
}

/// [`download_and_install`] over a faulty network: the name request or
/// the code transfer can be lost (client waits out the response
/// timeout awake), the server can be down, and the received code can
/// arrive corrupt — detected during the linking pass, after the whole
/// download was paid for.
///
/// All failures are transient ([`RemoteFailure`]); the caller degrades
/// to local JIT compilation exactly like a failed remote execution
/// degrades to local execution.
///
/// # Errors
/// The [`RemoteFailure`] that aborted the download.
#[allow(clippy::too_many_arguments)]
pub fn try_download_and_install<R: Rng + ?Sized>(
    client: &mut Vm<'_>,
    profile: &Profile,
    level: OptLevel,
    link: &mut Link,
    class: ChannelClass,
    cfg: &RemoteConfig,
    faults: &mut FaultInjector,
    rng: &mut R,
) -> Result<DownloadReport, RemoteFailure> {
    try_download_and_install_traced(
        client,
        profile,
        level,
        link,
        class,
        cfg,
        faults,
        rng,
        &mut Tracer::off(),
    )
}

/// [`try_download_and_install`] with trace emission: the name-request
/// and code-transfer radio windows are recorded into `tracer` with
/// their energy deltas. With a disabled tracer this is exactly
/// `try_download_and_install`.
///
/// # Errors
/// See [`try_download_and_install`].
#[allow(clippy::too_many_arguments)]
pub fn try_download_and_install_traced<R: Rng + ?Sized>(
    client: &mut Vm<'_>,
    profile: &Profile,
    level: OptLevel,
    link: &mut Link,
    class: ChannelClass,
    cfg: &RemoteConfig,
    faults: &mut FaultInjector,
    rng: &mut R,
    tracer: &mut Tracer<'_>,
) -> Result<DownloadReport, RemoteFailure> {
    let code_bytes = u64::from(profile.code_bytes[level.index()]);

    // Request: transmit the fully qualified method name.
    let up = link.transfer(NAME_REQUEST_BYTES, TransferDirection::Send, class);
    client.machine.charge_radio(up.tx_energy, Energy::ZERO);
    client.machine.power_down(up.airtime);
    if tracer.enabled() {
        tracer.emit(
            client.machine.elapsed(),
            client.machine.breakdown(),
            TraceEventKind::TxWindow {
                bytes: up.wire_bytes,
                airtime: up.airtime,
                retransmit: false,
            },
        );
    }

    // Advance the fault processes. Unlike remote execution there is
    // no scheduled power-down window for a download, so on a lost
    // response the client waits out the whole timeout awake. The loss
    // draw is conditional (the fault-free path historically made no
    // draws here — stream parity with pre-fault-injection runs).
    let request_faults = faults.begin_request(cfg.loss_probability, rng);
    let lost =
        request_faults.loss_probability > 0.0 && rng.gen::<f64>() < request_faults.loss_probability;
    if lost || request_faults.server_down {
        client.machine.active_idle(cfg.response_timeout);
        if tracer.enabled() {
            tracer.emit(
                client.machine.elapsed(),
                client.machine.breakdown(),
                TraceEventKind::EarlyWake {
                    wait: cfg.response_timeout,
                },
            );
        }
        return Err(if lost {
            RemoteFailure::ConnectionLost
        } else {
            RemoteFailure::ServerUnavailable
        });
    }

    // Response: receive the pre-compiled, linkable code.
    let down = link.transfer(code_bytes, TransferDirection::Receive, class);
    client.machine.charge_radio(Energy::ZERO, down.rx_energy);
    client.machine.power_down(down.airtime);
    if tracer.enabled() {
        tracer.emit(
            client.machine.elapsed(),
            client.machine.breakdown(),
            TraceEventKind::RxWindow {
                bytes: down.wire_bytes,
                airtime: down.airtime,
            },
        );
    }

    // Link it (one pass over the bytes, CPU active). Corrupt code is
    // caught here, after the download and the pass were both paid.
    client.machine.charge_mix(&serialize_mix(code_bytes));
    if faults.corrupts(rng) {
        return Err(RemoteFailure::CorruptResponse);
    }

    profile.install(client, level);

    Ok(DownloadReport {
        level,
        code_bytes,
        radio_energy: up.tx_energy + down.rx_energy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use jem_jvm::dsl::*;
    use jem_jvm::{Heap, MethodAttrs, MethodId, Program, Value};
    use rand::rngs::SmallRng;

    struct Quad {
        program: Program,
        method: MethodId,
    }

    impl Quad {
        fn new() -> Quad {
            let mut m = ModuleBuilder::new();
            m.func_with_attrs(
                "quad",
                vec![("n", DType::Int)],
                Some(DType::Int),
                vec![
                    let_("acc", iconst(0)),
                    for_(
                        "i",
                        iconst(0),
                        var("n"),
                        vec![for_(
                            "j",
                            iconst(0),
                            var("n"),
                            vec![assign("acc", var("acc").add(var("i").mul(var("j"))))],
                        )],
                    ),
                    ret(var("acc")),
                ],
                MethodAttrs {
                    potential: true,
                    size_param: Some(0),
                    ..Default::default()
                },
            );
            let program = m.compile().unwrap();
            let method = program.find_method(MODULE_CLASS, "quad").unwrap();
            Quad { program, method }
        }
    }

    impl Workload for Quad {
        fn name(&self) -> &str {
            "quad"
        }
        fn description(&self) -> &str {
            "quadratic kernel"
        }
        fn program(&self) -> &Program {
            &self.program
        }
        fn potential_method(&self) -> MethodId {
            self.method
        }
        fn sizes(&self) -> Vec<u32> {
            vec![8, 16, 32, 64]
        }
        fn size_meaning(&self) -> &str {
            "loop bound"
        }
        fn make_args(&self, _heap: &mut Heap, size: u32, _rng: &mut SmallRng) -> Vec<Value> {
            vec![Value::Int(size as i32)]
        }
    }

    #[test]
    fn failed_download_leaves_client_uninstalled() {
        use rand::SeedableRng;
        let w = Quad::new();
        let profile = Profile::build(&w, 7);
        let mut client = Vm::client(w.program());
        let mut link = Link::default();
        let mut faults = FaultInjector::from_spec(&jem_sim::FaultSpec::flat_loss(1.0));
        let mut rng = SmallRng::seed_from_u64(1);
        let err = try_download_and_install(
            &mut client,
            &profile,
            OptLevel::L2,
            &mut link,
            ChannelClass::C4,
            &RemoteConfig::default(),
            &mut faults,
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(err, RemoteFailure::ConnectionLost);
        assert!(!client.is_native(w.method));
        // The aborted attempt still cost real energy (the name
        // request plus the awake timeout).
        assert!(client.machine.energy() > Energy::ZERO);
    }

    #[test]
    fn download_installs_working_code() {
        let w = Quad::new();
        let profile = Profile::build(&w, 7);
        let mut client = Vm::client(w.program());
        let mut link = Link::default();
        let report = download_and_install(
            &mut client,
            &profile,
            OptLevel::L2,
            &mut link,
            ChannelClass::C4,
        );
        assert!(client.is_native(w.method));
        assert!(report.code_bytes > 0);
        assert!(report.radio_energy > Energy::ZERO);
        // And the code runs correctly.
        let out = client.invoke(w.method, vec![Value::Int(10)]).unwrap();
        let mut reference = Vm::client(w.program());
        let expect = reference.invoke(w.method, vec![Value::Int(10)]).unwrap();
        assert_eq!(out, expect);
    }

    #[test]
    fn download_cost_tracks_channel_condition() {
        let w = Quad::new();
        let profile = Profile::build(&w, 7);
        let mut costs = Vec::new();
        for class in ChannelClass::ALL {
            let mut client = Vm::client(w.program());
            let mut link = Link::default();
            download_and_install(&mut client, &profile, OptLevel::L1, &mut link, class);
            costs.push(client.machine.energy());
        }
        // C1 (poor) must cost more than C4 (good) — the uplink name
        // request pays PA power (Fig 8's remote columns fall C1→C4).
        assert!(costs[0] > costs[3], "{costs:?}");
    }

    #[test]
    fn estimate_matches_actual_download_radio_energy() {
        let w = Quad::new();
        let profile = Profile::build(&w, 7);
        for class in ChannelClass::ALL {
            for level in OptLevel::ALL {
                let mut client = Vm::client(w.program());
                let mut link = Link::default();
                let before = client.machine.energy();
                download_and_install(&mut client, &profile, level, &mut link, class);
                let actual = client.machine.energy() - before;
                let est = profile.e_remote_compile(level, class);
                // The estimate covers radio + link pass; power-down
                // leakage during the transfer is the only unmodeled
                // part, so the estimate must be within ~10%.
                let ratio = actual.ratio(est);
                assert!(
                    (0.9..=1.15).contains(&ratio),
                    "{level} {class}: est {est} vs actual {actual}"
                );
            }
        }
    }
}

//! Checkpoint/restore for scenario runs.
//!
//! A [`RunSnapshot`] is the complete dynamic state of a scenario run
//! at an invocation boundary: the RNG's word state, the channel
//! process position, both machines' cycle/energy/cache state, the
//! server protocol tables, the EWMA predictor, circuit-breaker and
//! fault-chain positions, run statistics, the per-invocation reports
//! so far, and the tracer counters. Restoring it and running the
//! remaining invocations produces results — and traces —
//! **bit-identical** to the uninterrupted run: the loop below is the
//! same code path [`crate::experiment::run_scenario_with`] uses, and
//! capture is read-only (no RNG draws, no energy charged).
//!
//! Invocation boundaries are the natural cut: both heaps are empty
//! after [`EnergyAwareVm::end_invocation`], so no object graphs need
//! serializing. The only state that cannot be copied directly is the
//! client's installed native code (raw pointers into the code space);
//! it is reproduced by replaying `profile.install` for every
//! compilation the reports record, in order — installation is
//! deterministic, so code addresses come out identical.
//!
//! [`CkptFile`] is the on-disk container (`.jck`): versioned,
//! checksummed, and written atomically by the bench layer via
//! [`jem_obs::write_atomic`]. Everything is hand-rolled binary — the
//! workspace's vendored `serde` is a no-op stub.

use crate::estimate::Profile;
use crate::experiment::ScenarioResult;
use crate::fault::{FaultInjector, FaultState};
use crate::predict::MethodState;
use crate::remote::StatusEntry;
use crate::resilience::{BreakerSnapshot, BreakerState, ExecError, ResilienceConfig};
use crate::runtime::{EnergyAwareVm, InvocationReport, RunStats};
use crate::strategy::{Mode, Strategy};
use crate::workload::Workload;
use jem_energy::{
    CacheState, CacheStats, Component, Energy, EnergyBreakdown, InstrMix, MachineState, PowerState,
    SimTime,
};
use jem_jvm::OptLevel;
use jem_obs::{TraceSink, Tracer, TracerState};
use jem_radio::{ChannelClass, ChannelProcess};
use jem_sim::Scenario;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;

/// Leading magic of a `.jck` checkpoint file.
pub const JCK_MAGIC: &[u8; 4] = b"JCK1";
const JCK_VERSION: u64 = 1;

/// A typed checkpoint decode/restore error — corruption and mismatch
/// are reported, never panicked on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptError(String);

impl CkptError {
    fn new(msg: impl Into<String>) -> CkptError {
        CkptError(msg.into())
    }
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ckpt: {}", self.0)
    }
}

impl std::error::Error for CkptError {}

/// Why a checkpointed scenario run failed.
#[derive(Debug)]
pub enum ScenarioError {
    /// The underlying execution failed (a workload VM error).
    Exec(ExecError),
    /// The resume snapshot does not fit this scenario.
    Ckpt(CkptError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Exec(e) => write!(f, "execution failed: {e:?}"),
            ScenarioError::Ckpt(e) => write!(f, "{e}"),
        }
    }
}

// ---------------------------------------------------------------
// Primitive codec
// ---------------------------------------------------------------

#[derive(Default)]
struct Enc {
    out: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    fn u64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.out.push(byte);
                return;
            }
            self.out.push(byte | 0x80);
        }
    }

    fn u32(&mut self, v: u32) {
        self.u64(u64::from(v));
    }

    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Bit-exact f64 (little-endian IEEE bits).
    fn f64(&mut self, v: f64) {
        self.out.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.out.extend_from_slice(b);
    }

    fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.f64(x);
            }
        }
    }

    fn energy(&mut self, e: Energy) {
        self.f64(e.nanojoules());
    }

    fn time(&mut self, t: SimTime) {
        self.f64(t.nanos());
    }

    fn breakdown(&mut self, b: &EnergyBreakdown) {
        for (_, e) in b.iter() {
            self.energy(e);
        }
    }

    fn opt_level(&mut self, l: Option<OptLevel>) {
        match l {
            None => self.u8(0),
            Some(l) => self.u8(1 + l.index() as u8),
        }
    }

    fn class(&mut self, c: ChannelClass) {
        let tag = ChannelClass::ALL
            .iter()
            .position(|&x| x == c)
            .expect("class in ALL");
        self.u8(tag as u8);
    }
}

struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(data: &'a [u8]) -> Dec<'a> {
        Dec { data, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, CkptError> {
        let b = *self
            .data
            .get(self.pos)
            .ok_or_else(|| CkptError::new("unexpected end of data"))?;
        self.pos += 1;
        Ok(b)
    }

    fn u64(&mut self) -> Result<u64, CkptError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 64 || (shift == 63 && b > 1) {
                return Err(CkptError::new("varint overflow"));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn u32(&mut self) -> Result<u32, CkptError> {
        u32::try_from(self.u64()?).map_err(|_| CkptError::new("u32 out of range"))
    }

    fn len(&mut self) -> Result<usize, CkptError> {
        let n = self.u64()? as usize;
        if n > self.data.len() - self.pos {
            return Err(CkptError::new("length prefix exceeds data"));
        }
        Ok(n)
    }

    fn bool(&mut self) -> Result<bool, CkptError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CkptError::new(format!("bad bool tag {other}"))),
        }
    }

    fn f64(&mut self) -> Result<f64, CkptError> {
        if self.data.len() - self.pos < 8 {
            return Err(CkptError::new("unexpected end of data"));
        }
        let mut a = [0u8; 8];
        a.copy_from_slice(&self.data[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(f64::from_bits(u64::from_le_bytes(a)))
    }

    fn bytes(&mut self) -> Result<&'a [u8], CkptError> {
        let n = self.len()?;
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn str(&mut self) -> Result<String, CkptError> {
        String::from_utf8(self.bytes()?.to_vec()).map_err(|_| CkptError::new("string not utf-8"))
    }

    fn opt_f64(&mut self) -> Result<Option<f64>, CkptError> {
        Ok(match self.u8()? {
            0 => None,
            1 => Some(self.f64()?),
            _ => return Err(CkptError::new("bad option tag")),
        })
    }

    fn energy(&mut self) -> Result<Energy, CkptError> {
        Ok(Energy::from_nanojoules(self.f64()?))
    }

    fn time(&mut self) -> Result<SimTime, CkptError> {
        Ok(SimTime::from_nanos(self.f64()?))
    }

    fn breakdown(&mut self) -> Result<EnergyBreakdown, CkptError> {
        let mut b = EnergyBreakdown::default();
        for c in Component::ALL {
            b.charge(c, self.energy()?);
        }
        Ok(b)
    }

    fn opt_level(&mut self) -> Result<Option<OptLevel>, CkptError> {
        Ok(match self.u8()? {
            0 => None,
            tag => Some(
                *OptLevel::ALL
                    .get(tag as usize - 1)
                    .ok_or_else(|| CkptError::new("bad opt-level tag"))?,
            ),
        })
    }

    fn class(&mut self) -> Result<ChannelClass, CkptError> {
        let tag = self.u8()? as usize;
        ChannelClass::ALL
            .get(tag)
            .copied()
            .ok_or_else(|| CkptError::new("bad channel-class tag"))
    }

    fn done(&self) -> Result<(), CkptError> {
        if self.pos != self.data.len() {
            return Err(CkptError::new("trailing bytes"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------
// Snapshot pieces
// ---------------------------------------------------------------

/// The dynamic position of a [`ChannelProcess`] — the specs stay in
/// the scenario; only the evolving part is checkpointed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelDyn {
    /// `Fixed` / `Iid`: nothing evolves.
    Stateless,
    /// `Sticky`: the most recent class.
    Sticky(ChannelClass),
    /// `Trace`: the replay cursor.
    Cursor(u64),
}

impl ChannelDyn {
    /// Capture the dynamic part of `channel`.
    pub fn capture(channel: &ChannelProcess) -> ChannelDyn {
        match channel {
            ChannelProcess::Fixed(_) | ChannelProcess::Iid(_) => ChannelDyn::Stateless,
            ChannelProcess::Sticky { current, .. } => ChannelDyn::Sticky(*current),
            ChannelProcess::Trace { cursor, .. } => ChannelDyn::Cursor(*cursor as u64),
        }
    }

    /// Patch the dynamic part onto a freshly cloned process of the
    /// same kind.
    ///
    /// # Errors
    /// If the snapshot was taken from a different process kind.
    pub fn apply(self, channel: &mut ChannelProcess) -> Result<(), CkptError> {
        match (self, channel) {
            (ChannelDyn::Stateless, ChannelProcess::Fixed(_) | ChannelProcess::Iid(_)) => Ok(()),
            (ChannelDyn::Sticky(c), ChannelProcess::Sticky { current, .. }) => {
                *current = c;
                Ok(())
            }
            (ChannelDyn::Cursor(k), ChannelProcess::Trace { classes, cursor }) => {
                if k as usize >= classes.len() {
                    return Err(CkptError::new("trace cursor out of range"));
                }
                *cursor = k as usize;
                Ok(())
            }
            _ => Err(CkptError::new(
                "checkpoint channel kind does not match the scenario",
            )),
        }
    }
}

fn enc_channel_dyn(e: &mut Enc, d: ChannelDyn) {
    match d {
        ChannelDyn::Stateless => e.u8(0),
        ChannelDyn::Sticky(c) => {
            e.u8(1);
            e.class(c);
        }
        ChannelDyn::Cursor(k) => {
            e.u8(2);
            e.u64(k);
        }
    }
}

fn dec_channel_dyn(d: &mut Dec<'_>) -> Result<ChannelDyn, CkptError> {
    Ok(match d.u8()? {
        0 => ChannelDyn::Stateless,
        1 => ChannelDyn::Sticky(d.class()?),
        2 => ChannelDyn::Cursor(d.u64()?),
        other => return Err(CkptError::new(format!("bad channel-dyn tag {other}"))),
    })
}

fn enc_cache(e: &mut Enc, c: &Option<CacheState>) {
    match c {
        None => e.u8(0),
        Some(c) => {
            e.u8(1);
            e.u64(c.tags.len() as u64);
            for &t in &c.tags {
                e.u64(t);
            }
            e.u64(c.stats.hits);
            e.u64(c.stats.misses);
        }
    }
}

fn dec_cache(d: &mut Dec<'_>) -> Result<Option<CacheState>, CkptError> {
    Ok(match d.u8()? {
        0 => None,
        1 => {
            let n = d.u64()? as usize;
            if n > d.data.len() - d.pos {
                return Err(CkptError::new("cache tag count exceeds data"));
            }
            let mut tags = Vec::with_capacity(n);
            for _ in 0..n {
                tags.push(d.u64()?);
            }
            let stats = CacheStats {
                hits: d.u64()?,
                misses: d.u64()?,
            };
            Some(CacheState { tags, stats })
        }
        _ => return Err(CkptError::new("bad cache option tag")),
    })
}

fn enc_machine(e: &mut Enc, m: &MachineState) {
    e.u64(m.cycles);
    e.time(m.extra_time);
    e.breakdown(&m.breakdown);
    for c in m.mix.class_counts() {
        e.u64(c);
    }
    e.u64(m.mix.mem_accesses);
    e.u8(match m.state {
        PowerState::Active => 0,
        PowerState::PowerDown => 1,
    });
    enc_cache(e, &m.icache);
    enc_cache(e, &m.dcache);
}

fn dec_machine(d: &mut Dec<'_>) -> Result<MachineState, CkptError> {
    let cycles = d.u64()?;
    let extra_time = d.time()?;
    let breakdown = d.breakdown()?;
    let mut counts = [0u64; 6];
    for c in &mut counts {
        *c = d.u64()?;
    }
    let mem_accesses = d.u64()?;
    let state = match d.u8()? {
        0 => PowerState::Active,
        1 => PowerState::PowerDown,
        other => return Err(CkptError::new(format!("bad power-state tag {other}"))),
    };
    Ok(MachineState {
        cycles,
        extra_time,
        breakdown,
        mix: InstrMix::from_parts(counts, mem_accesses),
        state,
        icache: dec_cache(d)?,
        dcache: dec_cache(d)?,
    })
}

fn enc_mode(e: &mut Enc, m: Mode) {
    match m {
        Mode::Interpret => e.u8(0),
        Mode::Remote => e.u8(1),
        Mode::Local(l) => {
            e.u8(2);
            e.u8(l.index() as u8);
        }
    }
}

fn dec_mode(d: &mut Dec<'_>) -> Result<Mode, CkptError> {
    Ok(match d.u8()? {
        0 => Mode::Interpret,
        1 => Mode::Remote,
        2 => {
            let i = d.u8()? as usize;
            Mode::Local(
                *OptLevel::ALL
                    .get(i)
                    .ok_or_else(|| CkptError::new("bad opt-level tag"))?,
            )
        }
        other => return Err(CkptError::new(format!("bad mode tag {other}"))),
    })
}

fn enc_report(e: &mut Enc, r: &InvocationReport) {
    e.u32(r.size);
    e.class(r.true_class);
    e.class(r.chosen_class);
    enc_mode(e, r.mode);
    e.energy(r.energy);
    e.time(r.time);
    e.opt_level(r.compiled_locally);
    e.opt_level(r.compiled_remotely);
    e.bool(r.fell_back);
    e.u32(r.retries);
    e.energy(r.wasted_energy);
    e.bool(r.degraded);
    match r.predicted_energy {
        None => e.u8(0),
        Some(p) => {
            e.u8(1);
            e.energy(p);
        }
    }
}

fn dec_report(d: &mut Dec<'_>) -> Result<InvocationReport, CkptError> {
    Ok(InvocationReport {
        size: d.u32()?,
        true_class: d.class()?,
        chosen_class: d.class()?,
        mode: dec_mode(d)?,
        energy: d.energy()?,
        time: d.time()?,
        compiled_locally: d.opt_level()?,
        compiled_remotely: d.opt_level()?,
        fell_back: d.bool()?,
        retries: d.u32()?,
        wasted_energy: d.energy()?,
        degraded: d.bool()?,
        predicted_energy: match d.u8()? {
            0 => None,
            1 => Some(d.energy()?),
            _ => return Err(CkptError::new("bad option tag")),
        },
    })
}

fn enc_stats(e: &mut Enc, s: &RunStats) {
    e.u64(s.remote);
    e.u64(s.interpreted);
    for l in s.local {
        e.u64(l);
    }
    e.u64(s.local_compiles);
    e.u64(s.remote_compiles);
    e.u64(s.fallbacks);
    e.u64(s.early_wakes);
    e.u64(s.retries);
    e.u64(s.breaker_trips);
    e.u64(s.breaker_recoveries);
    e.u64(s.degraded);
    e.time(s.degraded_time);
    e.energy(s.wasted_energy);
    e.u64(s.losses);
    e.u64(s.outages);
    e.u64(s.corrupt_responses);
    e.u64(s.rcomp_fallbacks);
}

fn dec_stats(d: &mut Dec<'_>) -> Result<RunStats, CkptError> {
    Ok(RunStats {
        remote: d.u64()?,
        interpreted: d.u64()?,
        local: [d.u64()?, d.u64()?, d.u64()?],
        local_compiles: d.u64()?,
        remote_compiles: d.u64()?,
        fallbacks: d.u64()?,
        early_wakes: d.u64()?,
        retries: d.u64()?,
        breaker_trips: d.u64()?,
        breaker_recoveries: d.u64()?,
        degraded: d.u64()?,
        degraded_time: d.time()?,
        wasted_energy: d.energy()?,
        losses: d.u64()?,
        outages: d.u64()?,
        corrupt_responses: d.u64()?,
        rcomp_fallbacks: d.u64()?,
    })
}

fn enc_breaker(e: &mut Enc, b: &BreakerSnapshot) {
    e.u8(match b.state {
        BreakerState::Closed => 0,
        BreakerState::Open => 1,
        BreakerState::HalfOpen => 2,
    });
    e.u32(b.consecutive_failures);
    e.u32(b.cooldown_left);
    e.u64(b.trips);
    e.u64(b.recoveries);
}

fn dec_breaker(d: &mut Dec<'_>) -> Result<BreakerSnapshot, CkptError> {
    let state = match d.u8()? {
        0 => BreakerState::Closed,
        1 => BreakerState::Open,
        2 => BreakerState::HalfOpen,
        other => return Err(CkptError::new(format!("bad breaker-state tag {other}"))),
    };
    Ok(BreakerSnapshot {
        state,
        consecutive_failures: d.u32()?,
        cooldown_left: d.u32()?,
        trips: d.u64()?,
        recoveries: d.u64()?,
    })
}

// ---------------------------------------------------------------
// RunSnapshot
// ---------------------------------------------------------------

/// Complete dynamic state of a scenario run at an invocation
/// boundary. See the module docs for the completeness argument.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSnapshot {
    /// Invocations completed so far.
    pub invocation: usize,
    /// xoshiro256++ word state of the scenario RNG.
    pub rng: [u64; 4],
    /// Channel process position.
    pub channel: ChannelDyn,
    /// Client machine (cycles, energy ledger, caches, power state).
    pub client_machine: MachineState,
    /// Client bytecode steps counter.
    pub client_steps: u64,
    /// Server machine.
    pub server_machine: MachineState,
    /// Server bytecode steps counter.
    pub server_steps: u64,
    /// Server busy-until horizon (request pipelining).
    pub server_busy_until: SimTime,
    /// The server's mobile status table.
    pub status_table: Vec<StatusEntry>,
    /// Link byte counters.
    pub link_sent: u64,
    /// Link byte counters.
    pub link_received: u64,
    /// Pilot estimator EWMA value.
    pub pilot_tracked: Option<f64>,
    /// Pilot estimator observation count.
    pub pilot_observations: u64,
    /// EWMA weight on history for size prediction (configuration, but
    /// carried so ablation runs restore onto the right weights).
    pub method_u1: f64,
    /// EWMA weight for power prediction.
    pub method_u2: f64,
    /// Invocation counter `k`.
    pub method_k: u64,
    /// Predicted size EWMA value.
    pub method_size: Option<f64>,
    /// Predicted power EWMA value.
    pub method_power: Option<f64>,
    /// Currently installed compile level on the client.
    pub installed: Option<OptLevel>,
    /// Whether the client already paid the one-time compiler load.
    pub compiler_loaded: bool,
    /// Fault chain positions.
    pub faults: FaultState,
    /// Circuit breaker state.
    pub breaker: BreakerSnapshot,
    /// Run statistics so far.
    pub stats: RunStats,
    /// Per-invocation reports so far (also the install-replay log).
    pub reports: Vec<InvocationReport>,
    /// Tracer counters (sequence/invocation/ordinal, last breakdown).
    pub tracer: TracerState,
}

impl RunSnapshot {
    /// Serialize to the hand-rolled binary form embedded in
    /// [`CkptFile`].
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        e.u64(self.invocation as u64);
        for w in self.rng {
            e.u64(w);
        }
        enc_channel_dyn(&mut e, self.channel);
        enc_machine(&mut e, &self.client_machine);
        e.u64(self.client_steps);
        enc_machine(&mut e, &self.server_machine);
        e.u64(self.server_steps);
        e.time(self.server_busy_until);
        e.u64(self.status_table.len() as u64);
        for s in &self.status_table {
            e.time(s.request_at);
            e.time(s.powered_down_until);
            e.time(s.result_ready_at);
            e.bool(s.queued);
        }
        e.u64(self.link_sent);
        e.u64(self.link_received);
        e.opt_f64(self.pilot_tracked);
        e.u64(self.pilot_observations);
        e.f64(self.method_u1);
        e.f64(self.method_u2);
        e.u64(self.method_k);
        e.opt_f64(self.method_size);
        e.opt_f64(self.method_power);
        e.opt_level(self.installed);
        e.bool(self.compiler_loaded);
        e.bool(self.faults.channel_bad);
        e.bool(self.faults.outage);
        e.bool(self.faults.slowdown);
        enc_breaker(&mut e, &self.breaker);
        enc_stats(&mut e, &self.stats);
        e.u64(self.reports.len() as u64);
        for r in &self.reports {
            enc_report(&mut e, r);
        }
        e.breakdown(&self.tracer.last);
        e.u64(self.tracer.seq);
        e.u64(self.tracer.invocation);
        e.u64(self.tracer.ordinal);
        e.out
    }

    /// Decode a snapshot serialized by [`RunSnapshot::encode`].
    ///
    /// # Errors
    /// A typed [`CkptError`] on any corruption — truncation, bad
    /// tags, trailing bytes.
    pub fn decode(data: &[u8]) -> Result<RunSnapshot, CkptError> {
        let mut d = Dec::new(data);
        let invocation = d.u64()? as usize;
        let mut rng = [0u64; 4];
        for w in &mut rng {
            *w = d.u64()?;
        }
        if rng == [0; 4] {
            return Err(CkptError::new("rng state is all-zero"));
        }
        let channel = dec_channel_dyn(&mut d)?;
        let client_machine = dec_machine(&mut d)?;
        let client_steps = d.u64()?;
        let server_machine = dec_machine(&mut d)?;
        let server_steps = d.u64()?;
        let server_busy_until = d.time()?;
        let n = d.u64()? as usize;
        if n > data.len() {
            return Err(CkptError::new("status table count exceeds data"));
        }
        let mut status_table = Vec::with_capacity(n);
        for _ in 0..n {
            status_table.push(StatusEntry {
                request_at: d.time()?,
                powered_down_until: d.time()?,
                result_ready_at: d.time()?,
                queued: d.bool()?,
            });
        }
        let link_sent = d.u64()?;
        let link_received = d.u64()?;
        let pilot_tracked = d.opt_f64()?;
        let pilot_observations = d.u64()?;
        let method_u1 = d.f64()?;
        let method_u2 = d.f64()?;
        let method_k = d.u64()?;
        let method_size = d.opt_f64()?;
        let method_power = d.opt_f64()?;
        let installed = d.opt_level()?;
        let compiler_loaded = d.bool()?;
        let faults = FaultState {
            channel_bad: d.bool()?,
            outage: d.bool()?,
            slowdown: d.bool()?,
        };
        let breaker = dec_breaker(&mut d)?;
        let stats = dec_stats(&mut d)?;
        let n = d.u64()? as usize;
        if n > data.len() {
            return Err(CkptError::new("report count exceeds data"));
        }
        let mut reports = Vec::with_capacity(n);
        for _ in 0..n {
            reports.push(dec_report(&mut d)?);
        }
        let tracer = TracerState {
            last: d.breakdown()?,
            seq: d.u64()?,
            invocation: d.u64()?,
            ordinal: d.u64()?,
        };
        d.done()?;
        if reports.len() != invocation {
            return Err(CkptError::new(
                "report count disagrees with invocation index",
            ));
        }
        Ok(RunSnapshot {
            invocation,
            rng,
            channel,
            client_machine,
            client_steps,
            server_machine,
            server_steps,
            server_busy_until,
            status_table,
            link_sent,
            link_received,
            pilot_tracked,
            pilot_observations,
            method_u1,
            method_u2,
            method_k,
            method_size,
            method_power,
            installed,
            compiler_loaded,
            faults,
            breaker,
            stats,
            reports,
            tracer,
        })
    }
}

/// Snapshot a run at an invocation boundary. Read-only: draws nothing
/// from the RNG and charges no energy, so a checkpointed run is
/// bit-identical to an unmonitored one.
pub fn capture_run(
    vm: &EnergyAwareVm<'_>,
    rng: &SmallRng,
    channel: &ChannelProcess,
    invocation: usize,
    reports: &[InvocationReport],
) -> RunSnapshot {
    let (pilot_tracked, pilot_observations) = vm.pilot.export_state();
    RunSnapshot {
        invocation,
        rng: rng.state(),
        channel: ChannelDyn::capture(channel),
        client_machine: vm.client.machine.export_state(),
        client_steps: vm.client.steps,
        server_machine: vm.server.vm.machine.export_state(),
        server_steps: vm.server.vm.steps,
        server_busy_until: vm.server.busy_until,
        status_table: vm.server.status_table.clone(),
        link_sent: vm.link.bytes_sent,
        link_received: vm.link.bytes_received,
        pilot_tracked,
        pilot_observations,
        method_u1: vm.state.size.u,
        method_u2: vm.state.power.u,
        method_k: vm.state.k,
        method_size: vm.state.size.value(),
        method_power: vm.state.power.value(),
        installed: vm.installed,
        compiler_loaded: vm.compiler_loaded,
        faults: vm.faults.export_state(),
        breaker: vm.breaker.export_state(),
        stats: vm.stats.clone(),
        reports: reports.to_vec(),
        tracer: vm.tracer.export_state(),
    }
}

/// Rebuild a runtime mid-run from `snap`: fresh client/server from
/// the workload and profile, native code reproduced by replaying the
/// reports' install log, every dynamic field restored. Returns the
/// runtime (without tracer — the caller attaches one with
/// [`Tracer::attached_with`] if tracing), the RNG, and the channel
/// process, ready to run invocation `snap.invocation`.
///
/// # Errors
/// A [`CkptError`] when the snapshot does not fit the scenario (wrong
/// channel kind, out-of-range cursor).
pub fn restore_run<'a>(
    workload: &'a dyn Workload,
    profile: &'a Profile,
    scenario: &Scenario,
    resilience: &ResilienceConfig,
    snap: &RunSnapshot,
) -> Result<(EnergyAwareVm<'a>, SmallRng, ChannelProcess), CkptError> {
    if snap.invocation > scenario.runs {
        return Err(CkptError::new(format!(
            "snapshot is {} invocations in, but the scenario only runs {}",
            snap.invocation, scenario.runs
        )));
    }
    let mut channel = scenario.channel.clone();
    snap.channel.apply(&mut channel)?;
    let mut vm = EnergyAwareVm::new(workload, profile)
        .with_faults(FaultInjector::from_spec(&scenario.faults))
        .with_resilience(*resilience);
    // Replay the install log: installation is deterministic, so the
    // code space comes out address-identical to the original run.
    for r in &snap.reports {
        if let Some(level) = r.compiled_locally {
            profile.install(&mut vm.client, level);
        }
        if let Some(level) = r.compiled_remotely {
            profile.install(&mut vm.client, level);
        }
    }
    vm.client.machine.import_state(&snap.client_machine);
    vm.client.steps = snap.client_steps;
    vm.server.vm.machine.import_state(&snap.server_machine);
    vm.server.vm.steps = snap.server_steps;
    vm.server.busy_until = snap.server_busy_until;
    vm.server.status_table = snap.status_table.clone();
    vm.link.bytes_sent = snap.link_sent;
    vm.link.bytes_received = snap.link_received;
    vm.pilot
        .import_state(snap.pilot_tracked, snap.pilot_observations);
    let mut state = MethodState::with_weights(snap.method_u1, snap.method_u2);
    state.k = snap.method_k;
    state.size.set_value(snap.method_size);
    state.power.set_value(snap.method_power);
    vm.state = state;
    vm.installed = snap.installed;
    vm.compiler_loaded = snap.compiler_loaded;
    vm.faults.import_state(&snap.faults);
    vm.breaker.import_state(&snap.breaker);
    vm.stats = snap.stats.clone();
    Ok((vm, SmallRng::from_state(snap.rng), channel))
}

// ---------------------------------------------------------------
// The resumable runner
// ---------------------------------------------------------------

/// Called at each checkpoint boundary with the snapshot and the trace
/// writer's serialized state (when the attached sink supports
/// checkpointing, e.g. a `.jtb` [`jem_obs::FileSink`]).
pub type BoundaryHook<'h> = dyn FnMut(&RunSnapshot, Option<Vec<u8>>) + 'h;

/// Run a scenario with optional checkpointing and resume. This is
/// **the** scenario loop — [`crate::experiment::run_scenario_with`]
/// delegates here with no resume and no cadence, so a checkpointed,
/// resumed, or plain run all execute identical code and produce
/// bit-identical results.
///
/// `every` is the checkpoint cadence in invocations (0 = never);
/// `on_boundary` receives each snapshot. The final invocation is not
/// checkpointed — the completed result supersedes it.
///
/// # Errors
/// [`ScenarioError::Exec`] for workload VM errors,
/// [`ScenarioError::Ckpt`] when `resume` does not fit the scenario.
#[allow(clippy::too_many_arguments)]
pub fn run_scenario_ckpt(
    workload: &dyn Workload,
    profile: &Profile,
    scenario: &Scenario,
    strategy: Strategy,
    resilience: &ResilienceConfig,
    sink: Option<&mut dyn TraceSink>,
    resume: Option<&RunSnapshot>,
    every: usize,
    mut on_boundary: Option<&mut BoundaryHook<'_>>,
) -> Result<ScenarioResult, ScenarioError> {
    let (mut vm, mut rng, mut channel, mut reports, start) = match resume {
        Some(snap) => {
            let (vm, rng, channel) = restore_run(workload, profile, scenario, resilience, snap)
                .map_err(ScenarioError::Ckpt)?;
            let mut reports = Vec::with_capacity(scenario.runs);
            reports.extend(snap.reports.iter().cloned());
            (vm, rng, channel, reports, snap.invocation)
        }
        None => (
            EnergyAwareVm::new(workload, profile)
                .with_faults(FaultInjector::from_spec(&scenario.faults))
                .with_resilience(*resilience),
            SmallRng::seed_from_u64(scenario.seed),
            scenario.channel.clone(),
            Vec::with_capacity(scenario.runs),
            0,
        ),
    };
    if let Some(sink) = sink {
        let tracer_state = resume.map(|s| s.tracer).unwrap_or_default();
        vm = vm.with_tracer(Tracer::attached_with(sink, &tracer_state));
    }

    for i in start..scenario.runs {
        let size = scenario.sizes.sample(&mut rng);
        let true_class = channel.advance(&mut rng);
        let report = vm
            .invoke_once(strategy, size, true_class, &mut rng)
            .map_err(|e| ScenarioError::Exec(e.into()))?;
        reports.push(report);
        vm.end_invocation();
        let done = i + 1;
        if every > 0 && done < scenario.runs && done % every == 0 {
            if let Some(hook) = on_boundary.as_mut() {
                let writer_state = vm.tracer.sink_ckpt_state();
                let snap = capture_run(&vm, &rng, &channel, done, &reports);
                hook(&snap, writer_state);
            }
        }
    }

    Ok(ScenarioResult {
        strategy,
        total_energy: vm.total_energy(),
        breakdown: vm.client.machine.breakdown(),
        total_time: vm.total_time(),
        invocations: scenario.runs,
        instructions: vm.client.machine.mix().total(),
        stats: vm.stats.clone(),
        reports,
    })
}

// ---------------------------------------------------------------
// The .jck container
// ---------------------------------------------------------------

/// The in-flight section of a [`CkptFile`]: one unit mid-run.
#[derive(Debug, Clone, PartialEq)]
pub struct InflightCkpt {
    /// Name of the sweep unit being executed.
    pub unit: String,
    /// Encoded [`RunSnapshot`].
    pub snapshot: Vec<u8>,
}

/// The on-disk checkpoint container (`.jck`): a fingerprint binding
/// it to one bench invocation, the results of completed sweep units,
/// the `.jtb` trace writer's serialized position (so the resumed run
/// appends exactly where the checkpoint left the stream), and at most
/// one in-flight unit's [`RunSnapshot`]. Checksummed (FNV-1a over the
/// whole body) so bit flips surface as typed errors.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CkptFile {
    /// Bench bin + argument digest; resume refuses a mismatch.
    pub fingerprint: String,
    /// Completed units: name → opaque encoded result, in completion
    /// order.
    pub completed: Vec<(String, Vec<u8>)>,
    /// Serialized `.jtb` writer state as of this checkpoint, when the
    /// sweep streams a trace.
    pub writer_state: Option<Vec<u8>>,
    /// The unit that was mid-run when the checkpoint was written.
    pub inflight: Option<InflightCkpt>,
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl CkptFile {
    /// Serialize with magic, version, and trailing checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        e.out.extend_from_slice(JCK_MAGIC);
        e.u64(JCK_VERSION);
        e.str(&self.fingerprint);
        e.u64(self.completed.len() as u64);
        for (name, payload) in &self.completed {
            e.str(name);
            e.bytes(payload);
        }
        match &self.writer_state {
            None => e.u8(0),
            Some(ws) => {
                e.u8(1);
                e.bytes(ws);
            }
        }
        match &self.inflight {
            None => e.u8(0),
            Some(inf) => {
                e.u8(1);
                e.str(&inf.unit);
                e.bytes(&inf.snapshot);
            }
        }
        let sum = fnv64(&e.out);
        e.out.extend_from_slice(&sum.to_le_bytes());
        e.out
    }

    /// Decode and verify a `.jck` image.
    ///
    /// # Errors
    /// Typed [`CkptError`]s for bad magic, version, checksum, or
    /// structure — corrupt checkpoints are reported, never panicked
    /// on and never silently half-applied.
    pub fn decode(data: &[u8]) -> Result<CkptFile, CkptError> {
        if data.len() < JCK_MAGIC.len() + 9 || &data[..4] != JCK_MAGIC {
            return Err(CkptError::new("not a .jck checkpoint (bad magic)"));
        }
        let body = &data[..data.len() - 8];
        let mut sum = [0u8; 8];
        sum.copy_from_slice(&data[data.len() - 8..]);
        if fnv64(body) != u64::from_le_bytes(sum) {
            return Err(CkptError::new("checksum mismatch (corrupt checkpoint)"));
        }
        let mut d = Dec::new(&body[4..]);
        let version = d.u64()?;
        if version != JCK_VERSION {
            return Err(CkptError::new(format!(
                "unsupported checkpoint version {version}"
            )));
        }
        let fingerprint = d.str()?;
        let n = d.u64()? as usize;
        if n > body.len() {
            return Err(CkptError::new("unit count exceeds data"));
        }
        let mut completed = Vec::with_capacity(n);
        for _ in 0..n {
            let name = d.str()?;
            let payload = d.bytes()?.to_vec();
            completed.push((name, payload));
        }
        let writer_state = match d.u8()? {
            0 => None,
            1 => Some(d.bytes()?.to_vec()),
            _ => return Err(CkptError::new("bad option tag")),
        };
        let inflight = match d.u8()? {
            0 => None,
            1 => Some(InflightCkpt {
                unit: d.str()?,
                snapshot: d.bytes()?.to_vec(),
            }),
            _ => return Err(CkptError::new("bad inflight tag")),
        };
        d.done()?;
        Ok(CkptFile {
            fingerprint,
            completed,
            writer_state,
            inflight,
        })
    }

    /// Load and decode `path`.
    ///
    /// # Errors
    /// I/O errors (as [`CkptError`]) and every [`CkptFile::decode`]
    /// error.
    pub fn load(path: &str) -> Result<CkptFile, CkptError> {
        let bytes =
            std::fs::read(path).map_err(|e| CkptError::new(format!("cannot read {path}: {e}")))?;
        CkptFile::decode(&bytes)
    }
}

/// Serialize a completed unit's [`ScenarioResult`] for the
/// `completed` section of a [`CkptFile`]. Bit-exact: every f64 is
/// stored as its IEEE bits, so a decoded result renders the same
/// tables and JSON as the original.
pub fn encode_result(r: &ScenarioResult) -> Vec<u8> {
    let mut e = Enc::default();
    let tag = Strategy::ALL
        .iter()
        .position(|&s| s == r.strategy)
        .expect("strategy in ALL");
    e.u8(tag as u8);
    e.energy(r.total_energy);
    e.breakdown(&r.breakdown);
    e.time(r.total_time);
    e.u64(r.invocations as u64);
    e.u64(r.instructions);
    enc_stats(&mut e, &r.stats);
    e.u64(r.reports.len() as u64);
    for rep in &r.reports {
        enc_report(&mut e, rep);
    }
    e.out
}

/// Decode a [`ScenarioResult`] encoded by [`encode_result`].
///
/// # Errors
/// A typed [`CkptError`] on any corruption.
pub fn decode_result(data: &[u8]) -> Result<ScenarioResult, CkptError> {
    let mut d = Dec::new(data);
    let tag = d.u8()? as usize;
    let strategy = *Strategy::ALL
        .get(tag)
        .ok_or_else(|| CkptError::new("bad strategy tag"))?;
    let total_energy = d.energy()?;
    let breakdown = d.breakdown()?;
    let total_time = d.time()?;
    let invocations = d.u64()? as usize;
    let instructions = d.u64()?;
    let stats = dec_stats(&mut d)?;
    let n = d.u64()? as usize;
    if n > data.len() {
        return Err(CkptError::new("report count exceeds data"));
    }
    let mut reports = Vec::with_capacity(n);
    for _ in 0..n {
        reports.push(dec_report(&mut d)?);
    }
    d.done()?;
    Ok(ScenarioResult {
        strategy,
        total_energy,
        breakdown,
        total_time,
        invocations,
        instructions,
        stats,
        reports,
    })
}

//! The workload abstraction that ties benchmarks to the framework.
//!
//! A [`Workload`] is one of the paper's benchmark applications: an
//! MJVM program, the name of its annotated *potential method*, the
//! size parameters it supports (paper Fig 3), and a generator that
//! materializes the input arguments for a given size. `jem-apps`
//! provides the eight paper benchmarks as implementations.

use jem_jvm::{Heap, MethodId, Program, Value};
use rand::rngs::SmallRng;

/// One benchmark application.
pub trait Workload: Sync {
    /// Short name (paper Fig 3 abbreviation, e.g. `"hpf"`).
    fn name(&self) -> &str;

    /// One-line description (paper Fig 3).
    fn description(&self) -> &str;

    /// The compiled program.
    fn program(&self) -> &Program;

    /// The annotated potential method the framework partitions on.
    fn potential_method(&self) -> MethodId;

    /// The size parameters this benchmark supports, ascending (paper
    /// Fig 3's "size parameter" column; e.g. image edge lengths).
    fn sizes(&self) -> Vec<u32>;

    /// Human-readable meaning of the size parameter.
    fn size_meaning(&self) -> &str;

    /// Materialize arguments for an invocation at `size` into `heap`.
    fn make_args(&self, heap: &mut Heap, size: u32, rng: &mut SmallRng) -> Vec<Value>;

    /// Calibration sizes for profiling (defaults to all supported
    /// sizes). Profiles are fitted over these and must interpolate the
    /// rest.
    fn calibration_sizes(&self) -> Vec<u32> {
        self.sizes()
    }

    /// Verify an invocation result for `size` (used by differential
    /// tests); `None` if the workload has no cheap independent check.
    fn check(&self, _heap: &Heap, _size: u32, _result: Option<Value>) -> Option<bool> {
        None
    }
}

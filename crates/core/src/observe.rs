//! Runtime-side observability glue: post-hoc oracles, predictor
//! accuracy, run metrics, and hand-rolled JSON codecs for the report
//! types (the vendored serde stubs are no-ops, so `BENCH_*.json`
//! emission goes through [`jem_obs::Json`] instead).
//!
//! The oracle answers "what would the cheapest mode have cost, knowing
//! the true size and channel class?" in steady state — compile costs
//! are ignored, exactly like the adaptive rule's `k → ∞` limit — and
//! the gap between actual and oracle energy, summed over a run, is the
//! strategy's cumulative regret ([`jem_obs::AccuracyTracker`]).

use crate::estimate::Profile;
use crate::experiment::ScenarioResult;
use crate::runtime::{InvocationReport, RunStats};
use crate::strategy::Mode;
use jem_energy::{Energy, SimTime};
use jem_jvm::OptLevel;
use jem_obs::{AccuracyTracker, Buckets, Json, MetricsRegistry};
use jem_radio::ChannelClass;

/// The post-hoc cheapest mode at true size `s` and true channel
/// `class`, in steady state (no compile amortization: local levels are
/// charged execution only). Ties resolve in candidate order
/// interpret, remote, L1..L3 — matching
/// [`crate::strategy::DecisionEstimates::argmin`]'s
/// prefer-the-default tie-break.
pub fn oracle_choice(profile: &Profile, size: u32, class: ChannelClass) -> (Mode, Energy) {
    let s = f64::from(size);
    let pa = profile.radio.power_amplifier[class.index()];
    let mut best = (Mode::Interpret, profile.e_interp(s));
    let remote = profile.e_remote(s, pa);
    if remote < best.1 {
        best = (Mode::Remote, remote);
    }
    for level in OptLevel::ALL {
        let e = profile.e_local(level, s);
        if e < best.1 {
            best = (Mode::Local(level), e);
        }
    }
    best
}

/// Build the predictor-accuracy / regret tracker for one finished run.
///
/// Every invocation contributes to the regret and oracle-agreement
/// totals. Invocations without a decision-time prediction (the static
/// strategies) contribute zero prediction error: their "prediction" is
/// taken to be the measured energy itself.
pub fn accuracy_of(profile: &Profile, result: &ScenarioResult) -> AccuracyTracker {
    let mut tracker = AccuracyTracker::new();
    for report in &result.reports {
        let (oracle_mode, oracle) = oracle_choice(profile, report.size, report.true_class);
        let predicted = report.predicted_energy.unwrap_or(report.energy);
        tracker.record(
            &report.mode.to_string(),
            predicted,
            report.energy,
            oracle,
            &oracle_mode.to_string(),
        );
    }
    tracker
}

/// Histogram buckets for per-invocation energy (nJ): 1 µJ … ~17 J.
pub fn energy_buckets() -> Buckets {
    Buckets::log(1e3, 2.0, 24)
}

/// Histogram buckets for per-invocation time (ns): 10 µs … ~167 s.
pub fn time_buckets() -> Buckets {
    Buckets::log(1e4, 2.0, 24)
}

/// Histogram buckets for per-invocation remote retries.
pub fn retry_buckets() -> Buckets {
    Buckets::explicit(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0])
}

/// Publish one run's counters and per-invocation histograms into
/// `registry`, labelled with the strategy key.
pub fn fill_run_metrics(registry: &mut MetricsRegistry, result: &ScenarioResult) {
    let labels = vec![("strategy", result.strategy.key().to_string())];
    registry.set_help("invocation_energy_nj", "Client energy per invocation, nJ.");
    registry.set_help("invocation_time_ns", "Client wall time per invocation, ns.");
    registry.set_help("invocation_retries", "Remote retries per invocation.");
    for report in &result.reports {
        let mode_labels = vec![
            ("strategy", result.strategy.key().to_string()),
            ("mode", report.mode.to_string()),
        ];
        registry.observe(
            "invocation_energy_nj",
            &mode_labels,
            &energy_buckets(),
            report.energy.nanojoules(),
        );
        registry.observe(
            "invocation_time_ns",
            &mode_labels,
            &time_buckets(),
            report.time.nanos(),
        );
        registry.observe(
            "invocation_retries",
            &labels,
            &retry_buckets(),
            f64::from(report.retries),
        );
    }
    let s = &result.stats;
    registry.add("invocations_total", &labels, result.invocations as u64);
    registry.add("exec_remote_total", &labels, s.remote);
    registry.add("exec_interpreted_total", &labels, s.interpreted);
    for level in OptLevel::ALL {
        let level_labels = vec![
            ("strategy", result.strategy.key().to_string()),
            ("level", level.name().to_string()),
        ];
        registry.add("exec_local_total", &level_labels, s.local[level.index()]);
    }
    registry.add("compiles_local_total", &labels, s.local_compiles);
    registry.add("compiles_remote_total", &labels, s.remote_compiles);
    registry.add("fallbacks_total", &labels, s.fallbacks);
    registry.add("early_wakes_total", &labels, s.early_wakes);
    registry.add("retries_total", &labels, s.retries);
    registry.add("breaker_trips_total", &labels, s.breaker_trips);
    registry.add("breaker_recoveries_total", &labels, s.breaker_recoveries);
    registry.add("degraded_total", &labels, s.degraded);
    registry.add("losses_total", &labels, s.losses);
    registry.add("outages_total", &labels, s.outages);
    registry.add("corrupt_responses_total", &labels, s.corrupt_responses);
    registry.add("rcomp_fallbacks_total", &labels, s.rcomp_fallbacks);
    registry.set_gauge(
        "run_total_energy_nj",
        &labels,
        result.total_energy.nanojoules(),
    );
    registry.set_gauge("run_total_time_ns", &labels, result.total_time.nanos());
    registry.set_gauge(
        "run_wasted_energy_nj",
        &labels,
        s.wasted_energy.nanojoules(),
    );
}

fn class_label(class: ChannelClass) -> String {
    format!("{class:?}")
}

fn class_from_label(label: &str) -> Result<ChannelClass, String> {
    ChannelClass::ALL
        .into_iter()
        .find(|c| format!("{c:?}") == label)
        .ok_or_else(|| format!("unknown channel class '{label}'"))
}

fn level_from_label(label: &str) -> Result<OptLevel, String> {
    OptLevel::ALL
        .into_iter()
        .find(|l| l.name() == label)
        .ok_or_else(|| format!("unknown opt level '{label}'"))
}

/// Render a [`Mode`] as its stable label ("interpret", "remote",
/// "local/Local1"…).
pub fn mode_label(mode: Mode) -> String {
    mode.to_string()
}

/// Parse a [`Mode`] back from [`mode_label`]'s output.
///
/// # Errors
/// A description of the unrecognized label.
pub fn mode_from_label(label: &str) -> Result<Mode, String> {
    match label {
        "interpret" => Ok(Mode::Interpret),
        "remote" => Ok(Mode::Remote),
        other => match other.strip_prefix("local/") {
            Some(level) => Ok(Mode::Local(level_from_label(level)?)),
            None => Err(format!("unknown mode '{label}'")),
        },
    }
}

/// Encode one [`InvocationReport`] as JSON.
pub fn report_to_json(report: &InvocationReport) -> Json {
    let opt_level = |l: Option<OptLevel>| match l {
        Some(l) => Json::Str(l.name().to_string()),
        None => Json::Null,
    };
    Json::object()
        .with("size", report.size)
        .with("true_class", class_label(report.true_class).as_str())
        .with("chosen_class", class_label(report.chosen_class).as_str())
        .with("mode", mode_label(report.mode).as_str())
        .with("energy_nj", report.energy.nanojoules())
        .with("time_ns", report.time.nanos())
        .with("compiled_locally", opt_level(report.compiled_locally))
        .with("compiled_remotely", opt_level(report.compiled_remotely))
        .with("fell_back", report.fell_back)
        .with("retries", report.retries)
        .with("wasted_energy_nj", report.wasted_energy.nanojoules())
        .with("degraded", report.degraded)
        .with(
            "predicted_energy_nj",
            match report.predicted_energy {
                Some(e) => Json::from(e.nanojoules()),
                None => Json::Null,
            },
        )
}

/// Decode an [`InvocationReport`] from [`report_to_json`]'s output.
///
/// # Errors
/// A description of the first missing or malformed field.
pub fn report_from_json(doc: &Json) -> Result<InvocationReport, String> {
    let num = |key: &str| -> Result<f64, String> {
        doc.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing number '{key}'"))
    };
    let text = |key: &str| -> Result<&str, String> {
        doc.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("missing string '{key}'"))
    };
    let flag = |key: &str| -> Result<bool, String> {
        doc.get(key)
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("missing bool '{key}'"))
    };
    let opt_level = |key: &str| -> Result<Option<OptLevel>, String> {
        match doc.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => {
                let label = v.as_str().ok_or_else(|| format!("bad level '{key}'"))?;
                level_from_label(label).map(Some)
            }
        }
    };
    Ok(InvocationReport {
        size: num("size")? as u32,
        true_class: class_from_label(text("true_class")?)?,
        chosen_class: class_from_label(text("chosen_class")?)?,
        mode: mode_from_label(text("mode")?)?,
        energy: Energy::from_nanojoules(num("energy_nj")?),
        time: SimTime::from_nanos(num("time_ns")?),
        compiled_locally: opt_level("compiled_locally")?,
        compiled_remotely: opt_level("compiled_remotely")?,
        fell_back: flag("fell_back")?,
        retries: num("retries")? as u32,
        wasted_energy: Energy::from_nanojoules(num("wasted_energy_nj")?),
        degraded: flag("degraded")?,
        predicted_energy: match doc.get("predicted_energy_nj") {
            None | Some(Json::Null) => None,
            Some(v) => Some(Energy::from_nanojoules(
                v.as_f64()
                    .ok_or_else(|| "bad predicted_energy_nj".to_string())?,
            )),
        },
    })
}

/// Encode [`RunStats`] as JSON.
pub fn stats_to_json(stats: &RunStats) -> Json {
    Json::object()
        .with("remote", stats.remote)
        .with("interpreted", stats.interpreted)
        .with("local", stats.local.to_vec())
        .with("local_compiles", stats.local_compiles)
        .with("remote_compiles", stats.remote_compiles)
        .with("fallbacks", stats.fallbacks)
        .with("early_wakes", stats.early_wakes)
        .with("retries", stats.retries)
        .with("breaker_trips", stats.breaker_trips)
        .with("breaker_recoveries", stats.breaker_recoveries)
        .with("degraded", stats.degraded)
        .with("degraded_time_ns", stats.degraded_time.nanos())
        .with("wasted_energy_nj", stats.wasted_energy.nanojoules())
        .with("losses", stats.losses)
        .with("outages", stats.outages)
        .with("corrupt_responses", stats.corrupt_responses)
        .with("rcomp_fallbacks", stats.rcomp_fallbacks)
}

/// Decode [`RunStats`] from [`stats_to_json`]'s output.
///
/// # Errors
/// A description of the first missing or malformed field.
pub fn stats_from_json(doc: &Json) -> Result<RunStats, String> {
    let u = |key: &str| -> Result<u64, String> {
        doc.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing integer '{key}'"))
    };
    let n = |key: &str| -> Result<f64, String> {
        doc.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing number '{key}'"))
    };
    let local_arr = doc
        .get("local")
        .and_then(Json::as_array)
        .ok_or_else(|| "missing array 'local'".to_string())?;
    if local_arr.len() != 3 {
        return Err(format!("'local' has {} entries, want 3", local_arr.len()));
    }
    let mut local = [0u64; 3];
    for (slot, v) in local.iter_mut().zip(local_arr) {
        *slot = v.as_u64().ok_or_else(|| "bad 'local' entry".to_string())?;
    }
    Ok(RunStats {
        remote: u("remote")?,
        interpreted: u("interpreted")?,
        local,
        local_compiles: u("local_compiles")?,
        remote_compiles: u("remote_compiles")?,
        fallbacks: u("fallbacks")?,
        early_wakes: u("early_wakes")?,
        retries: u("retries")?,
        breaker_trips: u("breaker_trips")?,
        breaker_recoveries: u("breaker_recoveries")?,
        degraded: u("degraded")?,
        degraded_time: SimTime::from_nanos(n("degraded_time_ns")?),
        wasted_energy: Energy::from_nanojoules(n("wasted_energy_nj")?),
        losses: u("losses")?,
        outages: u("outages")?,
        corrupt_responses: u("corrupt_responses")?,
        rcomp_fallbacks: u("rcomp_fallbacks")?,
    })
}

/// Encode a finished [`ScenarioResult`] for `BENCH_*.json`. With
/// `include_reports` the full per-invocation report list rides along
/// (large: one object per invocation).
pub fn scenario_result_to_json(result: &ScenarioResult, include_reports: bool) -> Json {
    let mut breakdown = Json::object();
    for (component, energy) in result.breakdown.iter() {
        breakdown = breakdown.with(component.name(), energy.nanojoules());
    }
    breakdown = breakdown.with("total", result.breakdown.total().nanojoules());
    let mut doc = Json::object()
        .with("strategy", result.strategy.key())
        .with("total_energy_nj", result.total_energy.nanojoules())
        .with("total_time_ns", result.total_time.nanos())
        .with("mean_energy_nj", result.mean_energy().nanojoules())
        .with("invocations", result.invocations)
        .with("sim_instructions", result.instructions)
        .with("breakdown_nj", breakdown)
        .with("stats", stats_to_json(&result.stats));
    if include_reports {
        doc = doc.with(
            "reports",
            Json::Arr(result.reports.iter().map(report_to_json).collect()),
        );
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_labels_round_trip() {
        let modes = [
            Mode::Interpret,
            Mode::Remote,
            Mode::Local(OptLevel::L1),
            Mode::Local(OptLevel::L3),
        ];
        for mode in modes {
            assert_eq!(mode_from_label(&mode_label(mode)).unwrap(), mode);
        }
        assert!(mode_from_label("local/Local9").is_err());
        assert!(mode_from_label("nonsense").is_err());
    }

    #[test]
    fn class_labels_round_trip() {
        for class in ChannelClass::ALL {
            assert_eq!(class_from_label(&class_label(class)).unwrap(), class);
        }
        assert!(class_from_label("C9").is_err());
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = InvocationReport {
            size: 48,
            true_class: ChannelClass::C2,
            chosen_class: ChannelClass::C3,
            mode: Mode::Local(OptLevel::L2),
            energy: Energy::from_nanojoules(1234.5),
            time: SimTime::from_nanos(987654.0),
            compiled_locally: Some(OptLevel::L2),
            compiled_remotely: None,
            fell_back: false,
            retries: 2,
            wasted_energy: Energy::from_nanojoules(55.25),
            degraded: true,
            predicted_energy: Some(Energy::from_nanojoules(1200.0)),
        };
        let doc = report_to_json(&report);
        let back = report_from_json(&doc).unwrap();
        assert_eq!(report_to_json(&back).render(), doc.render());
        assert_eq!(back.mode, report.mode);
        assert_eq!(back.predicted_energy, report.predicted_energy);
        // And through a text round trip too.
        let reparsed = Json::parse(&doc.render()).unwrap();
        assert_eq!(
            report_to_json(&report_from_json(&reparsed).unwrap()).render(),
            doc.render()
        );
    }

    #[test]
    fn stats_round_trip_through_json() {
        let stats = RunStats {
            remote: 10,
            interpreted: 3,
            local: [1, 2, 3],
            local_compiles: 2,
            remote_compiles: 1,
            fallbacks: 4,
            early_wakes: 5,
            retries: 6,
            breaker_trips: 1,
            breaker_recoveries: 1,
            degraded: 2,
            degraded_time: SimTime::from_nanos(42_000.0),
            wasted_energy: Energy::from_nanojoules(9000.5),
            losses: 3,
            outages: 1,
            corrupt_responses: 2,
            rcomp_fallbacks: 1,
        };
        let doc = stats_to_json(&stats);
        let back = stats_from_json(&Json::parse(&doc.render()).unwrap()).unwrap();
        assert_eq!(stats_to_json(&back).render(), doc.render());
    }

    #[test]
    fn merged_stats_equal_concatenated_counters() {
        let mut a = RunStats {
            remote: 1,
            local: [4, 0, 1],
            retries: 2,
            wasted_energy: Energy::from_nanojoules(10.0),
            degraded_time: SimTime::from_nanos(5.0),
            ..Default::default()
        };
        let b = RunStats {
            remote: 2,
            local: [1, 1, 1],
            retries: 1,
            wasted_energy: Energy::from_nanojoules(2.5),
            degraded_time: SimTime::from_nanos(7.0),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.remote, 3);
        assert_eq!(a.local, [5, 1, 2]);
        assert_eq!(a.retries, 3);
        assert_eq!(a.wasted_energy, Energy::from_nanojoules(12.5));
        assert_eq!(a.degraded_time, SimTime::from_nanos(12.0));
    }
}

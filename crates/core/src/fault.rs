//! Runtime fault models for the remote-execution path.
//!
//! [`FaultInjector`] turns a scenario's pure-data
//! [`jem_sim::FaultSpec`] into live stochastic processes driven by the
//! scenario RNG: a Gilbert–Elliott channel-loss chain, server
//! availability and slowdown chains, and a response-payload corrupter.
//! Everything is deterministic given the scenario seed.
//!
//! **RNG-stream parity.** The pre-fault-injection simulator consumed
//! exactly one `f64` draw per remote call (the flat loss check), even
//! at zero loss probability. The models here preserve that: an
//! inactive chain (zero entry probability) performs *no* state draw,
//! and the single loss draw always happens in
//! [`crate::remote::remote_invoke`]. Consequently
//! [`FaultInjector::none`] reproduces historical fault-free runs
//! bit-for-bit, and a frozen chain ([`GilbertElliottSpec::flat`])
//! reproduces the legacy flat-loss model bit-for-bit.

use jem_sim::{FaultSpec, GilbertElliottSpec};
use rand::Rng;

/// The two states of the Gilbert–Elliott channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelState {
    /// Low-loss state.
    Good,
    /// Bursty high-loss state.
    Bad,
}

/// A live Gilbert–Elliott loss chain.
#[derive(Debug, Clone)]
pub struct GilbertElliott {
    spec: GilbertElliottSpec,
    state: ChannelState,
}

impl GilbertElliott {
    /// Start a chain in the `Good` state.
    pub fn new(spec: GilbertElliottSpec) -> Self {
        GilbertElliott {
            spec,
            state: ChannelState::Good,
        }
    }

    /// Current state.
    pub fn state(&self) -> ChannelState {
        self.state
    }

    /// Advance the chain one request and return the loss probability
    /// that applies to this request. Draws from `rng` only when the
    /// chain can actually move (see module docs on stream parity).
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if !self.spec.is_static() {
            let p_flip = match self.state {
                ChannelState::Good => self.spec.p_good_to_bad,
                ChannelState::Bad => self.spec.p_bad_to_good,
            };
            if rng.gen::<f64>() < p_flip {
                self.state = match self.state {
                    ChannelState::Good => ChannelState::Bad,
                    ChannelState::Bad => ChannelState::Good,
                };
            }
        }
        match self.state {
            ChannelState::Good => self.spec.loss_good,
            ChannelState::Bad => self.spec.loss_bad,
        }
    }
}

/// A generic two-state fault chain (`ok`/`faulted`), inactive — and
/// drawing nothing — when its entry probability is zero.
#[derive(Debug, Clone)]
pub struct TwoState {
    p_enter: f64,
    p_exit: f64,
    faulted: bool,
}

impl TwoState {
    /// A chain that enters the faulted state with `p_enter` per step
    /// and leaves it with `p_exit` per step.
    pub fn new(p_enter: f64, p_exit: f64) -> Self {
        TwoState {
            p_enter,
            p_exit,
            faulted: false,
        }
    }

    /// Whether the chain is currently in the faulted state.
    pub fn faulted(&self) -> bool {
        self.faulted
    }

    /// Advance one step; returns whether the chain is now faulted.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        if self.p_enter > 0.0 {
            let p = if self.faulted {
                self.p_exit
            } else {
                self.p_enter
            };
            if rng.gen::<f64>() < p {
                self.faulted = !self.faulted;
            }
        }
        self.faulted
    }
}

/// Serializable snapshot of a [`FaultInjector`]'s chain positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultState {
    /// Gilbert–Elliott channel chain is in the `Bad` state.
    pub channel_bad: bool,
    /// Server-outage chain is faulted.
    pub outage: bool,
    /// Server-slowdown chain is faulted.
    pub slowdown: bool,
}

/// What the injector decided for one remote request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestFaults {
    /// Loss probability the single per-request loss draw compares
    /// against (legacy flat loss already folded in).
    pub loss_probability: f64,
    /// The server is down: the request gets no response.
    pub server_down: bool,
    /// Multiplier on server handling time (1.0 = full speed).
    pub slowdown: f64,
}

/// Live fault processes for one client/server pair.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    channel: GilbertElliott,
    outage: TwoState,
    slowdown: TwoState,
    slowdown_factor: f64,
    corruption: f64,
}

impl FaultInjector {
    /// Instantiate the processes described by `spec`.
    pub fn from_spec(spec: &FaultSpec) -> Self {
        FaultInjector {
            channel: GilbertElliott::new(spec.channel),
            outage: TwoState::new(spec.server.p_outage, spec.server.p_recovery),
            slowdown: TwoState::new(spec.server.p_slowdown, spec.server.p_speedup),
            slowdown_factor: spec.server.slowdown_factor,
            corruption: spec.corruption,
        }
    }

    /// No faults — and no RNG draws beyond the legacy per-request
    /// loss check.
    pub fn none() -> Self {
        FaultInjector::from_spec(&FaultSpec::NONE)
    }

    /// The channel chain's current state (for diagnostics).
    pub fn channel_state(&self) -> ChannelState {
        self.channel.state()
    }

    /// Snapshot the chains' mutable state for checkpointing. The
    /// specs are configuration (rebuilt from the scenario's
    /// [`FaultSpec`]); only the three chain positions are dynamic.
    pub fn export_state(&self) -> FaultState {
        FaultState {
            channel_bad: self.channel.state == ChannelState::Bad,
            outage: self.outage.faulted,
            slowdown: self.slowdown.faulted,
        }
    }

    /// Restore chain state captured by [`FaultInjector::export_state`]
    /// onto an injector built from the same spec.
    pub fn import_state(&mut self, s: &FaultState) {
        self.channel.state = if s.channel_bad {
            ChannelState::Bad
        } else {
            ChannelState::Good
        };
        self.outage.faulted = s.outage;
        self.slowdown.faulted = s.slowdown;
    }

    /// Advance every process one request and report what applies to
    /// it. `legacy_loss` is the flat per-call loss probability from
    /// [`crate::remote::RemoteConfig`]; the effective loss combines
    /// both sources, reducing exactly to whichever one is active when
    /// the other is zero (bit-for-bit with the single-source models).
    pub fn begin_request<R: Rng + ?Sized>(
        &mut self,
        legacy_loss: f64,
        rng: &mut R,
    ) -> RequestFaults {
        let chain_loss = self.channel.step(rng);
        let loss_probability = if legacy_loss <= 0.0 {
            chain_loss
        } else if chain_loss <= 0.0 {
            legacy_loss
        } else {
            // Independent loss sources: lost unless both deliver.
            1.0 - (1.0 - legacy_loss) * (1.0 - chain_loss)
        };
        let server_down = self.outage.step(rng);
        let slowdown = if self.slowdown.step(rng) {
            self.slowdown_factor.max(1.0)
        } else {
            1.0
        };
        RequestFaults {
            loss_probability,
            server_down,
            slowdown,
        }
    }

    /// Whether this delivered response is corrupted. Draws from `rng`
    /// only when the corruption model is active.
    pub fn corrupts<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        self.corruption > 0.0 && rng.gen::<f64>() < self.corruption
    }

    /// Possibly corrupt a delivered response payload in place
    /// (truncation — the client's deserializer will reject it).
    /// Returns whether corruption was injected. Draws from `rng` only
    /// when the corruption model is active.
    pub fn corrupt_response<R: Rng + ?Sized>(
        &mut self,
        payload: &mut Vec<u8>,
        rng: &mut R,
    ) -> bool {
        if self.corrupts(rng) {
            let cut = rng.gen_range(0..payload.len().max(1));
            payload.truncate(cut);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn none_injector_draws_nothing_extra() {
        // With no fault models active, begin_request must leave the
        // RNG untouched (parity with the pre-fault simulator).
        let mut rng = SmallRng::seed_from_u64(9);
        let mut reference = rng.clone();
        let mut inj = FaultInjector::none();
        let faults = inj.begin_request(0.25, &mut rng);
        assert_eq!(faults.loss_probability, 0.25);
        assert!(!faults.server_down);
        assert_eq!(faults.slowdown, 1.0);
        assert_eq!(rng.gen::<u64>(), reference.gen::<u64>());
    }

    #[test]
    fn frozen_chain_is_flat_loss() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut reference = rng.clone();
        let mut inj = FaultInjector::from_spec(&FaultSpec::flat_loss(0.4));
        let faults = inj.begin_request(0.0, &mut rng);
        assert_eq!(faults.loss_probability, 0.4);
        // Still no draws: the frozen chain never samples a transition.
        assert_eq!(rng.gen::<u64>(), reference.gen::<u64>());
    }

    #[test]
    fn bursty_chain_visits_both_states() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut inj = FaultInjector::from_spec(&FaultSpec {
            channel: GilbertElliottSpec::bursty(0.8),
            server: jem_sim::ServerFaultSpec::NONE,
            corruption: 0.0,
        });
        let mut saw = [false, false];
        for _ in 0..500 {
            let f = inj.begin_request(0.0, &mut rng);
            saw[usize::from(f.loss_probability > 0.5)] = true;
        }
        assert_eq!(saw, [true, true], "chain never moved");
    }

    #[test]
    fn burst_lengths_are_sticky() {
        // With p_bad_to_good = 0.3, bad bursts should average ~1/0.3
        // requests; measure that the chain is temporally correlated
        // rather than i.i.d.
        let spec = GilbertElliottSpec::bursty(1.0);
        let mut chain = GilbertElliott::new(spec);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut bursts = Vec::new();
        let mut current = 0u32;
        for _ in 0..20_000 {
            if chain.step(&mut rng) > 0.5 {
                current += 1;
            } else if current > 0 {
                bursts.push(current);
                current = 0;
            }
        }
        let mean = bursts.iter().map(|&b| f64::from(b)).sum::<f64>() / bursts.len() as f64;
        assert!(
            (2.0..6.0).contains(&mean),
            "mean burst length {mean} inconsistent with p_bad_to_good=0.3"
        );
    }

    #[test]
    fn outage_chain_recovers() {
        let mut inj = FaultInjector::from_spec(&FaultSpec {
            channel: GilbertElliottSpec::NONE,
            server: jem_sim::ServerFaultSpec::flaky(0.3),
            corruption: 0.0,
        });
        let mut rng = SmallRng::seed_from_u64(5);
        let mut down = 0;
        let n = 2000;
        for _ in 0..n {
            if inj.begin_request(0.0, &mut rng).server_down {
                down += 1;
            }
        }
        // Stationary fraction ≈ p_outage/(p_outage+p_recovery) = 0.6.
        let frac = f64::from(down) / f64::from(n);
        assert!((0.4..0.8).contains(&frac), "down fraction {frac}");
    }

    #[test]
    fn corruption_truncates() {
        let mut inj = FaultInjector::from_spec(&FaultSpec {
            channel: GilbertElliottSpec::NONE,
            server: jem_sim::ServerFaultSpec::NONE,
            corruption: 1.0,
        });
        let mut rng = SmallRng::seed_from_u64(1);
        let mut payload = vec![1u8; 64];
        assert!(inj.corrupt_response(&mut payload, &mut rng));
        assert!(payload.len() < 64);
    }
}

//! Scenario execution: the experiment workhorse behind Figs 6 and 7.
//!
//! A scenario run executes a workload's potential method `runs` times
//! (the paper uses 300) with sizes and channel conditions drawn from
//! the scenario's distributions, under one strategy, and reports the
//! client's total energy, time, and decision statistics.

use crate::estimate::Profile;
use crate::resilience::{ExecError, ResilienceConfig};
use crate::runtime::{InvocationReport, RunStats};
use crate::strategy::Strategy;
use crate::workload::Workload;
use jem_energy::{Energy, EnergyBreakdown, SimTime};
use jem_obs::TraceSink;
use jem_sim::Scenario;

/// Result of one scenario × strategy run.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Strategy executed.
    pub strategy: Strategy,
    /// Total client energy over all invocations.
    pub total_energy: Energy,
    /// Per-component breakdown of the client energy.
    pub breakdown: EnergyBreakdown,
    /// Total client wall time.
    pub total_time: SimTime,
    /// Number of invocations executed.
    pub invocations: usize,
    /// Simulated client instructions retired over the whole run — the
    /// denominator for simulator-throughput (instructions/sec of wall
    /// clock) in the continuous-bench harness.
    pub instructions: u64,
    /// Decision statistics.
    pub stats: RunStats,
    /// Per-invocation reports (energy, mode, …).
    pub reports: Vec<InvocationReport>,
}

impl ScenarioResult {
    /// Mean energy per invocation.
    pub fn mean_energy(&self) -> Energy {
        if self.invocations == 0 {
            Energy::ZERO
        } else {
            self.total_energy / self.invocations as f64
        }
    }

    /// Merge the aggregate statistics of per-shard results (e.g. from
    /// [`jem_sim::parallel::sweep`]) into one [`RunStats`]: the merge
    /// of per-run stats equals the stats of the concatenated runs.
    pub fn merge_stats<'r>(results: impl IntoIterator<Item = &'r ScenarioResult>) -> RunStats {
        let mut total = RunStats::default();
        for r in results {
            total.merge(&r.stats);
        }
        total
    }
}

/// Run `scenario` under `strategy` with the default resilience
/// policy (energy-budgeted retries + circuit breaker).
///
/// All benchmark workloads are VM-error-free, so this convenience
/// wrapper keeps the historical infallible signature; a surfaced
/// [`ExecError`] is a framework bug, not expected behaviour.
pub fn run_scenario(
    workload: &dyn Workload,
    profile: &Profile,
    scenario: &Scenario,
    strategy: Strategy,
) -> ScenarioResult {
    match run_scenario_with(
        workload,
        profile,
        scenario,
        strategy,
        &ResilienceConfig::default(),
    ) {
        Ok(result) => result,
        Err(err) => panic!("benchmark invocation failed: {err:?}"),
    }
}

/// Run `scenario` under `strategy` and an explicit resilience policy
/// ([`ResilienceConfig::naive`] reproduces the pre-resilience
/// timeout-and-fallback behaviour). The scenario's fault spec is
/// instantiated into live fault processes seeded — like everything
/// else — by the scenario seed, so identical seeds give identical
/// energy totals even with fault injection enabled.
///
/// # Errors
/// The first [`ExecError`] any invocation surfaces (permanent VM
/// errors from the workload itself; the remote path's transient
/// failures are already absorbed by retry/fallback below this level).
pub fn run_scenario_with(
    workload: &dyn Workload,
    profile: &Profile,
    scenario: &Scenario,
    strategy: Strategy,
    resilience: &ResilienceConfig,
) -> Result<ScenarioResult, ExecError> {
    run_scenario_inner(workload, profile, scenario, strategy, resilience, None)
}

/// [`run_scenario_with`] with a trace sink attached for the whole
/// run. Tracing reads machine state only — it draws nothing from the
/// RNG and charges no energy, so a traced run's energy totals are
/// bit-identical to the untraced run at the same seed.
///
/// # Errors
/// See [`run_scenario_with`].
pub fn run_scenario_traced(
    workload: &dyn Workload,
    profile: &Profile,
    scenario: &Scenario,
    strategy: Strategy,
    resilience: &ResilienceConfig,
    sink: &mut dyn TraceSink,
) -> Result<ScenarioResult, ExecError> {
    run_scenario_inner(
        workload,
        profile,
        scenario,
        strategy,
        resilience,
        Some(sink),
    )
}

fn run_scenario_inner(
    workload: &dyn Workload,
    profile: &Profile,
    scenario: &Scenario,
    strategy: Strategy,
    resilience: &ResilienceConfig,
    sink: Option<&mut dyn TraceSink>,
) -> Result<ScenarioResult, ExecError> {
    // One loop for plain, traced, checkpointed, and resumed runs:
    // delegating here guarantees a checkpoint/resume cycle replays
    // exactly the code an uninterrupted run executes.
    match crate::ckpt::run_scenario_ckpt(
        workload, profile, scenario, strategy, resilience, sink, None, 0, None,
    ) {
        Ok(result) => Ok(result),
        Err(crate::ckpt::ScenarioError::Exec(e)) => Err(e),
        Err(crate::ckpt::ScenarioError::Ckpt(e)) => {
            unreachable!("no resume snapshot was supplied: {e}")
        }
    }
}

/// Run a scenario under every strategy in `strategies`, returning the
/// results in the same order. (Each strategy gets its own fresh
/// client/server pair and the same scenario seed, so they see exactly
/// the same size/channel sequences.)
pub fn run_strategies(
    workload: &dyn Workload,
    profile: &Profile,
    scenario: &Scenario,
    strategies: &[Strategy],
) -> Vec<ScenarioResult> {
    strategies
        .iter()
        .map(|&s| run_scenario(workload, profile, scenario, s))
        .collect()
}

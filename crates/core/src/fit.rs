//! Polynomial least-squares curve fitting.
//!
//! "We employ a curve fitting based technique to estimate the energy
//! cost of executing a method locally. … we found that our curve
//! fitting based energy estimation is within 2% of the actual energy
//! value." The fitted curves are encoded into helper methods; here
//! they are [`CurveFit`] values attached to a deployment profile.
//!
//! Fits are ordinary least squares on a Vandermonde system, solved via
//! normal equations with partial-pivot Gaussian elimination. Inputs
//! are scaled to keep the system well-conditioned for size parameters
//! spanning several orders of magnitude.

use serde::{Deserialize, Serialize};

/// A fitted polynomial `y = c0 + c1·(x/scale) + c2·(x/scale)² + …`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurveFit {
    coeffs: Vec<f64>,
    scale: f64,
}

impl CurveFit {
    /// Fit a polynomial of `degree` to `(x, y)` points.
    ///
    /// The effective degree is clamped to `points.len() - 1`. Returns
    /// a constant-zero fit for empty input.
    pub fn fit(points: &[(f64, f64)], degree: usize) -> CurveFit {
        if points.is_empty() {
            return CurveFit {
                coeffs: vec![0.0],
                scale: 1.0,
            };
        }
        let degree = degree.min(points.len() - 1);
        let n = degree + 1;
        let scale = points
            .iter()
            .map(|&(x, _)| x.abs())
            .fold(0.0f64, f64::max)
            .max(1.0);

        // Weighted normal equations: (VᵀWV) c = VᵀW y with weights
        // 1/y², i.e. *relative* least squares. Energy curves span
        // orders of magnitude across the size range; relative
        // weighting is what makes the "within 2%" accuracy hold at the
        // small-size end too.
        let typical_y = points.iter().map(|&(_, y)| y.abs()).fold(0.0f64, f64::max);
        let mut ata = vec![vec![0.0f64; n]; n];
        let mut aty = vec![0.0f64; n];
        for &(x, y) in points {
            let xs = x / scale;
            // Normalized so weights are O(1): w = (y_max / y)².
            let denom = y.abs().max(typical_y * 1e-6).max(1e-12);
            let w = (typical_y.max(1e-12) / denom).powi(2);
            let mut pow = vec![1.0f64; 2 * n - 1];
            for i in 1..pow.len() {
                pow[i] = pow[i - 1] * xs;
            }
            for (i, row) in ata.iter_mut().enumerate() {
                for (j, cell) in row.iter_mut().enumerate() {
                    *cell += w * pow[i + j];
                }
                aty[i] += w * pow[i] * y;
            }
        }

        let coeffs = solve(ata, aty).unwrap_or_else(|| {
            // Degenerate system (e.g. repeated x): fall back to the
            // mean as a constant fit.
            let mean = points.iter().map(|&(_, y)| y).sum::<f64>() / points.len() as f64;
            vec![mean]
        });
        CurveFit { coeffs, scale }
    }

    /// Fit and, if the relative error on the calibration points
    /// exceeds `tolerance`, retry with the next higher degree up to
    /// `max_degree`. Mirrors how one would tune helper-method formulas
    /// until they are "within 2%".
    pub fn fit_adaptive(points: &[(f64, f64)], max_degree: usize, tolerance: f64) -> CurveFit {
        let mut best: Option<(f64, CurveFit)> = None;
        for degree in 1..=max_degree {
            let fit = CurveFit::fit(points, degree);
            let err = fit.max_relative_error(points);
            if err <= tolerance {
                return fit;
            }
            match &best {
                Some((e, _)) if *e <= err => {}
                _ => best = Some((err, fit)),
            }
        }
        best.map(|(_, f)| f)
            .unwrap_or_else(|| CurveFit::fit(points, 1))
    }

    /// Evaluate the fit at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        let xs = x / self.scale;
        let mut acc = 0.0;
        for &c in self.coeffs.iter().rev() {
            acc = acc * xs + c;
        }
        acc
    }

    /// Evaluate, clamped below at zero (energies and byte counts are
    /// never negative; extrapolation must not produce nonsense).
    pub fn eval_nonneg(&self, x: f64) -> f64 {
        self.eval(x).max(0.0)
    }

    /// Largest relative error over a set of points (0 when all `y`
    /// are 0).
    pub fn max_relative_error(&self, points: &[(f64, f64)]) -> f64 {
        points
            .iter()
            .map(|&(x, y)| {
                let e = self.eval(x);
                if y.abs() < 1e-12 {
                    e.abs().min(1.0)
                } else {
                    ((e - y) / y).abs()
                }
            })
            .fold(0.0, f64::max)
    }

    /// Polynomial degree of the fit.
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// A constant fit (used for size-independent quantities).
    pub fn constant(y: f64) -> CurveFit {
        CurveFit {
            coeffs: vec![y],
            scale: 1.0,
        }
    }
}

/// Gaussian elimination with partial pivoting. Returns `None` on a
/// (numerically) singular system.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    // Relative singularity threshold.
    let magnitude = a
        .iter()
        .flatten()
        .map(|v| v.abs())
        .fold(0.0f64, f64::max)
        .max(1e-300);
    let eps = magnitude * 1e-12;
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .expect("finite")
        })?;
        if a[pivot][col].abs() < eps {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            let (top, bottom) = a.split_at_mut(row);
            let pivot_row = &top[col];
            for (cell, p) in bottom[0].iter_mut().zip(pivot_row).skip(col) {
                *cell -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_exact_line() {
        let pts: Vec<(f64, f64)> = (1..=5).map(|i| (i as f64, 3.0 * i as f64 + 2.0)).collect();
        let f = CurveFit::fit(&pts, 1);
        for &(x, y) in &pts {
            assert!((f.eval(x) - y).abs() < 1e-9);
        }
        assert!((f.eval(10.0) - 32.0).abs() < 1e-6);
    }

    #[test]
    fn fits_exact_quadratic() {
        let pts: Vec<(f64, f64)> = (0..6)
            .map(|i| {
                let x = i as f64 * 100.0;
                (x, 0.5 * x * x - 2.0 * x + 7.0)
            })
            .collect();
        let f = CurveFit::fit(&pts, 2);
        assert!(
            f.max_relative_error(&pts) < 1e-6,
            "{}",
            f.max_relative_error(&pts)
        );
    }

    #[test]
    fn large_scale_inputs_stay_conditioned() {
        // Sizes like 512*512 pixels: x up to ~2.6e5.
        let pts: Vec<(f64, f64)> = [64u32, 128, 256, 512]
            .iter()
            .map(|&s| {
                let x = f64::from(s * s);
                (x, 12.0 * x + 3_000.0)
            })
            .collect();
        let f = CurveFit::fit(&pts, 2);
        // Exact linear data: tiny numerical residual only.
        assert!(f.max_relative_error(&pts) < 1e-4);
    }

    #[test]
    fn adaptive_fit_raises_degree_until_tolerance() {
        let pts: Vec<(f64, f64)> = (1..=8)
            .map(|i| {
                let x = i as f64;
                (x, x * x * x) // cubic data
            })
            .collect();
        let f = CurveFit::fit_adaptive(&pts, 4, 0.02);
        assert!(f.max_relative_error(&pts) <= 0.02);
        assert!(f.degree() >= 3);
    }

    #[test]
    fn degenerate_inputs_fall_back_to_mean() {
        let pts = vec![(5.0, 10.0), (5.0, 20.0)]; // same x twice
        let f = CurveFit::fit(&pts, 1);
        assert!((f.eval(5.0) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input_is_zero() {
        let f = CurveFit::fit(&[], 2);
        assert_eq!(f.eval(123.0), 0.0);
    }

    #[test]
    fn nonneg_clamps_extrapolation() {
        let pts = vec![(1.0, 1.0), (2.0, 0.5)];
        let f = CurveFit::fit(&pts, 1);
        assert!(f.eval(100.0) < 0.0);
        assert_eq!(f.eval_nonneg(100.0), 0.0);
    }

    #[test]
    fn constant_fit() {
        let f = CurveFit::constant(42.0);
        assert_eq!(f.eval(0.0), 42.0);
        assert_eq!(f.eval(1e9), 42.0);
    }

    #[test]
    fn noisy_fit_within_two_percent() {
        // The paper's claim: 20 held-out points within 2%. Generate a
        // smooth quadratic "energy curve" with small deterministic
        // wobble, fit on even points, validate on odd.
        let all: Vec<(f64, f64)> = (1..=40)
            .map(|i| {
                let x = i as f64 * 50.0;
                let wobble = 1.0 + 0.0015 * ((i * 2654435761u64 % 7) as f64 - 3.0);
                (x, (0.02 * x * x + 5.0 * x + 300.0) * wobble)
            })
            .collect();
        let train: Vec<_> = all.iter().copied().step_by(2).collect();
        let test: Vec<_> = all.iter().copied().skip(1).step_by(2).collect();
        let f = CurveFit::fit_adaptive(&train, 3, 0.02);
        assert!(
            f.max_relative_error(&test) < 0.02,
            "held-out error {}",
            f.max_relative_error(&test)
        );
    }
}

//! The energy-aware runtime: one client + one server, executing a
//! workload's potential method under any of the paper's strategies.
//!
//! [`EnergyAwareVm::invoke_once`] performs one top-level invocation:
//! it consults the pilot estimator for the channel, runs the helper
//! method (EWMA update + candidate evaluation, charged as decision
//! overhead — "all adaptive strategy results include the overhead for
//! the dynamic decision making"), compiles locally or downloads code
//! if the decision calls for it, then executes locally or remotely and
//! reports the client energy/time the invocation cost.

use crate::estimate::Profile;
use crate::fault::FaultInjector;
use crate::predict::MethodState;
use crate::remote::{remote_invoke_traced, RemoteConfig, RemoteFailure, ServerNode};
use crate::resilience::{CircuitBreaker, ExecError, ResilienceConfig};
use crate::strategy::{compile_source, evaluate, Mode, Strategy};
use crate::{rcomp, workload::Workload};
use jem_energy::{Energy, InstrClass, InstrMix, SimTime};
use jem_jvm::{OptLevel, Value, Vm, VmError};
use jem_obs::{TraceEventKind, Tracer};
use jem_radio::{ChannelClass, Link, PilotEstimator};
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Fixed instruction footprint of one helper-method evaluation (the
/// EWMA updates and the five-candidate comparison are "simple
/// calculations" — a few hundred instructions).
pub fn decision_mix() -> InstrMix {
    InstrMix::new()
        .with(InstrClass::Load, 60)
        .with(InstrClass::Store, 20)
        .with(InstrClass::AluSimple, 80)
        .with(InstrClass::AluComplex, 12)
        .with(InstrClass::Branch, 24)
}

/// Where one invocation actually executed, with its accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvocationReport {
    /// Size parameter of this invocation.
    pub size: u32,
    /// True channel class during the invocation.
    pub true_class: ChannelClass,
    /// Class the pilot estimator chose.
    pub chosen_class: ChannelClass,
    /// Mode the invocation executed in.
    pub mode: Mode,
    /// Client energy consumed by this invocation.
    pub energy: Energy,
    /// Client wall time of this invocation.
    pub time: SimTime,
    /// Whether this invocation (re)compiled code locally.
    pub compiled_locally: Option<OptLevel>,
    /// Whether this invocation downloaded pre-compiled code.
    pub compiled_remotely: Option<OptLevel>,
    /// Whether a remote execution lost the connection and fell back
    /// to local execution.
    pub fell_back: bool,
    /// Remote retries performed within this invocation.
    pub retries: u32,
    /// Energy burned on failed remote attempts of this invocation
    /// (transmit + waits that produced no result).
    pub wasted_energy: Energy,
    /// Whether the circuit breaker forced this invocation away from a
    /// remote decision (AA degraded to AL / static R ran locally).
    pub degraded: bool,
    /// The chosen candidate's estimated per-invocation energy at
    /// decision time (adaptive strategies only; static strategies make
    /// no prediction).
    pub predicted_energy: Option<Energy>,
}

/// Aggregate statistics over a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Invocations executed remotely.
    pub remote: u64,
    /// Invocations interpreted.
    pub interpreted: u64,
    /// Invocations run as native code, per level.
    pub local: [u64; 3],
    /// Local compilations performed.
    pub local_compiles: u64,
    /// Remote code downloads performed.
    pub remote_compiles: u64,
    /// Connection-loss local fallbacks.
    pub fallbacks: u64,
    /// Early wakes (server finished after the power-down window).
    pub early_wakes: u64,
    /// Remote retries performed.
    pub retries: u64,
    /// Times the circuit breaker opened.
    pub breaker_trips: u64,
    /// Times a half-open probe closed the breaker again.
    pub breaker_recoveries: u64,
    /// Invocations the breaker forced away from a remote decision.
    pub degraded: u64,
    /// Client wall time spent in breaker-degraded invocations.
    pub degraded_time: SimTime,
    /// Energy burned on remote attempts that produced no result.
    pub wasted_energy: Energy,
    /// Responses lost in the channel.
    pub losses: u64,
    /// Requests that hit a server outage.
    pub outages: u64,
    /// Responses delivered corrupt.
    pub corrupt_responses: u64,
    /// Code downloads that failed and degraded to local compilation.
    pub rcomp_fallbacks: u64,
}

impl AddAssign<&RunStats> for RunStats {
    fn add_assign(&mut self, rhs: &RunStats) {
        self.remote += rhs.remote;
        self.interpreted += rhs.interpreted;
        for (slot, v) in self.local.iter_mut().zip(rhs.local) {
            *slot += v;
        }
        self.local_compiles += rhs.local_compiles;
        self.remote_compiles += rhs.remote_compiles;
        self.fallbacks += rhs.fallbacks;
        self.early_wakes += rhs.early_wakes;
        self.retries += rhs.retries;
        self.breaker_trips += rhs.breaker_trips;
        self.breaker_recoveries += rhs.breaker_recoveries;
        self.degraded += rhs.degraded;
        self.degraded_time += rhs.degraded_time;
        self.wasted_energy += rhs.wasted_energy;
        self.losses += rhs.losses;
        self.outages += rhs.outages;
        self.corrupt_responses += rhs.corrupt_responses;
        self.rcomp_fallbacks += rhs.rcomp_fallbacks;
    }
}

impl AddAssign for RunStats {
    fn add_assign(&mut self, rhs: RunStats) {
        *self += &rhs;
    }
}

impl RunStats {
    /// Fold `other` into `self` field-by-field: merging per-run stats
    /// yields the stats of the concatenated runs.
    pub fn merge(&mut self, other: &RunStats) {
        *self += other;
    }
}

/// The paper's framework instantiated for one workload.
pub struct EnergyAwareVm<'a> {
    /// The workload under execution.
    pub workload: &'a dyn Workload,
    /// Its deployment profile.
    pub profile: &'a Profile,
    /// The mobile client.
    pub client: Vm<'a>,
    /// The server node (runs the plan at Local3).
    pub server: ServerNode<'a>,
    /// The wireless link.
    pub link: Link,
    /// The client's pilot channel estimator.
    pub pilot: PilotEstimator,
    /// Remote-execution protocol knobs.
    pub remote_cfg: RemoteConfig,
    /// Adaptive per-method state (EWMAs + invocation counter).
    pub state: MethodState,
    /// Currently installed compile level on the client.
    pub installed: Option<OptLevel>,
    /// Whether the client has already loaded its compiler classes
    /// (the one-time init cost is charged on the first local compile).
    pub compiler_loaded: bool,
    /// Fault injection for the remote path (none by default).
    pub faults: FaultInjector,
    /// Retry/backoff/breaker policy for the remote path.
    pub resilience: ResilienceConfig,
    /// The per-method circuit breaker.
    pub breaker: CircuitBreaker,
    /// Run statistics.
    pub stats: RunStats,
    /// Event tracer (disabled by default; attaching a sink records the
    /// full invocation timeline without touching the RNG streams).
    pub tracer: Tracer<'a>,
}

impl<'a> EnergyAwareVm<'a> {
    /// Set up client, server (with Local3 code pre-installed — the
    /// resource-rich server has already compiled everything), link and
    /// estimator state for `workload`.
    pub fn new(workload: &'a dyn Workload, profile: &'a Profile) -> Self {
        let program = workload.program();
        let client = Vm::client(program);
        let mut server_vm = Vm::server(program);
        profile.install(&mut server_vm, OptLevel::L3);
        EnergyAwareVm {
            workload,
            profile,
            client,
            server: ServerNode::new(server_vm),
            link: Link::default(),
            pilot: PilotEstimator::rake_default(),
            remote_cfg: RemoteConfig::default(),
            state: MethodState::new(),
            installed: None,
            compiler_loaded: false,
            faults: FaultInjector::none(),
            resilience: ResilienceConfig::default(),
            breaker: CircuitBreaker::new(ResilienceConfig::default().breaker),
            stats: RunStats::default(),
            tracer: Tracer::off(),
        }
    }

    /// Attach a trace sink for the rest of the run.
    pub fn with_tracer(mut self, tracer: Tracer<'a>) -> Self {
        self.tracer = tracer;
        self
    }

    /// Replace the adaptive state (for ablations over the EWMA
    /// weights).
    pub fn with_state(mut self, state: MethodState) -> Self {
        self.state = state;
        self
    }

    /// Replace the fault injector (usually built from the scenario's
    /// [`jem_sim::FaultSpec`]).
    pub fn with_faults(mut self, faults: FaultInjector) -> Self {
        self.faults = faults;
        self
    }

    /// Replace the resilience policy (resets the circuit breaker).
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = resilience;
        self.breaker = CircuitBreaker::new(resilience.breaker);
        self
    }

    /// Emit one trace event at the client's current machine state.
    /// With no sink attached this is a single branch.
    fn trace(&mut self, kind: TraceEventKind) {
        if self.tracer.enabled() {
            self.tracer.emit(
                self.client.machine.elapsed(),
                self.client.machine.breakdown(),
                kind,
            );
        }
    }

    /// Fold one remote-path failure into the statistics and the
    /// breaker.
    fn note_remote_failure(&mut self, failure: RemoteFailure) {
        match failure {
            RemoteFailure::ConnectionLost => self.stats.losses += 1,
            RemoteFailure::ServerUnavailable => self.stats.outages += 1,
            RemoteFailure::CorruptResponse => self.stats.corrupt_responses += 1,
        }
        let before = self.breaker.state();
        if self.breaker.record_failure() {
            self.stats.breaker_trips += 1;
        }
        let after = self.breaker.state();
        if after != before {
            self.trace(TraceEventKind::BreakerTransition {
                from: before.key().to_string(),
                to: after.key().to_string(),
            });
        }
    }

    /// Fold one remote-path success into the breaker.
    fn note_remote_success(&mut self) {
        let before = self.breaker.state();
        if self.breaker.record_success() {
            self.stats.breaker_recoveries += 1;
        }
        let after = self.breaker.state();
        if after != before {
            self.trace(TraceEventKind::BreakerTransition {
                from: before.key().to_string(),
                to: after.key().to_string(),
            });
        }
    }

    /// Execute one top-level invocation of the potential method under
    /// `strategy`, at input `size`, while the true channel is
    /// `true_class`.
    ///
    /// # Errors
    /// VM errors from the workload itself (all benchmarks are
    /// error-free; this surfaces bugs, not expected behaviour).
    pub fn invoke_once(
        &mut self,
        strategy: Strategy,
        size: u32,
        true_class: ChannelClass,
        rng: &mut SmallRng,
    ) -> Result<InvocationReport, VmError> {
        self.tracer.next_invocation();
        // Tick the breaker's cooldown clock once per invocation; an
        // open breaker blacklists every remote interaction below.
        let tick_before = self.breaker.state();
        self.breaker.on_invocation();
        let tick_after = self.breaker.state();
        if tick_after != tick_before && self.tracer.enabled() {
            self.trace(TraceEventKind::BreakerTransition {
                from: tick_before.key().to_string(),
                to: tick_after.key().to_string(),
            });
        }
        let allow_remote = self.breaker.allows_remote();

        // Pilot tracking happens continuously; one observation per
        // invocation keeps the estimator fresh.
        self.pilot.observe(true_class, rng);
        let chosen_class = self.pilot.recommended_class();

        if self.tracer.enabled() {
            let m = self.workload.potential_method();
            self.trace(TraceEventKind::InvocationStart {
                strategy: strategy.key().to_string(),
                method: format!(
                    "{}::{}",
                    self.workload.name(),
                    self.workload.program().qualified_name(m)
                ),
                size,
                true_class: format!("{true_class:?}"),
                chosen_class: format!("{chosen_class:?}"),
            });
        }

        let method = self.workload.potential_method();
        let cp = self.client.machine.checkpoint();
        let args = self.workload.make_args(&mut self.client.heap, size, rng);

        let mut compiled_locally = None;
        let mut compiled_remotely = None;
        let mut fell_back = false;
        let mut degraded = false;
        let mut retries: u32 = 0;
        let mut wasted = Energy::ZERO;
        let mut predicted = None;

        let mode = match strategy {
            Strategy::Remote => {
                if allow_remote {
                    Mode::Remote
                } else {
                    // Even the static-remote strategy must complete
                    // every invocation: with the breaker open it
                    // interprets locally until the cooldown elapses.
                    degraded = true;
                    Mode::Interpret
                }
            }
            Strategy::Interpreter => Mode::Interpret,
            Strategy::Local1 | Strategy::Local2 | Strategy::Local3 => {
                Mode::Local(strategy.static_level().expect("static level"))
            }
            Strategy::AdaptiveLocal | Strategy::AdaptiveAdaptive => {
                // Helper method: update predictors, evaluate, choose.
                self.client.machine.charge_mix(&decision_mix());
                let pa = self.profile.radio.power_amplifier[chosen_class.index()];
                let (k, s_bar, pa_bar) = self.state.observe(f64::from(size), pa.watts());
                let est = evaluate(
                    self.profile,
                    k,
                    s_bar,
                    jem_energy::Power::from_watts(pa_bar),
                    self.installed,
                    self.compiler_loaded,
                );
                // An open breaker excludes the remote candidate: AA
                // decides exactly like AL until the server recovers.
                let mut mode = est.argmin_with(allow_remote);
                if !allow_remote && est.argmin() == Mode::Remote {
                    degraded = true;
                }
                // Once code is installed, "interpret" can't be cheaper
                // than running the installed native code; normalize.
                if mode == Mode::Interpret {
                    if let Some(lvl) = self.installed {
                        mode = Mode::Local(lvl);
                    }
                }
                if self.tracer.enabled() {
                    self.trace(TraceEventKind::DecisionEvaluated {
                        k,
                        s_bar,
                        pa_bar_w: pa_bar,
                        interpret_nj: est.interpret.nanojoules(),
                        remote_nj: est.remote.nanojoules(),
                        local_nj: [
                            est.local[0].nanojoules(),
                            est.local[1].nanojoules(),
                            est.local[2].nanojoules(),
                        ],
                        chosen: mode.to_string(),
                        remote_allowed: allow_remote,
                    });
                }
                // The decision's per-invocation prediction: the chosen
                // candidate's k-invocation estimate averaged back down.
                let chosen_estimate = match mode {
                    Mode::Interpret => est.interpret,
                    Mode::Remote => est.remote,
                    Mode::Local(l) => est.local[l.index()],
                };
                predicted = Some(Energy::from_nanojoules(
                    chosen_estimate.nanojoules() / k.max(1) as f64,
                ));
                mode
            }
        };
        if degraded && self.tracer.enabled() {
            self.trace(TraceEventKind::Degraded {
                what: "remote-exec".to_string(),
            });
        }

        let result = match mode {
            Mode::Interpret => {
                self.stats.interpreted += 1;
                self.client.invoke(method, args)?
            }
            Mode::Local(level) => {
                if self.installed != Some(level) {
                    // Remote compilation is a remote interaction too:
                    // an open breaker forces local compilation.
                    let remote_comp = strategy == Strategy::AdaptiveAdaptive
                        && allow_remote
                        && compile_source(self.profile, level, chosen_class, self.compiler_loaded)
                            .0;
                    let mut downloaded = false;
                    if remote_comp {
                        if self.tracer.enabled() {
                            self.trace(TraceEventKind::CompileStart {
                                level: level.name().to_string(),
                                source: "download".to_string(),
                            });
                        }
                        let attempt_cp = self.client.machine.checkpoint();
                        match rcomp::try_download_and_install_traced(
                            &mut self.client,
                            self.profile,
                            level,
                            &mut self.link,
                            chosen_class,
                            &self.remote_cfg,
                            &mut self.faults,
                            rng,
                            &mut self.tracer,
                        ) {
                            Ok(_) => {
                                self.note_remote_success();
                                self.stats.remote_compiles += 1;
                                compiled_remotely = Some(level);
                                downloaded = true;
                                if self.tracer.enabled() {
                                    self.trace(TraceEventKind::CompileEnd {
                                        level: level.name().to_string(),
                                        source: "download".to_string(),
                                        ok: true,
                                    });
                                }
                            }
                            Err(failure) => {
                                // Degrade to local JIT, exactly like a
                                // failed remote execution degrades to
                                // local execution.
                                self.note_remote_failure(failure);
                                let (e, _) = self.client.machine.since(&attempt_cp);
                                wasted += e;
                                self.stats.rcomp_fallbacks += 1;
                                if self.tracer.enabled() {
                                    self.trace(TraceEventKind::CompileEnd {
                                        level: level.name().to_string(),
                                        source: "download".to_string(),
                                        ok: false,
                                    });
                                    self.trace(TraceEventKind::Fallback {
                                        reason: format!("rcomp-{}", failure.key()),
                                    });
                                }
                            }
                        }
                    }
                    if !downloaded {
                        if self.tracer.enabled() {
                            self.trace(TraceEventKind::CompileStart {
                                level: level.name().to_string(),
                                source: "local".to_string(),
                            });
                        }
                        if !self.compiler_loaded {
                            // First local compilation loads and
                            // initializes the compiler classes.
                            self.client
                                .machine
                                .charge_mix(&jem_jvm::costs::compiler_init_mix());
                            self.compiler_loaded = true;
                        }
                        self.profile
                            .charge_local_compile(&mut self.client.machine, level);
                        self.profile.install(&mut self.client, level);
                        self.stats.local_compiles += 1;
                        compiled_locally = Some(level);
                        if self.tracer.enabled() {
                            self.trace(TraceEventKind::CompileEnd {
                                level: level.name().to_string(),
                                source: "local".to_string(),
                                ok: true,
                            });
                        }
                    }
                    self.installed = Some(level);
                }
                self.stats.local[level.index()] += 1;
                self.client.invoke(method, args)?
            }
            Mode::Remote => {
                let est = self.profile.est_server_time(f64::from(size));
                let mut remote_value: Option<Option<Value>> = None;
                let mut last_failure: Option<RemoteFailure> = None;
                loop {
                    let attempt_cp = self.client.machine.checkpoint();
                    let outcome = remote_invoke_traced(
                        &mut self.client,
                        &mut self.server,
                        &mut self.link,
                        chosen_class,
                        true_class,
                        method,
                        &args,
                        est,
                        &self.remote_cfg,
                        &mut self.faults,
                        rng,
                        &mut self.tracer,
                    )?;
                    if outcome.early_wake {
                        self.stats.early_wakes += 1;
                    }
                    match outcome.result {
                        Ok(v) => {
                            self.stats.remote += 1;
                            self.note_remote_success();
                            remote_value = Some(v);
                            break;
                        }
                        Err(failure) => {
                            self.note_remote_failure(failure);
                            last_failure = Some(failure);
                            let (e, _) = self.client.machine.since(&attempt_cp);
                            wasted += e;
                            // Retry only transient failures, within
                            // both the attempt and energy budgets, and
                            // only while the breaker still allows it.
                            let retry = ExecError::from(failure).is_transient()
                                && self.breaker.allows_remote()
                                && self.resilience.retry.allows_retry(retries, wasted);
                            if !retry {
                                break;
                            }
                            retries += 1;
                            self.stats.retries += 1;
                            // Back off with the CPU and radio down.
                            let nap = self.resilience.retry.backoff(retries, rng);
                            self.client.machine.power_down(nap);
                            if self.tracer.enabled() {
                                self.trace(TraceEventKind::RetryAttempt {
                                    attempt: retries,
                                    backoff: nap,
                                });
                            }
                        }
                    }
                }
                match remote_value {
                    Some(v) => v,
                    None => {
                        // "execution begins locally."
                        fell_back = true;
                        self.stats.fallbacks += 1;
                        self.stats.interpreted += 1;
                        if self.tracer.enabled() {
                            self.trace(TraceEventKind::Fallback {
                                reason: last_failure
                                    .map_or("unknown", RemoteFailure::key)
                                    .to_string(),
                            });
                        }
                        self.client.invoke(method, args)?
                    }
                }
            }
        };

        let (energy, time) = self.client.machine.since(&cp);
        if degraded {
            self.stats.degraded += 1;
            self.stats.degraded_time += time;
        }
        self.stats.wasted_energy += wasted;
        let _ = result;
        if self.tracer.enabled() {
            self.trace(TraceEventKind::InvocationEnd {
                mode: mode.to_string(),
                energy,
                time,
                instructions: self.client.machine.mix().total(),
            });
        }
        Ok(InvocationReport {
            size,
            true_class,
            chosen_class,
            mode,
            energy,
            time,
            compiled_locally,
            compiled_remotely,
            fell_back,
            retries,
            wasted_energy: wasted,
            degraded,
            predicted_energy: predicted,
        })
    }

    /// Invoke and also return the result value (for differential
    /// testing).
    ///
    /// # Errors
    /// See [`EnergyAwareVm::invoke_once`].
    pub fn invoke_with_result(
        &mut self,
        strategy: Strategy,
        size: u32,
        true_class: ChannelClass,
        rng: &mut SmallRng,
    ) -> Result<(InvocationReport, Option<Value>), VmError> {
        // A separate args materialization keeps results comparable:
        // run the invocation, then recompute the value locally via the
        // same path the report took. Simplest correct approach: run
        // the report path but capture the result by re-running
        // locally is wasteful; instead we duplicate invoke_once's
        // small tail here.
        let report = self.invoke_once(strategy, size, true_class, rng)?;
        // Deterministic workloads: reproduce the value on a scratch VM.
        let mut scratch = Vm::client(self.workload.program());
        scratch.options.step_budget = u64::MAX;
        let mut rng2 = rng.clone();
        let args = self.workload.make_args(&mut scratch.heap, size, &mut rng2);
        let value = scratch.invoke(self.workload.potential_method(), args)?;
        Ok((report, value))
    }

    /// End-of-invocation housekeeping: drop transient object graphs on
    /// both heaps (compiled code and adaptive state survive, as in a
    /// warm JVM).
    pub fn end_invocation(&mut self) {
        self.client.heap.clear();
        self.server.vm.heap.clear();
    }

    /// Total client energy so far.
    pub fn total_energy(&self) -> Energy {
        self.client.machine.energy()
    }

    /// Total client time so far.
    pub fn total_time(&self) -> SimTime {
        self.client.machine.elapsed()
    }
}

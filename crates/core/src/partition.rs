//! The partition API: which methods may be offloaded.
//!
//! §3: "Potential methods of a class are annotated using the attribute
//! string in the class file. … Methods containing inherently local
//! operations, such as input or output activities, cannot be potential
//! methods or called by a potential method." This module reads the
//! annotations off a [`Program`] and enforces that closure rule over
//! the static call graph (including every possible virtual target).

use jem_jvm::bytecode::Op;
use jem_jvm::{MethodId, Program};
use std::collections::BTreeSet;
use std::fmt;

/// A violation of the partition rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionError {
    /// The offending potential method.
    pub potential: String,
    /// The local-only method it (transitively) reaches.
    pub local_only: String,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "potential method {} reaches inherently-local method {}",
            self.potential, self.local_only
        )
    }
}

impl std::error::Error for PartitionError {}

/// The validated partition of a program.
#[derive(Debug, Clone)]
pub struct Partition {
    potential: Vec<MethodId>,
}

impl Partition {
    /// Read annotations from `program` and validate the local-only
    /// closure rule.
    ///
    /// # Errors
    /// [`PartitionError`] if a potential method can (statically) reach
    /// a method marked `local_only`.
    pub fn analyze(program: &Program) -> Result<Partition, PartitionError> {
        let potential = program.potential_methods();
        for &pm in &potential {
            let reach = reachable(program, pm);
            for &m in &reach {
                if program.method(m).attrs.local_only {
                    return Err(PartitionError {
                        potential: program.qualified_name(pm),
                        local_only: program.qualified_name(m),
                    });
                }
            }
        }
        Ok(Partition { potential })
    }

    /// The annotated potential methods.
    pub fn potential_methods(&self) -> &[MethodId] {
        &self.potential
    }

    /// Whether `m` is a potential method.
    pub fn is_potential(&self, m: MethodId) -> bool {
        self.potential.contains(&m)
    }
}

/// All methods statically reachable from `root` (virtual call sites
/// conservatively include every implementation at the slot).
pub fn reachable(program: &Program, root: MethodId) -> BTreeSet<MethodId> {
    let mut seen: BTreeSet<MethodId> = BTreeSet::new();
    let mut stack = vec![root];
    while let Some(m) = stack.pop() {
        if !seen.insert(m) {
            continue;
        }
        for op in &program.method(m).code {
            match *op {
                Op::Call(target) => stack.push(target),
                Op::CallVirt { slot, .. } => {
                    for class in &program.classes {
                        if let Some(&target) = class.vtable.get(slot as usize) {
                            stack.push(target);
                        }
                    }
                }
                _ => {}
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_jvm::class::{MethodAttrs, MethodSig, ProgramBuilder};
    use jem_jvm::Op;

    fn attrs(potential: bool, local_only: bool) -> MethodAttrs {
        MethodAttrs {
            potential,
            local_only,
            size_param: potential.then_some(0),
        }
    }

    #[test]
    fn accepts_clean_partition() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("App", None, &[]);
        let helper = b.add_static_method(
            c,
            "helper",
            MethodSig::new(vec![], None),
            0,
            vec![Op::Ret],
            attrs(false, false),
        );
        let hot = b.add_static_method(
            c,
            "hot",
            MethodSig::new(vec![], None),
            0,
            vec![Op::Call(helper), Op::Ret],
            attrs(true, false),
        );
        let _io = b.add_static_method(
            c,
            "print",
            MethodSig::new(vec![], None),
            0,
            vec![Op::Ret],
            attrs(false, true),
        );
        let p = b.finish();
        let part = Partition::analyze(&p).unwrap();
        assert_eq!(part.potential_methods(), &[hot]);
        assert!(part.is_potential(hot));
        assert!(!part.is_potential(helper));
    }

    #[test]
    fn rejects_potential_reaching_local_only() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("App", None, &[]);
        let io = b.add_static_method(
            c,
            "print",
            MethodSig::new(vec![], None),
            0,
            vec![Op::Ret],
            attrs(false, true),
        );
        let mid = b.add_static_method(
            c,
            "mid",
            MethodSig::new(vec![], None),
            0,
            vec![Op::Call(io), Op::Ret],
            attrs(false, false),
        );
        b.add_static_method(
            c,
            "hot",
            MethodSig::new(vec![], None),
            0,
            vec![Op::Call(mid), Op::Ret],
            attrs(true, false),
        );
        let p = b.finish();
        let err = Partition::analyze(&p).unwrap_err();
        assert!(err.potential.contains("hot"));
        assert!(err.local_only.contains("print"));
    }

    #[test]
    fn virtual_targets_are_conservative() {
        let mut b = ProgramBuilder::new();
        let base = b.add_class("Base", None, &[]);
        let (_, slot) = b.add_virtual_method(
            base,
            "work",
            MethodSig::new(vec![], None),
            1,
            vec![Op::Ret],
            attrs(false, false),
        );
        let sub = b.add_class("Sub", Some(base), &[]);
        b.add_virtual_method(
            sub,
            "work",
            MethodSig::new(vec![], None),
            1,
            vec![Op::Ret],
            attrs(false, true), // the override does I/O
        );
        let app = b.add_class("App", None, &[]);
        b.add_static_method(
            app,
            "hot",
            MethodSig::new(vec![jem_jvm::Type::Ref], None),
            1,
            vec![Op::Load(0), Op::CallVirt { slot, argc: 0 }, Op::Ret],
            attrs(true, false),
        );
        let p = b.finish();
        // Even though the receiver might be Base, the Sub override is
        // a possible target and is local-only: reject.
        assert!(Partition::analyze(&p).is_err());
    }

    #[test]
    fn recursion_terminates() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("App", None, &[]);
        // Mutually recursive pair.
        let f = b.add_static_method(
            c,
            "f",
            MethodSig::new(vec![], None),
            0,
            vec![Op::Nop, Op::Ret],
            attrs(true, false),
        );
        let g = b.add_static_method(
            c,
            "g",
            MethodSig::new(vec![], None),
            0,
            vec![Op::Call(f), Op::Ret],
            attrs(false, false),
        );
        // Patch f to call g (builder gave us ids already).
        let mut p = b.finish();
        p.methods[f.0 as usize].code = vec![Op::Call(g), Op::Ret];
        let part = Partition::analyze(&p).unwrap();
        assert_eq!(part.potential_methods(), &[f]);
        let reach = reachable(&p, f);
        assert!(reach.contains(&f) && reach.contains(&g));
    }
}

//! Exponentially-weighted prediction of size parameters and channel
//! power.
//!
//! §3.2: "We predict the future parameter size and communication power
//! based on the weighted average of current and past values.
//! Specifically, at the k-th invocation …
//! `s̄k = u1·s̄(k−1) + (1−u1)·sk`, `p̄k = u2·p̄(k−1) + (1−u2)·pk`,
//! 0 ≤ u1, u2 ≤ 1. … setting both u1 and u2 to 0.7 yields satisfactory
//! results." The adaptive strategies also "optimistically assume that
//! a method executed k times will be executed k more times".

use serde::{Deserialize, Serialize};

/// The paper's recommended smoothing weight.
pub const PAPER_U: f64 = 0.7;

/// One exponentially-weighted moving average.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    /// Weight on history, `0 ≤ u ≤ 1`.
    pub u: f64,
    value: Option<f64>,
}

impl Ewma {
    /// A tracker with weight `u`.
    ///
    /// # Panics
    /// If `u` is outside `[0, 1]`.
    pub fn new(u: f64) -> Self {
        assert!((0.0..=1.0).contains(&u), "u out of [0,1]");
        Ewma { u, value: None }
    }

    /// The paper's `u = 0.7` tracker.
    pub fn paper() -> Self {
        Ewma::new(PAPER_U)
    }

    /// Restore the tracked value (checkpoint restore); `None` returns
    /// the tracker to its unseeded state.
    pub fn set_value(&mut self, value: Option<f64>) {
        self.value = value;
    }

    /// Fold in the current observation and return the updated
    /// prediction `x̄k = u·x̄(k−1) + (1−u)·xk`.
    pub fn update(&mut self, x: f64) -> f64 {
        let next = match self.value {
            None => x, // first observation seeds the tracker
            Some(prev) => self.u * prev + (1.0 - self.u) * x,
        };
        self.value = Some(next);
        next
    }

    /// Current prediction, if any observation has been folded in.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// Per-method adaptive state: invocation counter plus the two EWMA
/// trackers the helper method consults.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodState {
    /// Invocations seen so far (`k` in the paper's formulas).
    pub k: u64,
    /// Predicted size parameter.
    pub size: Ewma,
    /// Predicted transmit power (watts).
    pub power: Ewma,
}

impl MethodState {
    /// Fresh state with the paper's weights.
    pub fn new() -> Self {
        MethodState {
            k: 0,
            size: Ewma::paper(),
            power: Ewma::paper(),
        }
    }

    /// Fresh state with custom weights (for the ablation benches).
    pub fn with_weights(u1: f64, u2: f64) -> Self {
        MethodState {
            k: 0,
            size: Ewma::new(u1),
            power: Ewma::new(u2),
        }
    }

    /// Record the k-th invocation's observations; returns
    /// `(k, s̄k, p̄k)` where `k` now counts this invocation.
    pub fn observe(&mut self, size: f64, power_w: f64) -> (u64, f64, f64) {
        self.k += 1;
        let s = self.size.update(size);
        let p = self.power.update(power_w);
        (self.k, s, p)
    }

    /// The optimistic remaining-invocation estimate: a method executed
    /// `k` times is assumed to run `k` more times.
    pub fn expected_remaining(&self) -> u64 {
        self.k.max(1)
    }
}

impl Default for MethodState {
    fn default() -> Self {
        MethodState::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_seeds() {
        let mut e = Ewma::paper();
        assert_eq!(e.value(), None);
        assert_eq!(e.update(10.0), 10.0);
        assert_eq!(e.value(), Some(10.0));
    }

    #[test]
    fn paper_formula() {
        let mut e = Ewma::new(0.7);
        e.update(10.0);
        // 0.7*10 + 0.3*20 = 13
        assert!((e.update(20.0) - 13.0).abs() < 1e-12);
        // 0.7*13 + 0.3*10 = 12.1
        assert!((e.update(10.0) - 12.1).abs() < 1e-12);
    }

    #[test]
    fn u_zero_tracks_instantly_u_one_never_moves() {
        let mut fresh = Ewma::new(0.0);
        fresh.update(5.0);
        assert_eq!(fresh.update(9.0), 9.0);

        let mut frozen = Ewma::new(1.0);
        frozen.update(5.0);
        assert_eq!(frozen.update(9.0), 5.0);
    }

    #[test]
    fn prediction_stays_within_history_bounds() {
        let mut e = Ewma::paper();
        let history = [3.0, 9.0, 4.0, 8.0, 5.0, 7.0];
        let (lo, hi) = (3.0, 9.0);
        for x in history {
            let p = e.update(x);
            assert!((lo..=hi).contains(&p), "{p}");
        }
    }

    #[test]
    fn method_state_counts_and_predicts() {
        let mut st = MethodState::new();
        assert_eq!(st.expected_remaining(), 1);
        let (k, s, p) = st.observe(100.0, 0.37);
        assert_eq!(k, 1);
        assert_eq!(s, 100.0);
        assert_eq!(p, 0.37);
        let (k, s, _) = st.observe(200.0, 0.37);
        assert_eq!(k, 2);
        assert!((s - 130.0).abs() < 1e-12);
        assert_eq!(st.expected_remaining(), 2);
    }

    #[test]
    #[should_panic(expected = "u out of")]
    fn rejects_bad_weight() {
        let _ = Ewma::new(1.5);
    }
}

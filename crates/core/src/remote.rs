//! Remote method execution over the wireless link (paper Fig 4).
//!
//! Client side: serialize the arguments, transmit, power down for the
//! estimated server-handling duration, wake, receive, deserialize.
//! Server side: deserialize, dispatch by reflection (our analogue:
//! direct `MethodId` dispatch into the server VM), serialize the
//! result — and consult the **mobile status table**: "the server
//! computes the difference between the time the request was made by
//! the client and the time when the object for that client is ready.
//! If this difference is less than the estimated power-down duration,
//! the server knows that the client will still be in power-down mode,
//! and queues the data for that client until it wakes up. In case the
//! server-side computation is delayed, we incur the penalty of early
//! re-activation of the client from the power-down state."
//!
//! Connection loss: "when the result is not obtained within a
//! predefined time threshold, connectivity to server is considered
//! lost and execution begins locally" — modeled by a per-call loss
//! probability; the caller performs the local fallback.

use jem_energy::SimTime;
use jem_jvm::costs::serialize_mix;
use jem_jvm::{serial, MethodId, Value, Vm, VmError};
use jem_radio::{ChannelClass, Link, TransferDirection};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Remote-execution protocol knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RemoteConfig {
    /// How long the client waits (awake) for a response before
    /// declaring the connection lost.
    pub response_timeout: SimTime,
    /// Per-call probability that the response is lost.
    pub loss_probability: f64,
}

impl Default for RemoteConfig {
    fn default() -> Self {
        RemoteConfig {
            response_timeout: SimTime::from_millis(500.0),
            loss_probability: 0.0,
        }
    }
}

/// One row of the server's mobile status table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StatusEntry {
    /// When the client issued the request (client clock).
    pub request_at: SimTime,
    /// Until when the client declared it would be powered down.
    pub powered_down_until: SimTime,
    /// When the server finished computing the result.
    pub result_ready_at: SimTime,
    /// Whether the result had to be queued for a sleeping client.
    pub queued: bool,
}

/// The server node: a resource-rich VM plus protocol state.
#[derive(Debug)]
pub struct ServerNode<'p> {
    /// The server's VM (750 MHz SPARC).
    pub vm: Vm<'p>,
    /// The server finishes requests in order; next free instant.
    pub busy_until: SimTime,
    /// Mobile status table (history of this client's windows).
    pub status_table: Vec<StatusEntry>,
}

impl<'p> ServerNode<'p> {
    /// A server node around a server VM.
    pub fn new(vm: Vm<'p>) -> Self {
        ServerNode {
            vm,
            busy_until: SimTime::ZERO,
            status_table: Vec::new(),
        }
    }

    /// Handle one request arriving at `arrival`: deserialize, invoke,
    /// serialize. Returns `(completion time, result payload)`.
    ///
    /// # Errors
    /// Any [`VmError`] from the offloaded execution (propagated to the
    /// client as in Java RMI).
    pub fn handle(
        &mut self,
        arrival: SimTime,
        method: MethodId,
        payload: &[u8],
    ) -> Result<(SimTime, Vec<u8>), VmError> {
        let start = self.busy_until.max(arrival);
        let cp = self.vm.machine.checkpoint();
        self.vm
            .machine
            .charge_mix(&serialize_mix(payload.len() as u64));
        let args = serial::deserialize_args(&mut self.vm.heap, payload)
            .map_err(|_| VmError::StackUnderflow)?;
        let result = self.vm.invoke(method, args)?;
        let out = serial::serialize(&self.vm.heap, result.unwrap_or(Value::Null))
            .expect("server results serialize");
        self.vm
            .machine
            .charge_mix(&serialize_mix(out.len() as u64));
        let (_, handling) = self.vm.machine.since(&cp);
        let done = start + handling;
        self.busy_until = done;
        Ok((done, out))
    }
}

/// Why a remote invocation failed without a VM error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RemoteFailure {
    /// The response did not arrive within the timeout.
    ConnectionLost,
}

/// Accounting for one remote invocation.
#[derive(Debug, Clone)]
pub struct RemoteOutcome {
    /// The result value (deserialized into the *client* heap), or the
    /// failure that the caller must handle with a local fallback.
    pub result: Result<Option<Value>, RemoteFailure>,
    /// Whether the client woke before the result was ready.
    pub early_wake: bool,
    /// Whether the server queued the result for a sleeping client.
    pub queued: bool,
    /// Request payload bytes.
    pub bytes_up: u64,
    /// Response payload bytes.
    pub bytes_down: u64,
    /// Whether the transmission was repeated because the chosen power
    /// class was too optimistic for the true channel.
    pub retransmitted: bool,
}

/// Execute `method(args)` remotely.
///
/// `chosen_class` is the transmit power class the client's pilot
/// estimator selected; `true_class` is the actual channel condition —
/// transmitting with less power than the channel requires costs one
/// retransmission. `est_server_time` sets the client's power-down
/// duration.
///
/// # Errors
/// VM errors raised by the server-side execution.
#[allow(clippy::too_many_arguments)]
pub fn remote_invoke<R: Rng + ?Sized>(
    client: &mut Vm<'_>,
    server: &mut ServerNode<'_>,
    link: &mut Link,
    chosen_class: ChannelClass,
    true_class: ChannelClass,
    method: MethodId,
    args: &[Value],
    est_server_time: SimTime,
    cfg: &RemoteConfig,
    rng: &mut R,
) -> Result<RemoteOutcome, VmError> {
    // 1. Serialize the request on the client (active CPU).
    let payload = serial::serialize_args(&client.heap, args)?;
    client
        .machine
        .charge_mix(&serialize_mix(payload.len() as u64));
    let t0 = client.machine.elapsed();

    // 2. Transmit. An underpowered transmission (chosen class assumes
    // a better channel than the truth) must be repeated at the true
    // channel's power.
    let up = link.transfer(payload.len() as u64, TransferDirection::Send, chosen_class);
    client.machine.charge_radio(up.tx_energy, jem_energy::Energy::ZERO);
    client.machine.power_down(up.airtime);
    let retransmitted = chosen_class.quality() > true_class.quality();
    let mut uplink_time = up.airtime;
    if retransmitted {
        let again = link.transfer(payload.len() as u64, TransferDirection::Send, true_class);
        client
            .machine
            .charge_radio(again.tx_energy, jem_energy::Energy::ZERO);
        client.machine.power_down(again.airtime);
        uplink_time += again.airtime;
    }
    let arrival = t0 + uplink_time;

    // 3. Client powers down for the estimated server time, recording
    // its window in the server's mobile status table.
    let t_wake = arrival + est_server_time;

    // 4. Loss?
    if rng.gen::<f64>() < cfg.loss_probability {
        // Sleep through the scheduled window, then wait awake for the
        // timeout before giving up.
        client.machine.power_down(est_server_time);
        client.machine.active_idle(cfg.response_timeout);
        server.status_table.push(StatusEntry {
            request_at: t0,
            powered_down_until: t_wake,
            result_ready_at: SimTime::from_nanos(f64::INFINITY),
            queued: false,
        });
        return Ok(RemoteOutcome {
            result: Err(RemoteFailure::ConnectionLost),
            early_wake: true,
            queued: false,
            bytes_up: up.wire_bytes,
            bytes_down: 0,
            retransmitted,
        });
    }

    // 5. Server handles the request.
    let (done, out_payload) = server.handle(arrival, method, &payload)?;

    // 6. The server consults the status table: queue the result if the
    // client is still asleep; otherwise (server late) the client woke
    // early and idles until the result is ready.
    let queued = done <= t_wake;
    let early_wake = !queued;
    server.status_table.push(StatusEntry {
        request_at: t0,
        powered_down_until: t_wake,
        result_ready_at: done,
        queued,
    });

    client.machine.power_down(est_server_time);
    if early_wake {
        client.machine.active_idle(done - t_wake);
    }

    // 7. Receive (CPU still down, receiver on) and deserialize.
    let down = link.transfer(
        out_payload.len() as u64,
        TransferDirection::Receive,
        true_class,
    );
    client
        .machine
        .charge_radio(jem_energy::Energy::ZERO, down.rx_energy);
    client.machine.power_down(down.airtime);
    client
        .machine
        .charge_mix(&serialize_mix(out_payload.len() as u64));
    let value = serial::deserialize(&mut client.heap, &out_payload)
        .map_err(|_| VmError::StackUnderflow)?;
    let result = match value {
        Value::Null => None,
        v => Some(v),
    };

    Ok(RemoteOutcome {
        result: Ok(result),
        early_wake,
        queued,
        bytes_up: up.wire_bytes,
        bytes_down: down.wire_bytes,
        retransmitted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_jvm::dsl::*;
    use jem_jvm::{Program, Value};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn program() -> Program {
        let mut m = ModuleBuilder::new();
        m.func_with_attrs(
            "work",
            vec![("n", DType::Int)],
            Some(DType::Int),
            vec![
                let_("acc", iconst(0)),
                for_(
                    "i",
                    iconst(0),
                    var("n"),
                    vec![assign("acc", var("acc").add(var("i")))],
                ),
                ret(var("acc")),
            ],
            jem_jvm::MethodAttrs {
                potential: true,
                size_param: Some(0),
                ..Default::default()
            },
        );
        m.compile().unwrap()
    }

    fn setup(p: &Program) -> (Vm<'_>, ServerNode<'_>, Link, SmallRng) {
        (
            Vm::client(p),
            ServerNode::new(Vm::server(p)),
            Link::default(),
            SmallRng::seed_from_u64(1),
        )
    }

    #[test]
    fn remote_result_matches_local() {
        let p = program();
        let m = p.find_method(MODULE_CLASS, "work").unwrap();
        let (mut client, mut server, mut link, mut rng) = setup(&p);

        let mut local = Vm::client(&p);
        let expect = local.invoke(m, vec![Value::Int(100)]).unwrap();

        let out = remote_invoke(
            &mut client,
            &mut server,
            &mut link,
            ChannelClass::C4,
            ChannelClass::C4,
            m,
            &[Value::Int(100)],
            SimTime::from_millis(1.0),
            &RemoteConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.result, Ok(expect));
        assert!(!out.retransmitted);
    }

    #[test]
    fn client_burns_radio_but_not_core() {
        let p = program();
        let m = p.find_method(MODULE_CLASS, "work").unwrap();
        let (mut client, mut server, mut link, mut rng) = setup(&p);
        remote_invoke(
            &mut client,
            &mut server,
            &mut link,
            ChannelClass::C4,
            ChannelClass::C4,
            m,
            &[Value::Int(5000)],
            SimTime::from_millis(5.0),
            &RemoteConfig::default(),
            &mut rng,
        )
        .unwrap();
        let b = client.machine.breakdown();
        assert!(b.communication().nanojoules() > 0.0);
        assert!(b[jem_energy::Component::Leakage].nanojoules() > 0.0);
        // Core only did serialization work — far less than an
        // interpreted execution of 5000 loop iterations.
        let mut local = Vm::client(&p);
        local.invoke(m, vec![Value::Int(5000)]).unwrap();
        assert!(
            b[jem_energy::Component::Core]
                < local.machine.breakdown()[jem_energy::Component::Core]
        );
    }

    #[test]
    fn poor_channel_costs_more() {
        let p = program();
        let m = p.find_method(MODULE_CLASS, "work").unwrap();
        let mut energies = Vec::new();
        for class in [ChannelClass::C4, ChannelClass::C1] {
            let (mut client, mut server, mut link, mut rng) = setup(&p);
            remote_invoke(
                &mut client,
                &mut server,
                &mut link,
                class,
                class,
                m,
                &[Value::Int(100)],
                SimTime::from_millis(1.0),
                &RemoteConfig::default(),
                &mut rng,
            )
            .unwrap();
            energies.push(client.machine.energy());
        }
        assert!(energies[1] > energies[0] * 2.0, "{:?}", energies);
    }

    #[test]
    fn accurate_estimate_queues_result() {
        let p = program();
        let m = p.find_method(MODULE_CLASS, "work").unwrap();
        let (mut client, mut server, mut link, mut rng) = setup(&p);
        // Generous estimate: server will certainly finish first.
        let out = remote_invoke(
            &mut client,
            &mut server,
            &mut link,
            ChannelClass::C4,
            ChannelClass::C4,
            m,
            &[Value::Int(10)],
            SimTime::from_secs(1.0),
            &RemoteConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(out.queued);
        assert!(!out.early_wake);
        assert_eq!(server.status_table.len(), 1);
        assert!(server.status_table[0].queued);
    }

    #[test]
    fn underestimate_causes_early_wake_penalty() {
        let p = program();
        let m = p.find_method(MODULE_CLASS, "work").unwrap();
        let (mut client, mut server, mut link, mut rng) = setup(&p);
        let out = remote_invoke(
            &mut client,
            &mut server,
            &mut link,
            ChannelClass::C4,
            ChannelClass::C4,
            m,
            &[Value::Int(200_000)], // long server run
            SimTime::from_nanos(10.0), // absurdly small estimate
            &RemoteConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(out.early_wake);
        assert!(!out.queued);
    }

    #[test]
    fn connection_loss_reported() {
        let p = program();
        let m = p.find_method(MODULE_CLASS, "work").unwrap();
        let (mut client, mut server, mut link, mut rng) = setup(&p);
        let cfg = RemoteConfig {
            loss_probability: 1.0,
            ..Default::default()
        };
        let out = remote_invoke(
            &mut client,
            &mut server,
            &mut link,
            ChannelClass::C4,
            ChannelClass::C4,
            m,
            &[Value::Int(10)],
            SimTime::from_millis(1.0),
            &cfg,
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.result, Err(RemoteFailure::ConnectionLost));
        // The client burned the timeout awake.
        assert!(client.machine.elapsed() > cfg.response_timeout);
    }

    #[test]
    fn underpowered_transmission_retransmits() {
        let p = program();
        let m = p.find_method(MODULE_CLASS, "work").unwrap();
        let (mut client, mut server, mut link, mut rng) = setup(&p);
        let out = remote_invoke(
            &mut client,
            &mut server,
            &mut link,
            ChannelClass::C4, // client believes the channel is great
            ChannelClass::C1, // it is terrible
            m,
            &[Value::Int(10)],
            SimTime::from_millis(1.0),
            &RemoteConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(out.retransmitted);
    }

    #[test]
    fn server_processes_sequentially() {
        let p = program();
        let m = p.find_method(MODULE_CLASS, "work").unwrap();
        let mut server = ServerNode::new(Vm::server(&p));
        let mut heap = jem_jvm::Heap::new();
        let payload = serial::serialize_args(&heap, &[Value::Int(1000)]).unwrap();
        let _ = &mut heap;
        let (done1, _) = server.handle(SimTime::ZERO, m, &payload).unwrap();
        // Second request arrives while the first is still running.
        let (done2, _) = server.handle(SimTime::ZERO, m, &payload).unwrap();
        assert!(done2 > done1);
        assert!(done2.nanos() >= 2.0 * done1.nanos() * 0.9);
    }
}

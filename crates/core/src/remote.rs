//! Remote method execution over the wireless link (paper Fig 4).
//!
//! Client side: serialize the arguments, transmit, power down for the
//! estimated server-handling duration, wake, receive, deserialize.
//! Server side: deserialize, dispatch by reflection (our analogue:
//! direct `MethodId` dispatch into the server VM), serialize the
//! result — and consult the **mobile status table**: "the server
//! computes the difference between the time the request was made by
//! the client and the time when the object for that client is ready.
//! If this difference is less than the estimated power-down duration,
//! the server knows that the client will still be in power-down mode,
//! and queues the data for that client until it wakes up. In case the
//! server-side computation is delayed, we incur the penalty of early
//! re-activation of the client from the power-down state."
//!
//! Connection loss: "when the result is not obtained within a
//! predefined time threshold, connectivity to server is considered
//! lost and execution begins locally" — modeled by a per-call loss
//! probability; the caller performs the local fallback.

use crate::fault::FaultInjector;
use jem_energy::SimTime;
use jem_jvm::costs::serialize_mix;
use jem_jvm::{serial, MethodId, Value, Vm, VmError};
use jem_obs::{TraceEventKind, Tracer};
use jem_radio::{ChannelClass, Link, TransferDirection};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Remote-execution protocol knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RemoteConfig {
    /// How long the client waits (awake) for a response before
    /// declaring the connection lost.
    pub response_timeout: SimTime,
    /// Per-call probability that the response is lost.
    pub loss_probability: f64,
}

impl Default for RemoteConfig {
    fn default() -> Self {
        RemoteConfig {
            response_timeout: SimTime::from_millis(500.0),
            loss_probability: 0.0,
        }
    }
}

/// One row of the server's mobile status table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StatusEntry {
    /// When the client issued the request (client clock).
    pub request_at: SimTime,
    /// Until when the client declared it would be powered down.
    pub powered_down_until: SimTime,
    /// When the server finished computing the result.
    pub result_ready_at: SimTime,
    /// Whether the result had to be queued for a sleeping client.
    pub queued: bool,
}

/// The server node: a resource-rich VM plus protocol state.
#[derive(Debug)]
pub struct ServerNode<'p> {
    /// The server's VM (750 MHz SPARC).
    pub vm: Vm<'p>,
    /// The server finishes requests in order; next free instant.
    pub busy_until: SimTime,
    /// Mobile status table (history of this client's windows).
    pub status_table: Vec<StatusEntry>,
}

impl<'p> ServerNode<'p> {
    /// A server node around a server VM.
    pub fn new(vm: Vm<'p>) -> Self {
        ServerNode {
            vm,
            busy_until: SimTime::ZERO,
            status_table: Vec::new(),
        }
    }

    /// Handle one request arriving at `arrival`: deserialize, invoke,
    /// serialize. Returns `(completion time, result payload)`.
    ///
    /// # Errors
    /// Any [`VmError`] from the offloaded execution (propagated to the
    /// client as in Java RMI).
    pub fn handle(
        &mut self,
        arrival: SimTime,
        method: MethodId,
        payload: &[u8],
    ) -> Result<(SimTime, Vec<u8>), VmError> {
        self.handle_with_slowdown(arrival, method, payload, 1.0)
    }

    /// [`ServerNode::handle`] under load: the server takes
    /// `slowdown` times as long to produce the result (fault
    /// injection's `Slow` state). Energy accounting is unchanged —
    /// only the completion time stretches.
    ///
    /// # Errors
    /// See [`ServerNode::handle`].
    pub fn handle_with_slowdown(
        &mut self,
        arrival: SimTime,
        method: MethodId,
        payload: &[u8],
        slowdown: f64,
    ) -> Result<(SimTime, Vec<u8>), VmError> {
        let start = self.busy_until.max(arrival);
        let cp = self.vm.machine.checkpoint();
        self.vm
            .machine
            .charge_mix(&serialize_mix(payload.len() as u64));
        let args = serial::deserialize_args(&mut self.vm.heap, payload)
            .map_err(|_| VmError::StackUnderflow)?;
        let result = self.vm.invoke(method, args)?;
        let out = serial::serialize(&self.vm.heap, result.unwrap_or(Value::Null))
            .expect("server results serialize");
        self.vm.machine.charge_mix(&serialize_mix(out.len() as u64));
        let (_, handling) = self.vm.machine.since(&cp);
        let done = start + handling * slowdown.max(1.0);
        self.busy_until = done;
        Ok((done, out))
    }
}

/// Why a remote invocation failed without a VM error. All variants
/// are transient: a later attempt can succeed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RemoteFailure {
    /// The response did not arrive within the timeout.
    ConnectionLost,
    /// The server was down; the request got no response. From the
    /// client's clock this is indistinguishable from a lost response
    /// (same timeout, same energy), but the distinction feeds the
    /// fault statistics.
    ServerUnavailable,
    /// A response arrived but its payload failed deserialization.
    CorruptResponse,
}

impl RemoteFailure {
    /// Stable label for traces and metrics.
    pub const fn key(self) -> &'static str {
        match self {
            RemoteFailure::ConnectionLost => "connection-lost",
            RemoteFailure::ServerUnavailable => "server-unavailable",
            RemoteFailure::CorruptResponse => "corrupt-response",
        }
    }
}

/// Accounting for one remote invocation.
#[derive(Debug, Clone)]
pub struct RemoteOutcome {
    /// The result value (deserialized into the *client* heap), or the
    /// failure that the caller must handle with a local fallback.
    pub result: Result<Option<Value>, RemoteFailure>,
    /// Whether the client woke before the result was ready.
    pub early_wake: bool,
    /// Whether the server queued the result for a sleeping client.
    pub queued: bool,
    /// Request payload bytes.
    pub bytes_up: u64,
    /// Response payload bytes.
    pub bytes_down: u64,
    /// Whether the transmission was repeated because the chosen power
    /// class was too optimistic for the true channel.
    pub retransmitted: bool,
}

/// Execute `method(args)` remotely.
///
/// `chosen_class` is the transmit power class the client's pilot
/// estimator selected; `true_class` is the actual channel condition —
/// transmitting with less power than the channel requires costs one
/// retransmission. `est_server_time` sets the client's power-down
/// duration. `faults` drives the injected channel/server faults; pass
/// [`FaultInjector::none`] for a clean network (bit-for-bit identical
/// to the pre-fault-injection protocol).
///
/// # Errors
/// VM errors raised by the server-side execution.
#[allow(clippy::too_many_arguments)]
pub fn remote_invoke<R: Rng + ?Sized>(
    client: &mut Vm<'_>,
    server: &mut ServerNode<'_>,
    link: &mut Link,
    chosen_class: ChannelClass,
    true_class: ChannelClass,
    method: MethodId,
    args: &[Value],
    est_server_time: SimTime,
    cfg: &RemoteConfig,
    faults: &mut FaultInjector,
    rng: &mut R,
) -> Result<RemoteOutcome, VmError> {
    remote_invoke_traced(
        client,
        server,
        link,
        chosen_class,
        true_class,
        method,
        args,
        est_server_time,
        cfg,
        faults,
        rng,
        &mut Tracer::off(),
    )
}

/// [`remote_invoke`] with trace emission: tx/rx windows, power-down
/// and early-wake spans are recorded into `tracer` with their energy
/// deltas. With a disabled tracer this is exactly `remote_invoke` —
/// no extra RNG draws, no extra energy.
///
/// # Errors
/// VM errors raised by the server-side execution.
#[allow(clippy::too_many_arguments)]
pub fn remote_invoke_traced<R: Rng + ?Sized>(
    client: &mut Vm<'_>,
    server: &mut ServerNode<'_>,
    link: &mut Link,
    chosen_class: ChannelClass,
    true_class: ChannelClass,
    method: MethodId,
    args: &[Value],
    est_server_time: SimTime,
    cfg: &RemoteConfig,
    faults: &mut FaultInjector,
    rng: &mut R,
    tracer: &mut Tracer<'_>,
) -> Result<RemoteOutcome, VmError> {
    // 1. Serialize the request on the client (active CPU).
    let payload = serial::serialize_args(&client.heap, args)?;
    client
        .machine
        .charge_mix(&serialize_mix(payload.len() as u64));
    let t0 = client.machine.elapsed();

    // 2. Transmit. An underpowered transmission (chosen class assumes
    // a better channel than the truth) must be repeated at the true
    // channel's power.
    let up = link.transfer(payload.len() as u64, TransferDirection::Send, chosen_class);
    client
        .machine
        .charge_radio(up.tx_energy, jem_energy::Energy::ZERO);
    client.machine.power_down(up.airtime);
    if tracer.enabled() {
        tracer.emit(
            client.machine.elapsed(),
            client.machine.breakdown(),
            TraceEventKind::TxWindow {
                bytes: up.wire_bytes,
                airtime: up.airtime,
                retransmit: false,
            },
        );
    }
    let retransmitted = chosen_class.quality() > true_class.quality();
    let mut uplink_time = up.airtime;
    if retransmitted {
        let again = link.transfer(payload.len() as u64, TransferDirection::Send, true_class);
        client
            .machine
            .charge_radio(again.tx_energy, jem_energy::Energy::ZERO);
        client.machine.power_down(again.airtime);
        if tracer.enabled() {
            tracer.emit(
                client.machine.elapsed(),
                client.machine.breakdown(),
                TraceEventKind::TxWindow {
                    bytes: again.wire_bytes,
                    airtime: again.airtime,
                    retransmit: true,
                },
            );
        }
        uplink_time += again.airtime;
    }
    let arrival = t0 + uplink_time;

    // 3. Client powers down for the estimated server time, recording
    // its window in the server's mobile status table.
    let t_wake = arrival + est_server_time;

    // 4. Advance the fault processes; a lost response and a dead
    // server look identical from the client's clock: it sleeps
    // through its scheduled window while the response-timeout clock
    // runs, then waits awake only for whatever remains of the timeout
    // before giving up. (The timeout overlaps the power-down window —
    // the overlap costs power-down energy, not awake energy.)
    let request_faults = faults.begin_request(cfg.loss_probability, rng);
    let lost = rng.gen::<f64>() < request_faults.loss_probability;
    if lost || request_faults.server_down {
        let nap = est_server_time.min(cfg.response_timeout);
        client.machine.power_down(nap);
        if tracer.enabled() {
            tracer.emit(
                client.machine.elapsed(),
                client.machine.breakdown(),
                TraceEventKind::PowerDown {
                    duration: nap,
                    reason: "timeout-overlap".to_string(),
                },
            );
        }
        client.machine.active_idle(cfg.response_timeout - nap);
        if tracer.enabled() {
            tracer.emit(
                client.machine.elapsed(),
                client.machine.breakdown(),
                TraceEventKind::EarlyWake {
                    wait: cfg.response_timeout - nap,
                },
            );
        }
        server.status_table.push(StatusEntry {
            request_at: t0,
            powered_down_until: t_wake,
            result_ready_at: SimTime::from_nanos(f64::INFINITY),
            queued: false,
        });
        let failure = if lost {
            RemoteFailure::ConnectionLost
        } else {
            RemoteFailure::ServerUnavailable
        };
        return Ok(RemoteOutcome {
            result: Err(failure),
            early_wake: true,
            queued: false,
            bytes_up: up.wire_bytes,
            bytes_down: 0,
            retransmitted,
        });
    }

    // 5. Server handles the request (possibly in its Slow state).
    let (done, mut out_payload) =
        server.handle_with_slowdown(arrival, method, &payload, request_faults.slowdown)?;

    // 6. The server consults the status table: queue the result if the
    // client is still asleep; otherwise (server late) the client woke
    // early and idles until the result is ready.
    let queued = done <= t_wake;
    let early_wake = !queued;
    server.status_table.push(StatusEntry {
        request_at: t0,
        powered_down_until: t_wake,
        result_ready_at: done,
        queued,
    });

    client.machine.power_down(est_server_time);
    if tracer.enabled() {
        tracer.emit(
            client.machine.elapsed(),
            client.machine.breakdown(),
            TraceEventKind::PowerDown {
                duration: est_server_time,
                reason: "server-wait".to_string(),
            },
        );
    }
    if early_wake {
        client.machine.active_idle(done - t_wake);
        if tracer.enabled() {
            tracer.emit(
                client.machine.elapsed(),
                client.machine.breakdown(),
                TraceEventKind::EarlyWake {
                    wait: done - t_wake,
                },
            );
        }
    }

    // 7. Receive (CPU still down, receiver on) and deserialize.
    let down = link.transfer(
        out_payload.len() as u64,
        TransferDirection::Receive,
        true_class,
    );
    client
        .machine
        .charge_radio(jem_energy::Energy::ZERO, down.rx_energy);
    client.machine.power_down(down.airtime);
    if tracer.enabled() {
        tracer.emit(
            client.machine.elapsed(),
            client.machine.breakdown(),
            TraceEventKind::RxWindow {
                bytes: down.wire_bytes,
                airtime: down.airtime,
            },
        );
    }
    client
        .machine
        .charge_mix(&serialize_mix(out_payload.len() as u64));
    // Fault injection may have garbled the payload in flight; the
    // transfer above was still paid in full. Exercise the
    // deserializer on the truncated bytes (it almost always reports a
    // serial error; a prefix that happens to parse is still rejected
    // by the payload checksum) and surface a transient failure the
    // caller can retry.
    if faults.corrupt_response(&mut out_payload, rng) {
        let _ = serial::deserialize(&mut client.heap, &out_payload);
        return Ok(RemoteOutcome {
            result: Err(RemoteFailure::CorruptResponse),
            early_wake,
            queued,
            bytes_up: up.wire_bytes,
            bytes_down: down.wire_bytes,
            retransmitted,
        });
    }
    let value =
        serial::deserialize(&mut client.heap, &out_payload).map_err(|_| VmError::StackUnderflow)?;
    let result = match value {
        Value::Null => None,
        v => Some(v),
    };

    Ok(RemoteOutcome {
        result: Ok(result),
        early_wake,
        queued,
        bytes_up: up.wire_bytes,
        bytes_down: down.wire_bytes,
        retransmitted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_jvm::dsl::*;
    use jem_jvm::{Program, Value};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn program() -> Program {
        let mut m = ModuleBuilder::new();
        m.func_with_attrs(
            "work",
            vec![("n", DType::Int)],
            Some(DType::Int),
            vec![
                let_("acc", iconst(0)),
                for_(
                    "i",
                    iconst(0),
                    var("n"),
                    vec![assign("acc", var("acc").add(var("i")))],
                ),
                ret(var("acc")),
            ],
            jem_jvm::MethodAttrs {
                potential: true,
                size_param: Some(0),
                ..Default::default()
            },
        );
        m.compile().unwrap()
    }

    fn setup(p: &Program) -> (Vm<'_>, ServerNode<'_>, Link, SmallRng) {
        (
            Vm::client(p),
            ServerNode::new(Vm::server(p)),
            Link::default(),
            SmallRng::seed_from_u64(1),
        )
    }

    #[test]
    fn remote_result_matches_local() {
        let p = program();
        let m = p.find_method(MODULE_CLASS, "work").unwrap();
        let (mut client, mut server, mut link, mut rng) = setup(&p);

        let mut local = Vm::client(&p);
        let expect = local.invoke(m, vec![Value::Int(100)]).unwrap();

        let out = remote_invoke(
            &mut client,
            &mut server,
            &mut link,
            ChannelClass::C4,
            ChannelClass::C4,
            m,
            &[Value::Int(100)],
            SimTime::from_millis(1.0),
            &RemoteConfig::default(),
            &mut FaultInjector::none(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.result, Ok(expect));
        assert!(!out.retransmitted);
    }

    #[test]
    fn client_burns_radio_but_not_core() {
        let p = program();
        let m = p.find_method(MODULE_CLASS, "work").unwrap();
        let (mut client, mut server, mut link, mut rng) = setup(&p);
        remote_invoke(
            &mut client,
            &mut server,
            &mut link,
            ChannelClass::C4,
            ChannelClass::C4,
            m,
            &[Value::Int(5000)],
            SimTime::from_millis(5.0),
            &RemoteConfig::default(),
            &mut FaultInjector::none(),
            &mut rng,
        )
        .unwrap();
        let b = client.machine.breakdown();
        assert!(b.communication().nanojoules() > 0.0);
        assert!(b[jem_energy::Component::Leakage].nanojoules() > 0.0);
        // Core only did serialization work — far less than an
        // interpreted execution of 5000 loop iterations.
        let mut local = Vm::client(&p);
        local.invoke(m, vec![Value::Int(5000)]).unwrap();
        assert!(
            b[jem_energy::Component::Core] < local.machine.breakdown()[jem_energy::Component::Core]
        );
    }

    #[test]
    fn poor_channel_costs_more() {
        let p = program();
        let m = p.find_method(MODULE_CLASS, "work").unwrap();
        let mut energies = Vec::new();
        for class in [ChannelClass::C4, ChannelClass::C1] {
            let (mut client, mut server, mut link, mut rng) = setup(&p);
            remote_invoke(
                &mut client,
                &mut server,
                &mut link,
                class,
                class,
                m,
                &[Value::Int(100)],
                SimTime::from_millis(1.0),
                &RemoteConfig::default(),
                &mut FaultInjector::none(),
                &mut rng,
            )
            .unwrap();
            energies.push(client.machine.energy());
        }
        assert!(energies[1] > energies[0] * 2.0, "{:?}", energies);
    }

    #[test]
    fn accurate_estimate_queues_result() {
        let p = program();
        let m = p.find_method(MODULE_CLASS, "work").unwrap();
        let (mut client, mut server, mut link, mut rng) = setup(&p);
        // Generous estimate: server will certainly finish first.
        let out = remote_invoke(
            &mut client,
            &mut server,
            &mut link,
            ChannelClass::C4,
            ChannelClass::C4,
            m,
            &[Value::Int(10)],
            SimTime::from_secs(1.0),
            &RemoteConfig::default(),
            &mut FaultInjector::none(),
            &mut rng,
        )
        .unwrap();
        assert!(out.queued);
        assert!(!out.early_wake);
        assert_eq!(server.status_table.len(), 1);
        assert!(server.status_table[0].queued);
    }

    #[test]
    fn underestimate_causes_early_wake_penalty() {
        let p = program();
        let m = p.find_method(MODULE_CLASS, "work").unwrap();
        let (mut client, mut server, mut link, mut rng) = setup(&p);
        let out = remote_invoke(
            &mut client,
            &mut server,
            &mut link,
            ChannelClass::C4,
            ChannelClass::C4,
            m,
            &[Value::Int(200_000)],    // long server run
            SimTime::from_nanos(10.0), // absurdly small estimate
            &RemoteConfig::default(),
            &mut FaultInjector::none(),
            &mut rng,
        )
        .unwrap();
        assert!(out.early_wake);
        assert!(!out.queued);
    }

    #[test]
    fn connection_loss_reported() {
        let p = program();
        let m = p.find_method(MODULE_CLASS, "work").unwrap();
        let (mut client, mut server, mut link, mut rng) = setup(&p);
        let cfg = RemoteConfig {
            loss_probability: 1.0,
            ..Default::default()
        };
        let out = remote_invoke(
            &mut client,
            &mut server,
            &mut link,
            ChannelClass::C4,
            ChannelClass::C4,
            m,
            &[Value::Int(10)],
            SimTime::from_millis(1.0),
            &cfg,
            &mut FaultInjector::none(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.result, Err(RemoteFailure::ConnectionLost));
        // The client burned the timeout awake.
        assert!(client.machine.elapsed() > cfg.response_timeout);
    }

    #[test]
    fn lost_response_sleeps_through_powerdown_overlap() {
        // The response timeout overlaps the scheduled power-down
        // window: a client that scheduled a long nap spends most of
        // the timeout powered down and must burn less energy than one
        // that wakes almost immediately and idles awake.
        let p = program();
        let m = p.find_method(MODULE_CLASS, "work").unwrap();
        let cfg = RemoteConfig {
            loss_probability: 1.0,
            ..Default::default()
        };
        let mut energies = Vec::new();
        for est in [cfg.response_timeout, SimTime::from_nanos(10.0)] {
            let (mut client, mut server, mut link, mut rng) = setup(&p);
            remote_invoke(
                &mut client,
                &mut server,
                &mut link,
                ChannelClass::C4,
                ChannelClass::C4,
                m,
                &[Value::Int(10)],
                est,
                &cfg,
                &mut FaultInjector::none(),
                &mut rng,
            )
            .unwrap();
            energies.push(client.machine.energy());
        }
        assert!(
            energies[0] < energies[1],
            "sleeping through the timeout must be cheaper: {energies:?}"
        );
    }

    #[test]
    fn server_outage_reported() {
        let p = program();
        let m = p.find_method(MODULE_CLASS, "work").unwrap();
        let (mut client, mut server, mut link, mut rng) = setup(&p);
        let mut faults = FaultInjector::from_spec(&jem_sim::FaultSpec {
            channel: jem_sim::GilbertElliottSpec::NONE,
            server: jem_sim::ServerFaultSpec {
                p_outage: 1.0,
                p_recovery: 0.0,
                p_slowdown: 0.0,
                p_speedup: 0.0,
                slowdown_factor: 1.0,
            },
            corruption: 0.0,
        });
        let out = remote_invoke(
            &mut client,
            &mut server,
            &mut link,
            ChannelClass::C4,
            ChannelClass::C4,
            m,
            &[Value::Int(10)],
            SimTime::from_millis(1.0),
            &RemoteConfig::default(),
            &mut faults,
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.result, Err(RemoteFailure::ServerUnavailable));
        assert_eq!(out.bytes_down, 0);
    }

    #[test]
    fn corrupt_payload_reported() {
        let p = program();
        let m = p.find_method(MODULE_CLASS, "work").unwrap();
        let (mut client, mut server, mut link, mut rng) = setup(&p);
        let mut faults = FaultInjector::from_spec(&jem_sim::FaultSpec {
            channel: jem_sim::GilbertElliottSpec::NONE,
            server: jem_sim::ServerFaultSpec::NONE,
            corruption: 1.0,
        });
        let out = remote_invoke(
            &mut client,
            &mut server,
            &mut link,
            ChannelClass::C4,
            ChannelClass::C4,
            m,
            &[Value::Int(10)],
            SimTime::from_millis(1.0),
            &RemoteConfig::default(),
            &mut faults,
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.result, Err(RemoteFailure::CorruptResponse));
        // The response bytes were received (and paid for) in full.
        assert!(out.bytes_down > 0);
    }

    #[test]
    fn slow_server_delays_completion() {
        let p = program();
        let m = p.find_method(MODULE_CLASS, "work").unwrap();
        let mut server = ServerNode::new(Vm::server(&p));
        let heap = jem_jvm::Heap::new();
        let payload = serial::serialize_args(&heap, &[Value::Int(1000)]).unwrap();
        let (fast, _) = server.handle(SimTime::ZERO, m, &payload).unwrap();
        let mut slow_server = ServerNode::new(Vm::server(&p));
        let (slow, _) = slow_server
            .handle_with_slowdown(SimTime::ZERO, m, &payload, 4.0)
            .unwrap();
        assert!(slow.nanos() >= fast.nanos() * 3.9);
    }

    #[test]
    fn underpowered_transmission_retransmits() {
        let p = program();
        let m = p.find_method(MODULE_CLASS, "work").unwrap();
        let (mut client, mut server, mut link, mut rng) = setup(&p);
        let out = remote_invoke(
            &mut client,
            &mut server,
            &mut link,
            ChannelClass::C4, // client believes the channel is great
            ChannelClass::C1, // it is terrible
            m,
            &[Value::Int(10)],
            SimTime::from_millis(1.0),
            &RemoteConfig::default(),
            &mut FaultInjector::none(),
            &mut rng,
        )
        .unwrap();
        assert!(out.retransmitted);
    }

    #[test]
    fn server_processes_sequentially() {
        let p = program();
        let m = p.find_method(MODULE_CLASS, "work").unwrap();
        let mut server = ServerNode::new(Vm::server(&p));
        let mut heap = jem_jvm::Heap::new();
        let payload = serial::serialize_args(&heap, &[Value::Int(1000)]).unwrap();
        let _ = &mut heap;
        let (done1, _) = server.handle(SimTime::ZERO, m, &payload).unwrap();
        // Second request arrives while the first is still running.
        let (done2, _) = server.handle(SimTime::ZERO, m, &payload).unwrap();
        assert!(done2 > done1);
        assert!(done2.nanos() >= 2.0 * done1.nanos() * 0.9);
    }
}

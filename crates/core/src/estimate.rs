//! Profiling and cost estimation — the data behind the helper methods.
//!
//! The paper obtains its estimates from three sources, all reproduced
//! here:
//!
//! * **Compile energies are profiled constants**: "given a specific
//!   platform, a method and an optimization level, the compilation
//!   cost is constant; … the local compilation energy values are
//!   obtained by profiling; these values are then incorporated into
//!   the applications' class files as static final variables."
//!   [`Profile::build`] compiles the potential method's whole static
//!   call closure (the *compilation plan*) at every level and prices
//!   the JIT's work units.
//! * **Execution energies come from curve fitting** over calibration
//!   runs: "we employ a curve fitting based technique to estimate the
//!   energy cost of executing a method locally … within 2% of the
//!   actual energy value."
//! * **Remote costs** are computed from the fitted serialized
//!   input/output sizes, the fitted server execution time, the channel
//!   power tracked at run time, and the power-down leakage.

use crate::fit::CurveFit;
use crate::partition::reachable;
use crate::workload::Workload;
use jem_energy::{Energy, Machine, MachineConfig, Power, SimTime};
use jem_jvm::costs::{compile_work_mix, compiler_init_mix, serialize_mix};
use jem_jvm::{compile, serial, Heap, MethodId, NativeCode, OptLevel, Value, Vm};
use jem_radio::{ChannelClass, LinkConfig, RadioPowerTable};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::rc::Rc;

/// One plan method compiled at one level.
#[derive(Debug, Clone)]
pub struct CompiledMethod {
    /// The method.
    pub method: MethodId,
    /// Its code object.
    pub code: NativeCode,
    /// JIT work units expended compiling it.
    pub work_units: u64,
}

/// The per-workload deployment profile (what the paper ships inside
/// the class file as attributes + static finals).
#[derive(Debug, Clone)]
pub struct Profile {
    /// The potential method.
    pub method: MethodId,
    /// The compilation plan: the potential method plus everything it
    /// can call.
    pub plan: Vec<MethodId>,
    /// Plan code per level (`[L1, L2, L3]`), pre-compiled so runs can
    /// install without re-running the JIT (its energy is charged from
    /// the profiled work units instead).
    pub compiled: [Vec<CompiledMethod>; 3],
    /// Profiled client-local compile energy per level (per-method JIT
    /// work only; the one-time compiler load is separate).
    pub compile_energy: [Energy; 3],
    /// One-time energy of loading + initializing the compiler classes
    /// on the client, paid before the first local compilation.
    pub compiler_init_energy: Energy,
    /// Total emitted code bytes per level (what remote compilation
    /// downloads).
    pub code_bytes: [u32; 3],
    /// Interpreted execution energy vs size.
    pub interp_energy: CurveFit,
    /// Native execution energy vs size per level.
    pub local_energy: [CurveFit; 3],
    /// Interpreted execution time (ns) vs size.
    pub interp_time_ns: CurveFit,
    /// Native execution time (ns) vs size per level.
    pub local_time_ns: [CurveFit; 3],
    /// Serialized argument bytes vs size.
    pub input_bytes: CurveFit,
    /// Serialized result bytes vs size.
    pub output_bytes: CurveFit,
    /// Server-side handling time (deserialize + execute + serialize,
    /// ns) vs size.
    pub server_time_ns: CurveFit,
    /// Radio power table used for remote estimates.
    pub radio: RadioPowerTable,
    /// Link configuration used for remote estimates.
    pub link: LinkConfig,
    /// Client leakage power during power-down.
    pub leak_power: Power,
}

/// Degree cap and tolerance used when fitting profile curves.
const FIT_MAX_DEGREE: usize = 3;
const FIT_TOLERANCE: f64 = 0.02;

impl Profile {
    /// Build the profile for a workload by calibration runs at
    /// [`Workload::calibration_sizes`].
    pub fn build(w: &dyn Workload, seed: u64) -> Profile {
        let program = w.program();
        let method = w.potential_method();
        let plan_set = reachable(program, method);
        let plan: Vec<MethodId> = plan_set.into_iter().collect();

        // --- compile the plan at every level; price the work. ---
        let client_table = MachineConfig::mobile_client().table;
        let mut compiled: [Vec<CompiledMethod>; 3] = [vec![], vec![], vec![]];
        let mut compile_energy = [Energy::ZERO; 3];
        let mut code_bytes = [0u32; 3];
        for level in OptLevel::ALL {
            let li = level.index();
            for &m in &plan {
                let c = compile(program, m, level);
                compile_energy[li] +=
                    client_table.energy_of_mix(&compile_work_mix(c.report.work_units));
                code_bytes[li] += c.report.code_bytes;
                compiled[li].push(CompiledMethod {
                    method: m,
                    code: c.code,
                    work_units: c.report.work_units,
                });
            }
        }

        // --- calibration runs. ---
        let sizes = w.calibration_sizes();
        let mut interp_e = Vec::new();
        let mut interp_t = Vec::new();
        let mut local_e: [Vec<(f64, f64)>; 3] = [vec![], vec![], vec![]];
        let mut local_t: [Vec<(f64, f64)>; 3] = [vec![], vec![], vec![]];
        let mut in_bytes = Vec::new();
        let mut out_bytes = Vec::new();
        let mut server_t = Vec::new();

        for (i, &size) in sizes.iter().enumerate() {
            let x = f64::from(size);
            let mut rng = SmallRng::seed_from_u64(seed ^ (i as u64) << 32);

            // Interpreted run.
            {
                let mut vm = Vm::client(program);
                let args = w.make_args(&mut vm.heap, size, &mut rng.clone());
                vm.invoke(method, args).expect("calibration run failed");
                interp_e.push((x, vm.machine.energy().nanojoules()));
                interp_t.push((x, vm.machine.elapsed().nanos()));
            }

            // Native runs per level.
            for level in OptLevel::ALL {
                let li = level.index();
                let mut vm = Vm::client(program);
                for cm in &compiled[li] {
                    vm.install_native(cm.method, Rc::new(cm.code.clone()));
                }
                let args = w.make_args(&mut vm.heap, size, &mut rng.clone());
                vm.invoke(method, args).expect("calibration run failed");
                local_e[li].push((x, vm.machine.energy().nanojoules()));
                local_t[li].push((x, vm.machine.elapsed().nanos()));
            }

            // Serialized sizes + server handling time.
            {
                let mut client_heap = Heap::new();
                let args = w.make_args(&mut client_heap, size, &mut rng);
                let payload =
                    serial::serialize_args(&client_heap, &args).expect("serializable args");
                in_bytes.push((x, payload.len() as f64));

                let mut server = Vm::server(program);
                for cm in &compiled[OptLevel::L3.index()] {
                    server.install_native(cm.method, Rc::new(cm.code.clone()));
                }
                let cp = server.machine.checkpoint();
                server
                    .machine
                    .charge_mix(&serialize_mix(payload.len() as u64));
                let server_args =
                    serial::deserialize_args(&mut server.heap, &payload).expect("round trip");
                let result = server
                    .invoke(method, server_args)
                    .expect("server calibration run failed");
                let result_payload = serial::serialize(&server.heap, result.unwrap_or(Value::Null))
                    .expect("serializable result");
                server
                    .machine
                    .charge_mix(&serialize_mix(result_payload.len() as u64));
                let (_, dt) = server.machine.since(&cp);
                server_t.push((x, dt.nanos()));
                out_bytes.push((x, result_payload.len() as f64));
            }
        }

        let fit =
            |pts: &Vec<(f64, f64)>| CurveFit::fit_adaptive(pts, FIT_MAX_DEGREE, FIT_TOLERANCE);
        Profile {
            method,
            plan,
            compile_energy,
            compiler_init_energy: client_table.energy_of_mix(&compiler_init_mix()),
            code_bytes,
            interp_energy: fit(&interp_e),
            interp_time_ns: fit(&interp_t),
            local_energy: [fit(&local_e[0]), fit(&local_e[1]), fit(&local_e[2])],
            local_time_ns: [fit(&local_t[0]), fit(&local_t[1]), fit(&local_t[2])],
            input_bytes: fit(&in_bytes),
            output_bytes: fit(&out_bytes),
            server_time_ns: fit(&server_t),
            compiled,
            radio: RadioPowerTable::wcdma(),
            link: LinkConfig::wcdma_2_3mbps(),
            leak_power: {
                let mc = MachineConfig::mobile_client();
                mc.nominal_power * mc.leak_fraction
            },
        }
    }

    /// Install the plan's code at `level` into a VM (no energy
    /// charged — the caller decides whether compilation was local,
    /// remote, or pre-existing and charges accordingly).
    pub fn install(&self, vm: &mut Vm<'_>, level: OptLevel) {
        for cm in &self.compiled[level.index()] {
            vm.install_native(cm.method, Rc::new(cm.code.clone()));
        }
    }

    /// Revert the plan's methods to bytecode in a VM.
    pub fn deinstall(&self, vm: &mut Vm<'_>) {
        for &m in &self.plan {
            vm.deinstall(m);
        }
    }

    /// Charge the *local* compilation of the plan at `level` to a
    /// machine (the client JIT running).
    pub fn charge_local_compile(&self, machine: &mut Machine, level: OptLevel) {
        for cm in &self.compiled[level.index()] {
            machine.charge_mix(&compile_work_mix(cm.work_units));
        }
    }

    // ---- helper-method estimators (the paper's e, E', E, E'') ----

    /// `e(m, s)`: estimated interpretation energy for one invocation.
    pub fn e_interp(&self, s: f64) -> Energy {
        Energy::from_nanojoules(self.interp_energy.eval_nonneg(s))
    }

    /// `E_o(m, s)`: estimated native execution energy at `level`.
    pub fn e_local(&self, level: OptLevel, s: f64) -> Energy {
        Energy::from_nanojoules(self.local_energy[level.index()].eval_nonneg(s))
    }

    /// `E'_o(m)`: profiled local compilation energy at `level`,
    /// including the one-time compiler load unless it already happened
    /// (`compiler_loaded`).
    pub fn e_compile_local(&self, level: OptLevel, compiler_loaded: bool) -> Energy {
        let init = if compiler_loaded {
            Energy::ZERO
        } else {
            self.compiler_init_energy
        };
        init + self.compile_energy[level.index()]
    }

    /// Estimated serialized request bytes at size `s`.
    pub fn est_input_bytes(&self, s: f64) -> u64 {
        self.input_bytes.eval_nonneg(s).round() as u64
    }

    /// Estimated serialized response bytes at size `s`.
    pub fn est_output_bytes(&self, s: f64) -> u64 {
        self.output_bytes.eval_nonneg(s).round() as u64
    }

    /// Estimated server handling time at size `s`.
    pub fn est_server_time(&self, s: f64) -> SimTime {
        SimTime::from_nanos(self.server_time_ns.eval_nonneg(s))
    }

    /// Estimated local (native) execution time at `level`, size `s`.
    pub fn est_local_time(&self, level: OptLevel, s: f64) -> SimTime {
        SimTime::from_nanos(self.local_time_ns[level.index()].eval_nonneg(s))
    }

    /// Estimated interpretation time at size `s`.
    pub fn est_interp_time(&self, s: f64) -> SimTime {
        SimTime::from_nanos(self.interp_time_ns.eval_nonneg(s))
    }

    /// Airtime for `bytes` on the configured link.
    fn airtime(&self, bytes: u64) -> SimTime {
        let wire = bytes + u64::from(self.link.overhead_bytes);
        SimTime::from_secs(wire as f64 * 8.0 / self.link.data_rate_bps)
    }

    /// Fixed transmit-chain power excluding the PA (DAC + driver +
    /// modulator + VCO).
    fn tx_fixed_power(&self) -> Power {
        self.radio.dac + self.radio.driver_amplifier + self.radio.modulator + self.radio.vco
    }

    /// `E''(m, s, p)`: estimated client energy of one remote
    /// execution, with the transmit PA at `pa_power`.
    ///
    /// Components: serialize + transmit request, leakage while
    /// powered down during server handling, receive + deserialize the
    /// response.
    pub fn e_remote(&self, s: f64, pa_power: Power) -> Energy {
        let table = &MachineConfig::mobile_client().table;
        let bi = self.est_input_bytes(s);
        let bo = self.est_output_bytes(s);

        let e_ser =
            table.energy_of_mix(&serialize_mix(bi)) + table.energy_of_mix(&serialize_mix(bo));
        let up = self.airtime(bi);
        let e_tx = (self.tx_fixed_power() + pa_power).over(up);
        let down = self.airtime(bo);
        let e_rx = self.radio.rx_power().over(down);
        let e_leak = self.leak_power.over(self.est_server_time(s) + up + down);
        e_ser + e_tx + e_rx + e_leak
    }

    /// Estimated client energy of *remote compilation* at `level`:
    /// transmit the fully-qualified method name, receive the
    /// pre-compiled code, link it.
    pub fn e_remote_compile(&self, level: OptLevel, class: ChannelClass) -> Energy {
        let table = &MachineConfig::mobile_client().table;
        let name_bytes = 64u64; // fully-qualified name + request header
        let code = u64::from(self.code_bytes[level.index()]);
        let e_tx = self.radio.tx_power(class).over(self.airtime(name_bytes));
        let e_rx = self.radio.rx_power().over(self.airtime(code));
        // Linking the downloaded code: one pass over it.
        let e_link = table.energy_of_mix(&serialize_mix(code));
        e_tx + e_rx + e_link
    }

    /// Estimated wall-clock of one remote execution (for the
    /// power-down timer).
    pub fn est_remote_time(&self, s: f64) -> SimTime {
        self.airtime(self.est_input_bytes(s))
            + self.est_server_time(s)
            + self.airtime(self.est_output_bytes(s))
    }
}

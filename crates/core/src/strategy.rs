//! Execution/compilation strategies and the adaptive decision rule.
//!
//! The paper evaluates seven strategies (its Fig 5):
//!
//! | strategy | compilation | execution |
//! |---|---|---|
//! | Remote (R) | — | server |
//! | Interpreter (I) | — | client, bytecode |
//! | Local1 (L1) | client, no opts | client, native |
//! | Local2 (L2) | client, medium opts | client, native |
//! | Local3 (L3) | client, max opts | client, native |
//! | AL | client, all levels | client or server, adaptive |
//! | AA | client *or server*, all levels | client or server, adaptive |
//!
//! The adaptive rule (§3.2): after `k` executions, pick the minimum of
//! `EI = k·e(m,s̄)`, `ER = k·E″(m,s̄,p̄)`,
//! `ELi = E′oi(m) + k·Eoi(m,s̄)`, omitting `E′` for a compiled form
//! that is already installed.

use crate::estimate::Profile;
use jem_energy::{Energy, Power};
use jem_jvm::OptLevel;
use jem_radio::ChannelClass;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The seven strategies of the paper's Fig 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Always execute potential methods on the server.
    Remote,
    /// Always interpret on the client.
    Interpreter,
    /// Compile locally with no optimization; run natively.
    Local1,
    /// Compile locally with medium optimization; run natively.
    Local2,
    /// Compile locally with maximum optimization; run natively.
    Local3,
    /// Adaptive execution, local compilation.
    AdaptiveLocal,
    /// Adaptive execution, adaptive (local/remote) compilation.
    AdaptiveAdaptive,
}

impl Strategy {
    /// All strategies in the paper's presentation order.
    pub const ALL: [Strategy; 7] = [
        Strategy::Remote,
        Strategy::Interpreter,
        Strategy::Local1,
        Strategy::Local2,
        Strategy::Local3,
        Strategy::AdaptiveLocal,
        Strategy::AdaptiveAdaptive,
    ];

    /// The five static strategies (Fig 6 compares these).
    pub const STATIC: [Strategy; 5] = [
        Strategy::Remote,
        Strategy::Interpreter,
        Strategy::Local1,
        Strategy::Local2,
        Strategy::Local3,
    ];

    /// Paper abbreviation.
    pub const fn key(self) -> &'static str {
        match self {
            Strategy::Remote => "R",
            Strategy::Interpreter => "I",
            Strategy::Local1 => "L1",
            Strategy::Local2 => "L2",
            Strategy::Local3 => "L3",
            Strategy::AdaptiveLocal => "AL",
            Strategy::AdaptiveAdaptive => "AA",
        }
    }

    /// True for the two adaptive strategies.
    pub const fn is_adaptive(self) -> bool {
        matches!(self, Strategy::AdaptiveLocal | Strategy::AdaptiveAdaptive)
    }

    /// The fixed compile level of a static local strategy.
    pub const fn static_level(self) -> Option<OptLevel> {
        match self {
            Strategy::Local1 => Some(OptLevel::L1),
            Strategy::Local2 => Some(OptLevel::L2),
            Strategy::Local3 => Some(OptLevel::L3),
            _ => None,
        }
    }

    /// Fig 5 row: where/how compilation happens.
    pub const fn compilation_desc(self) -> &'static str {
        match self {
            Strategy::Remote | Strategy::Interpreter => "-",
            Strategy::Local1 => "client, no opts",
            Strategy::Local2 => "client, medium opts",
            Strategy::Local3 => "client, maximum opts",
            Strategy::AdaptiveLocal => "client, all levels of opts",
            Strategy::AdaptiveAdaptive => "server/client, all levels of opts",
        }
    }

    /// Fig 5 row: where/how execution happens.
    pub const fn execution_desc(self) -> &'static str {
        match self {
            Strategy::Remote => "server",
            Strategy::Interpreter => "client, bytecode",
            Strategy::Local1 | Strategy::Local2 | Strategy::Local3 => "client, native",
            Strategy::AdaptiveLocal | Strategy::AdaptiveAdaptive => {
                "server/client, native/bytecode"
            }
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.key())
    }
}

/// How one invocation will execute (the decision's outcome).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// Interpret on the client.
    Interpret,
    /// Ship to the server.
    Remote,
    /// Run natively on the client at this level.
    Local(OptLevel),
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mode::Interpret => write!(f, "interpret"),
            Mode::Remote => write!(f, "remote"),
            Mode::Local(l) => write!(f, "local/{l}"),
        }
    }
}

/// The candidate energy estimates behind one decision (`EI`, `ER`,
/// `EL1..EL3` in the paper's notation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecisionEstimates {
    /// `EI = k·e(m, s̄)`.
    pub interpret: Energy,
    /// `ER = k·E″(m, s̄, p̄)`.
    pub remote: Energy,
    /// `ELi = E′ + k·E_oi(m, s̄)` per level.
    pub local: [Energy; 3],
}

impl DecisionEstimates {
    /// The minimum-energy mode among the candidates.
    pub fn argmin(&self) -> Mode {
        self.argmin_with(true)
    }

    /// The minimum-energy mode, optionally excluding the remote
    /// candidate — the circuit breaker's degraded mode, where AA
    /// decides exactly like AL until the server proves healthy again.
    pub fn argmin_with(&self, allow_remote: bool) -> Mode {
        let mut best = (Mode::Interpret, self.interpret);
        if allow_remote && self.remote < best.1 {
            best = (Mode::Remote, self.remote);
        }
        for level in OptLevel::ALL {
            let e = self.local[level.index()];
            if e < best.1 {
                best = (Mode::Local(level), e);
            }
        }
        best.0
    }
}

/// Evaluate the AL decision: expected energies for `k` further
/// invocations at predicted size `s̄` and PA power `p̄`, given the
/// currently installed compile level (whose `E′` is omitted).
pub fn evaluate(
    profile: &Profile,
    k: u64,
    s_bar: f64,
    pa_bar: Power,
    installed: Option<OptLevel>,
    compiler_loaded: bool,
) -> DecisionEstimates {
    let kf = k.max(1) as f64;
    let mut local = [Energy::ZERO; 3];
    for level in OptLevel::ALL {
        let compile = if installed == Some(level) {
            Energy::ZERO
        } else {
            profile.e_compile_local(level, compiler_loaded)
        };
        local[level.index()] = compile + profile.e_local(level, s_bar) * kf;
    }
    DecisionEstimates {
        interpret: profile.e_interp(s_bar) * kf,
        remote: profile.e_remote(s_bar, pa_bar) * kf,
        local,
    }
}

/// The AA refinement: when the decision is to compile to `level`,
/// choose between local compilation and downloading pre-compiled code
/// from the server at the current channel condition. Returns
/// `(use_remote_compilation, estimated_cost)`.
pub fn compile_source(
    profile: &Profile,
    level: OptLevel,
    class: ChannelClass,
    compiler_loaded: bool,
) -> (bool, Energy) {
    let local = profile.e_compile_local(level, compiler_loaded);
    let remote = profile.e_remote_compile(level, class);
    if remote < local {
        (true, remote)
    } else {
        (false, local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_match_paper() {
        let keys: Vec<&str> = Strategy::ALL.iter().map(|s| s.key()).collect();
        assert_eq!(keys, vec!["R", "I", "L1", "L2", "L3", "AL", "AA"]);
    }

    #[test]
    fn static_levels() {
        assert_eq!(Strategy::Local2.static_level(), Some(OptLevel::L2));
        assert_eq!(Strategy::Remote.static_level(), None);
        assert!(Strategy::AdaptiveLocal.is_adaptive());
        assert!(!Strategy::Local1.is_adaptive());
    }

    #[test]
    fn argmin_picks_minimum() {
        let e = |x: f64| Energy::from_nanojoules(x);
        let d = DecisionEstimates {
            interpret: e(100.0),
            remote: e(50.0),
            local: [e(80.0), e(60.0), e(70.0)],
        };
        assert_eq!(d.argmin(), Mode::Remote);
        let d2 = DecisionEstimates {
            interpret: e(10.0),
            remote: e(50.0),
            local: [e(80.0), e(60.0), e(70.0)],
        };
        assert_eq!(d2.argmin(), Mode::Interpret);
        let d3 = DecisionEstimates {
            interpret: e(100.0),
            remote: e(50.0),
            local: [e(80.0), e(30.0), e(70.0)],
        };
        assert_eq!(d3.argmin(), Mode::Local(OptLevel::L2));
    }

    #[test]
    fn argmin_without_remote_degrades_to_next_best() {
        let e = |x: f64| Energy::from_nanojoules(x);
        let d = DecisionEstimates {
            interpret: e(100.0),
            remote: e(50.0),
            local: [e(80.0), e(60.0), e(70.0)],
        };
        assert_eq!(d.argmin(), Mode::Remote);
        assert_eq!(d.argmin_with(false), Mode::Local(OptLevel::L2));
        assert_eq!(d.argmin_with(true), Mode::Remote);
    }

    #[test]
    fn argmin_ties_prefer_interpreter() {
        // Equal estimates: keep the no-cost default (interpretation),
        // mirroring "if either the bytecode or remote execution is
        // preferred, no compilation is performed".
        let e = Energy::from_nanojoules(5.0);
        let d = DecisionEstimates {
            interpret: e,
            remote: e,
            local: [e, e, e],
        };
        assert_eq!(d.argmin(), Mode::Interpret);
    }

    #[test]
    fn fig5_rows_are_complete() {
        for s in Strategy::ALL {
            assert!(!s.compilation_desc().is_empty());
            assert!(!s.execution_desc().is_empty());
        }
        assert_eq!(Strategy::Remote.execution_desc(), "server");
        assert_eq!(Strategy::Interpreter.execution_desc(), "client, bytecode");
    }
}

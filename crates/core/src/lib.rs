//! # jem-core — energy-aware compilation and execution framework
//!
//! The paper's contribution: a runtime that, for every invocation of
//! an annotated *potential method* on a wireless mobile client,
//! chooses among
//!
//! * interpreting the bytecode locally,
//! * JIT-compiling locally at one of three optimization levels and
//!   running natively,
//! * downloading pre-compiled native code from a trusted server
//!   (remote compilation), or
//! * shipping the invocation to the server over the wireless link and
//!   powering the client down while it waits (remote execution),
//!
//! whichever minimizes the client's energy under the current channel
//! condition and predicted input size.
//!
//! Map from the paper's machinery to modules:
//!
//! | paper | module |
//! |---|---|
//! | partition API, potential-method annotations | [`partition`] |
//! | profiled compile energies, curve-fitted execution/remote costs | [`estimate`], [`fit`] |
//! | EWMA size/power prediction (`u = 0.7`) | [`predict`] |
//! | strategies R/I/L1/L2/L3/AL/AA and the argmin rule | [`strategy`] |
//! | serialization-based offload protocol, mobile status table | [`remote`] |
//! | pre-compiled native code download | [`rcomp`] |
//! | the assembled runtime | [`runtime`] |
//! | 300-invocation scenario runs | [`experiment`] |
//!
//! Beyond the paper, the robustness layer:
//!
//! | concern | module |
//! |---|---|
//! | Gilbert–Elliott loss, outages, slowdowns, corruption | [`fault`] |
//! | retries, energy budgets, circuit breaker | [`resilience`] |
//! | sim-time tracing, metrics, predictor accuracy | [`observe`] (on [`jem_obs`]) |

#![warn(missing_docs)]

pub mod ckpt;
pub mod estimate;
pub mod experiment;
pub mod fault;
pub mod fit;
pub mod observe;
pub mod partition;
pub mod predict;
pub mod rcomp;
pub mod remote;
pub mod resilience;
pub mod runtime;
pub mod strategy;
pub mod workload;

pub use ckpt::{
    capture_run, decode_result, encode_result, restore_run, run_scenario_ckpt, ChannelDyn,
    CkptError, CkptFile, InflightCkpt, RunSnapshot, ScenarioError,
};
pub use estimate::Profile;
pub use experiment::{
    run_scenario, run_scenario_traced, run_scenario_with, run_strategies, ScenarioResult,
};
pub use fault::{FaultInjector, FaultState, RequestFaults};
pub use fit::CurveFit;
pub use observe::{accuracy_of, fill_run_metrics, oracle_choice, scenario_result_to_json};
pub use partition::Partition;
pub use predict::{Ewma, MethodState};
pub use remote::{RemoteConfig, RemoteFailure, ServerNode};
pub use resilience::{
    BreakerPolicy, BreakerSnapshot, BreakerState, CircuitBreaker, ExecError, ResilienceConfig,
    RetryPolicy,
};
pub use runtime::{EnergyAwareVm, InvocationReport, RunStats};
pub use strategy::{DecisionEstimates, Mode, Strategy};
pub use workload::Workload;

//! Resilience policy for the remote-execution path: a transient/
//! permanent error taxonomy, energy-budgeted retries with exponential
//! backoff, and a per-method circuit breaker.
//!
//! The naive policy the paper implies — time out once, fall back to
//! local interpretation — wastes a full awake `response_timeout` on
//! every loss. Under bursty loss that waste dominates: the adaptive
//! strategies keep choosing remote execution (their estimates are
//! loss-unaware) and keep burning timeouts. The breaker converts the
//! *sequence* of failures into a mode switch: after
//! `failure_threshold` consecutive remote failures it opens and the
//! runtime degrades AA → AL (remote candidates are excluded from the
//! argmin), then probes the server again after a cooldown.
//!
//! All policy decisions draw from the scenario RNG, so runs stay
//! reproducible: identical seeds give identical retry/backoff/breaker
//! sequences and identical energy totals.

use crate::remote::RemoteFailure;
use jem_energy::{Energy, SimTime};
use jem_jvm::VmError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Unified error taxonomy for one execution attempt.
///
/// Transient errors (lost responses, server outages, corrupt payloads)
/// may be retried or degraded around; permanent errors (VM errors from
/// the method itself) reproduce locally and must be propagated.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A fault of the remote path; retrying can succeed.
    Transient(RemoteFailure),
    /// An error of the program itself; retrying cannot help.
    Permanent(VmError),
}

impl ExecError {
    /// Whether a retry can possibly succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, ExecError::Transient(_))
    }
}

impl From<RemoteFailure> for ExecError {
    fn from(f: RemoteFailure) -> Self {
        ExecError::Transient(f)
    }
}

impl From<VmError> for ExecError {
    fn from(e: VmError) -> Self {
        ExecError::Permanent(e)
    }
}

/// Retry policy: exponential backoff with jitter, bounded both by an
/// attempt count and by an *energy budget* — every failed attempt
/// costs real transmit and awake-wait energy, and a retry is only
/// worth it while the energy already wasted on this invocation stays
/// under the budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum retries after the first attempt (0 = naive fallback).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: SimTime,
    /// Multiplier applied per further retry.
    pub backoff_factor: f64,
    /// Uniform jitter fraction (±) applied to each backoff.
    pub jitter: f64,
    /// Give up (fall back locally) once the energy wasted on failed
    /// attempts of this invocation exceeds this budget.
    pub energy_budget: Energy,
}

impl RetryPolicy {
    /// The paper-implied policy: no retries, first failure falls
    /// straight back to local execution.
    pub fn naive() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: SimTime::ZERO,
            backoff_factor: 1.0,
            jitter: 0.0,
            energy_budget: Energy::ZERO,
        }
    }

    /// The backoff nap before retry number `retry` (1-based), jittered
    /// from `rng`. The client powers down for this duration, so the
    /// nap costs power-down (not awake) energy.
    pub fn backoff<R: Rng + ?Sized>(&self, retry: u32, rng: &mut R) -> SimTime {
        let exp = self.backoff_factor.powi(retry.saturating_sub(1) as i32);
        let jitter = if self.jitter > 0.0 {
            1.0 + self.jitter * (2.0 * rng.gen::<f64>() - 1.0)
        } else {
            1.0
        };
        self.base_backoff * (exp * jitter)
    }

    /// Whether another retry is allowed after `retries_done` retries
    /// with `wasted` energy already burned on failed attempts.
    pub fn allows_retry(&self, retries_done: u32, wasted: Energy) -> bool {
        retries_done < self.max_retries && wasted < self.energy_budget
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff: SimTime::from_millis(50.0),
            backoff_factor: 2.0,
            jitter: 0.1,
            // Roughly two timeout-and-retransmit cycles on the
            // reference client before falling back.
            energy_budget: Energy::from_millijoules(120.0),
        }
    }
}

/// Circuit-breaker knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerPolicy {
    /// Disabled breakers never open (the naive policy).
    pub enabled: bool,
    /// Consecutive remote failures that open the breaker.
    pub failure_threshold: u32,
    /// Invocations the breaker stays open before a half-open probe.
    /// Counted in invocations, not wall time, so runs are
    /// deterministic regardless of how long each invocation takes.
    pub cooldown_invocations: u32,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            enabled: true,
            failure_threshold: 3,
            cooldown_invocations: 8,
        }
    }
}

/// Breaker state machine: `Closed` (remote allowed) → `Open` (remote
/// blacklisted, AA degrades to AL) → `HalfOpen` (one probe allowed)
/// → `Closed` on probe success / back to `Open` on probe failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Remote execution allowed.
    Closed,
    /// Remote execution blacklisted until the cooldown elapses.
    Open,
    /// Cooldown elapsed; the next remote attempt is a probe.
    HalfOpen,
}

impl BreakerState {
    /// Stable label for traces and metrics.
    pub const fn key(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Per-method circuit breaker over the remote-execution path.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    state: BreakerState,
    consecutive_failures: u32,
    cooldown_left: u32,
    /// Times the breaker opened.
    pub trips: u64,
    /// Times a half-open probe closed the breaker again.
    pub recoveries: u64,
}

impl CircuitBreaker {
    /// A closed breaker under `policy`.
    pub fn new(policy: BreakerPolicy) -> Self {
        CircuitBreaker {
            policy,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            cooldown_left: 0,
            trips: 0,
            recoveries: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether the breaker is open (remote blacklisted).
    pub fn is_open(&self) -> bool {
        self.state == BreakerState::Open
    }

    /// Tick the cooldown clock: call once per top-level invocation.
    pub fn on_invocation(&mut self) {
        if self.state == BreakerState::Open {
            self.cooldown_left = self.cooldown_left.saturating_sub(1);
            if self.cooldown_left == 0 {
                self.state = BreakerState::HalfOpen;
            }
        }
    }

    /// Whether a remote attempt is currently allowed. Disabled
    /// breakers always allow.
    pub fn allows_remote(&self) -> bool {
        !self.policy.enabled || self.state != BreakerState::Open
    }

    /// Record a successful remote interaction. Returns whether this
    /// closed a half-open breaker (a recovery).
    pub fn record_success(&mut self) -> bool {
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
            self.recoveries += 1;
            true
        } else {
            false
        }
    }

    /// Record a failed remote interaction. Returns whether this
    /// opened the breaker (a trip).
    pub fn record_failure(&mut self) -> bool {
        if !self.policy.enabled {
            return false;
        }
        self.consecutive_failures += 1;
        let opens = match self.state {
            // A failed probe re-opens immediately.
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.consecutive_failures >= self.policy.failure_threshold,
            BreakerState::Open => false,
        };
        if opens {
            self.state = BreakerState::Open;
            self.cooldown_left = self.policy.cooldown_invocations.max(1);
            self.trips += 1;
        }
        opens
    }

    /// Snapshot the breaker's mutable state for checkpointing (the
    /// policy is configuration, not state).
    pub fn export_state(&self) -> BreakerSnapshot {
        BreakerSnapshot {
            state: self.state,
            consecutive_failures: self.consecutive_failures,
            cooldown_left: self.cooldown_left,
            trips: self.trips,
            recoveries: self.recoveries,
        }
    }

    /// Restore state captured by [`CircuitBreaker::export_state`].
    pub fn import_state(&mut self, s: &BreakerSnapshot) {
        self.state = s.state;
        self.consecutive_failures = s.consecutive_failures;
        self.cooldown_left = s.cooldown_left;
        self.trips = s.trips;
        self.recoveries = s.recoveries;
    }
}

/// Serializable snapshot of a [`CircuitBreaker`]'s mutable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerSnapshot {
    /// State-machine position.
    pub state: BreakerState,
    /// Consecutive remote failures seen.
    pub consecutive_failures: u32,
    /// Invocations left in the open-state cooldown.
    pub cooldown_left: u32,
    /// Times the breaker opened.
    pub trips: u64,
    /// Times a half-open probe closed the breaker again.
    pub recoveries: u64,
}

/// The complete resilience configuration of a runtime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ResilienceConfig {
    /// Retry/backoff policy for remote attempts.
    pub retry: RetryPolicy,
    /// Circuit-breaker policy.
    pub breaker: BreakerPolicy,
}

impl ResilienceConfig {
    /// The paper-implied behaviour: one attempt, timeout, local
    /// fallback; no breaker. Reproduces the pre-resilience runtime.
    pub fn naive() -> Self {
        ResilienceConfig {
            retry: RetryPolicy::naive(),
            breaker: BreakerPolicy {
                enabled: false,
                ..BreakerPolicy::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn taxonomy_classifies() {
        assert!(ExecError::from(RemoteFailure::ConnectionLost).is_transient());
        assert!(!ExecError::from(VmError::StackUnderflow).is_transient());
    }

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut rng = SmallRng::seed_from_u64(1);
        let b1 = p.backoff(1, &mut rng);
        let b2 = p.backoff(2, &mut rng);
        let b3 = p.backoff(3, &mut rng);
        assert_eq!(b1, p.base_backoff);
        assert!((b2.nanos() / b1.nanos() - 2.0).abs() < 1e-12);
        assert!((b3.nanos() / b1.nanos() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn jitter_stays_bounded() {
        let p = RetryPolicy::default();
        let mut rng = SmallRng::seed_from_u64(2);
        for retry in 1..=3 {
            let nominal = p.base_backoff.nanos() * p.backoff_factor.powi(retry - 1);
            for _ in 0..100 {
                let b = p.backoff(retry as u32, &mut rng).nanos();
                assert!(b >= nominal * (1.0 - p.jitter) - 1e-9);
                assert!(b <= nominal * (1.0 + p.jitter) + 1e-9);
            }
        }
    }

    #[test]
    fn energy_budget_gates_retries() {
        let p = RetryPolicy::default();
        assert!(p.allows_retry(0, Energy::ZERO));
        assert!(!p.allows_retry(p.max_retries, Energy::ZERO));
        assert!(!p.allows_retry(0, p.energy_budget));
        assert!(!RetryPolicy::naive().allows_retry(0, Energy::ZERO));
    }

    #[test]
    fn breaker_trips_after_threshold_and_recovers() {
        let mut b = CircuitBreaker::new(BreakerPolicy::default());
        assert!(b.allows_remote());
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(b.record_failure()); // third consecutive failure trips
        assert!(b.is_open());
        assert!(!b.allows_remote());
        assert_eq!(b.trips, 1);
        // Cooldown: stays open for cooldown_invocations ticks.
        for _ in 0..7 {
            b.on_invocation();
            assert!(b.is_open());
        }
        b.on_invocation();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allows_remote());
        // Successful probe closes it.
        assert!(b.record_success());
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.recoveries, 1);
    }

    #[test]
    fn failed_probe_reopens() {
        let mut b = CircuitBreaker::new(BreakerPolicy {
            failure_threshold: 1,
            cooldown_invocations: 1,
            enabled: true,
        });
        assert!(b.record_failure());
        b.on_invocation();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.record_failure());
        assert!(b.is_open());
        assert_eq!(b.trips, 2);
        assert_eq!(b.recoveries, 0);
    }

    #[test]
    fn disabled_breaker_never_opens() {
        let mut b = CircuitBreaker::new(ResilienceConfig::naive().breaker);
        for _ in 0..100 {
            b.record_failure();
            assert!(b.allows_remote());
        }
        assert_eq!(b.trips, 0);
    }

    #[test]
    fn success_resets_failure_streak() {
        let mut b = CircuitBreaker::new(BreakerPolicy::default());
        b.record_failure();
        b.record_failure();
        b.record_success();
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(b.record_failure());
    }
}

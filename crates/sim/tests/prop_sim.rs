//! Property tests for the simulation core.

use jem_energy::SimTime;
use jem_sim::dist::SizeDist;
use jem_sim::stats::{geomean, normalize, Summary};
use jem_sim::EventQueue;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    /// Events always pop in nondecreasing time order, with FIFO ties.
    #[test]
    fn event_queue_orders(times in prop::collection::vec(0.0f64..1e9, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut last_t = f64::NEG_INFINITY;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut last_exact = f64::NAN;
        let mut popped = 0;
        while let Some((t, id)) = q.pop() {
            prop_assert!(t.nanos() >= last_t);
            if t.nanos() == last_exact {
                // FIFO among ties: insertion ids increase.
                prop_assert!(seen_at_time.last().is_none_or(|&p| p < id));
                seen_at_time.push(id);
            } else {
                seen_at_time = vec![id];
                last_exact = t.nanos();
            }
            last_t = t.nanos();
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Size distributions only produce values from their support.
    #[test]
    fn size_dists_respect_support(seed in any::<u64>(), lo in 1u32..100, span in 1u32..100, step in 1u32..10) {
        let hi = lo + span * step;
        let d = SizeDist::Range { lo, hi, step };
        let support = d.support();
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..100 {
            let s = d.sample(&mut rng);
            prop_assert!(support.contains(&s), "{s} not in support");
        }
    }

    /// Dominant distributions produce the main size with roughly the
    /// requested probability.
    #[test]
    fn dominant_frequency(seed in any::<u64>(), p_main in 0.5f64..0.95) {
        let d = SizeDist::Dominant { main: 64, p_main, others: vec![16, 32, 128] };
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = 4000;
        let hits = (0..n).filter(|_| d.sample(&mut rng) == 64).count();
        let frac = hits as f64 / n as f64;
        prop_assert!((frac - p_main).abs() < 0.06, "{frac} vs {p_main}");
    }

    /// Welford summary matches naive computation.
    #[test]
    fn summary_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let s = Summary::of(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6_f64.max(mean.abs() * 1e-9));
        prop_assert_eq!(s.min(), xs.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max(), xs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    /// Normalization maps the baseline to exactly 100 and preserves
    /// ratios.
    #[test]
    fn normalize_preserves_ratios(xs in prop::collection::vec(0.1f64..1e9, 2..20), idx in 0usize..20) {
        let idx = idx % xs.len();
        let n = normalize(&xs, idx);
        prop_assert!((n[idx] - 100.0).abs() < 1e-9);
        for (i, &x) in xs.iter().enumerate() {
            prop_assert!((n[i] / n[idx] - x / xs[idx]).abs() < 1e-9);
        }
    }

    /// Geomean lies between min and max.
    #[test]
    fn geomean_bounds(xs in prop::collection::vec(0.1f64..1e6, 1..50)) {
        let g = geomean(&xs);
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(g >= lo * 0.999999 && g <= hi * 1.000001);
    }
}

//! Fault-injection specifications for the remote-execution path.
//!
//! This module holds only the *description* of the faults a scenario
//! injects — pure data, serializable, deterministic given the scenario
//! seed. The runtime models that consume these specs (the
//! Gilbert–Elliott channel chain, the server availability chain, the
//! payload corrupter) live in `jem-core`, which depends on this crate.
//!
//! All probabilities are per remote interaction (one request/response
//! round trip). A spec of all zeros injects nothing and — by
//! construction of the runtime models — consumes exactly the same RNG
//! stream as the pre-fault-injection simulator, so fault-free results
//! are reproducible bit-for-bit against historical runs.

use serde::{Deserialize, Serialize};

/// Two-state Gilbert–Elliott channel loss: a `Good` and a `Bad` state
/// with independent loss rates, flipping with the given per-request
/// transition probabilities. `p_good_to_bad = 0` freezes the chain in
/// `Good`, reducing the model to flat per-request loss at `loss_good`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliottSpec {
    /// Response-loss probability while the channel is in `Good`.
    pub loss_good: f64,
    /// Response-loss probability while the channel is in `Bad`.
    pub loss_bad: f64,
    /// Per-request probability of `Good → Bad`.
    pub p_good_to_bad: f64,
    /// Per-request probability of `Bad → Good`.
    pub p_bad_to_good: f64,
}

impl GilbertElliottSpec {
    /// No loss in either state, no transitions.
    pub const NONE: GilbertElliottSpec = GilbertElliottSpec {
        loss_good: 0.0,
        loss_bad: 0.0,
        p_good_to_bad: 0.0,
        p_bad_to_good: 0.0,
    };

    /// Flat (state-independent) loss: the legacy `loss_probability`
    /// model expressed as a frozen chain.
    pub const fn flat(loss: f64) -> Self {
        GilbertElliottSpec {
            loss_good: loss,
            loss_bad: 0.0,
            p_good_to_bad: 0.0,
            p_bad_to_good: 0.0,
        }
    }

    /// A bursty channel: near-clean `Good` state, lossy `Bad` state
    /// with sticky bursts (mean burst length 1/`p_bad_to_good` ≈ 4
    /// requests, ~25% of time spent in bursts).
    pub const fn bursty(loss_bad: f64) -> Self {
        GilbertElliottSpec {
            loss_good: 0.01,
            loss_bad,
            p_good_to_bad: 0.1,
            p_bad_to_good: 0.3,
        }
    }

    /// Whether the chain can ever leave the `Good` state.
    pub fn is_static(&self) -> bool {
        self.p_good_to_bad <= 0.0
    }
}

/// Server-side faults: an `Up`/`Down` availability chain (a request to
/// a `Down` server gets no response, exactly like a lost packet) and a
/// `Normal`/`Slow` load chain that stretches server handling time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerFaultSpec {
    /// Per-request probability of `Up → Down` (an outage begins).
    pub p_outage: f64,
    /// Per-request probability of `Down → Up` (the outage ends).
    pub p_recovery: f64,
    /// Per-request probability of `Normal → Slow`.
    pub p_slowdown: f64,
    /// Per-request probability of `Slow → Normal`.
    pub p_speedup: f64,
    /// Multiplier on server handling time while `Slow` (≥ 1).
    pub slowdown_factor: f64,
}

impl ServerFaultSpec {
    /// Always up, always at full speed.
    pub const NONE: ServerFaultSpec = ServerFaultSpec {
        p_outage: 0.0,
        p_recovery: 0.0,
        p_slowdown: 0.0,
        p_speedup: 0.0,
        slowdown_factor: 1.0,
    };

    /// Occasional outages lasting ~5 requests, no slowdown.
    pub const fn flaky(p_outage: f64) -> Self {
        ServerFaultSpec {
            p_outage,
            p_recovery: 0.2,
            p_slowdown: 0.0,
            p_speedup: 0.0,
            slowdown_factor: 1.0,
        }
    }
}

/// Everything a scenario injects into the remote-execution path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Bursty channel loss.
    pub channel: GilbertElliottSpec,
    /// Server outages and slowdowns.
    pub server: ServerFaultSpec,
    /// Probability that a *delivered* response payload arrives
    /// truncated/corrupt (fails deserialization on the client).
    pub corruption: f64,
}

impl FaultSpec {
    /// Inject nothing (the fault-free simulator, same RNG stream).
    pub const NONE: FaultSpec = FaultSpec {
        channel: GilbertElliottSpec::NONE,
        server: ServerFaultSpec::NONE,
        corruption: 0.0,
    };

    /// Inject nothing.
    pub const fn none() -> Self {
        FaultSpec::NONE
    }

    /// Flat channel loss only — the legacy `loss_probability` model.
    pub const fn flat_loss(loss: f64) -> Self {
        FaultSpec {
            channel: GilbertElliottSpec::flat(loss),
            server: ServerFaultSpec::NONE,
            corruption: 0.0,
        }
    }

    /// The standard degraded-network preset: bursty loss at the given
    /// bad-state severity, a flaky server, and rare corruption.
    pub const fn degraded(loss_bad: f64) -> Self {
        FaultSpec {
            channel: GilbertElliottSpec::bursty(loss_bad),
            server: ServerFaultSpec::flaky(0.02),
            corruption: 0.01,
        }
    }

    /// True when no fault model is active (no RNG draws happen).
    pub fn is_none(&self) -> bool {
        *self == FaultSpec::NONE
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_none() {
        assert!(FaultSpec::none().is_none());
        assert!(!FaultSpec::degraded(0.5).is_none());
        assert!(!FaultSpec::flat_loss(0.1).is_none());
    }

    #[test]
    fn flat_loss_is_static() {
        assert!(GilbertElliottSpec::flat(0.3).is_static());
        assert!(GilbertElliottSpec::NONE.is_static());
        assert!(!GilbertElliottSpec::bursty(0.5).is_static());
    }
}

//! Input-size distributions.
//!
//! The paper varies each benchmark's *size parameter* per invocation:
//! scenarios (i) and (ii) have "one input size dominates", scenario
//! (iii) draws sizes uniformly. A [`SizeDist`] produces the size
//! parameter for each of the 300 invocations of a run.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A distribution over integer size parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SizeDist {
    /// Always the same size.
    Fixed(u32),
    /// One size dominates with probability `p_main`; otherwise a
    /// uniform draw from `others`.
    Dominant {
        /// The dominating size.
        main: u32,
        /// Probability of the dominating size.
        p_main: f64,
        /// The minority sizes (uniform among them).
        others: Vec<u32>,
    },
    /// Uniform over an inclusive set of choices.
    Choice(Vec<u32>),
    /// Uniform over `[lo, hi]` in steps of `step`.
    Range {
        /// Smallest size.
        lo: u32,
        /// Largest size (inclusive).
        hi: u32,
        /// Step between sizes.
        step: u32,
    },
}

impl SizeDist {
    /// Draw one size.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        match self {
            SizeDist::Fixed(s) => *s,
            SizeDist::Dominant {
                main,
                p_main,
                others,
            } => {
                if others.is_empty() || rng.gen::<f64>() < *p_main {
                    *main
                } else {
                    others[rng.gen_range(0..others.len())]
                }
            }
            SizeDist::Choice(choices) => {
                assert!(!choices.is_empty(), "empty choice distribution");
                choices[rng.gen_range(0..choices.len())]
            }
            SizeDist::Range { lo, hi, step } => {
                assert!(lo <= hi && *step > 0, "bad range");
                let n = (hi - lo) / step + 1;
                lo + step * rng.gen_range(0..n)
            }
        }
    }

    /// The set of sizes this distribution can produce (used by
    /// profiling-based estimators to pick calibration points).
    pub fn support(&self) -> Vec<u32> {
        match self {
            SizeDist::Fixed(s) => vec![*s],
            SizeDist::Dominant { main, others, .. } => {
                let mut v = vec![*main];
                v.extend(others);
                v.sort_unstable();
                v.dedup();
                v
            }
            SizeDist::Choice(choices) => {
                let mut v = choices.clone();
                v.sort_unstable();
                v.dedup();
                v
            }
            SizeDist::Range { lo, hi, step } => (*lo..=*hi).step_by(*step as usize).collect(),
        }
    }

    /// Smallest and largest producible sizes.
    pub fn bounds(&self) -> (u32, u32) {
        let support = self.support();
        (
            *support.first().expect("non-empty support"),
            *support.last().expect("non-empty support"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_always_same() {
        let mut rng = SmallRng::seed_from_u64(1);
        let d = SizeDist::Fixed(64);
        assert!((0..100).all(|_| d.sample(&mut rng) == 64));
        assert_eq!(d.support(), vec![64]);
    }

    #[test]
    fn dominant_mostly_main() {
        let mut rng = SmallRng::seed_from_u64(2);
        let d = SizeDist::Dominant {
            main: 128,
            p_main: 0.8,
            others: vec![16, 32, 64],
        };
        let n = 10_000;
        let mains = (0..n).filter(|_| d.sample(&mut rng) == 128).count();
        let frac = mains as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.03, "{frac}");
        assert_eq!(d.support(), vec![16, 32, 64, 128]);
    }

    #[test]
    fn choice_hits_all_choices() {
        let mut rng = SmallRng::seed_from_u64(3);
        let d = SizeDist::Choice(vec![8, 16, 24]);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(d.sample(&mut rng));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![8, 16, 24]);
    }

    #[test]
    fn range_respects_step_and_bounds() {
        let mut rng = SmallRng::seed_from_u64(4);
        let d = SizeDist::Range {
            lo: 10,
            hi: 50,
            step: 10,
        };
        for _ in 0..500 {
            let s = d.sample(&mut rng);
            assert!((10..=50).contains(&s));
            assert_eq!(s % 10, 0);
        }
        assert_eq!(d.support(), vec![10, 20, 30, 40, 50]);
        assert_eq!(d.bounds(), (10, 50));
    }

    #[test]
    fn dominant_with_empty_others_is_fixed() {
        let mut rng = SmallRng::seed_from_u64(5);
        let d = SizeDist::Dominant {
            main: 7,
            p_main: 0.1,
            others: vec![],
        };
        assert!((0..100).all(|_| d.sample(&mut rng) == 7));
    }
}

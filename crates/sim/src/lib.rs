//! # jem-sim — simulation core and experiment drivers
//!
//! Infrastructure shared by every experiment in the reproduction:
//!
//! * [`des`] — a deterministic discrete-event queue (virtual time),
//!   used by the client/server offload protocol in `jem-core`,
//! * [`dist`] — input-size distributions ("one input size dominates",
//!   uniform, …) matching the paper's scenario construction,
//! * [`scenario`] — the paper's three situations (predominantly-good
//!   channel + dominant size; predominantly-poor + dominant size;
//!   both uniform), each executed as a 300-invocation run,
//! * [`faults`] — fault-injection specifications (bursty channel loss,
//!   server outages/slowdowns, payload corruption) that scenarios can
//!   layer onto the remote-execution path,
//! * [`stats`] — summary statistics and normalization helpers for the
//!   figure/table harnesses,
//! * [`parallel`] — a crossbeam-based ordered parallel sweep for
//!   embarrassingly parallel experiment grids.

#![warn(missing_docs)]

pub mod des;
pub mod dist;
pub mod faults;
pub mod parallel;
pub mod scenario;
pub mod stats;

pub use des::{EventQueue, QueueSnapshot};
pub use dist::SizeDist;
pub use faults::{FaultSpec, GilbertElliottSpec, ServerFaultSpec};
pub use scenario::{Scenario, Situation};
pub use stats::Summary;

//! A deterministic discrete-event queue over virtual time.
//!
//! Events carry an arbitrary payload and fire in timestamp order;
//! ties break in insertion (FIFO) order so simulations are exactly
//! reproducible. Used by the offload protocol to model server request
//! queues, the mobile status table, and client wake-up timers.

use jem_energy::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled entry (internal).
struct Entry<T> {
    at_ns: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at_ns == other.at_ns && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, with
        // FIFO (lowest sequence number) tie-breaking.
        other
            .at_ns
            .partial_cmp(&self.at_ns)
            .expect("event times are finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A virtual-time event queue.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    now: SimTime,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
        }
    }

    /// Current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    /// If `at` is in the past (before [`EventQueue::now`]).
    pub fn schedule_at(&mut self, at: SimTime, payload: T) {
        assert!(
            at.nanos() >= self.now.nanos(),
            "scheduling into the past: {} < {}",
            at,
            self.now
        );
        self.heap.push(Entry {
            at_ns: at.nanos(),
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Schedule `payload` after a delay from now.
    pub fn schedule_in(&mut self, delay: SimTime, payload: T) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Pop the earliest event, advancing virtual time to it.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| {
            self.now = SimTime::from_nanos(e.at_ns);
            (self.now, e.payload)
        })
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| SimTime::from_nanos(e.at_ns))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Serializable snapshot of an [`EventQueue`] (clock, insertion
/// counter, and pending entries in firing order).
#[derive(Debug, Clone, PartialEq)]
pub struct QueueSnapshot<T> {
    /// Virtual time at capture.
    pub now: SimTime,
    /// Insertion counter at capture (preserves FIFO tie-breaking for
    /// events scheduled after restore).
    pub seq: u64,
    /// Pending entries as `(fire time, insertion seq, payload)`,
    /// sorted in firing order.
    pub entries: Vec<(SimTime, u64, T)>,
}

impl<T: Clone> EventQueue<T> {
    /// Capture the queue's complete state for checkpointing. Entries
    /// are emitted in firing order (time, then insertion order), so
    /// snapshots of equal queues compare equal.
    pub fn snapshot(&self) -> QueueSnapshot<T> {
        let mut entries: Vec<&Entry<T>> = self.heap.iter().collect();
        entries.sort_by(|a, b| {
            a.at_ns
                .partial_cmp(&b.at_ns)
                .expect("event times are finite")
                .then_with(|| a.seq.cmp(&b.seq))
        });
        QueueSnapshot {
            now: self.now,
            seq: self.seq,
            entries: entries
                .into_iter()
                .map(|e| (SimTime::from_nanos(e.at_ns), e.seq, e.payload.clone()))
                .collect(),
        }
    }

    /// Rebuild a queue from a snapshot; pops, peeks and subsequent
    /// scheduling behave exactly as they would have on the original.
    pub fn from_snapshot(snapshot: &QueueSnapshot<T>) -> Self {
        let mut heap = BinaryHeap::with_capacity(snapshot.entries.len());
        for (at, seq, payload) in &snapshot.entries {
            heap.push(Entry {
                at_ns: at.nanos(),
                seq: *seq,
                payload: payload.clone(),
            });
        }
        EventQueue {
            heap,
            now: snapshot.now,
            seq: snapshot.seq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(30.0), "c");
        q.schedule_at(SimTime::from_nanos(10.0), "a");
        q.schedule_at(SimTime::from_nanos(20.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5.0);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_in(SimTime::from_millis(1.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        let (t, ()) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(1.0));
        assert_eq!(q.now(), t);
        // schedule_in is relative to the new now.
        q.schedule_in(SimTime::from_millis(2.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3.0)));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(5.0), ());
        q.pop();
        q.schedule_at(SimTime::from_millis(1.0), ());
    }

    #[test]
    fn snapshot_round_trips() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(30.0), "c");
        q.schedule_at(SimTime::from_nanos(10.0), "a");
        q.pop();
        q.schedule_at(SimTime::from_nanos(20.0), "b");
        let snap = q.snapshot();
        let mut restored = EventQueue::from_snapshot(&snap);
        assert_eq!(restored.now(), q.now());
        assert_eq!(restored.snapshot(), snap);
        // Both queues drain identically and keep FIFO tie-breaks.
        loop {
            let (a, b) = (q.pop(), restored.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(q.snapshot().seq, restored.snapshot().seq);
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_in(SimTime::from_nanos(1.0), 1);
        q.schedule_in(SimTime::from_nanos(2.0), 2);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}

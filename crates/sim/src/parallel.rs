//! Ordered parallel sweeps over experiment grids.
//!
//! Experiment grids (benchmark × situation × strategy × run) are
//! embarrassingly parallel: every cell builds its own VM, heap and
//! machine. [`sweep`] fans the cells out over crossbeam scoped threads
//! and returns results in input order, so figure rows stay
//! deterministic regardless of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `items` in parallel, preserving order.
///
/// `f` must be `Sync` (it is shared across workers); items are taken
/// by reference. Uses up to `threads` workers (clamped to the number
/// of items; 0 means "number of CPUs").
pub fn sweep<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = effective_threads(threads, items.len());
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *results[i].lock().expect("result slot lock") = Some(r);
            });
        }
    })
    .expect("worker panicked");

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot lock")
                .expect("every slot filled")
        })
        .collect()
}

fn effective_threads(requested: usize, items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let t = if requested == 0 { hw } else { requested };
    t.min(items).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = sweep(&items, 8, |&x| x * x);
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn single_thread_fallback() {
        let items = vec![1, 2, 3];
        let out = sweep(&items, 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u8> = vec![];
        let out: Vec<u8> = sweep(&items, 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_means_auto() {
        let items: Vec<u32> = (0..32).collect();
        let out = sweep(&items, 0, |&x| x.wrapping_mul(3));
        assert_eq!(out.len(), 32);
        assert_eq!(out[5], 15);
    }

    #[test]
    fn heavy_closure_runs_concurrently_and_correctly() {
        // Not a timing test — just exercises contention on the index.
        let items: Vec<u64> = (0..200).collect();
        let out = sweep(&items, 16, |&x| {
            let mut acc = 0u64;
            for i in 0..1000 {
                acc = acc.wrapping_add(x * i);
            }
            acc
        });
        for (i, &x) in items.iter().enumerate() {
            let mut acc = 0u64;
            for k in 0..1000 {
                acc = acc.wrapping_add(x * k);
            }
            assert_eq!(out[i], acc);
        }
    }
}

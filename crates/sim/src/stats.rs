//! Summary statistics and normalization for experiment output.
//!
//! Every figure in the paper reports energies *normalized with respect
//! to L1*; [`normalize`] and [`Summary`] provide that plumbing, plus
//! simple accumulators for the run loops.

use serde::{Deserialize, Serialize};

/// Streaming mean/min/max/variance accumulator (Welford).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for empty summaries).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Sample standard deviation (0 with fewer than 2 observations).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Build a summary from a slice.
    pub fn of(xs: &[f64]) -> Self {
        let mut s = Summary::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Fold another summary into this one (Chan's parallel Welford
    /// update): merging per-shard summaries from
    /// [`crate::parallel::sweep`] equals summarizing the concatenated
    /// observations.
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Normalize `values` so that `values[baseline_idx]` becomes 100.0
/// (the paper's "normalized with respect to L1" convention).
///
/// # Panics
/// If the baseline is zero or the index is out of range.
pub fn normalize(values: &[f64], baseline_idx: usize) -> Vec<f64> {
    let base = values[baseline_idx];
    assert!(base != 0.0, "zero baseline");
    values.iter().map(|v| v / base * 100.0).collect()
}

/// Geometric mean (for averaging normalized ratios across benchmarks).
///
/// # Panics
/// If any value is non-positive or the slice is empty.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "empty geomean");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "non-positive value in geomean: {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.sum() - 10.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        // stddev of 1..4 = sqrt(5/3)
        assert!((s.stddev() - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn normalization_sets_baseline_to_100() {
        let n = normalize(&[50.0, 100.0, 25.0], 1);
        assert_eq!(n, vec![50.0, 100.0, 25.0]);
        let n = normalize(&[2.0, 4.0], 0);
        assert_eq!(n, vec![100.0, 200.0]);
    }

    #[test]
    fn geomean_of_equal_values() {
        assert!((geomean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merged_summaries_equal_concatenated_observations() {
        let xs: Vec<f64> = (0..97).map(|i| (i as f64 * 0.7).cos() * 42.0).collect();
        let whole = Summary::of(&xs);
        let (left, right) = xs.split_at(31);
        let mut merged = Summary::of(left);
        merged.merge(&Summary::of(right));
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean() - whole.mean()).abs() < 1e-9);
        assert!((merged.stddev() - whole.stddev()).abs() < 1e-9);
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
        // Merging into/with an empty summary is the identity.
        let mut empty = Summary::new();
        empty.merge(&whole);
        assert!((empty.mean() - whole.mean()).abs() < 1e-12);
        let mut w2 = whole;
        w2.merge(&Summary::new());
        assert_eq!(w2.count(), whole.count());
    }

    #[test]
    fn welford_matches_naive_on_large_input() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 100.0).collect();
        let s = Summary::of(&xs);
        let naive_mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - naive_mean).abs() < 1e-9);
    }
}

//! The paper's experiment scenarios.
//!
//! §3.2: "Each benchmark is executed by choosing three different
//! situations having different channel condition and input
//! distribution. The distributions have been carefully selected to
//! mimic these three situations: (i) the channel condition is
//! predominantly good and one input size dominates; (ii) the channel
//! condition is predominantly poor and one input size dominates; and
//! (iii) both channel condition and size parameters are uniformly
//! distributed. … For each scenario, an application is executed 300
//! times with inputs and channel conditions selected to meet the
//! required distribution."

use crate::dist::SizeDist;
use crate::faults::FaultSpec;
use jem_radio::{ChannelDist, ChannelProcess};
use serde::{Deserialize, Serialize};

/// The number of invocations per scenario run in the paper.
pub const PAPER_RUNS: usize = 300;

/// The paper's three situations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Situation {
    /// (i) predominantly good channel, one input size dominates.
    GoodDominant,
    /// (ii) predominantly poor channel, one input size dominates.
    PoorDominant,
    /// (iii) both channel and size uniformly distributed.
    Uniform,
}

impl Situation {
    /// All situations in paper order.
    pub const ALL: [Situation; 3] = [
        Situation::GoodDominant,
        Situation::PoorDominant,
        Situation::Uniform,
    ];

    /// Paper-style label.
    pub const fn label(self) -> &'static str {
        match self {
            Situation::GoodDominant => "i: good channel, dominant size",
            Situation::PoorDominant => "ii: poor channel, dominant size",
            Situation::Uniform => "iii: uniform channel and size",
        }
    }

    /// Short key for table columns.
    pub const fn key(self) -> &'static str {
        match self {
            Situation::GoodDominant => "i",
            Situation::PoorDominant => "ii",
            Situation::Uniform => "iii",
        }
    }

    /// The channel process for this situation. Channels are sticky
    /// (temporally correlated) in the dominant-condition situations
    /// and i.i.d. uniform in situation iii.
    pub fn channel(self) -> ChannelProcess {
        match self {
            Situation::GoodDominant => {
                ChannelProcess::sticky(ChannelDist::predominantly_good(), 0.7)
            }
            Situation::PoorDominant => {
                ChannelProcess::sticky(ChannelDist::predominantly_poor(), 0.7)
            }
            Situation::Uniform => ChannelProcess::Iid(ChannelDist::uniform()),
        }
    }

    /// A size distribution for this situation, given the sizes the
    /// benchmark supports (`sizes` ascending; the dominant situations
    /// pick a mid-range size as the dominant one).
    pub fn sizes(self, sizes: &[u32]) -> SizeDist {
        assert!(!sizes.is_empty(), "benchmark must offer sizes");
        match self {
            Situation::GoodDominant | Situation::PoorDominant => {
                // The dominant size sits in the upper range: the
                // paper's scenarios make the hot method worth
                // compiling quickly (its Fig 7 statics all include
                // their compile cost without drowning in it).
                let main = sizes[(3 * (sizes.len() - 1)).div_ceil(4)];
                let others: Vec<u32> = sizes.iter().copied().filter(|&s| s != main).collect();
                SizeDist::Dominant {
                    main,
                    p_main: 0.8,
                    others,
                }
            }
            Situation::Uniform => SizeDist::Choice(sizes.to_vec()),
        }
    }
}

/// A fully specified scenario: what to run and how many times.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Situation this scenario instantiates.
    pub situation: Situation,
    /// Channel process.
    pub channel: ChannelProcess,
    /// Size distribution.
    pub sizes: SizeDist,
    /// Number of invocations.
    pub runs: usize,
    /// RNG seed (scenarios are deterministic given their seed).
    pub seed: u64,
    /// Faults injected into the remote-execution path. The paper's
    /// scenarios are fault-free ([`FaultSpec::NONE`]).
    pub faults: FaultSpec,
}

impl Scenario {
    /// Build the paper's scenario for `situation` over the given
    /// benchmark sizes.
    pub fn paper(situation: Situation, sizes: &[u32], seed: u64) -> Self {
        Scenario {
            situation,
            channel: situation.channel(),
            sizes: situation.sizes(sizes),
            runs: PAPER_RUNS,
            seed,
            faults: FaultSpec::NONE,
        }
    }

    /// The paper's scenario run over a degraded network: bursty
    /// response loss (Gilbert–Elliott with the given bad-state
    /// severity), a flaky server and rare payload corruption. This is
    /// the standard nonzero-loss preset for resilience experiments.
    pub fn paper_degraded(situation: Situation, sizes: &[u32], seed: u64, loss_bad: f64) -> Self {
        Scenario::paper(situation, sizes, seed).with_faults(FaultSpec::degraded(loss_bad))
    }

    /// Same scenario with a different run count (for quick tests).
    #[must_use]
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Same scenario with the given fault injection.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_radio::ChannelClass;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn situation_channels_have_expected_bias() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut good = Situation::GoodDominant.channel();
        let mut poor = Situation::PoorDominant.channel();
        let n = 3000;
        let good_frac = (0..n)
            .filter(|_| matches!(good.advance(&mut rng), ChannelClass::C3 | ChannelClass::C4))
            .count() as f64
            / n as f64;
        let poor_frac = (0..n)
            .filter(|_| matches!(poor.advance(&mut rng), ChannelClass::C1 | ChannelClass::C2))
            .count() as f64
            / n as f64;
        assert!(good_frac > 0.7, "{good_frac}");
        assert!(poor_frac > 0.7, "{poor_frac}");
    }

    #[test]
    fn dominant_situations_have_dominant_sizes() {
        let sizes = vec![16, 32, 64, 128];
        let d = Situation::GoodDominant.sizes(&sizes);
        match d {
            SizeDist::Dominant { main, p_main, .. } => {
                // 75th-percentile dominant size.
                assert_eq!(main, 128);
                assert!(p_main >= 0.7);
            }
            other => panic!("expected dominant dist, got {other:?}"),
        }
        let u = Situation::Uniform.sizes(&sizes);
        assert_eq!(u, SizeDist::Choice(sizes));
    }

    #[test]
    fn paper_scenario_has_300_runs() {
        let s = Scenario::paper(Situation::Uniform, &[8, 16], 42);
        assert_eq!(s.runs, PAPER_RUNS);
        assert_eq!(s.with_runs(10).runs, 10);
    }

    #[test]
    fn paper_scenarios_are_fault_free_and_presets_are_not() {
        let clean = Scenario::paper(Situation::GoodDominant, &[8, 16], 1);
        assert!(clean.faults.is_none());
        let degraded = Scenario::paper_degraded(Situation::GoodDominant, &[8, 16], 1, 0.5);
        assert!(!degraded.faults.is_none());
        assert_eq!(degraded.faults.channel.loss_bad, 0.5);
        assert!(
            degraded.faults.channel.loss_good > 0.0,
            "nonzero-loss preset"
        );
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::BTreeSet<_> =
            Situation::ALL.iter().map(|s| s.key()).collect();
        assert_eq!(labels.len(), 3);
    }
}

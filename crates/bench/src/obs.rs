//! Shared observability plumbing for the bench bins.
//!
//! Every bin accepts three optional output flags:
//!
//! * `--trace out.json` — export a Chrome `trace_event` JSON trace of
//!   the scenario runs (open in Perfetto / `chrome://tracing`);
//! * `--metrics-out out.prom` — write the run's metrics registry in
//!   Prometheus text format;
//! * `--json-out BENCH_x.json` — write machine-readable results.
//!
//! Outputs are deterministic: identically-seeded runs write
//! byte-identical files (sim-time timestamps only, sorted label sets,
//! insertion-ordered JSON objects), which CI exploits by diffing two
//! traced runs.

use crate::print_table;
use jem_core::{accuracy_of, Profile, ScenarioResult};
use jem_obs::{
    chrome_trace, chrome_trace_sharded, AccuracyTracker, Json, MetricsRegistry, RingSink,
    TraceEvent, TraceShard,
};

/// Where a bin should write its optional observability outputs.
#[derive(Debug, Clone, Default)]
pub struct ObsArgs {
    /// `--trace` path (Chrome trace JSON).
    pub trace: Option<String>,
    /// `--metrics-out` path (Prometheus text format).
    pub metrics_out: Option<String>,
    /// `--json-out` path (machine-readable results).
    pub json_out: Option<String>,
}

impl ObsArgs {
    /// Parse the three output flags from argv.
    pub fn parse(args: &[String]) -> ObsArgs {
        ObsArgs {
            trace: crate::arg_str(args, "--trace"),
            metrics_out: crate::arg_str(args, "--metrics-out"),
            json_out: crate::arg_str(args, "--json-out"),
        }
    }

    /// A ring sink for trace collection, if `--trace` was given.
    /// Bounded at one million events — far above any bench run, while
    /// still a hard cap against runaway memory.
    pub fn trace_sink(&self) -> Option<RingSink> {
        self.trace.as_ref().map(|_| RingSink::new(1_000_000))
    }

    /// Write the collected trace events (no-op without `--trace`).
    pub fn write_trace(&self, events: &[TraceEvent]) {
        if let Some(path) = &self.trace {
            write_file(path, &format!("{}\n", chrome_trace(events).render()));
        }
    }

    /// Write a multi-shard trace — one thread track per shard, merged
    /// in input order so parallel sweeps stay deterministic (no-op
    /// without `--trace`).
    pub fn write_trace_sharded(&self, shards: &[TraceShard]) {
        if let Some(path) = &self.trace {
            write_file(
                path,
                &format!("{}\n", chrome_trace_sharded(shards).render()),
            );
        }
    }

    /// Write the metrics registry (no-op without `--metrics-out`).
    pub fn write_metrics(&self, registry: &MetricsRegistry) {
        if let Some(path) = &self.metrics_out {
            write_file(path, &registry.render_prometheus());
        }
    }

    /// Write the results document (no-op without `--json-out`).
    pub fn write_json(&self, doc: &Json) {
        if let Some(path) = &self.json_out {
            write_file(path, &format!("{}\n", doc.render_pretty()));
        }
    }
}

fn write_file(path: &str, content: &str) {
    match std::fs::write(path, content) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(err) => {
            eprintln!("error: cannot write {path}: {err}");
            std::process::exit(1);
        }
    }
}

/// Fold one run's predictor accuracy into `tracker` and return the
/// run's contribution (convenience over [`jem_core::accuracy_of`]).
pub fn accumulate_accuracy(
    tracker: &mut AccuracyTracker,
    profile: &Profile,
    result: &ScenarioResult,
) {
    tracker.merge(&accuracy_of(profile, result));
}

/// Print the `fig_regret`-style predictor-accuracy table.
pub fn print_regret_table(title: &str, tracker: &AccuracyTracker) {
    if tracker.invocations() == 0 {
        return;
    }
    let header_owned = AccuracyTracker::table_header();
    let headers: Vec<&str> = header_owned.iter().map(String::as_str).collect();
    print_table(title, &headers, &tracker.table_rows());
}

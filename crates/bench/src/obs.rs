//! Shared observability plumbing for the bench bins.
//!
//! Every bin accepts these optional flags:
//!
//! * `--trace out.jtb|out.json` — export a trace of the scenario runs;
//!   a `.jtb` extension selects the compact binary format, streamed to
//!   disk in bounded memory, anything else the Chrome `trace_event`
//!   JSON document (open in Perfetto / `chrome://tracing`);
//! * `--timeline out.jts` — stream the sim-time-series sidecar: the
//!   deterministic `.jts` timeline of derived run state (cumulative
//!   energy, predictor estimates, channel/breaker state, counters)
//!   sampled every `--sample-every` sim-milliseconds (default 1, 0 =
//!   invocation boundaries only) plus a forced sample at every
//!   invocation end;
//! * `--monitor` — run the online invariant monitors over the event
//!   stream and print the health report;
//! * `--health-out out.json` — write the health report as JSON
//!   (implies `--monitor`);
//! * `--metrics-out out.prom` — write the run's metrics registry in
//!   Prometheus text format;
//! * `--json-out BENCH_x.json` — write machine-readable results;
//! * `--serve ADDR` — expose the run live over an embedded HTTP
//!   server (`/metrics`, `/health`, `/series`, `/events` SSE) while it
//!   executes; the sim publishes copies into a shared snapshot, so the
//!   run itself — and every file it writes — is byte-identical with or
//!   without the flag;
//! * `--flush-every SIM-MS` — flush `--trace`/`--timeline` streams to
//!   disk on the first invocation boundary after every SIM-MS of
//!   sim-time, so `--follow` readers and `jem-top` can tail a run in
//!   flight. Changes where `.jtb`/`.jts` blocks are cut (the decoded
//!   stream is identical); leave unset for byte-identical output;
//! * `--archive DIR` — after all outputs are written, ingest them into
//!   the `jem-lab` experiment archive at DIR under the run's
//!   deterministic fingerprint (bin, identity args, seed, schema
//!   versions). A pure post-hoc observer: the archive copies the
//!   already-written files, so every output stays byte-identical with
//!   or without the flag.
//!
//! Outputs are deterministic: identically-seeded runs write
//! byte-identical files (sim-time timestamps only, sorted label sets,
//! insertion-ordered JSON objects), which CI exploits by diffing two
//! traced runs. Monitoring never perturbs the simulation — alerts are
//! injected into the exported trace, not the run.

use crate::print_table;
use jem_core::{accuracy_of, Profile, ScenarioResult};
use jem_energy::EnergyBreakdown;
use jem_obs::serve::DEFAULT_LIVE_CADENCE_NS;
use jem_obs::wire::{jtb_bytes, FileSink};
use jem_obs::{
    chrome_trace_sharded, chrome_trace_truncated, AccuracyTracker, HealthReport, Json, LiveServer,
    LiveState, MetricsRegistry, MonitorConfig, MonitorTee, NullSink, RingSink, TimelineSink,
    TraceEvent, TraceShard, TraceSink,
};
use std::sync::Arc;

/// Where a bin should write its optional observability outputs.
#[derive(Debug, Clone, Default)]
pub struct ObsArgs {
    /// `--trace` path (`.jtb` binary or Chrome trace JSON).
    pub trace: Option<String>,
    /// `--monitor`: run the online invariant monitors.
    pub monitor: bool,
    /// `--health-out` path (health report JSON; implies `--monitor`).
    pub health_out: Option<String>,
    /// `--metrics-out` path (Prometheus text format).
    pub metrics_out: Option<String>,
    /// `--json-out` path (machine-readable results).
    pub json_out: Option<String>,
    /// `--timeline` path (`.jts` sim-time-series sidecar).
    pub timeline: Option<String>,
    /// `--sample-every` cadence in sim-milliseconds (0 = invocation
    /// boundaries only).
    pub sample_every_ms: f64,
    /// `--serve` bind address (live HTTP observability).
    pub serve: Option<String>,
    /// `--flush-every` cadence in sim-milliseconds (invocation-aligned
    /// stream flushing for live followers).
    pub flush_every_ms: Option<f64>,
    /// The live snapshot store behind `--serve`, shared with the
    /// server's connection threads. `None` unless `--serve` was given.
    pub live: Option<Arc<LiveState>>,
    /// `--archive` directory (`jem-lab` experiment archive to ingest
    /// this run's artifacts into after they are written).
    pub archive: Option<String>,
}

/// Where collected events go before export.
enum SinkKind {
    /// Bounded in-memory ring, exported as Chrome JSON at the end.
    Ring(RingSink),
    /// Streaming `.jtb` file writer (bounded memory regardless of
    /// trace length).
    File(Box<FileSink>),
    /// No trace output — events exist only for the monitors.
    Null(NullSink),
}

/// The sink handed to traced bench runs: a destination plus an
/// optional monitor tee in front of it.
pub struct BenchSink {
    inner: SinkKind,
    tee: Option<MonitorTee>,
    /// `.jts` sidecar writer. A side observer, not part of the sink
    /// chain: it sees the raw (pre-monitor) stream with the tracer's
    /// exact cumulative ledger.
    timeline: Option<TimelineSink>,
    /// Live `--serve` snapshot store. Another side observer: events
    /// are published (copied) into it before they enter the sink
    /// chain, and server threads only ever read the copies — the run
    /// stays byte-identical with or without it.
    live: Option<Arc<LiveState>>,
}

impl BenchSink {
    fn inner_sink(&mut self) -> &mut dyn TraceSink {
        match &mut self.inner {
            SinkKind::Ring(r) => r,
            SinkKind::File(f) => f.as_mut(),
            SinkKind::Null(n) => n,
        }
    }
}

impl BenchSink {
    /// Forward one event down the (tee ->) inner chain.
    fn forward(&mut self, event: TraceEvent) {
        match &mut self.tee {
            Some(tee) => {
                let inner: &mut dyn TraceSink = match &mut self.inner {
                    SinkKind::Ring(r) => r,
                    SinkKind::File(f) => f.as_mut(),
                    SinkKind::Null(n) => n,
                };
                tee.process(event, inner);
            }
            None => self.inner_sink().record(event),
        }
    }
}

impl TraceSink for BenchSink {
    fn enabled(&self) -> bool {
        // Monitoring, the timeline, and the live server need the event
        // stream even when no trace is persisted.
        self.tee.is_some()
            || self.timeline.is_some()
            || self.live.is_some()
            || !matches!(self.inner, SinkKind::Null(_))
    }
    fn record(&mut self, event: TraceEvent) {
        if let Some(live) = self.live.as_deref() {
            live.publish_event(&event, None);
        }
        if let Some(tl) = self.timeline.as_mut() {
            tl.observe(&event, None);
        }
        self.forward(event);
    }
    fn record_with_ledger(&mut self, event: TraceEvent, ledger: &EnergyBreakdown) {
        if let Some(live) = self.live.as_deref() {
            live.publish_event(&event, Some(ledger));
        }
        if let Some(tl) = self.timeline.as_mut() {
            tl.observe(&event, Some(ledger));
        }
        self.forward(event);
    }
    fn ckpt_state(&mut self) -> Option<Vec<u8>> {
        // Monitor tees carry unserialized window state, and ring sinks
        // only materialize at exit — neither can resume mid-stream.
        // (The checkpoint flags reject both combinations up front.)
        if self.tee.is_some() {
            return None;
        }
        let jtb = match &mut self.inner {
            SinkKind::File(f) => match TraceSink::ckpt_state(f.as_mut()) {
                Some(s) => Some(s),
                // A file sink that cannot checkpoint poisons the whole
                // state — resuming without it would desync the trace.
                None => return None,
            },
            SinkKind::Ring(_) | SinkKind::Null(_) => None,
        };
        match self.timeline.as_mut() {
            None => jtb,
            Some(tl) => {
                let jts = TraceSink::ckpt_state(tl)?;
                Some(encode_composite_state(jtb.as_deref(), &jts))
            }
        }
    }
}

/// Composite writer-state magic: a `.jtb` writer state and a `.jts`
/// timeline state packed into the one opaque blob the checkpoint file
/// carries.
const JCS_MAGIC: &[u8; 4] = b"JCS1";

fn encode_composite_state(jtb: Option<&[u8]>, jts: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(13 + jtb.map_or(0, <[u8]>::len) + jts.len());
    out.extend_from_slice(JCS_MAGIC);
    match jtb {
        Some(s) => {
            out.push(1);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s);
        }
        None => out.push(0),
    }
    out.extend_from_slice(&(jts.len() as u32).to_le_bytes());
    out.extend_from_slice(jts);
    out
}

/// The two writer-state parts a checkpoint can carry.
type SplitState<'a> = (Option<&'a [u8]>, Option<&'a [u8]>);

/// Split a checkpointed writer state into its `.jtb` and `.jts`
/// parts. Plain (non-composite) states are `.jtb`-only.
fn split_composite_state(state: &[u8]) -> SplitState<'_> {
    if state.len() < 5 || &state[..4] != JCS_MAGIC {
        return (Some(state), None);
    }
    let parse = || -> Option<SplitState<'_>> {
        let mut pos = 4;
        let has_jtb = state[pos] == 1;
        pos += 1;
        let jtb = if has_jtb {
            let len = u32::from_le_bytes(state.get(pos..pos + 4)?.try_into().ok()?) as usize;
            pos += 4;
            let part = state.get(pos..pos + len)?;
            pos += len;
            Some(part)
        } else {
            None
        };
        let len = u32::from_le_bytes(state.get(pos..pos + 4)?.try_into().ok()?) as usize;
        pos += 4;
        let jts = state.get(pos..pos + len)?;
        if pos + len != state.len() {
            return None;
        }
        Some((jtb, Some(jts)))
    };
    match parse() {
        Some(parts) => parts,
        None => {
            eprintln!("error: corrupt composite writer state in checkpoint");
            std::process::exit(1);
        }
    }
}

impl ObsArgs {
    /// Parse the output flags from argv.
    pub fn parse(args: &[String]) -> ObsArgs {
        let sample_every_ms = match crate::arg_str(args, "--sample-every") {
            None => 1.0,
            Some(raw) => match raw.parse::<f64>() {
                Ok(ms) if ms.is_finite() && ms >= 0.0 => ms,
                _ => {
                    eprintln!("error: --sample-every expects a non-negative sim-ms number");
                    std::process::exit(2);
                }
            },
        };
        let flush_every_ms = match crate::arg_str(args, "--flush-every") {
            None => None,
            Some(raw) => match raw.parse::<f64>() {
                Ok(ms) if ms.is_finite() && ms > 0.0 => Some(ms),
                _ => {
                    eprintln!("error: --flush-every expects a positive sim-ms number");
                    std::process::exit(2);
                }
            },
        };
        let timeline = crate::arg_str(args, "--timeline");
        let serve = crate::arg_str(args, "--serve");
        let live = serve.as_ref().map(|addr| {
            // The /series cadence follows the timeline's when one is
            // being written, so the live view matches the .jts file.
            let cadence = if timeline.is_some() {
                sample_every_ms * 1e6
            } else {
                DEFAULT_LIVE_CADENCE_NS
            };
            let state = Arc::new(LiveState::new(cadence));
            match LiveServer::start(addr, Arc::clone(&state)) {
                Ok(server) => {
                    eprintln!("serving live observability on http://{}", server.addr());
                    state
                }
                Err(err) => {
                    eprintln!("error: {err}");
                    std::process::exit(1);
                }
            }
        });
        ObsArgs {
            trace: crate::arg_str(args, "--trace"),
            monitor: crate::arg_flag(args, "--monitor"),
            health_out: crate::arg_str(args, "--health-out"),
            metrics_out: crate::arg_str(args, "--metrics-out"),
            json_out: crate::arg_str(args, "--json-out"),
            timeline,
            sample_every_ms,
            serve,
            flush_every_ms,
            live,
            archive: crate::arg_str(args, "--archive"),
        }
    }

    /// Whether the invariant monitors should run.
    pub fn monitoring(&self) -> bool {
        self.monitor || self.health_out.is_some()
    }

    /// Whether traced runs are wanted at all (`--trace`, a
    /// `--timeline` sidecar, or monitors that need the event stream).
    pub fn wants_events(&self) -> bool {
        self.trace.is_some() || self.timeline.is_some() || self.monitoring() || self.live.is_some()
    }

    /// The sampling cadence in sim-nanoseconds.
    fn sample_every_ns(&self) -> f64 {
        self.sample_every_ms * 1e6
    }

    /// Whether `--trace` selects the binary format.
    fn wants_jtb(&self) -> bool {
        self.trace.as_ref().is_some_and(|p| p.ends_with(".jtb"))
    }

    /// The sink for trace collection, if `--trace` / `--monitor` /
    /// `--health-out` was given. `.jtb` destinations stream to disk;
    /// JSON destinations collect into a ring bounded at one million
    /// events — far above any bench run, while still a hard cap
    /// against runaway memory.
    pub fn trace_sink(&self) -> Option<BenchSink> {
        self.trace_sink_resumed(None)
    }

    /// Like [`ObsArgs::trace_sink`], but when `writer_state` carries a
    /// checkpointed `.jtb` writer state the file sink reopens the
    /// existing trace and continues appending exactly where the
    /// checkpoint left it (post-checkpoint bytes from the crashed run
    /// are truncated away), instead of starting a fresh file.
    pub fn trace_sink_resumed(&self, writer_state: Option<&[u8]>) -> Option<BenchSink> {
        let (jtb_state, jts_state) = match writer_state {
            Some(state) => split_composite_state(state),
            None => (None, None),
        };
        let inner = match &self.trace {
            Some(path) if self.wants_jtb() => {
                let sink = match jtb_state {
                    Some(state) => FileSink::resume(path, state)
                        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e)),
                    None => FileSink::create(path),
                };
                match sink {
                    Ok(mut f) => {
                        if let Some(ms) = self.flush_every_ms {
                            f.set_flush_every(ms * 1e6);
                        }
                        SinkKind::File(Box::new(f))
                    }
                    Err(err) => {
                        eprintln!("error: cannot create {path}: {err}");
                        std::process::exit(1);
                    }
                }
            }
            Some(_) => SinkKind::Ring(RingSink::new(1_000_000)),
            None if self.monitoring() || self.timeline.is_some() || self.live.is_some() => {
                SinkKind::Null(NullSink)
            }
            None => return None,
        };
        let timeline = self.timeline.as_ref().map(|path| {
            let sink = match jts_state {
                Some(state) => TimelineSink::resume(path, state)
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e)),
                None => TimelineSink::create(path, self.sample_every_ns()),
            };
            match sink {
                Ok(mut tl) => {
                    if let Some(ms) = self.flush_every_ms {
                        tl.set_flush_every(ms * 1e6);
                    }
                    tl
                }
                Err(err) => {
                    eprintln!("error: cannot create {path}: {err}");
                    std::process::exit(1);
                }
            }
        });
        Some(BenchSink {
            inner,
            tee: self
                .monitoring()
                .then(|| MonitorTee::new(MonitorConfig::default())),
            timeline,
            live: self.live.clone(),
        })
    }

    /// Export whatever the sink collected: the trace file (either
    /// format, with any ring truncation declared) and the health
    /// report (printed, and written when `--health-out` was given).
    pub fn finish_trace(&self, sink: Option<BenchSink>) {
        let Some(sink) = sink else {
            self.finish_serve();
            return;
        };
        if let Some(tee) = sink.tee {
            self.emit_health(&tee.finish());
        }
        if let Some(tl) = sink.timeline {
            let path = tl.path().to_string();
            match tl.finish() {
                Ok(()) => eprintln!("wrote {path}"),
                Err(err) => {
                    eprintln!("error: cannot write {path}: {err}");
                    std::process::exit(1);
                }
            }
        }
        match sink.inner {
            SinkKind::Ring(ring) => {
                if let Some(path) = &self.trace {
                    let dropped = ring.dropped();
                    let doc = chrome_trace_truncated(&ring.into_events(), dropped);
                    write_file(path, &format!("{}\n", doc.render()));
                }
            }
            SinkKind::File(f) => {
                let path = f.path().to_string();
                match f.finish() {
                    Ok(()) => eprintln!("wrote {path}"),
                    Err(err) => {
                        eprintln!("error: cannot write {path}: {err}");
                        std::process::exit(1);
                    }
                }
            }
            SinkKind::Null(_) => {}
        }
        self.finish_serve();
    }

    /// Mark the live `--serve` state complete (idempotent; no-op
    /// without `--serve`): `/events` streams terminate after draining
    /// and `/health` is final. The server keeps answering until the
    /// process exits, so late scrapes still see the finished run.
    fn finish_serve(&self) {
        if let Some(live) = self.live.as_deref() {
            live.publish_done();
        }
    }

    /// Write a multi-shard trace — one track per shard, merged in
    /// input order so parallel sweeps stay deterministic. Runs the
    /// monitors over the merged stream when requested (each shard is
    /// an independent run, so the tee resets per shard and alerts land
    /// in their shard's track).
    pub fn write_trace_sharded(&self, shards: &[TraceShard]) {
        // Sharded sweeps only materialize their events here, at the
        // end — replay them into the live state so `--serve` endpoints
        // expose the finished sweep, even if nothing streamed mid-run.
        if let Some(live) = self.live.as_deref() {
            for shard in shards {
                for ev in &shard.events {
                    live.publish_event(ev, None);
                }
            }
            live.publish_done();
        }
        // Sharded sweeps collect events first and replay them here, so
        // the tracer's exact ledger is gone; the timeline falls back to
        // its delta-sum replay mode (cumulative columns then equal the
        // trace-sum columns — still deterministic, still reconciling
        // with the trace, but re-rounded relative to the live ledger).
        if let Some(path) = &self.timeline {
            let tl = TimelineSink::create(path, self.sample_every_ns()).and_then(|mut tl| {
                for shard in shards {
                    for ev in &shard.events {
                        tl.observe(ev, None);
                    }
                }
                tl.finish()
            });
            match tl {
                Ok(()) => eprintln!("wrote {path}"),
                Err(err) => {
                    eprintln!("error: cannot write {path}: {err}");
                    std::process::exit(1);
                }
            }
        }
        let monitored;
        let shards = if self.monitoring() {
            let mut tee = MonitorTee::new(MonitorConfig::default());
            let mut out = Vec::with_capacity(shards.len());
            for shard in shards {
                tee.begin_shard();
                let mut ring = RingSink::new(shard.events.len() + 64);
                for ev in &shard.events {
                    tee.process(ev.clone(), &mut ring);
                }
                out.push(
                    TraceShard::new(shard.name.clone(), ring.into_events())
                        .with_dropped(shard.dropped),
                );
            }
            self.emit_health(&tee.finish());
            monitored = out;
            &monitored[..]
        } else {
            shards
        };
        if let Some(path) = &self.trace {
            if self.wants_jtb() {
                match jem_obs::write_atomic(path, &jtb_bytes(shards)) {
                    Ok(()) => eprintln!("wrote {path}"),
                    Err(err) => {
                        eprintln!("error: cannot write {path}: {err}");
                        std::process::exit(1);
                    }
                }
            } else {
                write_file(
                    path,
                    &format!("{}\n", chrome_trace_sharded(shards).render()),
                );
            }
        }
    }

    fn emit_health(&self, report: &HealthReport) {
        println!();
        println!("{}", report.render_text());
        if let Some(path) = &self.health_out {
            write_file(path, &format!("{}\n", report.to_json().render_pretty()));
        }
    }

    /// Publish the registry's current rendering to the live `/metrics`
    /// endpoint (no-op without `--serve`). Bench bins call this after
    /// filling each sweep point's metrics so scrapes see the run grow.
    pub fn publish_metrics(&self, registry: &MetricsRegistry) {
        if let Some(live) = self.live.as_deref() {
            live.publish_metrics(registry);
        }
    }

    /// Write the metrics registry (no-op without `--metrics-out`) and
    /// publish it to the live endpoint when one is being served.
    pub fn write_metrics(&self, registry: &MetricsRegistry) {
        self.publish_metrics(registry);
        if let Some(path) = &self.metrics_out {
            write_file(path, &registry.render_prometheus());
        }
    }

    /// Write the results document (no-op without `--json-out`).
    pub fn write_json(&self, doc: &Json) {
        if let Some(path) = &self.json_out {
            write_file(path, &format!("{}\n", doc.render_pretty()));
        }
    }

    /// Ingest this run's written artifacts into the `--archive`
    /// experiment archive (no-op without the flag). Bins call this
    /// last, after every output file exists — the archive reads the
    /// files back from disk, so archiving can never perturb them.
    /// `argv` is the bin's full argv (program name first); the run's
    /// fingerprint is derived from its identity arguments.
    pub fn archive_run(&self, argv: &[String]) {
        let Some(root) = &self.archive else {
            return;
        };
        let mut files: Vec<(String, String)> = Vec::new();
        if let Some(p) = &self.json_out {
            files.push(("bench".to_string(), p.clone()));
        }
        if let Some(p) = &self.trace {
            files.push(("trace".to_string(), p.clone()));
        }
        if let Some(p) = &self.timeline {
            files.push(("timeline".to_string(), p.clone()));
        }
        if let Some(p) = &self.health_out {
            files.push(("health".to_string(), p.clone()));
        }
        if let Some(p) = &self.metrics_out {
            files.push(("metrics".to_string(), p.clone()));
        }
        if files.is_empty() {
            eprintln!(
                "warning: --archive {root}: nothing to ingest (no --json-out / --trace / \
                 --timeline / --health-out / --metrics-out)"
            );
            return;
        }
        let meta = jem_obs::RunMeta::from_argv(argv);
        let ingested = jem_obs::Archive::open_or_create(root)
            .and_then(|archive| archive.ingest_files(&meta, &files));
        match ingested {
            Ok(record) => eprintln!(
                "archived {} ({} artifact(s)) into {root}",
                record.label(),
                record.artifacts.len()
            ),
            Err(err) => {
                eprintln!("error: --archive {root}: {err}");
                std::process::exit(1);
            }
        }
    }
}

fn write_file(path: &str, content: &str) {
    match jem_obs::write_atomic(path, content.as_bytes()) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(err) => {
            eprintln!("error: cannot write {path}: {err}");
            std::process::exit(1);
        }
    }
}

/// Fold one run's predictor accuracy into `tracker` and return the
/// run's contribution (convenience over [`jem_core::accuracy_of`]).
pub fn accumulate_accuracy(
    tracker: &mut AccuracyTracker,
    profile: &Profile,
    result: &ScenarioResult,
) {
    tracker.merge(&accuracy_of(profile, result));
}

/// Print the `fig_regret`-style predictor-accuracy table.
pub fn print_regret_table(title: &str, tracker: &AccuracyTracker) {
    if tracker.invocations() == 0 {
        return;
    }
    let header_owned = AccuracyTracker::table_header();
    let headers: Vec<&str> = header_owned.iter().map(String::as_str).collect();
    print_table(title, &headers, &tracker.table_rows());
}

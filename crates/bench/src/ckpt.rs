//! Sweep-level checkpoint/resume for the bench bins.
//!
//! Every bin accepts:
//!
//! * `--ckpt out.jck` — write a checkpoint after every completed
//!   sweep unit and, inside long scenario runs, every `--ckpt-every`
//!   invocations (default 25);
//! * `--resume out.jck` — continue a killed run: completed units are
//!   replayed from their stored results (no re-execution), the
//!   in-flight unit restarts from its invocation-boundary snapshot,
//!   and a `.jtb` trace stream reopens at its checkpointed offset.
//!
//! The contract is **bit-identical output**: a run that is killed and
//! resumed any number of times writes the same `BENCH_*.json` and the
//! same `.jtb` bytes as one uninterrupted run — the resumed loop is
//! the same code path ([`jem_core::run_scenario_ckpt`]), capture is
//! read-only, and every finished artifact is written atomically.
//!
//! Incompatible combinations are rejected up front rather than
//! silently degraded: JSON ring traces and the monitor tee both carry
//! state that only materializes at exit, so `--ckpt` requires a
//! `.jtb` trace (or none) and no `--monitor`/`--health-out`.

use crate::obs::{BenchSink, ObsArgs};
use jem_core::ckpt::{
    decode_result, encode_result, run_scenario_ckpt, CkptFile, InflightCkpt, RunSnapshot,
};
use jem_core::{Profile, ResilienceConfig, ScenarioResult, Strategy, Workload};
use jem_obs::{write_atomic, TraceSink};
use jem_sim::Scenario;

/// The checkpoint flags (`--ckpt`, `--ckpt-every`, `--resume`).
#[derive(Debug, Clone, Default)]
pub struct CkptArgs {
    /// Checkpoint file path (from either flag).
    pub path: Option<String>,
    /// Invocation cadence for in-run snapshots.
    pub every: usize,
    /// Whether `--resume` asked to continue from an existing file.
    pub resume: bool,
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

impl CkptArgs {
    /// Parse the checkpoint flags from argv.
    pub fn parse(args: &[String]) -> CkptArgs {
        let ckpt = crate::arg_str(args, "--ckpt");
        let resume = crate::arg_str(args, "--resume");
        if let (Some(c), Some(r)) = (&ckpt, &resume) {
            if c != r {
                fail("--ckpt and --resume must name the same file");
            }
        }
        CkptArgs {
            resume: resume.is_some(),
            path: resume.or(ckpt),
            every: crate::arg_usize(args, "--ckpt-every", 25),
        }
    }

    /// Whether checkpointing is on at all.
    pub fn enabled(&self) -> bool {
        self.path.is_some()
    }

    /// Reject output combinations a checkpoint cannot restore.
    pub fn validate(&self, obs: &ObsArgs) {
        if !self.enabled() {
            return;
        }
        if obs.monitoring() {
            fail(
                "--ckpt cannot resume monitor state; drop --monitor/--health-out \
                 or run without checkpointing",
            );
        }
        if let Some(trace) = &obs.trace {
            if !trace.ends_with(".jtb") {
                fail(
                    "--ckpt requires a .jtb trace (JSON ring traces only materialize \
                     at exit and cannot be resumed)",
                );
            }
        }
        if self.every == 0 {
            fail("--ckpt-every must be at least 1");
        }
        if obs.flush_every_ms.is_some() {
            fail(
                "--ckpt and --flush-every cannot be combined: resume truncates back to \
                 the checkpointed offset, which assumes the default block cadence",
            );
        }
    }

    /// Stricter gate for bins whose traced runs bypass the resumable
    /// scenario loop: checkpointing is unit-level only, so `--trace`
    /// cannot be continued across a crash.
    pub fn validate_no_trace(&self, obs: &ObsArgs) {
        self.validate(obs);
        if self.enabled() && obs.trace.is_some() {
            fail("--ckpt and --trace cannot be combined in this bin");
        }
        if self.enabled() && obs.timeline.is_some() {
            fail("--ckpt and --timeline cannot be combined in this bin");
        }
    }

    /// For bins with no scenario state (constant tables, profile-only
    /// figures): the flags are accepted, and `--resume` is simply a
    /// deterministic rerun (atomic output writes make that safe).
    pub fn note_stateless(&self) {
        if self.enabled() {
            eprintln!(
                "checkpointing: this bin is stateless and sub-second; --resume reruns it \
                 from scratch (outputs are atomic and deterministic)"
            );
        }
    }
}

/// One bench invocation's checkpointed sweep: an ordered series of
/// named units, each either a full scenario run (resumable at
/// invocation granularity) or an opaque payload (resumable at unit
/// granularity).
pub struct SweepSession {
    path: Option<String>,
    every: usize,
    fingerprint: String,
    completed: Vec<(String, Vec<u8>)>,
    sink_state: Option<Vec<u8>>,
    inflight: Option<InflightCkpt>,
}

impl SweepSession {
    /// Start (or resume) a session. `fingerprint` must encode the bin
    /// name and every argument that shapes the sweep — resuming with
    /// a different invocation is refused.
    pub fn open(args: &CkptArgs, fingerprint: String) -> SweepSession {
        let mut session = SweepSession {
            path: args.path.clone(),
            every: args.every,
            fingerprint,
            completed: Vec::new(),
            sink_state: None,
            inflight: None,
        };
        if args.resume {
            let path = session.path.as_deref().expect("resume implies a path");
            if std::path::Path::new(path).exists() {
                let file = match CkptFile::load(path) {
                    Ok(f) => f,
                    Err(e) => fail(&format!("cannot resume from {path}: {e}")),
                };
                if file.fingerprint != session.fingerprint {
                    fail(&format!(
                        "{path} was written by a different invocation\n  checkpoint: {}\n  \
                         this run:  {}",
                        file.fingerprint, session.fingerprint
                    ));
                }
                eprintln!(
                    "resuming from {path}: {} completed unit(s){}",
                    file.completed.len(),
                    file.inflight
                        .as_ref()
                        .map(|i| format!(", in-flight `{}`", i.unit))
                        .unwrap_or_default(),
                );
                session.completed = file.completed;
                session.sink_state = file.writer_state;
                session.inflight = file.inflight;
            } else {
                eprintln!("resume: {path} does not exist yet, starting fresh");
            }
        }
        session
    }

    /// The checkpointed `.jtb` writer state, for
    /// [`ObsArgs::trace_sink_resumed`].
    pub fn writer_state(&self) -> Option<&[u8]> {
        self.sink_state.as_deref()
    }

    fn save(&self, inflight: Option<InflightCkpt>) {
        let Some(path) = &self.path else { return };
        let file = CkptFile {
            fingerprint: self.fingerprint.clone(),
            completed: self.completed.clone(),
            writer_state: self.sink_state.clone(),
            inflight,
        };
        if let Err(e) = write_atomic(path, &file.encode()) {
            fail(&format!("cannot write checkpoint {path}: {e}"));
        }
    }

    /// Run one scenario unit, checkpointing at invocation boundaries.
    /// A unit already in the checkpoint returns its stored result
    /// without re-running (its trace bytes are already on disk below
    /// the checkpointed writer offset); the in-flight unit resumes
    /// from its snapshot; anything else runs fresh.
    #[allow(clippy::too_many_arguments)]
    pub fn run_unit(
        &mut self,
        name: &str,
        workload: &dyn Workload,
        profile: &Profile,
        scenario: &Scenario,
        strategy: Strategy,
        resilience: &ResilienceConfig,
        mut sink: Option<&mut BenchSink>,
    ) -> ScenarioResult {
        if let Some((_, payload)) = self.completed.iter().find(|(n, _)| n == name) {
            match decode_result(payload) {
                Ok(r) => return r,
                Err(e) => fail(&format!("corrupt stored result for unit `{name}`: {e}")),
            }
        }
        let resume_snap = match self.inflight.take() {
            Some(inf) if inf.unit == name => match RunSnapshot::decode(&inf.snapshot) {
                Ok(s) => Some(s),
                Err(e) => fail(&format!("corrupt snapshot for unit `{name}`: {e}")),
            },
            Some(inf) => fail(&format!(
                "checkpoint is in-flight in unit `{}` but the sweep reached `{name}` first — \
                 the unit order diverged",
                inf.unit
            )),
            None => None,
        };

        let every = if self.path.is_some() { self.every } else { 0 };
        let (path, fingerprint) = (&self.path, &self.fingerprint);
        let (completed, sink_state) = (&self.completed, &mut self.sink_state);
        let mut hook = |snap: &RunSnapshot, writer: Option<Vec<u8>>| {
            if writer.is_some() {
                *sink_state = writer;
            }
            let file = CkptFile {
                fingerprint: fingerprint.clone(),
                completed: completed.clone(),
                writer_state: sink_state.clone(),
                inflight: Some(InflightCkpt {
                    unit: name.to_string(),
                    snapshot: snap.encode(),
                }),
            };
            let path = path.as_deref().expect("hook only runs with a path");
            if let Err(e) = write_atomic(path, &file.encode()) {
                fail(&format!("cannot write checkpoint {path}: {e}"));
            }
        };
        let sink_dyn: Option<&mut dyn TraceSink> = match sink.as_mut() {
            Some(s) => Some(&mut **s),
            None => None,
        };
        let result = match run_scenario_ckpt(
            workload,
            profile,
            scenario,
            strategy,
            resilience,
            sink_dyn,
            resume_snap.as_ref(),
            every,
            if self.path.is_some() {
                Some(&mut hook)
            } else {
                None
            },
        ) {
            Ok(r) => r,
            Err(e) => fail(&format!("unit `{name}` failed: {e}")),
        };

        if self.path.is_some() {
            self.completed
                .push((name.to_string(), encode_result(&result)));
            if let Some(s) = sink.as_mut() {
                if let Some(ws) = TraceSink::ckpt_state(&mut **s) {
                    self.sink_state = Some(ws);
                }
            }
            self.save(None);
        }
        result
    }

    /// Run one opaque unit (unit-level granularity): the payload of a
    /// completed unit is returned without re-running `f`.
    pub fn unit(&mut self, name: &str, f: impl FnOnce() -> Vec<u8>) -> Vec<u8> {
        if let Some((_, payload)) = self.completed.iter().find(|(n, _)| n == name) {
            return payload.clone();
        }
        if let Some(inf) = self.inflight.take() {
            if inf.unit != name {
                fail(&format!(
                    "checkpoint is in-flight in unit `{}` but the sweep reached `{name}` \
                     first — the unit order diverged",
                    inf.unit
                ));
            }
            // Opaque units carry no snapshot; restart the unit.
        }
        let payload = f();
        if self.path.is_some() {
            self.completed.push((name.to_string(), payload.clone()));
            self.save(None);
        }
        payload
    }
}

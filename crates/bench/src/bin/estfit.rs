//! §3.2 estimator-accuracy claim.
//!
//! "To verify the accuracy of these curves, the points from these
//! curves were compared with 20 other data points (for each
//! application) from actual executions. We found that our curve
//! fitting based energy estimation is within 2% of the actual energy
//! value."
//!
//! For each workload we fit the profile on its calibration sizes, then
//! evaluate 20 held-out executions at sizes drawn uniformly from the
//! workload's full range (different seeds than calibration) and report
//! the worst relative error of the interpretation- and native-energy
//! estimators.
//!
//! Usage: `estfit [--metrics-out out.prom]
//! [--json-out BENCH_estfit.json] [--serve ADDR]`.
//!
//! Fit and held-out evaluation are seeded and profile-driven — no
//! scenario runs, so the `--json-out` document is fully deterministic
//! and its `bench-history` baseline carries no
//! `total_sim_instructions` throughput denominator.

use jem_apps::all_workloads;
use jem_bench::ckpt::CkptArgs;
use jem_bench::obs::ObsArgs;
use jem_bench::{build_profiles, print_table};
use jem_jvm::{OptLevel, Vm};
use jem_obs::{Json, MetricsRegistry};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let obs = ObsArgs::parse(&args);
    let ckpt = CkptArgs::parse(&args);
    ckpt.validate(&obs);
    ckpt.note_stateless();
    let workloads = all_workloads();
    eprintln!("building profiles...");
    let profiles = build_profiles(&workloads, 42);

    let mut rows = Vec::new();
    let mut json_points = Vec::new();
    let mut registry = MetricsRegistry::new();
    registry.set_help(
        "estimator_worst_rel_error",
        "worst relative error of a profile energy estimator over 20 held-out executions",
    );
    for (w, p) in workloads.iter().zip(&profiles) {
        let sizes = w.sizes();
        let (lo, hi) = (sizes[0], *sizes.last().expect("non-empty"));
        let mut rng = SmallRng::seed_from_u64(0xE57);
        let mut worst_interp: f64 = 0.0;
        let mut worst_native: f64 = 0.0;
        for i in 0..20 {
            // Held-out size: snap a uniform draw to the workload's
            // granularity by picking any supported size plus random
            // in-range values for workloads with dense size spaces.
            let size =
                if w.name() == "fe" || w.name() == "sort" || w.name() == "jess" || w.name() == "db"
                {
                    rng.gen_range(lo..=hi)
                } else {
                    // image sizes must stay multiples of 8
                    let step = 8;
                    let k = rng.gen_range(lo / step..=hi / step);
                    k * step
                };
            let mut run_rng = SmallRng::seed_from_u64(0x5EED + i);

            // Actual interpreted energy.
            let mut vm = Vm::client(w.program());
            let args = w.make_args(&mut vm.heap, size, &mut run_rng.clone());
            vm.invoke(w.potential_method(), args).expect("runs");
            let actual_i = vm.machine.energy().nanojoules();
            let est_i = p.e_interp(f64::from(size)).nanojoules();
            worst_interp = worst_interp.max(((est_i - actual_i) / actual_i).abs());

            // Actual native (L2) energy.
            let mut vm = Vm::client(w.program());
            p.install(&mut vm, OptLevel::L2);
            let args = w.make_args(&mut vm.heap, size, &mut run_rng);
            vm.invoke(w.potential_method(), args).expect("runs");
            let actual_n = vm.machine.energy().nanojoules();
            let est_n = p.e_local(OptLevel::L2, f64::from(size)).nanojoules();
            worst_native = worst_native.max(((est_n - actual_n) / actual_n).abs());
        }
        json_points.push(
            Json::object()
                .with("app", w.name())
                .with("max_rel_err_interp", worst_interp)
                .with("max_rel_err_native_l2", worst_native),
        );
        registry.set_gauge(
            "estimator_worst_rel_error",
            &[
                ("app", w.name().to_string()),
                ("estimator", "interp".to_string()),
            ],
            worst_interp,
        );
        registry.set_gauge(
            "estimator_worst_rel_error",
            &[
                ("app", w.name().to_string()),
                ("estimator", "native-l2".to_string()),
            ],
            worst_native,
        );
        rows.push(vec![
            w.name().to_string(),
            format!("{:.2}%", worst_interp * 100.0),
            format!("{:.2}%", worst_native * 100.0),
        ]);
    }
    print_table(
        "Curve-fit estimator accuracy on 20 held-out executions per app (paper: within 2%)",
        &["app", "max err (interp)", "max err (native L2)"],
        &rows,
    );
    println!(
        "\nNote: the paper itself flags the limitation these numbers expose — the\n\
         approach 'may not work well for methods whose parameter sizes are not\n\
         representative of their execution costs'. db is exactly that case: its\n\
         cost depends on the query's selectivity (how many records match and get\n\
         sorted), which the record count alone does not capture; sort shows a\n\
         milder version via pivot luck. The compute-dominated benchmarks stay\n\
         within the paper's 2%."
    );

    obs.write_json(
        &Json::object()
            .with("figure", "estfit")
            .with("points", Json::Arr(json_points)),
    );
    obs.write_metrics(&registry);
    obs.archive_run(&args);
}

//! Fig 7 — average normalized energy of all strategies under the
//! three situations.
//!
//! "Each benchmark is executed by choosing three different situations
//! … (i) the channel condition is predominantly good and one input
//! size dominates; (ii) the channel condition is predominantly poor
//! and one input size dominates; and (iii) both channel condition and
//! size parameters are uniformly distributed. … For each scenario, an
//! application is executed 300 times … Fig 7 shows the energy
//! consumption of different execution strategies, normalized with
//! respect to L1. Note that these values are averaged over all eight
//! benchmarks."
//!
//! Headline claims checked by this harness: AL outperforms every
//! static strategy in all three situations (the paper reports 25%,
//! 10% and 22% savings vs the best static), and AA saves more than AL.
//!
//! Usage: `fig7 [--runs N] [--trace out.json] [--metrics-out out.prom]
//! [--timeline out.jts [--sample-every SIM_MS]]
//! [--serve ADDR] [--flush-every SIM_MS]
//! [--json-out BENCH_fig7.json]` (default 300 runs, the paper's
//! count). `--timeline` replays the collected shards through the
//! `.jts` sampler at export time (delta-sum mode; see DESIGN.md §14). `--trace` records the AA strategy of *every* grid cell:
//! each parallel cell collects into its own `RingSink` shard, and the
//! shards are merged in deterministic cell order into one multi-track
//! Chrome trace (`chrome_trace_sharded`), so the traced sweep is
//! byte-identical run-to-run even with the grid running on all cores.

use jem_apps::all_workloads;
use jem_bench::ckpt::{CkptArgs, SweepSession};
use jem_bench::obs::{print_regret_table, ObsArgs};
use jem_bench::{arg_usize, build_profiles, fmt_norm, print_table};
use jem_core::{accuracy_of, run_scenario, run_scenario_traced, ResilienceConfig, Strategy};
use jem_obs::{AccuracyTracker, Json, MetricsRegistry, RingSink, TraceShard};
use jem_sim::{parallel::sweep, Scenario, Situation};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let runs = arg_usize(&args, "--runs", 300);
    let obs = ObsArgs::parse(&args);
    // The parallel grid shards its trace through per-cell ring sinks,
    // which cannot be checkpointed mid-stream — `--ckpt` therefore
    // excludes `--trace` here and runs the grid sequentially, one
    // resumable unit per (cell, strategy).
    let ckpt = CkptArgs::parse(&args);
    ckpt.validate_no_trace(&obs);
    let tracing = obs.wants_events();

    let workloads = all_workloads();
    eprintln!("building profiles for {} workloads...", workloads.len());
    let profiles = build_profiles(&workloads, 42);

    // Grid: (workload, situation) cells in parallel; strategies inside
    // a cell share the cell's scenario seed so every strategy sees the
    // same size/channel draw sequence.
    let mut cells: Vec<(usize, Situation)> = Vec::new();
    for wi in 0..workloads.len() {
        for sit in Situation::ALL {
            cells.push((wi, sit));
        }
    }
    eprintln!(
        "running {} cells x {} strategies x {runs} invocations...",
        cells.len(),
        Strategy::ALL.len()
    );
    type Cell = (
        usize,
        Situation,
        Vec<f64>,
        Vec<(Strategy, AccuracyTracker)>,
        u64,
        Option<TraceShard>,
    );
    let results: Vec<Cell> = if ckpt.enabled() {
        let mut session = SweepSession::open(&ckpt, format!("fig7 runs={runs}"));
        let mut out = Vec::with_capacity(cells.len());
        for &(wi, sit) in &cells {
            let w = workloads[wi].as_ref();
            let scenario = Scenario::paper(sit, &w.sizes(), 1000 + wi as u64).with_runs(runs);
            let mut energies = Vec::with_capacity(Strategy::ALL.len());
            let mut trackers: Vec<(Strategy, AccuracyTracker)> = Vec::new();
            let mut instructions = 0u64;
            for &s in &Strategy::ALL {
                let result = session.run_unit(
                    &format!("{}/{}/{}", w.name(), sit.key(), s.key()),
                    w,
                    &profiles[wi],
                    &scenario,
                    s,
                    &ResilienceConfig::default(),
                    None,
                );
                energies.push(result.total_energy.nanojoules());
                instructions += result.instructions;
                if s.is_adaptive() {
                    trackers.push((s, accuracy_of(&profiles[wi], &result)));
                }
            }
            out.push((wi, sit, energies, trackers, instructions, None));
        }
        out
    } else {
        sweep(&cells, 0, |&(wi, sit)| {
            let w = workloads[wi].as_ref();
            let scenario = Scenario::paper(sit, &w.sizes(), 1000 + wi as u64).with_runs(runs);
            let mut energies = Vec::with_capacity(Strategy::ALL.len());
            let mut trackers: Vec<(Strategy, AccuracyTracker)> = Vec::new();
            let mut instructions = 0u64;
            let mut shard = None;
            for &s in &Strategy::ALL {
                // Tracing draws nothing from the RNG, so the traced AA run
                // is bit-identical to the untraced one; each cell's events
                // land in the cell's own shard, merged in cell order below.
                let result = if tracing && s == Strategy::AdaptiveAdaptive {
                    let mut ring = RingSink::new(1_000_000);
                    let result = run_scenario_traced(
                        w,
                        &profiles[wi],
                        &scenario,
                        s,
                        &ResilienceConfig::default(),
                        &mut ring,
                    )
                    .expect("scenario run failed");
                    shard = Some(TraceShard::new(
                        format!("{}/{}", w.name(), sit.key()),
                        ring.into_events(),
                    ));
                    result
                } else {
                    run_scenario(w, &profiles[wi], &scenario, s)
                };
                energies.push(result.total_energy.nanojoules());
                instructions += result.instructions;
                if s.is_adaptive() {
                    trackers.push((s, accuracy_of(&profiles[wi], &result)));
                }
            }
            (wi, sit, energies, trackers, instructions, shard)
        })
    };

    // Per-strategy predictor accuracy, merged across the whole grid
    // (merge of per-cell trackers equals tracking the concatenation).
    let mut al_tracker = AccuracyTracker::new();
    let mut aa_tracker = AccuracyTracker::new();
    for (_, _, _, trackers, _, _) in &results {
        for (s, t) in trackers {
            match s {
                Strategy::AdaptiveLocal => al_tracker.merge(t),
                Strategy::AdaptiveAdaptive => aa_tracker.merge(t),
                _ => {}
            }
        }
    }

    // Normalize each cell to its L1 (index 2 in Strategy::ALL), then
    // average across benchmarks per situation.
    let l1_idx = Strategy::ALL
        .iter()
        .position(|&s| s == Strategy::Local1)
        .expect("L1 present");
    let mut rows = Vec::new();
    for sit in Situation::ALL {
        let mut sums = vec![0.0; Strategy::ALL.len()];
        let mut count = 0usize;
        for (_, s, energies, _, _, _) in results.iter().filter(|(_, s, _, _, _, _)| *s == sit) {
            let _ = s;
            let l1 = energies[l1_idx];
            for (i, e) in energies.iter().enumerate() {
                sums[i] += e / l1 * 100.0;
            }
            count += 1;
        }
        let avg: Vec<f64> = sums.iter().map(|s| s / count as f64).collect();
        let mut row = vec![sit.key().to_string()];
        row.extend(avg.iter().map(|&v| fmt_norm(v)));
        rows.push(row);

        // Paper-style claim lines.
        let best_static = Strategy::STATIC
            .iter()
            .map(|s| {
                let i = Strategy::ALL.iter().position(|x| x == s).expect("present");
                (s.key(), avg[i])
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty");
        let al = avg[Strategy::ALL
            .iter()
            .position(|&s| s == Strategy::AdaptiveLocal)
            .expect("AL")];
        let aa = avg[Strategy::ALL
            .iter()
            .position(|&s| s == Strategy::AdaptiveAdaptive)
            .expect("AA")];
        println!(
            "situation {:>3}: best static = {} ({:.1}); AL saves {:.1}% vs it; AA saves {:.1}% vs it",
            sit.key(),
            best_static.0,
            best_static.1,
            (1.0 - al / best_static.1) * 100.0,
            (1.0 - aa / best_static.1) * 100.0,
        );
    }

    let headers: Vec<&str> = std::iter::once("situation")
        .chain(Strategy::ALL.iter().map(|s| s.key()))
        .collect();
    print_table(
        &format!(
            "Fig 7: average normalized energy over 8 benchmarks ({runs} runs/scenario, L1 = 100)"
        ),
        &headers,
        &rows,
    );

    print_regret_table("AL predictor accuracy / regret (all cells)", &al_tracker);
    print_regret_table("AA predictor accuracy / regret (all cells)", &aa_tracker);

    let mut registry = MetricsRegistry::new();
    al_tracker.fill_metrics(&mut registry);
    obs.write_metrics(&registry);

    let mut json_cells = Vec::new();
    for (wi, sit, energies, _, _, _) in &results {
        json_cells.push(
            Json::object()
                .with("bench", workloads[*wi].name())
                .with("situation", sit.key())
                .with(
                    "energies_nj",
                    Json::Arr(
                        Strategy::ALL
                            .iter()
                            .zip(energies)
                            .map(|(s, &e)| Json::object().with("strategy", s.key()).with("nj", e))
                            .collect(),
                    ),
                ),
        );
    }
    let total_instructions: u64 = results.iter().map(|(_, _, _, _, n, _)| n).sum();
    obs.write_json(
        &Json::object()
            .with("figure", "fig7")
            .with("runs", runs)
            .with("total_sim_instructions", total_instructions)
            .with("cells", Json::Arr(json_cells))
            .with("accuracy_al", al_tracker.to_json())
            .with("accuracy_aa", aa_tracker.to_json()),
    );

    if tracing {
        // `sweep` preserves input order, so the shard sequence — and
        // therefore the merged document — is deterministic regardless
        // of thread scheduling.
        let shards: Vec<TraceShard> = results
            .into_iter()
            .filter_map(|(_, _, _, _, _, shard)| shard)
            .collect();
        obs.write_trace_sharded(&shards);
    }
    obs.archive_run(&args);
}

//! Ablations over the framework's design choices.
//!
//! 1. **EWMA weight** u ∈ {0, 0.5, 0.7, 0.9, 1.0} — the paper: "setting
//!    both u1 and u2 to 0.7 yields satisfactory results."
//! 2. **Power-down during remote execution** on vs off (active idle) —
//!    quantifies the value of the mobile-status-table machinery.
//! 3. **Pilot channel estimation** vs a fixed worst-case (Class 1)
//!    transmit power — what the IS-95-style tracking buys.
//! 4. **Helper-method overhead** — the decision cost the adaptive
//!    strategies carry per invocation.
//!
//! Usage: `ablation [--runs N] [--trace out.json]
//! [--timeline out.jts [--sample-every SIM_MS]]
//! [--serve ADDR] [--flush-every SIM_MS]
//! [--json-out BENCH_ablation.json] [--ckpt out.jck] [--resume
//! out.jck]` (default 120 runs). `--trace` records every variant's
//! runs in order. Checkpointing is variant-level (the ablation loops
//! bypass the resumable scenario runner), so `--ckpt` excludes
//! `--trace` and `--timeline`.

use jem_apps::workload_by_name;
use jem_bench::ckpt::{CkptArgs, SweepSession};
use jem_bench::obs::ObsArgs;
use jem_bench::{arg_usize, print_table};
use jem_core::runtime::decision_mix;
use jem_core::{EnergyAwareVm, MethodState, Profile, Strategy};
use jem_energy::MachineConfig;
use jem_obs::{Json, NullSink, TraceSink, Tracer};
use jem_radio::ChannelClass;
use jem_sim::{Scenario, Situation};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn run_al(
    w: &dyn jem_core::Workload,
    p: &Profile,
    scenario: &Scenario,
    state: MethodState,
    power_down: bool,
    force_class: Option<ChannelClass>,
    sink: &mut dyn TraceSink,
) -> (f64, u64) {
    let mut rng = SmallRng::seed_from_u64(scenario.seed);
    let mut channel = scenario.channel.clone();
    let mut vm = EnergyAwareVm::new(w, p)
        .with_state(state)
        .with_tracer(Tracer::attached(sink));
    let mut total = 0.0;
    for _ in 0..scenario.runs {
        let size = scenario.sizes.sample(&mut rng);
        let mut true_class = channel.advance(&mut rng);
        if let Some(c) = force_class {
            // Forcing the *chosen* class is modeled by forcing the
            // pilot's belief: feed it a constant channel.
            true_class = c;
        }
        let report = vm
            .invoke_once(Strategy::AdaptiveLocal, size, true_class, &mut rng)
            .expect("runs");
        total += report.energy.nanojoules();
        if !power_down {
            // Add back the difference between active idle and power
            // down for the invocation's wait time (approximation:
            // remote invocations idle instead of sleeping).
            if matches!(report.mode, jem_core::Mode::Remote) {
                let cfg = MachineConfig::mobile_client();
                let active = cfg.nominal_power.over(report.time);
                let slept = (cfg.nominal_power * cfg.leak_fraction).over(report.time);
                total += active.nanojoules() - slept.nanojoules();
            }
        }
        vm.end_invocation();
    }
    (total, vm.client.machine.mix().total())
}

fn target<'a>(
    sink: &'a mut Option<jem_bench::obs::BenchSink>,
    null: &'a mut NullSink,
) -> &'a mut dyn TraceSink {
    match sink.as_mut() {
        Some(s) => s,
        None => null,
    }
}

/// [`run_al`] behind a variant-level checkpoint unit: a completed
/// variant replays its stored `(energy, instructions)` pair instead
/// of re-running.
#[allow(clippy::too_many_arguments)]
fn run_al_unit(
    session: &mut SweepSession,
    name: &str,
    w: &dyn jem_core::Workload,
    p: &Profile,
    scenario: &Scenario,
    state: MethodState,
    power_down: bool,
    force_class: Option<ChannelClass>,
    sink: &mut dyn TraceSink,
) -> (f64, u64) {
    let payload = session.unit(name, || {
        let (e, instr) = run_al(w, p, scenario, state, power_down, force_class, sink);
        let mut v = e.to_bits().to_le_bytes().to_vec();
        v.extend_from_slice(&instr.to_le_bytes());
        v
    });
    assert_eq!(payload.len(), 16, "corrupt stored ablation payload");
    let e = f64::from_bits(u64::from_le_bytes(
        payload[..8].try_into().expect("8 bytes"),
    ));
    let instr = u64::from_le_bytes(payload[8..].try_into().expect("8 bytes"));
    (e, instr)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let runs = arg_usize(&args, "--runs", 120);
    let obs = ObsArgs::parse(&args);
    let ckpt = CkptArgs::parse(&args);
    ckpt.validate_no_trace(&obs);
    let mut session = SweepSession::open(&ckpt, format!("ablation runs={runs}"));
    let mut sink = obs.trace_sink();
    let mut null = NullSink;

    let w = workload_by_name("fe").expect("fe");
    eprintln!("building profile...");
    let p = Profile::build(w.as_ref(), 42);
    let scenario = Scenario::paper(Situation::GoodDominant, &w.sizes(), 31).with_runs(runs);

    // 1. EWMA weight sweep.
    let mut rows = Vec::new();
    let mut json_ewma = Vec::new();
    let mut total_instructions = 0u64;
    for u in [0.0, 0.5, 0.7, 0.9, 1.0] {
        let (e, instr) = run_al_unit(
            &mut session,
            &format!("ewma/u{u:.1}"),
            w.as_ref(),
            &p,
            &scenario,
            MethodState::with_weights(u, u),
            true,
            None,
            target(&mut sink, &mut null),
        );
        total_instructions += instr;
        json_ewma.push(Json::object().with("u", u).with("total_nj", e));
        rows.push(vec![format!("{u:.1}"), format!("{:.2} mJ", e * 1e-6)]);
    }
    print_table(
        "Ablation 1: EWMA weight u (AL, fe, situation i; paper recommends 0.7)",
        &["u", "total energy"],
        &rows,
    );

    // 2. Power-down vs active idle.
    let (on, on_instr) = run_al_unit(
        &mut session,
        "powerdown/on",
        w.as_ref(),
        &p,
        &scenario,
        MethodState::new(),
        true,
        None,
        target(&mut sink, &mut null),
    );
    let (off, off_instr) = run_al_unit(
        &mut session,
        "powerdown/off",
        w.as_ref(),
        &p,
        &scenario,
        MethodState::new(),
        false,
        None,
        target(&mut sink, &mut null),
    );
    total_instructions += on_instr + off_instr;
    print_table(
        "Ablation 2: power-down during remote execution",
        &["variant", "total energy"],
        &[
            vec![
                "power-down (10% leakage)".into(),
                format!("{:.2} mJ", on * 1e-6),
            ],
            vec!["active idle".into(), format!("{:.2} mJ", off * 1e-6)],
        ],
    );

    // 3. Pilot tracking vs fixed worst-case power.
    let (tracked, tracked_instr) = run_al_unit(
        &mut session,
        "pilot/tracked",
        w.as_ref(),
        &p,
        &scenario,
        MethodState::new(),
        true,
        None,
        target(&mut sink, &mut null),
    );
    let (fixed, fixed_instr) = run_al_unit(
        &mut session,
        "pilot/fixed-c1",
        w.as_ref(),
        &p,
        &scenario,
        MethodState::new(),
        true,
        Some(ChannelClass::C1),
        target(&mut sink, &mut null),
    );
    total_instructions += tracked_instr + fixed_instr;
    print_table(
        "Ablation 3: pilot-based TX power control vs fixed Class 1 power",
        &["variant", "total energy"],
        &[
            vec![
                "pilot-tracked class".into(),
                format!("{:.2} mJ", tracked * 1e-6),
            ],
            vec![
                "always Class 1 (5.88 W)".into(),
                format!("{:.2} mJ", fixed * 1e-6),
            ],
        ],
    );

    // 4. Helper-method overhead per invocation.
    let cfg = MachineConfig::mobile_client();
    let overhead = cfg.table.energy_of_mix(&decision_mix());
    println!(
        "\nAblation 4: helper-method decision overhead = {} per invocation ({:.4}% of a mid-size fe interpreted run)",
        overhead,
        overhead.nanojoules() / p.e_interp(1024.0).nanojoules() * 100.0
    );

    obs.write_json(
        &Json::object()
            .with("figure", "ablation")
            .with("runs", runs)
            .with("total_sim_instructions", total_instructions)
            .with("ewma", Json::Arr(json_ewma))
            .with(
                "power_down",
                Json::object().with("on_nj", on).with("off_nj", off),
            )
            .with(
                "pilot",
                Json::object()
                    .with("tracked_nj", tracked)
                    .with("fixed_c1_nj", fixed),
            )
            .with("helper_overhead_nj", overhead.nanojoules()),
    );
    obs.finish_trace(sink);
    obs.archive_run(&args);
}

//! §3.2 performance claim — remote-execution speedup.
//!
//! "When using a 750MHz SPARC server and a 2.3Mbps wireless channel,
//! we find that performance improvements (over local client execution)
//! vary between 2.5 times speedup and 10 times speedup based on input
//! sizes whenever remote execution is preferred. However, … remote
//! execution could be detrimental to performance if the communication
//! time dominates the computation time."
//!
//! This harness sweeps every workload and size, measures client
//! wall-clock for local execution (Local2 native code — what a JIT VM
//! runs locally; the one-time compile is amortized over the run) vs
//! remote execution in a Class 4 channel, and reports the speedups —
//! flagging whether remote execution would actually be *chosen* there
//! (energy-wise).

use jem_apps::all_workloads;
use jem_bench::ckpt::{CkptArgs, SweepSession};
use jem_bench::obs::ObsArgs;
use jem_bench::{build_profiles, print_table};
use jem_core::{ResilienceConfig, Strategy};
use jem_obs::Json;
use jem_radio::{ChannelClass, ChannelProcess};
use jem_sim::{Scenario, Situation, SizeDist};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    jem_bench::apply_engine_flag(&args);
    let obs = ObsArgs::parse(&args);
    let ckpt = CkptArgs::parse(&args);
    ckpt.validate(&obs);
    let mut session = SweepSession::open(
        &ckpt,
        format!("speedup trace={:?} timeline={:?}", obs.trace, obs.timeline),
    );
    let mut sink = obs.trace_sink_resumed(session.writer_state());
    let workloads = all_workloads();
    eprintln!("building profiles...");
    let profiles = build_profiles(&workloads, 42);

    let mut rows = Vec::new();
    let mut json_points = Vec::new();
    let mut chosen_speedups: Vec<f64> = Vec::new();
    let mut total_instructions = 0u64;
    for (w, p) in workloads.iter().zip(&profiles) {
        for size in w.sizes() {
            let scenario = |_s| Scenario {
                situation: Situation::GoodDominant,
                channel: ChannelProcess::Fixed(ChannelClass::C4),
                sizes: SizeDist::Fixed(size),
                runs: 6,
                seed: 77,
                faults: jem_sim::FaultSpec::NONE,
            };
            let policy = ResilienceConfig::default();
            let interp = session.run_unit(
                &format!("{}/{size}/interp", w.name()),
                w.as_ref(),
                p,
                &scenario(size),
                Strategy::Interpreter,
                &policy,
                None,
            );
            let local = session.run_unit(
                &format!("{}/{size}/l2", w.name()),
                w.as_ref(),
                p,
                &scenario(size),
                Strategy::Local2,
                &policy,
                None,
            );
            // Tracing draws nothing from the RNG, so the traced remote
            // run is bit-identical to the untraced one.
            let remote = session.run_unit(
                &format!("{}/{size}/remote", w.name()),
                w.as_ref(),
                p,
                &scenario(size),
                Strategy::Remote,
                &policy,
                sink.as_mut(),
            );
            total_instructions += interp.instructions + local.instructions + remote.instructions;
            // Skip the first (cold, compiling) invocation on each side.
            let t_interp: f64 = interp.reports[1..].iter().map(|r| r.time.nanos()).sum();
            let t_local: f64 = local.reports[1..].iter().map(|r| r.time.nanos()).sum();
            let t_remote: f64 = remote.reports[1..].iter().map(|r| r.time.nanos()).sum();
            let speedup_i = t_interp / t_remote;
            let speedup_n = t_local / t_remote;
            let preferred = remote.total_energy < local.total_energy.min(interp.total_energy);
            if preferred && speedup_i > 1.0 {
                chosen_speedups.push(speedup_i);
            }
            json_points.push(
                Json::object()
                    .with("bench", w.name())
                    .with("size", size)
                    .with("t_interp_ns", t_interp)
                    .with("t_local_ns", t_local)
                    .with("t_remote_ns", t_remote)
                    .with("speedup_vs_interp", speedup_i)
                    .with("speedup_vs_l2", speedup_n)
                    .with("remote_preferred", preferred),
            );
            rows.push(vec![
                w.name().to_string(),
                size.to_string(),
                format!("{:.2} ms", t_interp * 1e-6 / 5.0),
                format!("{:.2} ms", t_local * 1e-6 / 5.0),
                format!("{:.2} ms", t_remote * 1e-6 / 5.0),
                format!("{speedup_i:.2}x"),
                format!("{speedup_n:.2}x"),
                if preferred { "yes" } else { "no" }.to_string(),
            ]);
        }
    }
    print_table(
        "Remote-execution speedup over local client execution (Class 4 channel)",
        &[
            "app",
            "size",
            "interp time",
            "L2 time",
            "remote time",
            "speedup vs interp",
            "vs L2",
            "remote preferred (energy)",
        ],
        &rows,
    );

    if !chosen_speedups.is_empty() {
        let lo = chosen_speedups
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let hi = chosen_speedups
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "\nWhere remote execution is preferred and faster (vs interpreted local\n\
             execution): speedups range {lo:.1}x – {hi:.1}x (paper: 2.5x – 10x).\n\
             Against warm Local2 native code the advantage shrinks to ~1–2x, and\n\
             the paper's caveat shows up directly: for the I/O-heavy benchmarks\n\
             (sort, jess, db) communication time dominates and remote execution\n\
             is a slowdown."
        );
    }

    obs.write_json(
        &Json::object()
            .with("figure", "speedup")
            .with("total_sim_instructions", total_instructions)
            .with("points", Json::Arr(json_points)),
    );
    obs.finish_trace(sink);
    obs.archive_run(&args);
}

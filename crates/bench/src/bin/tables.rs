//! The paper's constant tables: Fig 1 (instruction energies), Fig 2
//! (radio component powers), Fig 3 (benchmarks), Fig 5 (strategies).
//!
//! Usage: `tables [fig1|fig2|fig3|fig5] [--json-out BENCH_tables.json]
//! [--serve ADDR]`
//! — no figure argument prints all; `--json-out` always writes all
//! four tables machine-readably.
//!
//! The tables are constants from the paper — no scenario runs, so the
//! `--json-out` document is fully deterministic and its
//! `bench-history` baseline carries no `total_sim_instructions`
//! throughput denominator.

use jem_apps::all_workloads;
use jem_bench::ckpt::CkptArgs;
use jem_bench::obs::ObsArgs;
use jem_bench::print_table;
use jem_core::Strategy;
use jem_energy::{EnergyTable, InstrClass};
use jem_obs::Json;
use jem_radio::{ChannelClass, RadioComponent, RadioPowerTable};

fn fig1() {
    let t = EnergyTable::microsparc_iiep();
    let mut rows: Vec<Vec<String>> = InstrClass::ALL
        .iter()
        .map(|&c| {
            vec![
                c.name().to_string(),
                format!("{:.3} nJ", t.energy(c).nanojoules()),
            ]
        })
        .collect();
    rows.push(vec![
        "Main Memory".to_string(),
        format!("{:.2} nJ", t.main_memory.nanojoules()),
    ]);
    print_table(
        "Fig 1: energy consumption values for processor core and memory",
        &["Instruction Type", "Energy"],
        &rows,
    );
}

fn fig2() {
    let t = RadioPowerTable::wcdma();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for c in RadioComponent::ALL {
        if c == RadioComponent::PowerAmplifier {
            for class in ChannelClass::ALL {
                rows.push(vec![
                    format!("{} ({class})", c.name()),
                    format!("{}", t.power(c, class)),
                ]);
            }
        } else {
            rows.push(vec![
                c.name().to_string(),
                format!("{}", t.power(c, ChannelClass::C4)),
            ]);
        }
    }
    print_table(
        "Fig 2: power consumption values for communication components",
        &["Component", "Power"],
        &rows,
    );
}

fn fig3() {
    let rows: Vec<Vec<String>> = all_workloads()
        .iter()
        .map(|w| {
            vec![
                w.name().to_string(),
                w.description().to_string(),
                w.size_meaning().to_string(),
                format!("{:?}", w.sizes()),
            ]
        })
        .collect();
    print_table(
        "Fig 3: description of our benchmarks",
        &["App", "Description", "Size parameter", "Sizes"],
        &rows,
    );
}

fn fig5() {
    let rows: Vec<Vec<String>> = Strategy::ALL
        .iter()
        .map(|s| {
            vec![
                s.key().to_string(),
                if s.is_adaptive() { "dynamic" } else { "static" }.to_string(),
                s.compilation_desc().to_string(),
                s.execution_desc().to_string(),
            ]
        })
        .collect();
    print_table(
        "Fig 5: summary of the static and dynamic (adaptive) strategies",
        &["Strategy", "Kind", "Compilation", "Execution"],
        &rows,
    );
}

fn tables_json() -> Json {
    let t = EnergyTable::microsparc_iiep();
    let mut fig1 = Vec::new();
    for &c in InstrClass::ALL.iter() {
        fig1.push(
            Json::object()
                .with("instr", c.name())
                .with("nj", t.energy(c).nanojoules()),
        );
    }
    fig1.push(
        Json::object()
            .with("instr", "Main Memory")
            .with("nj", t.main_memory.nanojoules()),
    );

    let r = RadioPowerTable::wcdma();
    let mut fig2 = Vec::new();
    for c in RadioComponent::ALL {
        if c == RadioComponent::PowerAmplifier {
            for class in ChannelClass::ALL {
                fig2.push(
                    Json::object()
                        .with("component", c.name())
                        .with("class", format!("{class:?}").as_str())
                        .with("watts", r.power(c, class).watts()),
                );
            }
        } else {
            fig2.push(
                Json::object()
                    .with("component", c.name())
                    .with("watts", r.power(c, ChannelClass::C4).watts()),
            );
        }
    }

    let fig3: Vec<Json> = all_workloads()
        .iter()
        .map(|w| {
            Json::object()
                .with("app", w.name())
                .with("description", w.description())
                .with("size_meaning", w.size_meaning())
                .with(
                    "sizes",
                    Json::Arr(w.sizes().iter().map(|&s| Json::from(s)).collect()),
                )
        })
        .collect();

    let fig5: Vec<Json> = Strategy::ALL
        .iter()
        .map(|s| {
            Json::object()
                .with("strategy", s.key())
                .with("kind", if s.is_adaptive() { "dynamic" } else { "static" })
                .with("compilation", s.compilation_desc())
                .with("execution", s.execution_desc())
        })
        .collect();

    Json::object()
        .with("figure", "tables")
        .with("fig1", Json::Arr(fig1))
        .with("fig2", Json::Arr(fig2))
        .with("fig3", Json::Arr(fig3))
        .with("fig5", Json::Arr(fig5))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let obs = ObsArgs::parse(&args);
    let ckpt = CkptArgs::parse(&args);
    ckpt.validate(&obs);
    ckpt.note_stateless();
    match args.get(1).map(String::as_str) {
        Some("fig1") => fig1(),
        Some("fig2") => fig2(),
        Some("fig3") => fig3(),
        Some("fig5") => fig5(),
        _ => {
            fig1();
            fig2();
            fig3();
            fig5();
        }
    }
    obs.write_json(&tables_json());
    obs.archive_run(&args);
}

//! The paper's constant tables: Fig 1 (instruction energies), Fig 2
//! (radio component powers), Fig 3 (benchmarks), Fig 5 (strategies).
//!
//! Usage: `tables [fig1|fig2|fig3|fig5]` — no argument prints all.

use jem_apps::all_workloads;
use jem_bench::print_table;
use jem_core::Strategy;
use jem_energy::{EnergyTable, InstrClass};
use jem_radio::{ChannelClass, RadioComponent, RadioPowerTable};

fn fig1() {
    let t = EnergyTable::microsparc_iiep();
    let mut rows: Vec<Vec<String>> = InstrClass::ALL
        .iter()
        .map(|&c| {
            vec![
                c.name().to_string(),
                format!("{:.3} nJ", t.energy(c).nanojoules()),
            ]
        })
        .collect();
    rows.push(vec![
        "Main Memory".to_string(),
        format!("{:.2} nJ", t.main_memory.nanojoules()),
    ]);
    print_table(
        "Fig 1: energy consumption values for processor core and memory",
        &["Instruction Type", "Energy"],
        &rows,
    );
}

fn fig2() {
    let t = RadioPowerTable::wcdma();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for c in RadioComponent::ALL {
        if c == RadioComponent::PowerAmplifier {
            for class in ChannelClass::ALL {
                rows.push(vec![
                    format!("{} ({class})", c.name()),
                    format!("{}", t.power(c, class)),
                ]);
            }
        } else {
            rows.push(vec![
                c.name().to_string(),
                format!("{}", t.power(c, ChannelClass::C4)),
            ]);
        }
    }
    print_table(
        "Fig 2: power consumption values for communication components",
        &["Component", "Power"],
        &rows,
    );
}

fn fig3() {
    let rows: Vec<Vec<String>> = all_workloads()
        .iter()
        .map(|w| {
            vec![
                w.name().to_string(),
                w.description().to_string(),
                w.size_meaning().to_string(),
                format!("{:?}", w.sizes()),
            ]
        })
        .collect();
    print_table(
        "Fig 3: description of our benchmarks",
        &["App", "Description", "Size parameter", "Sizes"],
        &rows,
    );
}

fn fig5() {
    let rows: Vec<Vec<String>> = Strategy::ALL
        .iter()
        .map(|s| {
            vec![
                s.key().to_string(),
                if s.is_adaptive() { "dynamic" } else { "static" }.to_string(),
                s.compilation_desc().to_string(),
                s.execution_desc().to_string(),
            ]
        })
        .collect();
    print_table(
        "Fig 5: summary of the static and dynamic (adaptive) strategies",
        &["Strategy", "Kind", "Compilation", "Execution"],
        &rows,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("fig1") => fig1(),
        Some("fig2") => fig2(),
        Some("fig3") => fig3(),
        Some("fig5") => fig5(),
        _ => {
            fig1();
            fig2();
            fig3();
            fig5();
        }
    }
}

//! interp-bench — interpreter dispatch-loop microbenchmark.
//!
//! Unlike the figure bins, this runs the MJVM interpreter *directly*
//! (no scenario runner, radio, profiler or strategy layers): four
//! DSL-generated kernels chosen to stress the distinct hot paths of
//! the pre-decoded execution engine:
//!
//! * **arith** — tight integer arithmetic loop: long straight-line
//!   stretches, so almost everything executes as fused
//!   superinstructions and batched runs;
//! * **call** — call-heavy: a tiny helper invoked every iteration, so
//!   invoke dispatch, frame setup and return-shape tracking dominate;
//! * **heap** — array read/modify/write traffic, so the simulated
//!   d-cache and bounds checks dominate;
//! * **float** — float arithmetic plus int↔float conversions.
//!
//! Every reported figure (steps, cycles, energy, cache counters) is
//! produced by the deterministic simulator — bit-identical across
//! machines and repeat runs — so `bench-history` gates the whole
//! document strictly and uses `total_sim_instructions` for its soft
//! wall-clock throughput gate.
//!
//! Usage: `interp-bench [--n N] [--reps N] [--slow-interp]
//! [--json-out BENCH_interp.json]` (defaults: n=600, reps=4).
//! `--slow-interp` routes execution through the reference per-op
//! interpreter — results must be identical, only wall clock moves;
//! CI diffs the two documents to prove it.

use jem_bench::{arg_usize, print_table};
use jem_jvm::dsl::*;
use jem_jvm::{MethodId, Program, Value, Vm};
use jem_obs::Json;

/// One kernel: a compiled single-function module plus its argument.
struct Kernel {
    name: &'static str,
    what: &'static str,
    program: Program,
    method: MethodId,
}

fn compile(name: &'static str, what: &'static str, m: ModuleBuilder) -> Kernel {
    let program = m.compile().unwrap_or_else(|e| panic!("{name}: {e:?}"));
    let method = program.find_method(MODULE_CLASS, "k").expect("kernel fn");
    Kernel {
        name,
        what,
        program,
        method,
    }
}

/// Tight integer arithmetic: one long straight-line loop body.
fn arith_kernel() -> Kernel {
    let mut m = ModuleBuilder::new();
    m.func(
        "k",
        vec![("n", DType::Int)],
        Some(DType::Int),
        vec![
            let_("a", iconst(1)),
            let_("b", iconst(7)),
            for_(
                "i",
                iconst(0),
                var("n"),
                vec![
                    assign(
                        "a",
                        var("a")
                            .mul(iconst(31))
                            .add(var("b"))
                            .bitxor(var("a").shr(iconst(5)))
                            .sub(var("i").shl(iconst(1))),
                    ),
                    assign(
                        "b",
                        var("b")
                            .add(var("a").bitand(iconst(1023)))
                            .bitxor(var("b").shl(iconst(2)).shr(iconst(1))),
                    ),
                ],
            ),
            ret(var("a").bitxor(var("b"))),
        ],
    );
    compile("arith", "tight integer loop (fused runs)", m)
}

/// Call-heavy: the loop body is one helper invocation.
fn call_kernel() -> Kernel {
    let mut m = ModuleBuilder::new();
    m.func(
        "g",
        vec![("x", DType::Int)],
        Some(DType::Int),
        vec![ret(var("x").mul(iconst(3)).add(iconst(1)))],
    );
    m.func(
        "k",
        vec![("n", DType::Int)],
        Some(DType::Int),
        vec![
            let_("a", iconst(0)),
            for_(
                "i",
                iconst(0),
                var("n"),
                vec![assign("a", call("g", vec![var("a").bitxor(var("i"))]))],
            ),
            ret(var("a")),
        ],
    );
    compile("call", "helper invocation per iteration", m)
}

/// Heap traffic: array read/modify/write through the simulated d-cache.
fn heap_kernel() -> Kernel {
    let mut m = ModuleBuilder::new();
    m.func(
        "k",
        vec![("n", DType::Int)],
        Some(DType::Int),
        vec![
            let_("arr", new_arr(DType::Int, iconst(256))),
            for_(
                "i",
                iconst(0),
                var("n"),
                vec![
                    let_("j", var("i").bitand(iconst(255))),
                    set_index(
                        var("arr"),
                        var("j"),
                        var("arr")
                            .index(var("j"))
                            .add(var("arr").index(var("i").mul(iconst(17)).bitand(iconst(255))))
                            .bitxor(var("i")),
                    ),
                ],
            ),
            ret(var("arr")
                .index(iconst(0))
                .add(var("arr").index(iconst(255)))),
        ],
    );
    compile("heap", "array read/modify/write (d-cache)", m)
}

/// Float arithmetic and conversions.
fn float_kernel() -> Kernel {
    let mut m = ModuleBuilder::new();
    m.func(
        "k",
        vec![("n", DType::Int)],
        Some(DType::Int),
        vec![
            let_("f", fconst(1.0)),
            for_(
                "i",
                iconst(0),
                var("n"),
                vec![assign(
                    "f",
                    var("f")
                        .mul(fconst(1.0000001))
                        .add(var("i").to_f().div(fconst(64.0)))
                        .sub(var("f").div(fconst(128.0))),
                )],
            ),
            ret(var("f").to_i()),
        ],
    );
    compile("float", "float ops and int<->float conversions", m)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    jem_bench::apply_engine_flag(&args);
    let n = arg_usize(&args, "--n", 600) as i32;
    let reps = arg_usize(&args, "--reps", 4);

    println!("Interpreter dispatch microbench: n={n}, reps={reps}");
    let mut rows = Vec::new();
    let mut kernels_json = Vec::new();
    let mut total_steps = 0u64;
    let wall = std::time::Instant::now();
    for kernel in [arith_kernel(), call_kernel(), heap_kernel(), float_kernel()] {
        let mut vm = Vm::client(&kernel.program);
        let mut result = None;
        // Outer reps square the iteration count (each rep runs the
        // kernel at every size 1..=n) so the workload grows fast
        // without deep single invocations.
        for _ in 0..reps {
            for size in 1..=n {
                result = vm
                    .invoke(kernel.method, vec![Value::Int(size)])
                    .unwrap_or_else(|e| panic!("{}: {e:?}", kernel.name));
            }
        }
        let ic = vm.machine.icache_stats().unwrap_or_default();
        let dc = vm.machine.dcache_stats().unwrap_or_default();
        total_steps += vm.steps;
        rows.push(vec![
            kernel.name.to_string(),
            kernel.what.to_string(),
            vm.steps.to_string(),
            vm.machine.cycles().to_string(),
            format!("{:.3}", vm.machine.energy().nanojoules() / 1e6),
        ]);
        kernels_json.push(
            Json::object()
                .with("name", kernel.name)
                .with(
                    "result",
                    f64::from(result.map_or(0, |v| match v {
                        Value::Int(i) => i,
                        _ => 0,
                    })),
                )
                .with("steps", vm.steps)
                .with("cycles", vm.machine.cycles())
                .with("energy_nj", vm.machine.energy().nanojoules())
                .with(
                    "icache",
                    Json::object()
                        .with("hits", ic.hits)
                        .with("misses", ic.misses),
                )
                .with(
                    "dcache",
                    Json::object()
                        .with("hits", dc.hits)
                        .with("misses", dc.misses),
                ),
        );
    }
    let secs = wall.elapsed().as_secs_f64();
    print_table(
        "interpreter kernels",
        &["kernel", "stresses", "steps", "cycles", "energy (mJ)"],
        &rows,
    );
    println!(
        "\n{total_steps} sim-instructions in {secs:.2}s wall ({:.3e}/sec)",
        total_steps as f64 / secs.max(1e-9)
    );

    if let Some(path) = jem_bench::arg_str(&args, "--json-out") {
        // Deterministic figures only — no wall-clock values — so
        // bench-history's repeat-identity check and strict diff hold.
        let doc = Json::object()
            .with("schema", "interp-bench/v1")
            .with("n", n as u64)
            .with("reps", reps as u64)
            .with("kernels", Json::Arr(kernels_json))
            .with("total_sim_instructions", total_steps);
        jem_obs::write_atomic(&path, format!("{}\n", doc.render_pretty()).as_bytes())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }
}

//! Fig 6 — energy consumption of the static execution strategies.
//!
//! "Fig 6 shows the energy consumption of the static strategies (R, I,
//! L1, L2, and L3) for three of our benchmarks. All energy values are
//! normalized with respect to that of L1. For the bar denoting remote
//! execution (R), the additional energies required when channel
//! condition is poor is shown using stacked bars over the Class 4
//! operation. For each benchmark, we selected two different values for
//! the size parameters."
//!
//! Each cell is one cold invocation: local strategies pay the full
//! compile (the paper's Fig 6 energies "include the energy cost of
//! loading and initializing the compiler classes"), the interpreter
//! pays nothing up front, and remote execution is shown per channel
//! class.
//!
//! Usage: `fig6 [--full] [--trace out.json] [--metrics-out out.prom]
//! [--timeline out.jts [--sample-every SIM_MS]]
//! [--json-out BENCH_fig6.json] [--serve ADDR] [--flush-every SIM_MS]
//! [--ckpt out.jck] [--resume out.jck]
//! [--slow-interp]`.
//! Each grid cell is one checkpoint unit; a killed `--ckpt` run
//! resumed with `--resume` skips completed cells and produces
//! byte-identical outputs.

use jem_apps::workload_by_name;
use jem_bench::ckpt::{CkptArgs, SweepSession};
use jem_bench::obs::{accumulate_accuracy, print_regret_table, ObsArgs};
use jem_bench::{arg_flag, fmt_norm, print_table};
use jem_core::{
    fill_run_metrics, scenario_result_to_json, Profile, ResilienceConfig, ScenarioResult, Strategy,
};
use jem_obs::{AccuracyTracker, Json, MetricsRegistry};
use jem_radio::{ChannelClass, ChannelProcess};
use jem_sim::{Scenario, Situation, SizeDist};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    jem_bench::apply_engine_flag(&args);
    let full = arg_flag(&args, "--full");
    let obs = ObsArgs::parse(&args);
    let ckpt = CkptArgs::parse(&args);
    ckpt.validate(&obs);
    let mut session = SweepSession::open(
        &ckpt,
        format!(
            "fig6 full={full} trace={:?} timeline={:?}",
            obs.trace, obs.timeline
        ),
    );
    let mut sink = obs.trace_sink_resumed(session.writer_state());
    let mut registry = MetricsRegistry::new();
    let mut tracker = AccuracyTracker::new();
    let mut json_benches = Vec::new();
    let mut total_instructions = 0u64;

    // The paper shows hpf explicitly plus two more benchmarks; we use
    // the image trio (hpf, mf, ed), whose communication and
    // computation both scale with the pixel count — the regime where
    // the paper's small/large crossover lives.
    // Small = one DCT block / tiny kernel; large = past the
    // communication/computation crossover (the paper's 64x64 vs
    // 512x512 pair, scaled to our simulator's absolute costs).
    let picks: [(&str, u32, u32); 3] = if full {
        [("hpf", 8, 512), ("mf", 8, 512), ("ed", 8, 512)]
    } else {
        [("hpf", 8, 256), ("mf", 8, 256), ("ed", 8, 256)]
    };

    println!("Fig 6 reproduction: static strategies, normalized to L1 = 100");
    println!("(R shown per channel class; paper stacks C3/C2/C1 over the C4 bar)");

    for (name, small, large) in picks {
        let w = workload_by_name(name).expect("known workload");
        let profile = Profile::build(w.as_ref(), 42);

        let mut rows = Vec::new();
        let mut json_sizes = Vec::new();
        for size in [small, large] {
            // One cold invocation per strategy.
            let mut run = |strategy: Strategy, class: ChannelClass| -> ScenarioResult {
                let scenario = Scenario {
                    situation: Situation::Uniform,
                    channel: ChannelProcess::Fixed(class),
                    sizes: SizeDist::Fixed(size),
                    runs: 1,
                    seed: 11,
                    faults: jem_sim::FaultSpec::NONE,
                };
                let result = session.run_unit(
                    &format!("{name}/{size}/{}/{class:?}", strategy.key()),
                    w.as_ref(),
                    &profile,
                    &scenario,
                    strategy,
                    &ResilienceConfig::default(),
                    sink.as_mut(),
                );
                fill_run_metrics(&mut registry, &result);
                obs.publish_metrics(&registry);
                accumulate_accuracy(&mut tracker, &profile, &result);
                total_instructions += result.instructions;
                result
            };
            let mut cells = Vec::new();
            let mut energy_of = |strategy: Strategy, class: ChannelClass| -> f64 {
                let result = run(strategy, class);
                let nj = result.total_energy.nanojoules();
                cells.push(
                    Json::object()
                        .with("strategy", strategy.key())
                        .with("class", format!("{class:?}").as_str())
                        .with("result", scenario_result_to_json(&result, false)),
                );
                nj
            };

            let l1 = energy_of(Strategy::Local1, ChannelClass::C4);
            let norm = |v: f64| fmt_norm(v / l1 * 100.0);
            rows.push(vec![
                format!("{size} [L1={:.1}mJ]", l1 * 1e-6),
                norm(energy_of(Strategy::Remote, ChannelClass::C4)),
                norm(energy_of(Strategy::Remote, ChannelClass::C3)),
                norm(energy_of(Strategy::Remote, ChannelClass::C2)),
                norm(energy_of(Strategy::Remote, ChannelClass::C1)),
                norm(energy_of(Strategy::Interpreter, ChannelClass::C4)),
                "100.0".to_string(),
                norm(energy_of(Strategy::Local2, ChannelClass::C4)),
                norm(energy_of(Strategy::Local3, ChannelClass::C4)),
            ]);
            json_sizes.push(
                Json::object()
                    .with("size", size)
                    .with("l1_nj", l1)
                    .with("cells", Json::Arr(cells)),
            );
        }
        print_table(
            &format!("{name} ({})", w.size_meaning()),
            &[
                "size", "R(C4)", "R(C3)", "R(C2)", "R(C1)", "I", "L1", "L2", "L3",
            ],
            &rows,
        );
        json_benches.push(
            Json::object()
                .with("bench", name)
                .with("sizes", Json::Arr(json_sizes)),
        );
    }

    print_regret_table("Fig 6 regret vs post-hoc oracle", &tracker);
    tracker.fill_metrics(&mut registry);

    obs.write_json(
        &Json::object()
            .with("figure", "fig6")
            .with("full", full)
            .with("total_sim_instructions", total_instructions)
            .with("benches", Json::Arr(json_benches))
            .with("accuracy", tracker.to_json()),
    );
    obs.write_metrics(&registry);
    obs.finish_trace(sink);
    obs.archive_run(&args);
}

//! jem-chaos — kill-level crash harness for the checkpointed bench
//! bins.
//!
//! Proves the crash-safety contract end to end: run a bench bin as a
//! subprocess, SIGKILL it at seeded random points mid-run, resume it
//! from its checkpoint, repeat until at least `--kills` kills have
//! landed, and assert that the survivor's outputs are **byte-equal**
//! to a golden uninterrupted run — the `BENCH_*.json` document, the
//! `.jtb` trace stream, and the trace's canonical re-encoding. Each
//! torn `.jtb` left by a kill is additionally salvaged in place
//! ([`jem_obs::salvage_jtb`]) and the salvaged prefix must load
//! cleanly with an explicit `recovered` marker.
//!
//! Usage: `jem-chaos [--bin faults] [--kills 3] [--seed 1] [--runs
//! 300] [--bench-seed 7] [--ckpt-every 25] [--dir DIR] [--keep]
//! [--verbose]`
//!
//! The target bin must live next to `jem-chaos` in the build tree
//! (any of the checkpoint-aware bench bins works; `faults` is the
//! default — long scenario runs, fault injection, and a `.jtb` trace
//! exercise every piece of checkpointed state).

use jem_obs::{load_trace_bytes, salvage_jtb};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode, Stdio};
use std::time::{Duration, Instant};

struct Opts {
    bin: String,
    kills: usize,
    seed: u64,
    runs: usize,
    bench_seed: usize,
    every: usize,
    dir: Option<String>,
    keep: bool,
    verbose: bool,
}

fn fail(msg: &str) -> ! {
    eprintln!("jem-chaos: error: {msg}");
    std::process::exit(1);
}

/// The target bin sits next to jem-chaos in the build tree.
fn sibling_bin(name: &str) -> PathBuf {
    let me = std::env::current_exe().unwrap_or_else(|e| fail(&format!("current_exe: {e}")));
    let dir = me.parent().unwrap_or_else(|| fail("exe has no parent"));
    let p = dir.join(name);
    if !p.exists() {
        fail(&format!(
            "{} not found next to jem-chaos — build the bench bins first",
            p.display()
        ));
    }
    p
}

fn command(opts: &Opts, bin: &Path, dir: &Path, extra: &[String]) -> Command {
    let mut c = Command::new(bin);
    c.arg("--runs")
        .arg(opts.runs.to_string())
        .arg("--seed")
        .arg(opts.bench_seed.to_string())
        .args(extra)
        .current_dir(dir);
    if opts.verbose {
        c.stdout(Stdio::inherit()).stderr(Stdio::inherit());
    } else {
        c.stdout(Stdio::null()).stderr(Stdio::null());
    }
    c
}

/// Salvage a torn `.jtb` copy and require a loadable,
/// recovered-marked prefix.
fn check_salvage(bytes: &[u8], label: &str) {
    match salvage_jtb(bytes) {
        Ok((salvaged, report)) => {
            let loaded = load_trace_bytes(&salvaged)
                .unwrap_or_else(|e| fail(&format!("{label}: salvaged trace does not load: {e}")));
            if report.already_complete {
                return;
            }
            if loaded.recovered.is_none() {
                fail(&format!(
                    "{label}: salvaged trace is missing its recovered marker"
                ));
            }
            println!(
                "  salvage {label}: kept {} events in {} blocks, dropped {} bytes (marker ok)",
                report.kept_events, report.kept_blocks, report.dropped_bytes
            );
        }
        Err(e) => {
            // A kill can land before the stream header is complete;
            // only a torn file *with* a header must salvage.
            if bytes.len() >= 16 {
                fail(&format!("{label}: salvage failed: {e}"));
            }
        }
    }
}

fn read(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let opts = Opts {
        bin: jem_bench::arg_str(&args, "--bin").unwrap_or_else(|| "faults".to_string()),
        kills: jem_bench::arg_usize(&args, "--kills", 3),
        seed: jem_bench::arg_usize(&args, "--seed", 1) as u64,
        runs: jem_bench::arg_usize(&args, "--runs", 300),
        bench_seed: jem_bench::arg_usize(&args, "--bench-seed", 7),
        every: jem_bench::arg_usize(&args, "--ckpt-every", 25),
        dir: jem_bench::arg_str(&args, "--dir"),
        keep: jem_bench::arg_flag(&args, "--keep"),
        verbose: jem_bench::arg_flag(&args, "--verbose"),
    };
    let bin = sibling_bin(&opts.bin);
    let dir = match &opts.dir {
        Some(d) => PathBuf::from(d),
        None => std::env::temp_dir().join(format!("jem-chaos-{}", std::process::id())),
    };
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| fail(&format!("mkdir: {e}")));
    let mut rng = SmallRng::seed_from_u64(opts.seed);

    // Golden uninterrupted run — the byte-equality oracle.
    println!(
        "golden: {} --runs {} --seed {} (uninterrupted)",
        opts.bin, opts.runs, opts.bench_seed
    );
    let golden_start = Instant::now();
    let status = command(
        &opts,
        &bin,
        &dir,
        &[
            "--json-out".into(),
            "golden.json".into(),
            "--trace".into(),
            "golden.jtb".into(),
        ],
    )
    .status()
    .unwrap_or_else(|e| fail(&format!("cannot spawn {}: {e}", bin.display())));
    if !status.success() {
        fail(&format!("golden run failed with {status}"));
    }
    let wall = golden_start.elapsed().max(Duration::from_millis(20));
    println!("golden: done in {wall:.2?}");

    // Kill/resume lineage: start fresh, kill at seeded fractions of
    // the golden wall time, resume, until the run survives with at
    // least `kills` landed kills. A lineage that finishes too early
    // is wiped and restarted with new kill points.
    let chaos_flags = |resume: bool| -> Vec<String> {
        let mut v = vec![
            "--json-out".into(),
            "chaos.json".into(),
            "--trace".into(),
            "chaos.jtb".into(),
            "--ckpt-every".into(),
            opts.every.to_string(),
        ];
        v.push(if resume { "--resume" } else { "--ckpt" }.into());
        v.push("chaos.jck".into());
        v
    };
    let mut landed = 0usize;
    let mut resumes = 0usize;
    let mut attempts = 0usize;
    let mut lineage_started = false;
    loop {
        attempts += 1;
        if attempts > 40 * opts.kills.max(1) {
            fail("kill points keep missing the run — is the target bin too fast?");
        }
        let mut child = command(&opts, &bin, &dir, &chaos_flags(lineage_started))
            .spawn()
            .unwrap_or_else(|e| fail(&format!("cannot spawn {}: {e}", bin.display())));
        lineage_started = true;
        if landed < opts.kills {
            // Earlier fractions hit the sweep's first units; later
            // ones land mid-trace with checkpoints behind them.
            let frac = rng.gen_range(0.05..0.85);
            std::thread::sleep(wall.mul_f64(frac));
            match child.try_wait() {
                Ok(None) => {
                    child.kill().unwrap_or_else(|e| fail(&format!("kill: {e}")));
                    let _ = child.wait();
                    landed += 1;
                    println!(
                        "kill {landed}/{} landed at ~{:.0}% of golden wall time",
                        opts.kills,
                        frac * 100.0
                    );
                    let torn = dir.join("chaos.jtb");
                    if torn.exists() {
                        check_salvage(&read(&torn), &format!("kill {landed}"));
                    }
                    continue;
                }
                Ok(Some(status)) => {
                    // Finished before the kill fired: not enough
                    // crash points in this lineage — restart it.
                    if !status.success() {
                        fail(&format!("chaos run failed with {status}"));
                    }
                    println!("  run finished before kill point — restarting lineage");
                    for f in ["chaos.json", "chaos.jtb", "chaos.jck"] {
                        let _ = std::fs::remove_file(dir.join(f));
                    }
                    landed = 0;
                    resumes = 0;
                    lineage_started = false;
                    continue;
                }
                Err(e) => fail(&format!("try_wait: {e}")),
            }
        }
        // Enough kills landed — let this resume run to completion.
        resumes += 1;
        let status = child.wait().unwrap_or_else(|e| fail(&format!("wait: {e}")));
        if !status.success() {
            fail(&format!("final resumed run failed with {status}"));
        }
        break;
    }
    println!(
        "survivor: {landed} kill(s), {resumes} clean resume(s) + {} mid-kill resume(s)",
        landed.saturating_sub(1)
    );

    // Byte-equality verdicts.
    let mut ok = true;
    let mut check_eq = |name: &str| {
        let g = read(&dir.join(format!("golden.{name}")));
        let c = read(&dir.join(format!("chaos.{name}")));
        if g == c {
            println!("PASS {name}: {} bytes, byte-identical", g.len());
        } else {
            ok = false;
            let first = g.iter().zip(&c).position(|(a, b)| a != b);
            println!(
                "FAIL {name}: golden {} bytes vs chaos {} bytes, first difference at {:?}",
                g.len(),
                c.len(),
                first
            );
        }
    };
    check_eq("json");
    check_eq("jtb");

    // Re-encode oracle: both traces must load and re-encode to the
    // same canonical bytes (catches any well-formedness drift that
    // raw byte equality alone would also catch, but with a loader's
    // eyes — and verifies the survivor is a complete, footer-valid
    // stream, not a salvage artifact).
    let golden_trace = load_trace_bytes(&read(&dir.join("golden.jtb")))
        .unwrap_or_else(|e| fail(&format!("golden.jtb does not load: {e}")));
    let chaos_trace = load_trace_bytes(&read(&dir.join("chaos.jtb")))
        .unwrap_or_else(|e| fail(&format!("chaos.jtb does not load: {e}")));
    if chaos_trace.recovered.is_some() {
        ok = false;
        println!("FAIL reencode: survivor trace carries a recovered marker — it should be a complete stream");
    }
    let g_re = jem_obs::jtb_bytes(&golden_trace.shards);
    let c_re = jem_obs::jtb_bytes(&chaos_trace.shards);
    if g_re == c_re {
        println!(
            "PASS reencode: canonical re-encodings identical ({} bytes)",
            g_re.len()
        );
    } else {
        ok = false;
        println!("FAIL reencode: canonical re-encodings differ");
    }

    if opts.keep || !ok {
        println!("artifacts kept in {}", dir.display());
    } else if opts.dir.is_none() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    if ok {
        println!(
            "chaos: {} survived {landed} SIGKILLs with byte-identical outputs",
            opts.bin
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! Fig 8 — local vs remote compilation energies.
//!
//! "Fig 8 provides the (compilation) energy consumed when a client
//! either compiles methods of an application or downloads their
//! remotely pre-compiled native code from the server. … For each
//! application, all values are normalized with respect to the energy
//! consumed when local compilation with optimization Level1 is
//! employed."
//!
//! Shapes the paper reports, checked here:
//! * local compilation energy increases with the optimization level;
//! * remote compilation energy falls as the channel improves (C1→C4);
//! * "in many cases, remote compilation consumes less energy than
//!   local compilation with the same optimization level (e.g., db)";
//! * occasionally a more aggressive level yields *smaller* code and
//!   hence cheaper download (the paper's sort L2→L3 case) — whether
//!   that occurs here is reported from the measured code sizes.
//!
//! Usage: `fig8 [--json-out BENCH_fig8.json] [--serve ADDR]`.
//!
//! The figures here are derived purely from calibrated profiles — no
//! scenario runs, so the `--json-out` document is fully deterministic
//! and its `bench-history` baseline carries no
//! `total_sim_instructions` throughput denominator.

use jem_apps::all_workloads;
use jem_bench::ckpt::CkptArgs;
use jem_bench::obs::ObsArgs;
use jem_bench::{build_profiles, fmt_norm, print_table};
use jem_core::Strategy;
use jem_jvm::OptLevel;
use jem_obs::Json;
use jem_radio::ChannelClass;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let obs = ObsArgs::parse(&args);
    let ckpt = CkptArgs::parse(&args);
    ckpt.validate(&obs);
    ckpt.note_stateless();
    // The paper's Fig 8 lists seven applications (jess is absent).
    let workloads: Vec<_> = all_workloads()
        .into_iter()
        .filter(|w| w.name() != "jess")
        .collect();
    eprintln!("building profiles for {} workloads...", workloads.len());
    let profiles = build_profiles(&workloads, 42);
    let _ = Strategy::ALL; // (imported for doc parity)

    let mut rows = Vec::new();
    let mut json_points = Vec::new();
    for (w, p) in workloads.iter().zip(&profiles) {
        // The paper's Fig 8 compares per-application compilation work;
        // the one-time compiler-class load (identical across apps and
        // levels) is reported separately below, as it would mask the
        // per-level ratios the figure is about.
        let base = p.e_compile_local(OptLevel::L1, true).nanojoules();
        for level in OptLevel::ALL {
            let local = p.e_compile_local(level, true).nanojoules();
            let mut row = vec![
                w.name().to_string(),
                level.name().to_string(),
                fmt_norm(local / base * 100.0),
            ];
            let mut point = Json::object()
                .with("app", w.name())
                .with("level", level.name())
                .with("local_nj", local);
            for class in ChannelClass::ALL {
                let remote = p.e_remote_compile(level, class).nanojoules();
                row.push(fmt_norm(remote / base * 100.0));
                point = point.with(format!("remote_{class:?}_nj").as_str(), remote);
            }
            row.push(format!("{}", p.code_bytes[level.index()]));
            json_points.push(point.with("code_bytes", p.code_bytes[level.index()]));
            rows.push(row);
        }
    }
    print_table(
        "Fig 8: local and remote compilation energies (local Level1 = 100)",
        &[
            "app",
            "level",
            "local",
            "C1",
            "C2",
            "C3",
            "C4",
            "code bytes",
        ],
        &rows,
    );

    println!(
        "\n(one-time compiler-class load, charged before any first local compile: {:.1} mJ)",
        profiles[0].compiler_init_energy.nanojoules() * 1e-6
    );

    // Claim checks.
    println!();
    for (w, p) in workloads.iter().zip(&profiles) {
        let l = |lv: OptLevel| p.e_compile_local(lv, true).nanojoules();
        assert!(
            l(OptLevel::L1) < l(OptLevel::L2) && l(OptLevel::L2) < l(OptLevel::L3),
            "{}: local compile energy must grow with level",
            w.name()
        );
        let rc4 = p
            .e_remote_compile(OptLevel::L2, ChannelClass::C4)
            .nanojoules();
        if rc4 < l(OptLevel::L2) {
            println!(
                "{}: remote L2 compile at C4 is {:.1}% of local L2 (paper: 'remote compilation consumes less energy … e.g., db')",
                w.name(),
                rc4 / l(OptLevel::L2) * 100.0
            );
        }
        if p.code_bytes[2] < p.code_bytes[1] {
            println!(
                "{}: Level3 code is smaller than Level2 ({} vs {} bytes) — the paper's sort-style case",
                w.name(),
                p.code_bytes[2],
                p.code_bytes[1]
            );
        }
    }

    obs.write_json(
        &Json::object()
            .with("figure", "fig8")
            .with(
                "compiler_init_nj",
                profiles[0].compiler_init_energy.nanojoules(),
            )
            .with("points", Json::Arr(json_points)),
    );
    obs.archive_run(&args);
}

//! Continuous-benchmark harness: record and gate `BENCH_<bin>.json`
//! baselines.
//!
//! ```text
//! bench-history record <bin> [--k N] [--out path] [--archive DIR] [-- <bin args>...]
//! bench-history check <baseline.json> [--rel-tol x] [--threshold x]
//!                     [--fail-on-throughput] [--report out.json] [--archive DIR]
//! ```
//!
//! `record` runs a sibling bench binary (located next to this
//! executable) K times (default 3) with `--json-out`, and writes a
//! baseline capturing
//!
//! * **results** — the bin's machine-readable `--json-out` document.
//!   Energy figures are produced by a deterministic simulator over
//!   IEEE-754 `f64`, so they are bit-identical across machines and
//!   are gated *strictly*;
//! * **throughput** — median-of-K wall-clock seconds and, where the
//!   bin reports `total_sim_instructions`, simulated instructions per
//!   wall-second. Wall clock is machine-dependent, so the gate treats
//!   it as *soft*: past `--threshold` (default 0.5, i.e. ±50%) it
//!   warns, and fails only when `--fail-on-throughput` is given
//!   (intended for dedicated perf machines, not shared CI runners).
//!   Runs below `--min-instr` simulated instructions (default 1M) are
//!   process-overhead dominated — their instr/sec says nothing about
//!   the simulator — so the throughput comparison is reported but
//!   never gated, no matter the flags.
//!
//! Baselines also record an `environment` block (`rustc --version`
//! and the git revision when available) so archived history entries
//! are attributable to the toolchain and commit that produced them.
//! The block is metadata only — the regression gate diffs `results`,
//! never the environment.
//!
//! `check` re-runs the binary with the args recorded in the baseline
//! and diffs the fresh results against it with the same noise-aware
//! policy `jem-diff` uses. Exit status: 0 clean, 1 regression, 2
//! usage error.
//!
//! With `--archive DIR` both modes also ingest the (fresh) baseline
//! document into the `jem-lab` experiment archive at DIR as a
//! `bench-history` artifact, so repeated CI runs accumulate a
//! queryable per-fingerprint history that `jem-lab check` can apply
//! its throughput changepoint tests to.

use jem_bench::arg_usize;
use jem_obs::diff::{diff_json, DiffPolicy, DiffReport};
use jem_obs::Json;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode, Stdio};
use std::time::Instant;

const USAGE: &str = "usage: bench-history record <bin> [--k N] [--out path] [--archive DIR] \
                     [-- <bin args>...]\n\
                     \x20      bench-history check <baseline.json> [--k N] [--rel-tol x] \
                     [--threshold x] [--min-instr N] [--fail-on-throughput] [--report out.json] \
                     [--archive DIR]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") => record(&args[1..]),
        Some("check") => check(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// The directory holding the sibling bench binaries.
fn bin_dir() -> PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(Path::to_path_buf))
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Run `bin` once with `--json-out` into a scratch file; returns the
/// parsed results document and the run's wall-clock seconds.
fn run_once(bin: &str, extra: &[String]) -> Result<(Json, f64), String> {
    let exe = bin_dir().join(bin);
    let scratch =
        std::env::temp_dir().join(format!("bench-history-{}-{bin}.json", std::process::id()));
    let started = Instant::now();
    let status = Command::new(&exe)
        .args(extra)
        .arg("--json-out")
        .arg(&scratch)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .map_err(|e| format!("cannot run {}: {e}", exe.display()))?;
    let wall = started.elapsed().as_secs_f64();
    if !status.success() {
        return Err(format!("{bin} exited with {status}"));
    }
    let text = std::fs::read_to_string(&scratch)
        .map_err(|e| format!("{bin} wrote no --json-out ({e})"))?;
    let _ = std::fs::remove_file(&scratch);
    let doc = Json::parse(&text).map_err(|e| format!("{bin} --json-out: {e}"))?;
    Ok((doc, wall))
}

/// Run `bin` K times; results must be identical across repeats
/// (the determinism the whole workspace guarantees) and the median
/// wall-clock is the throughput sample.
fn run_k(bin: &str, extra: &[String], k: usize) -> Result<(Json, Vec<f64>), String> {
    let mut walls = Vec::with_capacity(k);
    let mut results: Option<Json> = None;
    for i in 0..k {
        let (doc, wall) = run_once(bin, extra)?;
        walls.push(wall);
        match &results {
            None => results = Some(doc),
            Some(first) => {
                if *first != doc {
                    return Err(format!(
                        "{bin}: repeat {i} produced different results than repeat 0 — \
                         the bin is nondeterministic; fix that before baselining"
                    ));
                }
            }
        }
    }
    Ok((results.expect("k >= 1"), walls))
}

/// Toolchain/commit attribution for recorded history entries. Both
/// probes degrade gracefully: a missing `rustc` records "unknown", a
/// missing git repo (or binary) just omits the revision.
fn environment_json() -> Json {
    let probe = |cmd: &str, args: &[&str]| -> Option<String> {
        let out = Command::new(cmd).args(args).output().ok()?;
        if !out.status.success() {
            return None;
        }
        let text = String::from_utf8_lossy(&out.stdout).trim().to_string();
        (!text.is_empty()).then_some(text)
    };
    let mut env = Json::object().with(
        "rustc",
        probe("rustc", &["--version"]).unwrap_or_else(|| "unknown".to_string()),
    );
    if let Some(rev) = probe("git", &["rev-parse", "HEAD"]) {
        env = env.with("git_revision", rev);
    }
    env
}

/// Ingest a baseline-shaped document into the `--archive` experiment
/// archive as a `bench-history` artifact under the fingerprint of
/// (bin, recorded args).
fn ingest_history(root: &str, bin: &str, extra: &[String], doc: &Json) -> Result<String, String> {
    let mut argv = vec![bin.to_string()];
    argv.extend(extra.iter().cloned());
    let meta = jem_obs::RunMeta::from_argv(&argv);
    let archive = jem_obs::Archive::open_or_create(root)?;
    let record = archive.ingest_bytes(
        &meta,
        &[(
            "bench-history".to_string(),
            format!("BENCH_{bin}.json"),
            format!("{}\n", doc.render_pretty()).into_bytes(),
        )],
    )?;
    Ok(record.label())
}

fn median(samples: &[f64]) -> f64 {
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    s[s.len() / 2]
}

fn throughput_json(results: &Json, k: usize, walls: &[f64]) -> Json {
    let med = median(walls);
    let mut t = Json::object()
        .with("k", k)
        .with(
            "wall_secs",
            Json::Arr(walls.iter().map(|&w| Json::Num(w)).collect()),
        )
        .with("median_wall_secs", med);
    if let Some(instr) = results.get("total_sim_instructions").and_then(Json::as_u64) {
        t = t
            .with("sim_instructions", instr)
            .with("sim_instructions_per_sec", instr as f64 / med.max(1e-9));
    }
    t
}

fn record(args: &[String]) -> ExitCode {
    let split = args.iter().position(|a| a == "--");
    let (own, extra): (&[String], &[String]) = match split {
        Some(i) => (&args[..i], &args[i + 1..]),
        None => (args, &[]),
    };
    let Some(bin) = own.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let k = arg_usize(own, "--k", 3).max(1);
    let out = jem_bench::arg_str(own, "--out").unwrap_or_else(|| format!("BENCH_{bin}.json"));

    eprintln!("bench-history: recording {bin} (k={k}, args: {extra:?})");
    let (results, walls) = match run_k(bin, extra, k) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench-history: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = Json::object()
        .with("schema", "bench-history/v1")
        .with("bin", bin.as_str())
        .with(
            "args",
            Json::Arr(extra.iter().map(|a| Json::Str(a.clone())).collect()),
        )
        .with("environment", environment_json())
        .with("results", results.clone())
        .with("throughput", throughput_json(&results, k, &walls));
    if let Err(e) =
        jem_obs::write_atomic(&out, format!("{}\n", baseline.render_pretty()).as_bytes())
    {
        eprintln!("bench-history: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "bench-history: {out}: recorded ({k} runs, median {:.2}s)",
        median(&walls)
    );
    if let Some(root) = jem_bench::arg_str(own, "--archive") {
        match ingest_history(&root, bin, extra, &baseline) {
            Ok(label) => eprintln!("bench-history: archived {label} into {root}"),
            Err(e) => {
                eprintln!("bench-history: --archive {root}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn check(args: &[String]) -> ExitCode {
    let Some(baseline_path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let rel_tol = jem_bench::arg_str(args, "--rel-tol")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1e-9);
    let threshold: f64 = jem_bench::arg_str(args, "--threshold")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.5);
    let fail_on_throughput = args.iter().any(|a| a == "--fail-on-throughput");
    let min_instr: u64 = jem_bench::arg_str(args, "--min-instr")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let report_path = jem_bench::arg_str(args, "--report");

    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench-history: cannot read {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench-history: {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(bin) = baseline.get("bin").and_then(Json::as_str) else {
        eprintln!("bench-history: {baseline_path}: missing 'bin'");
        return ExitCode::FAILURE;
    };
    let extra: Vec<String> = baseline
        .get("args")
        .and_then(Json::as_array)
        .map(|a| {
            a.iter()
                .filter_map(Json::as_str)
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    let k = arg_usize(
        args,
        "--k",
        baseline
            .get("throughput")
            .and_then(|t| t.get("k"))
            .and_then(Json::as_u64)
            .unwrap_or(3) as usize,
    )
    .max(1);

    eprintln!("bench-history: checking {bin} against {baseline_path} (k={k}, args: {extra:?})");
    let (fresh, walls) = match run_k(bin, &extra, k) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench-history: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Deterministic figures: strict structural diff.
    let mut report = DiffReport::default();
    let policy = DiffPolicy::perf_gate(rel_tol, threshold);
    let empty = Json::object();
    let base_results = baseline.get("results").unwrap_or(&empty);
    diff_json(base_results, &fresh, &policy, &mut report);

    // Machine-dependent throughput: soft gate on instructions/sec.
    let base_ips = baseline
        .get("throughput")
        .and_then(|t| t.get("sim_instructions_per_sec"))
        .and_then(Json::as_f64);
    let fresh_tp = throughput_json(&fresh, k, &walls);
    let fresh_ips = fresh_tp
        .get("sim_instructions_per_sec")
        .and_then(Json::as_f64);
    let fresh_instr = fresh_tp.get("sim_instructions").and_then(Json::as_u64);
    if let (Some(old), Some(new)) = (base_ips, fresh_ips) {
        let rel = (new - old) / old;
        let line = format!(
            "throughput: {new:.3e} vs baseline {old:.3e} sim-instructions/sec ({:+.1}%)",
            rel * 100.0
        );
        if fresh_instr.is_some_and(|i| i < min_instr) {
            // Micro-runs: wall clock is dominated by process startup
            // and I/O, not the simulator. Report, never gate.
            eprintln!(
                "bench-history: {line} [not gated: {} sim-instructions is below the \
                 --min-instr floor of {min_instr}]",
                fresh_instr.unwrap_or(0)
            );
        } else if rel < -threshold {
            if fail_on_throughput {
                report.entries.push(jem_obs::DiffEntry {
                    kind: jem_obs::DiffKind::Changed,
                    path: "throughput/sim_instructions_per_sec".to_string(),
                    detail: line.clone(),
                    rel_delta: Some(rel.abs()),
                });
                eprintln!("bench-history: REGRESSION {line}");
            } else {
                eprintln!("bench-history: warning (soft gate): {line}");
            }
        } else {
            eprintln!("bench-history: {line}");
        }
    }

    print!("{}", report.render_text());
    if let Some(path) = report_path {
        let doc = report
            .to_json()
            .with("baseline", baseline_path.as_str())
            .with("bin", bin)
            .with("throughput", fresh_tp.clone());
        if let Err(e) =
            jem_obs::write_atomic(&path, format!("{}\n", doc.render_pretty()).as_bytes())
        {
            eprintln!("bench-history: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("bench-history: wrote report to {path}");
    }
    if let Some(root) = jem_bench::arg_str(args, "--archive") {
        // Archive this check's fresh measurement as a new generation
        // on the (bin, args) fingerprint line, so repeated CI checks
        // build the history jem-lab's changepoint tests need.
        let fresh_doc = Json::object()
            .with("schema", "bench-history/v1")
            .with("bin", bin)
            .with(
                "args",
                Json::Arr(extra.iter().map(|a| Json::Str(a.clone())).collect()),
            )
            .with("environment", environment_json())
            .with("results", fresh.clone())
            .with("throughput", fresh_tp.clone());
        match ingest_history(&root, bin, &extra, &fresh_doc) {
            Ok(label) => eprintln!("bench-history: archived {label} into {root}"),
            Err(e) => {
                eprintln!("bench-history: --archive {root}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if report.has_changes() {
        eprintln!("bench-history: {bin}: REGRESSION vs {baseline_path}");
        ExitCode::FAILURE
    } else {
        println!("bench-history: {bin}: OK vs {baseline_path}");
        ExitCode::SUCCESS
    }
}

//! faults — resilience sweep: energy vs. burst-loss severity.
//!
//! Runs the paper's situation (i) scenario over a degraded network
//! (Gilbert–Elliott bursty response loss + a flaky server + rare
//! payload corruption, [`jem_sim::FaultSpec::degraded`]) and sweeps
//! the bad-state loss severity, comparing
//!
//! * **AA** under the default resilience policy (energy-budgeted
//!   retries + circuit breaker: remote execution is blacklisted after
//!   consecutive failures and AA degrades to AL until a half-open
//!   probe succeeds),
//! * **AA naive** — the paper-implied policy (time out once, fall back
//!   to local interpretation, try remote again next invocation), and
//! * **AL** (never offloads; the loss-immune baseline).
//!
//! Everything derives from one seed, so the table is reproducible
//! bit-for-bit; rerun with `--seed N` to vary it.
//!
//! Usage: `faults [--runs N] [--seed N]` (default 300 runs, seed 7).

use jem_apps::workload_by_name;
use jem_bench::{arg_usize, print_table};
use jem_core::{run_scenario_with, Profile, ResilienceConfig, ScenarioResult, Strategy};
use jem_sim::{Scenario, Situation};

const LOSS_SEVERITIES: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 0.9];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let runs = arg_usize(&args, "--runs", 300);
    let seed = arg_usize(&args, "--seed", 7) as u64;

    // fe (numerical integration) is the offload-friendly benchmark:
    // heavy computation, tiny payloads, so AA keeps choosing remote
    // execution and actually meets the injected faults.
    let w = workload_by_name("fe").expect("known workload");
    let profile = Profile::build(w.as_ref(), 42);
    let resilient = ResilienceConfig::default();
    let naive = ResilienceConfig::naive();

    println!("Resilience sweep: situation (i), {runs} invocations, seed {seed}");
    println!("(energy in mJ; GE bad-state loss on the left, ~25% of requests in bursts)");

    let mut rows = Vec::new();
    for loss_bad in LOSS_SEVERITIES {
        let scenario =
            Scenario::paper_degraded(Situation::GoodDominant, &w.sizes(), seed, loss_bad)
                .with_runs(runs);
        let aa = run_scenario_with(
            w.as_ref(),
            &profile,
            &scenario,
            Strategy::AdaptiveAdaptive,
            &resilient,
        );
        let aa_naive = run_scenario_with(
            w.as_ref(),
            &profile,
            &scenario,
            Strategy::AdaptiveAdaptive,
            &naive,
        );
        let al = run_scenario_with(
            w.as_ref(),
            &profile,
            &scenario,
            Strategy::AdaptiveLocal,
            &resilient,
        );
        let mj = |r: &ScenarioResult| format!("{:.1}", r.total_energy.millijoules());
        rows.push(vec![
            format!("{loss_bad:.2}"),
            mj(&aa),
            mj(&aa_naive),
            mj(&al),
            format!("{:.1}", aa.stats.wasted_energy.millijoules()),
            format!("{:.1}", aa_naive.stats.wasted_energy.millijoules()),
            format!("{}", aa.stats.retries),
            format!("{}/{}", aa.stats.breaker_trips, aa.stats.breaker_recoveries),
            format!("{}", aa.stats.degraded),
            format!("{}/{}", aa.stats.fallbacks, aa_naive.stats.fallbacks),
        ]);
    }
    print_table(
        "fe, AA resilient vs AA naive vs AL",
        &[
            "loss_bad",
            "AA",
            "AA naive",
            "AL",
            "AA waste",
            "naive waste",
            "retries",
            "trips/recov",
            "degraded",
            "fallbacks",
        ],
        &rows,
    );
    println!(
        "\nAt the default 300 invocations the AA column is strictly below the\n\
         AA-naive column at every severity (short runs can flip single\n\
         cells — one unlucky breaker cooldown dominates); the gap opens with\n\
         burst severity as the breaker converts repeated timeouts into\n\
         AL-style local execution, then probes its way back after bursts.\n\
         (AA equals AL exactly for fe: remote *compilation* is never the\n\
         argmin for this workload, so the two adaptive strategies make\n\
         identical choices under the same resilience policy.)"
    );
}

//! faults — resilience sweep: energy vs. burst-loss severity.
//!
//! Runs the paper's situation (i) scenario over a degraded network
//! (Gilbert–Elliott bursty response loss + a flaky server + rare
//! payload corruption, [`jem_sim::FaultSpec::degraded`]) and sweeps
//! the bad-state loss severity, comparing
//!
//! * **AA** under the default resilience policy (energy-budgeted
//!   retries + circuit breaker: remote execution is blacklisted after
//!   consecutive failures and AA degrades to AL until a half-open
//!   probe succeeds),
//! * **AA naive** — the paper-implied policy (time out once, fall back
//!   to local interpretation, try remote again next invocation), and
//! * **AL** (never offloads; the loss-immune baseline).
//!
//! Everything derives from one seed, so the table is reproducible
//! bit-for-bit; rerun with `--seed N` to vary it.
//!
//! Usage: `faults [--runs N] [--seed N] [--trace out.json]
//! [--timeline out.jts [--sample-every SIM_MS]]
//! [--metrics-out out.prom] [--json-out BENCH_faults.json]
//! [--serve ADDR] [--flush-every SIM_MS]
//! [--ckpt out.jck [--ckpt-every N]] [--resume out.jck] [--slow-interp]`
//! (default 300 runs, seed 7). `--trace` records the resilient-AA runs
//! across the whole severity sweep; `--timeline` streams the `.jts`
//! sim-time-series sidecar of the same runs. `--ckpt` snapshots the
//! sweep at invocation boundaries; a killed run continued with
//! `--resume` produces byte-identical outputs (including the `.jtb`
//! trace and `.jts` timeline) to an uninterrupted one.

use jem_apps::workload_by_name;
use jem_bench::ckpt::{CkptArgs, SweepSession};
use jem_bench::obs::{accumulate_accuracy, print_regret_table, ObsArgs};
use jem_bench::{arg_usize, print_table};
use jem_core::{
    fill_run_metrics, scenario_result_to_json, Profile, ResilienceConfig, ScenarioResult, Strategy,
};
use jem_obs::{AccuracyTracker, Json, MetricsRegistry};
use jem_sim::{Scenario, Situation};

const LOSS_SEVERITIES: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 0.9];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    jem_bench::apply_engine_flag(&args);
    let runs = arg_usize(&args, "--runs", 300);
    let seed = arg_usize(&args, "--seed", 7) as u64;
    let obs = ObsArgs::parse(&args);
    let ckpt = CkptArgs::parse(&args);
    ckpt.validate(&obs);
    let mut session = SweepSession::open(
        &ckpt,
        format!(
            "faults runs={runs} seed={seed} trace={:?} timeline={:?}",
            obs.trace, obs.timeline
        ),
    );
    let mut sink = obs.trace_sink_resumed(session.writer_state());
    let mut registry = MetricsRegistry::new();
    let mut tracker = AccuracyTracker::new();
    let mut json_points = Vec::new();

    // fe (numerical integration) is the offload-friendly benchmark:
    // heavy computation, tiny payloads, so AA keeps choosing remote
    // execution and actually meets the injected faults.
    let w = workload_by_name("fe").expect("known workload");
    let profile = Profile::build(w.as_ref(), 42);
    let resilient = ResilienceConfig::default();
    let naive = ResilienceConfig::naive();

    println!("Resilience sweep: situation (i), {runs} invocations, seed {seed}");
    println!("(energy in mJ; GE bad-state loss on the left, ~25% of requests in bursts)");

    let mut rows = Vec::new();
    let mut total_instructions = 0u64;
    for loss_bad in LOSS_SEVERITIES {
        let scenario =
            Scenario::paper_degraded(Situation::GoodDominant, &w.sizes(), seed, loss_bad)
                .with_runs(runs);
        let aa = session.run_unit(
            &format!("loss{loss_bad:.2}/aa"),
            w.as_ref(),
            &profile,
            &scenario,
            Strategy::AdaptiveAdaptive,
            &resilient,
            sink.as_mut(),
        );
        let aa_naive = session.run_unit(
            &format!("loss{loss_bad:.2}/aa_naive"),
            w.as_ref(),
            &profile,
            &scenario,
            Strategy::AdaptiveAdaptive,
            &naive,
            None,
        );
        let al = session.run_unit(
            &format!("loss{loss_bad:.2}/al"),
            w.as_ref(),
            &profile,
            &scenario,
            Strategy::AdaptiveLocal,
            &resilient,
            None,
        );
        fill_run_metrics(&mut registry, &aa);
        obs.publish_metrics(&registry);
        accumulate_accuracy(&mut tracker, &profile, &aa);
        total_instructions += aa.instructions + aa_naive.instructions + al.instructions;
        json_points.push(
            Json::object()
                .with("loss_bad", loss_bad)
                .with("aa", scenario_result_to_json(&aa, false))
                .with("aa_naive", scenario_result_to_json(&aa_naive, false))
                .with("al", scenario_result_to_json(&al, false)),
        );
        let mj = |r: &ScenarioResult| format!("{:.1}", r.total_energy.millijoules());
        rows.push(vec![
            format!("{loss_bad:.2}"),
            mj(&aa),
            mj(&aa_naive),
            mj(&al),
            format!("{:.1}", aa.stats.wasted_energy.millijoules()),
            format!("{:.1}", aa_naive.stats.wasted_energy.millijoules()),
            format!("{}", aa.stats.retries),
            format!("{}/{}", aa.stats.breaker_trips, aa.stats.breaker_recoveries),
            format!("{}", aa.stats.degraded),
            format!("{}/{}", aa.stats.fallbacks, aa_naive.stats.fallbacks),
        ]);
    }
    print_table(
        "fe, AA resilient vs AA naive vs AL",
        &[
            "loss_bad",
            "AA",
            "AA naive",
            "AL",
            "AA waste",
            "naive waste",
            "retries",
            "trips/recov",
            "degraded",
            "fallbacks",
        ],
        &rows,
    );
    println!(
        "\nAt the default 300 invocations the AA column is strictly below the\n\
         AA-naive column at every severity (short runs can flip single\n\
         cells — one unlucky breaker cooldown dominates); the gap opens with\n\
         burst severity as the breaker converts repeated timeouts into\n\
         AL-style local execution, then probes its way back after bursts.\n\
         (AA equals AL exactly for fe: remote *compilation* is never the\n\
         argmin for this workload, so the two adaptive strategies make\n\
         identical choices under the same resilience policy.)"
    );

    print_regret_table("AA (resilient) predictor accuracy / regret", &tracker);
    tracker.fill_metrics(&mut registry);

    obs.write_json(
        &Json::object()
            .with("figure", "faults")
            .with("runs", runs)
            .with("seed", seed)
            .with("total_sim_instructions", total_instructions)
            .with("points", Json::Arr(json_points))
            .with("accuracy_aa", tracker.to_json()),
    );
    obs.write_metrics(&registry);
    obs.finish_trace(sink);
    obs.archive_run(&args);
}

//! # jem-bench — experiment harnesses
//!
//! Binaries that regenerate every table and figure of the paper
//! (see DESIGN.md §5 for the experiment index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `tables` | Fig 1, Fig 2, Fig 3, Fig 5 (constant tables) |
//! | `fig6` | Fig 6 — static strategies, 3 benchmarks × 2 sizes |
//! | `fig7` | Fig 7 — all strategies × 3 situations × 8 benchmarks |
//! | `fig8` | Fig 8 — local vs remote compilation energies |
//! | `speedup` | §3.2 — remote-execution speedup (2.5–10×) |
//! | `estfit` | §3.2 — curve-fit estimator accuracy (≤ 2%) |
//! | `ablation` | design-choice ablations (EWMA weight, power-down, …) |
//! | `faults` | resilience sweep — AA vs naive AA vs AL under bursty loss |
//!
//! This library holds the shared plumbing: table rendering, parallel
//! profile construction, and the observability output options every
//! bin accepts (`--trace out.json`, `--metrics-out out.prom`,
//! `--json-out BENCH_x.json`) — see [`obs`].

#![warn(missing_docs)]

use jem_core::{Profile, Workload};

pub mod ckpt;
pub mod obs;

/// Render a fixed-width text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate().take(ncols) {
            s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| (*h).to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * ncols;
    println!("{}", "-".repeat(total));
    for row in rows {
        line(row);
    }
}

/// Build profiles for a set of workloads in parallel.
pub fn build_profiles(workloads: &[Box<dyn Workload>], seed: u64) -> Vec<Profile> {
    let refs: Vec<&dyn Workload> = workloads.iter().map(AsRef::as_ref).collect();
    jem_sim::parallel::sweep(&refs, 0, |w| Profile::build(*w, seed))
}

/// Format a normalized (×100) value like the paper's tables.
pub fn fmt_norm(v: f64) -> String {
    format!("{v:.1}")
}

/// Parse a `--runs N`-style flag from argv, with a default.
pub fn arg_usize(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// True when `--full` was passed (run paper-scale workloads).
pub fn arg_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Apply the `--slow-interp` engine flag: route every bytecode method
/// through the reference per-op interpreter instead of the pre-decoded
/// fast path (see `jem_jvm::set_slow_interp_default`). The two engines
/// are observationally identical — `fastpath_equiv.rs` and the CI
/// engine-differential step are the proof — so this only changes wall
/// clock, never results. Call before any VM is constructed.
pub fn apply_engine_flag(args: &[String]) {
    if arg_flag(args, "--slow-interp") {
        jem_jvm::set_slow_interp_default(true);
    }
}

/// Parse a `--flag value` string option from argv.
pub fn arg_str(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["prog", "--runs", "42", "--full"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_usize(&args, "--runs", 7), 42);
        assert_eq!(arg_usize(&args, "--missing", 7), 7);
        assert!(arg_flag(&args, "--full"));
        assert!(!arg_flag(&args, "--quick"));
    }

    #[test]
    fn fmt_norm_one_decimal() {
        assert_eq!(fmt_norm(100.0), "100.0");
        assert_eq!(fmt_norm(33.333), "33.3");
    }
}

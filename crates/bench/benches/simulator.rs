//! Criterion microbenchmarks of the simulator itself (host-side
//! performance, not simulated energy): interpreter throughput, JIT
//! compile time per level, native-execution throughput, serialization,
//! the cache model, and whole-scenario runs.
//!
//! Run with: `cargo bench -p jem-bench`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jem_apps::workload_by_name;
use jem_core::Profile;
use jem_energy::{CacheConfig, CacheSim};
use jem_jvm::{compile, serial, OptLevel, Vm};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::rc::Rc;

fn bench_interpreter(c: &mut Criterion) {
    let w = workload_by_name("sort").expect("sort");
    c.bench_function("interpreter/sort-256", |b| {
        b.iter_batched(
            || {
                let mut vm = Vm::client(w.program());
                let mut rng = SmallRng::seed_from_u64(1);
                let args = w.make_args(&mut vm.heap, 256, &mut rng);
                (vm, args)
            },
            |(mut vm, args)| {
                black_box(vm.invoke(w.potential_method(), args).expect("runs"));
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_native(c: &mut Criterion) {
    let w = workload_by_name("sort").expect("sort");
    let compiled: Vec<_> = (0..w.program().methods.len())
        .map(|i| Rc::new(compile(w.program(), jem_jvm::MethodId(i as u32), OptLevel::L2).code))
        .collect();
    c.bench_function("native-l2/sort-256", |b| {
        b.iter_batched(
            || {
                let mut vm = Vm::client(w.program());
                for (i, code) in compiled.iter().enumerate() {
                    vm.install_native(jem_jvm::MethodId(i as u32), Rc::clone(code));
                }
                let mut rng = SmallRng::seed_from_u64(1);
                let args = w.make_args(&mut vm.heap, 256, &mut rng);
                (vm, args)
            },
            |(mut vm, args)| {
                black_box(vm.invoke(w.potential_method(), args).expect("runs"));
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_jit(c: &mut Criterion) {
    let w = workload_by_name("ed").expect("ed");
    let mut group = c.benchmark_group("jit-compile/ed");
    for level in OptLevel::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(level), &level, |b, &level| {
            b.iter(|| black_box(compile(w.program(), w.potential_method(), level)));
        });
    }
    group.finish();
}

fn bench_serialization(c: &mut Criterion) {
    let w = workload_by_name("mf").expect("mf");
    let mut vm = Vm::client(w.program());
    let mut rng = SmallRng::seed_from_u64(3);
    let args = w.make_args(&mut vm.heap, 64, &mut rng);
    c.bench_function("serialize/mf-64-args", |b| {
        b.iter(|| black_box(serial::serialize_args(&vm.heap, &args).expect("serializes")))
    });
    let bytes = serial::serialize_args(&vm.heap, &args).expect("serializes");
    c.bench_function("deserialize/mf-64-args", |b| {
        b.iter_batched(
            jem_jvm::Heap::new,
            |mut heap| {
                black_box(serial::deserialize_args(&mut heap, &bytes).expect("parses"));
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/250k-sequential", |b| {
        b.iter_batched(
            || CacheSim::new(CacheConfig::client_dcache()),
            |mut cache| {
                for addr in (0..1_000_000u64).step_by(4) {
                    black_box(cache.access(addr));
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_scenario(c: &mut Criterion) {
    let w = workload_by_name("fe").expect("fe");
    let profile = Profile::build(w.as_ref(), 42);
    c.bench_function("scenario/fe-al-10-invocations", |b| {
        let scenario =
            jem_sim::Scenario::paper(jem_sim::Situation::GoodDominant, &w.sizes(), 5).with_runs(10);
        b.iter(|| {
            black_box(jem_core::run_scenario(
                w.as_ref(),
                &profile,
                &scenario,
                jem_core::Strategy::AdaptiveLocal,
            ))
        });
    });
}

fn quick() -> Criterion {
    // The simulation benches are deterministic; short sampling keeps
    // `cargo bench --workspace` tractable on small machines.
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets =
        bench_interpreter,
        bench_native,
        bench_jit,
        bench_serialization,
        bench_cache,
        bench_scenario,
}
criterion_main!(benches);

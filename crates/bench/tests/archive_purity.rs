//! `--archive` is a pure observer: a run that ingests its artifacts
//! into a jem-lab archive produces byte-identical `.jtb` and `.jts`
//! outputs to a bare run of the same seed, the archived copies are
//! bit-exact, an identical-seed rerun raises zero regression flags,
//! and the archive answers timeline queries with the same numbers the
//! `.jts` file carries.

use jem_apps::workload_by_name;
use jem_bench::obs::ObsArgs;
use jem_core::{run_scenario_traced, Profile, ResilienceConfig, Strategy};
use jem_obs::{check, query, CheckConfig, LabGroupBy, LabQuery, LabSelector, Timeline};
use jem_sim::{Scenario, Situation};

fn scratch(name: &str) -> String {
    let dir = std::env::temp_dir().join(format!("jem-bench-archive-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_str().unwrap().to_string()
}

fn obs_args(jtb: &str, jts: &str, archive: Option<String>) -> ObsArgs {
    ObsArgs {
        trace: Some(jtb.to_string()),
        monitor: false,
        health_out: None,
        metrics_out: None,
        json_out: None,
        timeline: Some(jts.to_string()),
        sample_every_ms: 1.0,
        serve: None,
        flush_every_ms: None,
        live: None,
        archive,
    }
}

/// Run the faulty fe scenario through a full BenchSink stack, ingest
/// into `archive` when given, and return the (`.jtb`, `.jts`) bytes.
fn run_stack(tag: &str, archive: Option<String>) -> (Vec<u8>, Vec<u8>) {
    let jtb = scratch(&format!("{tag}.jtb"));
    let jts = scratch(&format!("{tag}.jts"));
    let obs = obs_args(&jtb, &jts, archive);

    let w = workload_by_name("fe").expect("known workload");
    let profile = Profile::build(w.as_ref(), 42);
    let scenario =
        Scenario::paper_degraded(Situation::GoodDominant, &w.sizes(), 1234, 0.6).with_runs(40);
    let mut sink = obs.trace_sink().expect("sink configured");
    run_scenario_traced(
        w.as_ref(),
        &profile,
        &scenario,
        Strategy::AdaptiveAdaptive,
        &ResilienceConfig::default(),
        &mut sink,
    )
    .expect("scenario run failed");
    obs.finish_trace(Some(sink));
    // The same explicit post-run ingest call every bench bin makes.
    obs.archive_run(&[
        "bench-faults".to_string(),
        "--seed".to_string(),
        "1234".to_string(),
    ]);

    let jtb_bytes = std::fs::read(&jtb).unwrap();
    let jts_bytes = std::fs::read(&jts).unwrap();
    std::fs::remove_file(&jtb).ok();
    std::fs::remove_file(&jts).ok();
    (jtb_bytes, jts_bytes)
}

#[test]
fn archiving_is_a_pure_observer() {
    let (bare_jtb, bare_jts) = run_stack("bare", None);

    let root = scratch("archive");
    std::fs::remove_dir_all(&root).ok();
    let (arch_jtb, arch_jts) = run_stack("archived", Some(root.clone()));

    assert_eq!(
        bare_jtb, arch_jtb,
        ".jtb must be byte-identical under --archive"
    );
    assert_eq!(
        bare_jts, arch_jts,
        ".jts must be byte-identical under --archive"
    );

    // The archived copies are bit-exact too.
    let archive = jem_obs::Archive::open_or_create(&root).unwrap();
    let runs = archive.runs().unwrap();
    assert_eq!(runs.len(), 1);
    let run = &runs[0];
    assert_eq!(run.meta.bin, "bench-faults");
    assert_eq!(run.meta.seed, Some(1234));
    let stored_jtb = archive
        .read_artifact(run.artifact("trace").expect("trace archived"))
        .unwrap();
    let stored_jts = archive
        .read_artifact(run.artifact("timeline").expect("timeline archived"))
        .unwrap();
    assert_eq!(stored_jtb, bare_jtb);
    assert_eq!(stored_jts, bare_jts);

    // An identical-seed rerun lands as generation 1 of the same
    // fingerprint line and the detector raises zero flags.
    let (rerun_jtb, _) = run_stack("rerun", Some(root.clone()));
    assert_eq!(rerun_jtb, bare_jtb);
    let runs = archive.runs().unwrap();
    assert_eq!(runs.len(), 2);
    assert_eq!(runs[0].fingerprint, runs[1].fingerprint);
    assert_eq!((runs[0].gen, runs[1].gen), (0, 1));
    let report = check(&archive, &CheckConfig::default()).unwrap();
    assert!(
        !report.flagged(),
        "identical-seed rerun must raise zero flags, got: {}",
        report.render_text()
    );

    // A series query against the archive reproduces the timeline's
    // own window-end value, Welford-pooled across both generations.
    let tl = Timeline::read(&bare_jts).unwrap();
    let idx = tl.series_index("energy.core.cum_nj").expect("core series");
    let last = tl.segments.last().expect("non-empty timeline");
    let expect = last.value_at(idx, last.end_t);
    let groups = query(
        &archive,
        &LabQuery {
            selector: LabSelector::Series("energy.core.cum_nj".to_string()),
            window: None,
            group_by: LabGroupBy::Fingerprint,
        },
    )
    .unwrap();
    assert_eq!(groups.len(), 1);
    let vals: Vec<f64> = groups[0]
        .runs
        .iter()
        .flat_map(|r| r.values.clone())
        .collect();
    assert!(vals.contains(&expect), "query must surface {expect}");
}

//! `--serve` is a pure observer: a run that publishes every event to a
//! live HTTP server being hammered by concurrent readers produces
//! byte-identical `.jtb` and `.jts` artifacts to a bare run of the
//! same seed. Also checks the `--flush-every` cadence: it may cut
//! stream blocks early (different bytes) but must decode to exactly
//! the same events and samples.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use jem_apps::workload_by_name;
use jem_bench::obs::ObsArgs;
use jem_core::{run_scenario_traced, Profile, ResilienceConfig, Strategy};
use jem_obs::wire::load_jtb_bytes;
use jem_obs::{LiveServer, LiveState, Timeline};
use jem_sim::{Scenario, Situation};

fn scratch(name: &str) -> String {
    let dir = std::env::temp_dir().join(format!("jem-bench-live-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_str().unwrap().to_string()
}

fn obs_args(jtb: &str, jts: &str, live: Option<Arc<LiveState>>) -> ObsArgs {
    ObsArgs {
        trace: Some(jtb.to_string()),
        monitor: true,
        health_out: None,
        metrics_out: None,
        json_out: None,
        timeline: Some(jts.to_string()),
        sample_every_ms: 1.0,
        serve: live.as_ref().map(|_| "test".to_string()),
        flush_every_ms: None,
        live,
        archive: None,
    }
}

/// Run the faulty fe scenario through a full BenchSink stack and
/// return the resulting (`.jtb`, `.jts`) bytes.
fn run_stack(
    tag: &str,
    live: Option<Arc<LiveState>>,
    flush_every_ms: Option<f64>,
) -> (Vec<u8>, Vec<u8>) {
    let jtb = scratch(&format!("{tag}.jtb"));
    let jts = scratch(&format!("{tag}.jts"));
    let mut obs = obs_args(&jtb, &jts, live);
    obs.flush_every_ms = flush_every_ms;

    let w = workload_by_name("fe").expect("known workload");
    let profile = Profile::build(w.as_ref(), 42);
    let scenario =
        Scenario::paper_degraded(Situation::GoodDominant, &w.sizes(), 1234, 0.6).with_runs(40);
    let mut sink = obs.trace_sink().expect("sink configured");
    run_scenario_traced(
        w.as_ref(),
        &profile,
        &scenario,
        Strategy::AdaptiveAdaptive,
        &ResilienceConfig::default(),
        &mut sink,
    )
    .expect("scenario run failed");
    obs.finish_trace(Some(sink));

    let jtb_bytes = std::fs::read(&jtb).unwrap();
    let jts_bytes = std::fs::read(&jts).unwrap();
    std::fs::remove_file(&jtb).ok();
    std::fs::remove_file(&jts).ok();
    (jtb_bytes, jts_bytes)
}

fn http_get(addr: &str, path: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect live server");
    write!(
        conn,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("http response");
    assert!(
        head.contains(" 200 "),
        "{path}: expected 200, got {}",
        head.lines().next().unwrap_or("")
    );
    body.to_string()
}

#[test]
fn serving_under_concurrent_readers_is_bit_identical() {
    let (bare_jtb, bare_jts) = run_stack("bare", None, None);

    let state = Arc::new(LiveState::new(1.0e6));
    let server = LiveServer::start("127.0.0.1:0", Arc::clone(&state)).expect("bind");
    let addr = server.addr().to_string();

    // Hammer the endpoints from another thread for the whole run, so
    // any shared-state mutation by a reader would corrupt the stream.
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let stop = Arc::clone(&stop);
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut polls = 0u64;
            while !stop.load(Ordering::Relaxed) {
                http_get(&addr, "/metrics");
                http_get(&addr, "/health");
                http_get(&addr, "/series?name=energy.core.cum_nj");
                polls += 1;
            }
            polls
        })
    };

    let (live_jtb, live_jts) = run_stack("live", Some(Arc::clone(&state)), None);
    stop.store(true, Ordering::Relaxed);
    let polls = reader.join().unwrap();
    assert!(polls > 0, "reader thread must have exercised the server");

    assert_eq!(
        bare_jtb, live_jtb,
        ".jtb must be byte-identical under --serve"
    );
    assert_eq!(
        bare_jts, live_jts,
        ".jts must be byte-identical under --serve"
    );

    // After finish_trace the snapshot is marked complete and reflects
    // the whole run.
    let metrics = http_get(&addr, "/metrics");
    assert!(metrics.contains("jem_live_run_complete 1"));
    assert!(metrics.contains("jem_live_events_total"));
    let health = http_get(&addr, "/health");
    assert!(health.contains("\"schema\": \"jem-health/v1\""));
    let series = http_get(&addr, "/series?name=energy.core.cum_nj");
    assert!(series.contains("\"complete\": true"));
}

#[test]
fn flush_every_changes_framing_but_not_content() {
    let (base_jtb, base_jts) = run_stack("noflush", None, None);
    let (flush_jtb, flush_jts) = run_stack("flush", None, Some(2.0));

    let base = load_jtb_bytes(&base_jtb).expect("decode");
    let flush = load_jtb_bytes(&flush_jtb).expect("decode");
    assert_eq!(base.shards.len(), flush.shards.len());
    for (a, b) in base.shards.iter().zip(flush.shards.iter()) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.events, b.events, "flush cadence must not alter events");
    }
    assert_eq!(base.dropped, flush.dropped);

    let base_tl = Timeline::read(&base_jts).expect("decode");
    let flush_tl = Timeline::read(&flush_jts).expect("decode");
    assert_eq!(base_tl.samples(), flush_tl.samples());
    let flat = |tl: &Timeline| -> Vec<(f64, Vec<f64>)> {
        tl.segments
            .iter()
            .flat_map(|seg| {
                seg.times
                    .iter()
                    .enumerate()
                    .map(|(row, t)| (*t, seg.cols.iter().map(|c| c[row]).collect::<Vec<f64>>()))
            })
            .collect()
    };
    assert_eq!(
        flat(&base_tl),
        flat(&flush_tl),
        "flush cadence must not alter sample values"
    );
}

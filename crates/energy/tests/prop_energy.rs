//! Property tests for the energy substrate: cache accounting
//! invariants and machine-ledger consistency.

use jem_energy::{
    CacheConfig, CacheSim, EnergyTable, InstrClass, InstrMix, Machine, MachineConfig, MemOp,
    SimTime,
};
use proptest::prelude::*;

fn any_class() -> impl Strategy<Value = InstrClass> {
    prop_oneof![
        Just(InstrClass::Load),
        Just(InstrClass::Store),
        Just(InstrClass::Branch),
        Just(InstrClass::AluSimple),
        Just(InstrClass::AluComplex),
        Just(InstrClass::Nop),
    ]
}

proptest! {
    /// hits + misses == accesses, and replaying the same trace on a
    /// fresh cache gives identical stats (determinism).
    #[test]
    fn cache_accounting(addrs in prop::collection::vec(0u64..1u64<<20, 1..500)) {
        let cfg = CacheConfig { size_bytes: 4096, line_bytes: 32 };
        let mut a = CacheSim::new(cfg);
        for &x in &addrs {
            a.access(x);
        }
        prop_assert_eq!(a.stats().accesses(), addrs.len() as u64);
        prop_assert_eq!(a.stats().hits + a.stats().misses, addrs.len() as u64);

        let mut b = CacheSim::new(cfg);
        for &x in &addrs {
            b.access(x);
        }
        prop_assert_eq!(a.stats(), b.stats());
    }

    /// Accessing the same line twice in a row always hits the second
    /// time.
    #[test]
    fn immediate_reuse_hits(addr in 0u64..1u64<<30) {
        let mut c = CacheSim::new(CacheConfig::client_dcache());
        c.access(addr);
        prop_assert!(c.access(addr));
    }

    /// Machine energy is exactly the sum of its component ledger, and
    /// bulk-charging a mix equals the table price of that mix.
    #[test]
    fn machine_ledger_consistent(
        loads in 0u64..1000,
        stores in 0u64..1000,
        branches in 0u64..1000,
        mems in 0u64..100,
    ) {
        let mix = InstrMix::new()
            .with(InstrClass::Load, loads)
            .with(InstrClass::Store, stores)
            .with(InstrClass::Branch, branches)
            .with_mem(mems);
        let mut m = Machine::new(MachineConfig::mobile_client());
        m.charge_mix(&mix);
        let expect = EnergyTable::microsparc_iiep().energy_of_mix(&mix);
        prop_assert!((m.energy().nanojoules() - expect.nanojoules()).abs() < 1e-6);
        let total: f64 = m
            .breakdown()
            .iter()
            .map(|(_, e)| e.nanojoules())
            .sum();
        prop_assert!((total - m.energy().nanojoules()).abs() < 1e-6);
    }

    /// Stepping arbitrary instruction traces keeps energy and cycles
    /// monotonically nondecreasing, and elapsed time consistent with
    /// cycles at the configured clock.
    #[test]
    fn stepping_is_monotone(trace in prop::collection::vec((any_class(), 0u64..1u64<<20, prop::option::of(0u64..1u64<<20)), 1..300)) {
        let mut m = Machine::new(MachineConfig::mobile_client());
        let mut last_e = 0.0;
        let mut last_c = 0;
        for (class, pc, mem) in trace {
            let memop = match (class, mem) {
                (InstrClass::Store, Some(a)) => MemOp::Write(a),
                (_, Some(a)) => MemOp::Read(a),
                (_, None) => MemOp::None,
            };
            m.step(pc, class, memop);
            prop_assert!(m.energy().nanojoules() >= last_e);
            prop_assert!(m.cycles() >= last_c);
            last_e = m.energy().nanojoules();
            last_c = m.cycles();
        }
        let t = SimTime::from_cycles(m.cycles(), m.config().clock_hz);
        prop_assert!((m.elapsed().nanos() - t.nanos()).abs() < 1e-6);
    }

    /// Power-down leakage is exactly leak_fraction of active idle for
    /// the same duration.
    #[test]
    fn leakage_fraction_exact(ms in 0.01f64..1e4) {
        let t = SimTime::from_millis(ms);
        let mut down = Machine::new(MachineConfig::mobile_client());
        let mut idle = Machine::new(MachineConfig::mobile_client());
        down.power_down(t);
        idle.active_idle(t);
        let ratio = down.energy().nanojoules() / idle.energy().nanojoules();
        prop_assert!((ratio - 0.10).abs() < 1e-9, "{ratio}");
    }
}

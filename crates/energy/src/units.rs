//! Strongly typed physical quantities used throughout the simulator.
//!
//! All energies are carried in **nanojoules**, all times in
//! **nanoseconds**, and all powers in **milliwatts**, matching the
//! granularities of the paper's data sheets (per-instruction energies
//! in nJ, component powers in mW, a 100 MHz clock with 10 ns cycles).
//! The newtypes prevent the classic simulator bug of adding joules to
//! seconds; conversions between the three are explicit.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An amount of energy, stored in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Construct from nanojoules.
    #[inline]
    pub const fn from_nanojoules(nj: f64) -> Self {
        Energy(nj)
    }

    /// Construct from microjoules.
    #[inline]
    pub fn from_microjoules(uj: f64) -> Self {
        Energy(uj * 1e3)
    }

    /// Construct from millijoules.
    #[inline]
    pub fn from_millijoules(mj: f64) -> Self {
        Energy(mj * 1e6)
    }

    /// Construct from joules.
    #[inline]
    pub fn from_joules(j: f64) -> Self {
        Energy(j * 1e9)
    }

    /// The stored value in nanojoules.
    #[inline]
    pub const fn nanojoules(self) -> f64 {
        self.0
    }

    /// The stored value in microjoules.
    #[inline]
    pub fn microjoules(self) -> f64 {
        self.0 * 1e-3
    }

    /// The stored value in millijoules.
    #[inline]
    pub fn millijoules(self) -> f64 {
        self.0 * 1e-6
    }

    /// The stored value in joules.
    #[inline]
    pub fn joules(self) -> f64 {
        self.0 * 1e-9
    }

    /// Ratio of this energy to another; panics only in debug builds on
    /// division by exact zero (returns `inf`/`nan` like `f64`).
    #[inline]
    pub fn ratio(self, other: Energy) -> f64 {
        self.0 / other.0
    }

    /// `max(self, other)` (total order assuming no NaN, which the
    /// simulator never produces).
    #[inline]
    pub fn max(self, other: Energy) -> Energy {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// `min(self, other)`.
    #[inline]
    pub fn min(self, other: Energy) -> Energy {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// True when the value is finite (always holds for simulator
    /// output; used by property tests).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl Add for Energy {
    type Output = Energy;
    #[inline]
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    #[inline]
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    #[inline]
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl SubAssign for Energy {
    #[inline]
    fn sub_assign(&mut self, rhs: Energy) {
        self.0 -= rhs.0;
    }
}

impl Neg for Energy {
    type Output = Energy;
    #[inline]
    fn neg(self) -> Energy {
        Energy(-self.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Mul<Energy> for f64 {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: Energy) -> Energy {
        Energy(self * rhs.0)
    }
}

impl Div<f64> for Energy {
    type Output = Energy;
    #[inline]
    fn div(self, rhs: f64) -> Energy {
        Energy(self.0 / rhs)
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let nj = self.0;
        if nj.abs() >= 1e9 {
            write!(f, "{:.3} J", nj * 1e-9)
        } else if nj.abs() >= 1e6 {
            write!(f, "{:.3} mJ", nj * 1e-6)
        } else if nj.abs() >= 1e3 {
            write!(f, "{:.3} uJ", nj * 1e-3)
        } else {
            write!(f, "{:.3} nJ", nj)
        }
    }
}

/// A span of simulated time, stored in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// Zero duration.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: f64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> Self {
        SimTime(us * 1e3)
    }

    /// Construct from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        SimTime(ms * 1e6)
    }

    /// Construct from seconds.
    #[inline]
    pub fn from_secs(s: f64) -> Self {
        SimTime(s * 1e9)
    }

    /// Duration of `cycles` clock cycles at `clock_hz`.
    #[inline]
    pub fn from_cycles(cycles: u64, clock_hz: f64) -> Self {
        SimTime(cycles as f64 * 1e9 / clock_hz)
    }

    /// The stored value in nanoseconds.
    #[inline]
    pub const fn nanos(self) -> f64 {
        self.0
    }

    /// The stored value in microseconds.
    #[inline]
    pub fn micros(self) -> f64 {
        self.0 * 1e-3
    }

    /// The stored value in milliseconds.
    #[inline]
    pub fn millis(self) -> f64 {
        self.0 * 1e-6
    }

    /// The stored value in seconds.
    #[inline]
    pub fn secs(self) -> f64 {
        self.0 * 1e-9
    }

    /// `max(self, other)`.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// `min(self, other)`.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: f64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: f64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns.abs() >= 1e9 {
            write!(f, "{:.3} s", ns * 1e-9)
        } else if ns.abs() >= 1e6 {
            write!(f, "{:.3} ms", ns * 1e-6)
        } else if ns.abs() >= 1e3 {
            write!(f, "{:.3} us", ns * 1e-3)
        } else {
            write!(f, "{:.3} ns", ns)
        }
    }
}

/// Electrical power, stored in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Power(f64);

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0.0);

    /// Construct from milliwatts.
    #[inline]
    pub const fn from_milliwatts(mw: f64) -> Self {
        Power(mw)
    }

    /// Construct from watts.
    #[inline]
    pub const fn from_watts(w: f64) -> Self {
        Power(w * 1e3)
    }

    /// The stored value in milliwatts.
    #[inline]
    pub const fn milliwatts(self) -> f64 {
        self.0
    }

    /// The stored value in watts.
    #[inline]
    pub fn watts(self) -> f64 {
        self.0 * 1e-3
    }

    /// Energy consumed by drawing this power for `t`.
    ///
    /// mW × ns = pJ, hence the 1e-3 scale to nanojoules.
    #[inline]
    pub fn over(self, t: SimTime) -> Energy {
        Energy::from_nanojoules(self.0 * t.nanos() * 1e-3)
    }
}

impl Add for Power {
    type Output = Power;
    #[inline]
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl AddAssign for Power {
    #[inline]
    fn add_assign(&mut self, rhs: Power) {
        self.0 += rhs.0;
    }
}

impl Sub for Power {
    type Output = Power;
    #[inline]
    fn sub(self, rhs: Power) -> Power {
        Power(self.0 - rhs.0)
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    #[inline]
    fn mul(self, rhs: f64) -> Power {
        Power(self.0 * rhs)
    }
}

impl Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Power {
        iter.fold(Power::ZERO, Add::add)
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mw = self.0;
        if mw.abs() >= 1e3 {
            write!(f, "{:.3} W", mw * 1e-3)
        } else {
            write!(f, "{:.3} mW", mw)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_conversions_round_trip() {
        let e = Energy::from_joules(1.5);
        assert!((e.nanojoules() - 1.5e9).abs() < 1e-3);
        assert!((e.millijoules() - 1500.0).abs() < 1e-9);
        assert!((e.microjoules() - 1.5e6).abs() < 1e-6);
        assert!((e.joules() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn energy_arithmetic() {
        let a = Energy::from_nanojoules(2.0);
        let b = Energy::from_nanojoules(3.0);
        assert_eq!((a + b).nanojoules(), 5.0);
        assert_eq!((b - a).nanojoules(), 1.0);
        assert_eq!((a * 2.0).nanojoules(), 4.0);
        assert_eq!((2.0 * a).nanojoules(), 4.0);
        assert_eq!((b / 3.0).nanojoules(), 1.0);
        let mut c = a;
        c += b;
        assert_eq!(c.nanojoules(), 5.0);
        c -= a;
        assert_eq!(c.nanojoules(), 3.0);
        assert_eq!((-a).nanojoules(), -2.0);
    }

    #[test]
    fn energy_sum_and_minmax() {
        let total: Energy = (1..=4).map(|i| Energy::from_nanojoules(i as f64)).sum();
        assert_eq!(total.nanojoules(), 10.0);
        let a = Energy::from_nanojoules(1.0);
        let b = Energy::from_nanojoules(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn time_conversions() {
        let t = SimTime::from_millis(2.0);
        assert!((t.nanos() - 2e6).abs() < 1e-6);
        assert!((t.micros() - 2000.0).abs() < 1e-9);
        assert!((t.secs() - 2e-3).abs() < 1e-15);
    }

    #[test]
    fn time_from_cycles() {
        // 100 MHz clock: one cycle is 10 ns.
        let t = SimTime::from_cycles(100, 100e6);
        assert!((t.nanos() - 1000.0).abs() < 1e-9);
        // 750 MHz server clock.
        let t = SimTime::from_cycles(750, 750e6);
        assert!((t.nanos() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn power_over_time_is_energy() {
        // 1 W for 1 s = 1 J.
        let e = Power::from_watts(1.0).over(SimTime::from_secs(1.0));
        assert!((e.joules() - 1.0).abs() < 1e-12);
        // Paper's Class 1 PA: 5.88 W for 1 ms = 5.88 mJ.
        let e = Power::from_watts(5.88).over(SimTime::from_millis(1.0));
        assert!((e.millijoules() - 5.88).abs() < 1e-9);
    }

    #[test]
    fn display_picks_sensible_scales() {
        assert_eq!(format!("{}", Energy::from_nanojoules(4.814)), "4.814 nJ");
        assert_eq!(format!("{}", Energy::from_joules(2.0)), "2.000 J");
        assert_eq!(format!("{}", SimTime::from_secs(1.5)), "1.500 s");
        assert_eq!(format!("{}", Power::from_watts(5.88)), "5.880 W");
        assert_eq!(format!("{}", Power::from_milliwatts(33.75)), "33.750 mW");
    }
}

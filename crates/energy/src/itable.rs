//! Per-instruction-class energy table — the paper's **Fig 1**.
//!
//! The paper derives client-core energy by "counting (dynamically) the
//! number of instructions of each type and multiplying the count by the
//! base energy consumption of the corresponding instruction", with the
//! per-class energies produced by a customized SimplePower model of a
//! five-stage microSPARC-IIep-like pipeline, and DRAM energy taken from
//! data sheets. We embed those exact constants.

use crate::units::Energy;
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// The instruction classes priced by the paper's Fig 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstrClass {
    /// Memory load (includes D-cache access).
    Load,
    /// Memory store (includes D-cache access).
    Store,
    /// Conditional or unconditional branch.
    Branch,
    /// Simple integer ALU operation (add, sub, logic, compare, moves).
    AluSimple,
    /// Complex ALU operation (multiply, divide, and our stand-in for
    /// floating-point arithmetic on the FP-less microSPARC-IIep core).
    AluComplex,
    /// Pipeline bubble / no-op.
    Nop,
}

impl InstrClass {
    /// All classes, in Fig 1 order.
    pub const ALL: [InstrClass; 6] = [
        InstrClass::Load,
        InstrClass::Store,
        InstrClass::Branch,
        InstrClass::AluSimple,
        InstrClass::AluComplex,
        InstrClass::Nop,
    ];

    /// Stable index for table lookups.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            InstrClass::Load => 0,
            InstrClass::Store => 1,
            InstrClass::Branch => 2,
            InstrClass::AluSimple => 3,
            InstrClass::AluComplex => 4,
            InstrClass::Nop => 5,
        }
    }

    /// Human-readable name matching the paper's table rows.
    pub const fn name(self) -> &'static str {
        match self {
            InstrClass::Load => "Load",
            InstrClass::Store => "Store",
            InstrClass::Branch => "Branch",
            InstrClass::AluSimple => "ALU(Simple)",
            InstrClass::AluComplex => "ALU(Complex)",
            InstrClass::Nop => "Nop",
        }
    }
}

/// Energy cost table for one machine (Fig 1 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyTable {
    /// Per-class base energy, indexed by [`InstrClass::index`].
    per_class: [Energy; 6],
    /// Energy of one main-memory (off-chip DRAM) access.
    pub main_memory: Energy,
}

impl EnergyTable {
    /// The paper's exact Fig 1 values (nanojoules).
    pub fn microsparc_iiep() -> Self {
        EnergyTable {
            per_class: [
                Energy::from_nanojoules(4.814), // Load
                Energy::from_nanojoules(4.479), // Store
                Energy::from_nanojoules(2.868), // Branch
                Energy::from_nanojoules(2.846), // ALU simple
                Energy::from_nanojoules(3.726), // ALU complex
                Energy::from_nanojoules(2.644), // Nop
            ],
            main_memory: Energy::from_nanojoules(4.94),
        }
    }

    /// Build a custom table (for what-if ablations).
    pub fn custom(per_class: [Energy; 6], main_memory: Energy) -> Self {
        EnergyTable {
            per_class,
            main_memory,
        }
    }

    /// Base energy of one instruction of `class`.
    #[inline]
    pub fn energy(&self, class: InstrClass) -> Energy {
        self.per_class[class.index()]
    }

    /// Energy of an entire instruction mix (no cache effects; memory
    /// accesses priced at the DRAM cost times `mem_accesses`).
    pub fn energy_of_mix(&self, mix: &InstrMix) -> Energy {
        let mut total = Energy::ZERO;
        for class in InstrClass::ALL {
            total += self.energy(class) * mix.count(class) as f64;
        }
        total += self.main_memory * mix.mem_accesses as f64;
        total
    }
}

impl Default for EnergyTable {
    fn default() -> Self {
        EnergyTable::microsparc_iiep()
    }
}

/// A histogram of executed instructions by class, plus main-memory
/// access count. Used both for bulk pricing (e.g. charging JIT
/// compilation work) and for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct InstrMix {
    counts: [u64; 6],
    /// Number of main-memory accesses (cache misses or uncached).
    pub mem_accesses: u64,
}

impl InstrMix {
    /// The empty mix.
    pub const fn new() -> Self {
        InstrMix {
            counts: [0; 6],
            mem_accesses: 0,
        }
    }

    /// Record `n` instructions of `class`. (Named `record` rather than `add` to avoid clashing with the `Add` impl.)
    #[inline]
    pub fn record(&mut self, class: InstrClass, n: u64) {
        self.counts[class.index()] += n;
    }

    /// Builder-style: with `n` instructions of `class` added.
    #[must_use]
    pub fn with(mut self, class: InstrClass, n: u64) -> Self {
        self.record(class, n);
        self
    }

    /// Builder-style: with `n` main-memory accesses added.
    #[must_use]
    pub fn with_mem(mut self, n: u64) -> Self {
        self.mem_accesses += n;
        self
    }

    /// Count of instructions of `class`.
    #[inline]
    pub fn count(&self, class: InstrClass) -> u64 {
        self.counts[class.index()]
    }

    /// Total instruction count (memory accesses not included).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// True when no instructions or memory accesses are recorded.
    pub fn is_empty(&self) -> bool {
        self.total() == 0 && self.mem_accesses == 0
    }

    /// The raw per-class counts (indexed by [`InstrClass::index`]),
    /// for checkpointing.
    pub fn class_counts(&self) -> [u64; 6] {
        self.counts
    }

    /// Rebuild a mix from raw parts captured by
    /// [`InstrMix::class_counts`] and [`InstrMix::mem_accesses`].
    pub fn from_parts(counts: [u64; 6], mem_accesses: u64) -> Self {
        InstrMix {
            counts,
            mem_accesses,
        }
    }

    /// Scale every count by `factor` (used to expand per-iteration
    /// mixes; saturates on overflow, which simulation sizes never hit).
    #[must_use]
    pub fn scaled(&self, factor: u64) -> Self {
        let mut out = *self;
        for c in &mut out.counts {
            *c = c.saturating_mul(factor);
        }
        out.mem_accesses = out.mem_accesses.saturating_mul(factor);
        out
    }
}

impl Add for InstrMix {
    type Output = InstrMix;
    fn add(self, rhs: InstrMix) -> InstrMix {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for InstrMix {
    fn add_assign(&mut self, rhs: InstrMix) {
        for i in 0..6 {
            self.counts[i] += rhs.counts[i];
        }
        self.mem_accesses += rhs.mem_accesses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_values_are_exact() {
        let t = EnergyTable::microsparc_iiep();
        assert_eq!(t.energy(InstrClass::Load).nanojoules(), 4.814);
        assert_eq!(t.energy(InstrClass::Store).nanojoules(), 4.479);
        assert_eq!(t.energy(InstrClass::Branch).nanojoules(), 2.868);
        assert_eq!(t.energy(InstrClass::AluSimple).nanojoules(), 2.846);
        assert_eq!(t.energy(InstrClass::AluComplex).nanojoules(), 3.726);
        assert_eq!(t.energy(InstrClass::Nop).nanojoules(), 2.644);
        assert_eq!(t.main_memory.nanojoules(), 4.94);
    }

    #[test]
    fn loads_cost_more_than_simple_alu() {
        // Sanity ordering the paper's table exhibits: memory-touching
        // instructions are the most expensive, NOP the cheapest.
        let t = EnergyTable::default();
        assert!(t.energy(InstrClass::Load) > t.energy(InstrClass::AluComplex));
        assert!(t.energy(InstrClass::Store) > t.energy(InstrClass::AluSimple));
        for c in InstrClass::ALL {
            assert!(t.energy(c) >= t.energy(InstrClass::Nop));
        }
    }

    #[test]
    fn mix_accumulates_and_prices() {
        let t = EnergyTable::default();
        let mix = InstrMix::new()
            .with(InstrClass::Load, 2)
            .with(InstrClass::AluSimple, 3)
            .with_mem(1);
        assert_eq!(mix.total(), 5);
        let expect = 2.0 * 4.814 + 3.0 * 2.846 + 4.94;
        assert!((t.energy_of_mix(&mix).nanojoules() - expect).abs() < 1e-9);
    }

    #[test]
    fn mix_add_and_scale() {
        let a = InstrMix::new().with(InstrClass::Branch, 1).with_mem(2);
        let b = InstrMix::new().with(InstrClass::Branch, 4);
        let c = a + b;
        assert_eq!(c.count(InstrClass::Branch), 5);
        assert_eq!(c.mem_accesses, 2);
        let d = c.scaled(3);
        assert_eq!(d.count(InstrClass::Branch), 15);
        assert_eq!(d.mem_accesses, 6);
    }

    #[test]
    fn empty_mix_is_empty() {
        assert!(InstrMix::new().is_empty());
        assert!(!InstrMix::new().with(InstrClass::Nop, 1).is_empty());
        assert!(!InstrMix::new().with_mem(1).is_empty());
    }

    #[test]
    fn class_indices_are_bijective() {
        let mut seen = [false; 6];
        for c in InstrClass::ALL {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

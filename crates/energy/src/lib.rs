//! # jem-energy — cycle-approximate energy simulation substrate
//!
//! This crate reproduces the energy-accounting model used by the paper
//! *Energy-Aware Compilation and Execution in Java-Enabled Mobile
//! Devices* (Chen et al., IPPS 2003). The paper obtained client-side
//! energy numbers from a customized Shade + SimplePower simulator that
//! charged a fixed energy per executed instruction class (their Fig 1),
//! a fixed energy per main-memory access, and modeled an 8 KB
//! direct-mapped data cache plus a 16 KB instruction cache on a 100 MHz
//! microSPARC-IIep-like five-stage pipeline.
//!
//! We implement exactly that accounting scheme:
//!
//! * [`units`] — strongly typed energy / time / power quantities,
//! * [`itable`] — the per-instruction-class energy table (paper Fig 1),
//! * [`cache`] — a direct-mapped cache simulator with hit/miss stats,
//! * [`machine`] — the simulated machine: executes abstract instruction
//!   events, accumulates cycles and per-component energy, and models
//!   CPU power states (including the 10 %-leakage power-down state the
//!   paper uses while a method executes remotely),
//! * [`meter`] — hierarchical per-component energy breakdown reports.
//!
//! Instruction *streams* are produced elsewhere (by the MJVM
//! interpreter and JIT-generated native code in `jem-jvm`); this crate
//! only prices them.

#![warn(missing_docs)]

pub mod cache;
pub mod itable;
pub mod machine;
pub mod meter;
pub mod units;

pub use cache::{CacheConfig, CacheSim, CacheState, CacheStats};
pub use itable::{EnergyTable, InstrClass, InstrMix};
pub use machine::{
    ChargePlan, ChargeSeq, Machine, MachineConfig, MachineState, MemOp, PowerState, SeqDataRef,
    SeqPlan,
};
pub use meter::{Component, EnergyBreakdown};
pub use units::{Energy, Power, SimTime};

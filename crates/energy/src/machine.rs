//! The simulated execution machine: prices instruction events and
//! tracks time.
//!
//! A [`Machine`] is the meeting point between the MJVM (which produces
//! abstract instruction events while interpreting bytecode or running
//! JIT-generated native code) and the energy model. It simulates
//! instruction fetch through the I-cache, data accesses through the
//! D-cache, charges Fig 1 energies to an [`EnergyBreakdown`], and
//! counts cycles.
//!
//! Two machines exist in every experiment:
//!
//! * the **client**: a 100 MHz microSPARC-IIep-like core with 16 KB
//!   I-cache / 8 KB D-cache, whose energy we care about, and
//! * the **server**: a 750 MHz SPARC workstation with larger caches.
//!   Its energy is free (the paper optimizes *client* energy) but its
//!   cycle count determines how long the client stays powered down.
//!
//! During remote execution the paper places "the processor, memory and
//! the receiver into a power-down state" in which the processor still
//! burns leakage, "assumed to be 10 % of the normal power consumption".
//! [`Machine::power_down`] implements exactly that.

use crate::cache::{CacheConfig, CacheSim, CacheState, CacheStats};
use crate::itable::{EnergyTable, InstrClass, InstrMix};
use crate::meter::{Component, EnergyBreakdown};
use crate::units::{Energy, Power, SimTime};
use serde::{Deserialize, Serialize};

/// Data-memory behaviour of one instruction event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// No data access.
    None,
    /// Data read from the given simulated byte address.
    Read(u64),
    /// Data write to the given simulated byte address.
    Write(u64),
}

/// CPU power state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PowerState {
    /// Executing normally.
    Active,
    /// Powered down (remote execution in flight); only leakage burns.
    PowerDown,
}

/// Static configuration of a simulated machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Per-instruction energy table (Fig 1).
    pub table: EnergyTable,
    /// Instruction cache geometry (`None` disables fetch simulation).
    pub icache: Option<CacheConfig>,
    /// Data cache geometry (`None` disables data-access simulation).
    pub dcache: Option<CacheConfig>,
    /// Pipeline stall cycles per cache miss (DRAM latency).
    pub miss_penalty_cycles: u32,
    /// Nominal active power of core + memory, used to price leakage
    /// during power-down.
    pub nominal_power: Power,
    /// Fraction of nominal power burned while powered down (the paper
    /// assumes 0.10).
    pub leak_fraction: f64,
}

impl MachineConfig {
    /// The paper's mobile client: 100 MHz microSPARC-IIep, 16 KB
    /// I-cache, 8 KB D-cache, 32 MB off-chip DRAM.
    ///
    /// The nominal active power follows from the energy table itself:
    /// ~3.5 nJ/instruction at 100 MIPS is ~350 mW, consistent with the
    /// low-power embedded cores of the period.
    pub fn mobile_client() -> Self {
        MachineConfig {
            clock_hz: 100e6,
            table: EnergyTable::microsparc_iiep(),
            icache: Some(CacheConfig::client_icache()),
            dcache: Some(CacheConfig::client_dcache()),
            miss_penalty_cycles: 10,
            nominal_power: Power::from_milliwatts(350.0),
            leak_fraction: 0.10,
        }
    }

    /// The paper's remote server: a 750 MHz SPARC workstation. Caches
    /// are larger and the miss penalty (in cycles) higher, as on real
    /// workstation-class parts. Its energy ledger is maintained but
    /// never charged to the client.
    pub fn sparc_server() -> Self {
        MachineConfig {
            clock_hz: 750e6,
            table: EnergyTable::microsparc_iiep(),
            icache: Some(CacheConfig {
                size_bytes: 64 * 1024,
                line_bytes: 32,
            }),
            dcache: Some(CacheConfig {
                size_bytes: 64 * 1024,
                line_bytes: 32,
            }),
            miss_penalty_cycles: 40,
            nominal_power: Power::from_watts(25.0),
            leak_fraction: 0.10,
        }
    }

    /// Duration of one clock cycle.
    pub fn cycle_time(&self) -> SimTime {
        SimTime::from_nanos(1e9 / self.clock_hz)
    }
}

/// A running machine instance.
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
    icache: Option<CacheSim>,
    dcache: Option<CacheSim>,
    cycles: u64,
    /// Wall time spent outside normal execution (power-down waits).
    extra_time: SimTime,
    breakdown: EnergyBreakdown,
    mix: InstrMix,
    state: PowerState,
}

impl Machine {
    /// Build a machine in the [`PowerState::Active`] state.
    pub fn new(config: MachineConfig) -> Self {
        Machine {
            icache: config.icache.map(CacheSim::new),
            dcache: config.dcache.map(CacheSim::new),
            cycles: 0,
            extra_time: SimTime::ZERO,
            breakdown: EnergyBreakdown::new(),
            mix: InstrMix::new(),
            state: PowerState::Active,
            config,
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Current power state.
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// Execute one instruction event.
    ///
    /// `pc` is the simulated byte address the instruction was fetched
    /// from (drives the I-cache); `mem` describes its data access
    /// (drives the D-cache). Charges core energy per Fig 1 and DRAM
    /// energy per miss, and advances the cycle counter (1 cycle base +
    /// miss penalties).
    ///
    /// # Panics
    /// In debug builds, if called while powered down — the caller must
    /// wake the machine first.
    #[inline]
    pub fn step(&mut self, pc: u64, class: InstrClass, mem: MemOp) {
        debug_assert_eq!(self.state, PowerState::Active, "step while powered down");
        let mut cycles: u64 = 1;
        if let Some(icache) = &mut self.icache {
            if !icache.access(pc) {
                cycles += self.config.miss_penalty_cycles as u64;
                self.breakdown
                    .charge(Component::Dram, self.config.table.main_memory);
                self.mix.mem_accesses += 1;
            }
        }
        match mem {
            MemOp::None => {}
            MemOp::Read(addr) | MemOp::Write(addr) => {
                if let Some(dcache) = &mut self.dcache {
                    if !dcache.access(addr) {
                        cycles += self.config.miss_penalty_cycles as u64;
                        self.breakdown
                            .charge(Component::Dram, self.config.table.main_memory);
                        self.mix.mem_accesses += 1;
                    }
                }
            }
        }
        self.breakdown
            .charge(Component::Core, self.config.table.energy(class));
        self.mix.record(class, 1);
        self.cycles += cycles;
    }

    /// Replay a precompiled [`ChargePlan`]: one instruction fetch at
    /// the plan's pc followed by its precomputed core-energy charge
    /// sequence.
    ///
    /// This is the batched fast-path equivalent of
    ///
    /// ```text
    /// machine.step(plan_pc, lead_class, MemOp::None);
    /// machine.charge_mix(&mix_1);
    /// ...
    /// machine.charge_mix(&mix_n);
    /// ```
    ///
    /// and is **bit-exact** with that sequence: the per-component
    /// energy accumulators receive the identical `f64` additions in
    /// the identical order (the plan stores each `energy(class) * n`
    /// product individually rather than pre-summing them, because f64
    /// addition is not associative), the I-cache sees the same access,
    /// and the integer cycle/mix bookkeeping — which *is* associative
    /// — is folded into single additions.
    #[inline]
    pub fn step_planned(&mut self, plan: &ChargePlan) {
        debug_assert_eq!(self.state, PowerState::Active, "step while powered down");
        let mut cycles = plan.cycles;
        if let Some(icache) = &mut self.icache {
            if !icache.access(plan.fetch_pc) {
                cycles += self.config.miss_penalty_cycles as u64;
                self.breakdown
                    .charge(Component::Dram, self.config.table.main_memory);
                self.mix.mem_accesses += 1;
            }
        }
        for e in &plan.core[..plan.ncore as usize] {
            self.breakdown.charge(Component::Core, *e);
        }
        for &(class, n) in &plan.classes[..plan.nclasses as usize] {
            self.mix.record(class, n);
        }
        self.cycles += cycles;
    }

    /// Replay a precompiled [`ChargeSeq`]: several consecutive
    /// dispatch plans merged into one batched replay.
    ///
    /// Bit-exact with calling [`Machine::step_planned`] once per
    /// folded plan, in order: the I-cache sees the same fetches in the
    /// same order; the Core accumulator receives the identical `f64`
    /// additions in the identical order (each folded plan's products,
    /// concatenated); the Dram accumulator adds the same
    /// `table.main_memory` constant once per miss, and moving those
    /// additions ahead of the core additions cannot change either
    /// accumulator — they are *different* accumulators, and only the
    /// per-accumulator addition order matters for f64 bit-equality;
    /// the integer cycle/mix bookkeeping is associative and folded.
    #[inline]
    pub fn step_charge_seq(&mut self, seq: &ChargeSeq) {
        debug_assert_eq!(self.state, PowerState::Active, "step while powered down");
        let mut cycles = seq.cycles;
        if let Some(icache) = &mut self.icache {
            for &pc in seq.fetch_pcs.iter() {
                if !icache.access(pc) {
                    cycles += self.config.miss_penalty_cycles as u64;
                    self.breakdown
                        .charge(Component::Dram, self.config.table.main_memory);
                    self.mix.mem_accesses += 1;
                }
            }
        }
        for e in seq.core.iter() {
            self.breakdown.charge(Component::Core, *e);
        }
        for &(class, n) in seq.classes.iter() {
            self.mix.record(class, n);
        }
        self.cycles += cycles;
    }

    /// Replay a precompiled [`SeqPlan`]: one straight-line emitted
    /// micro-instruction sequence, batched.
    ///
    /// This is the bit-exact batched equivalent of calling
    /// [`Machine::step`] once per micro with consecutive fetch
    /// addresses `code_base + start, + instr_bytes, ...`:
    ///
    /// * **I-cache** — because `code_base` is line-aligned, the
    ///   grouping of consecutive fetches into cache lines is static.
    ///   Only the *first* fetch of each line is simulated; the
    ///   follow-on fetches are guaranteed hits (a direct-mapped line
    ///   just accessed cannot be evicted by fetches to other lines of
    ///   the same sequence, and hits never modify tags), so they are
    ///   credited in bulk via [`CacheSim::credit_hits`].
    /// * **D-cache** — data-bearing micros are replayed individually,
    ///   in issue order, at their true addresses (`frame_base +
    ///   offset` for spills, `heap_addr` for the sequence's heap
    ///   access), because heap locality is dynamic.
    /// * **Core energy** — the per-micro `energy(class)` additions are
    ///   replayed individually in order (f64 addition is not
    ///   associative, so they cannot be pre-summed).
    /// * **DRAM energy** — every miss charges the same
    ///   `table.main_memory` constant, so reordering the D-cache
    ///   misses after the I-cache misses leaves the DRAM accumulator
    ///   bit-identical (adding the same constant `k` times is
    ///   order-independent); the count of additions is preserved.
    /// * **Cycles / mix** — integer bookkeeping is associative and is
    ///   folded into single additions.
    ///
    /// # Panics
    /// In debug builds, if called while powered down, if `code_base`
    /// is not aligned to the plan's line size, or if the plan was
    /// compiled for a different I-cache line size than this machine's.
    #[inline]
    pub fn step_seq(
        &mut self,
        plan: &SeqPlan,
        code_base: u64,
        frame_base: u64,
        heap_addr: Option<u64>,
    ) {
        debug_assert_eq!(self.state, PowerState::Active, "step while powered down");
        debug_assert_eq!(
            code_base % u64::from(plan.line_bytes),
            0,
            "code base not line-aligned"
        );
        let penalty = u64::from(self.config.miss_penalty_cycles);
        let mut cycles = plan.n;
        if let Some(icache) = &mut self.icache {
            debug_assert_eq!(
                icache.config().line_bytes % plan.line_bytes,
                0,
                "plan line grouping incompatible with I-cache line size"
            );
            for &(off, extra) in plan.lines.iter() {
                if !icache.access(code_base + off) {
                    cycles += penalty;
                    self.breakdown
                        .charge(Component::Dram, self.config.table.main_memory);
                    self.mix.mem_accesses += 1;
                }
                icache.credit_hits(u64::from(extra));
            }
        }
        if let Some(dcache) = &mut self.dcache {
            for mem in plan.mems.iter() {
                let addr = match *mem {
                    SeqDataRef::None => continue,
                    SeqDataRef::Frame { offset, .. } => frame_base + offset,
                    SeqDataRef::Heap { .. } => match heap_addr {
                        Some(a) => a,
                        None => continue,
                    },
                };
                if !dcache.access(addr) {
                    cycles += penalty;
                    self.breakdown
                        .charge(Component::Dram, self.config.table.main_memory);
                    self.mix.mem_accesses += 1;
                }
            }
        }
        for e in plan.core.iter() {
            self.breakdown.charge(Component::Core, *e);
        }
        for &(class, n) in plan.classes.iter() {
            self.mix.record(class, n);
        }
        self.cycles += cycles;
    }

    /// Bulk-charge an instruction mix without cache simulation — used
    /// for work whose memory behaviour is summarized rather than
    /// traced (e.g. JIT compiler passes, serialization loops). Each
    /// recorded memory access is priced as a DRAM access plus the miss
    /// penalty.
    #[inline]
    pub fn charge_mix(&mut self, mix: &InstrMix) {
        debug_assert_eq!(self.state, PowerState::Active, "charge while powered down");
        for class in InstrClass::ALL {
            let n = mix.count(class);
            if n > 0 {
                self.breakdown
                    .charge(Component::Core, self.config.table.energy(class) * n as f64);
            }
        }
        if mix.mem_accesses > 0 {
            self.breakdown.charge(
                Component::Dram,
                self.config.table.main_memory * mix.mem_accesses as f64,
            );
        }
        self.mix += *mix;
        self.cycles += mix.total() + mix.mem_accesses * self.config.miss_penalty_cycles as u64;
    }

    /// Enter the power-down state for `duration`: wall time advances,
    /// and leakage (10 % of nominal power) is charged.
    pub fn power_down(&mut self, duration: SimTime) {
        self.state = PowerState::PowerDown;
        let leak = self.config.nominal_power * self.config.leak_fraction;
        self.breakdown
            .charge(Component::Leakage, leak.over(duration));
        self.extra_time += duration;
        self.state = PowerState::Active;
    }

    /// Busy-wait (active idle) for `duration`: wall time advances and
    /// the core burns nominal power — what happens when the client
    /// waits for the radio *without* powering down.
    pub fn active_idle(&mut self, duration: SimTime) {
        self.breakdown
            .charge(Component::Core, self.config.nominal_power.over(duration));
        self.extra_time += duration;
    }

    /// Charge radio energy onto this machine's ledger.
    pub fn charge_radio(&mut self, tx: Energy, rx: Energy) {
        self.breakdown.charge(Component::RadioTx, tx);
        self.breakdown.charge(Component::RadioRx, rx);
    }

    /// Cycles executed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total elapsed simulated time (execution + waits).
    pub fn elapsed(&self) -> SimTime {
        SimTime::from_cycles(self.cycles, self.config.clock_hz) + self.extra_time
    }

    /// The energy ledger.
    pub fn breakdown(&self) -> EnergyBreakdown {
        self.breakdown
    }

    /// Total energy so far.
    pub fn energy(&self) -> Energy {
        self.breakdown.total()
    }

    /// Executed instruction histogram.
    pub fn mix(&self) -> InstrMix {
        self.mix
    }

    /// I-cache statistics, if an I-cache is configured.
    pub fn icache_stats(&self) -> Option<CacheStats> {
        self.icache.as_ref().map(|c| c.stats())
    }

    /// D-cache statistics, if a D-cache is configured.
    pub fn dcache_stats(&self) -> Option<CacheStats> {
        self.dcache.as_ref().map(|c| c.stats())
    }

    /// Snapshot of (cycles, energy) — used to meter a sub-interval.
    pub fn checkpoint(&self) -> MachineCheckpoint {
        MachineCheckpoint {
            cycles: self.cycles,
            extra_time: self.extra_time,
            breakdown: self.breakdown,
        }
    }

    /// Energy and time consumed since `checkpoint`.
    pub fn since(&self, checkpoint: &MachineCheckpoint) -> (Energy, SimTime) {
        let energy = self.breakdown.total() - checkpoint.breakdown.total();
        let time = SimTime::from_cycles(self.cycles - checkpoint.cycles, self.config.clock_hz)
            + (self.extra_time - checkpoint.extra_time);
        (energy, time)
    }

    /// Snapshot the complete mutable state — counters, ledger, mix,
    /// power state and cache residency — for checkpointing. Restoring
    /// with [`Machine::import_state`] on a machine of the same
    /// configuration reproduces all subsequent accounting bit-exactly.
    pub fn export_state(&self) -> MachineState {
        MachineState {
            cycles: self.cycles,
            extra_time: self.extra_time,
            breakdown: self.breakdown,
            mix: self.mix,
            state: self.state,
            icache: self.icache.as_ref().map(CacheSim::export_state),
            dcache: self.dcache.as_ref().map(CacheSim::export_state),
        }
    }

    /// Restore state captured by [`Machine::export_state`].
    ///
    /// # Panics
    /// If the snapshot's cache presence or geometry does not match
    /// this machine's configuration.
    pub fn import_state(&mut self, state: &MachineState) {
        self.cycles = state.cycles;
        self.extra_time = state.extra_time;
        self.breakdown = state.breakdown;
        self.mix = state.mix;
        self.state = state.state;
        match (&mut self.icache, &state.icache) {
            (Some(sim), Some(s)) => sim.import_state(s),
            (None, None) => {}
            _ => panic!("machine state icache presence mismatch"),
        }
        match (&mut self.dcache, &state.dcache) {
            (Some(sim), Some(s)) => sim.import_state(s),
            (None, None) => {}
            _ => panic!("machine state dcache presence mismatch"),
        }
    }

    /// Reset energy/cycle accounting and caches (fresh run on the same
    /// configuration).
    pub fn reset(&mut self) {
        self.cycles = 0;
        self.extra_time = SimTime::ZERO;
        self.breakdown = EnergyBreakdown::new();
        self.mix = InstrMix::new();
        if let Some(c) = &mut self.icache {
            c.flush();
            c.reset_stats();
        }
        if let Some(c) = &mut self.dcache {
            c.flush();
            c.reset_stats();
        }
        self.state = PowerState::Active;
    }
}

/// Serializable snapshot of a [`Machine`]'s complete mutable state
/// (configuration excluded — it is static and re-derivable).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineState {
    /// Cycle counter.
    pub cycles: u64,
    /// Wall time spent outside normal execution.
    pub extra_time: SimTime,
    /// Energy ledger.
    pub breakdown: EnergyBreakdown,
    /// Executed instruction histogram.
    pub mix: InstrMix,
    /// Power state.
    pub state: PowerState,
    /// I-cache residency, if configured.
    pub icache: Option<CacheState>,
    /// D-cache residency, if configured.
    pub dcache: Option<CacheState>,
}

/// Opaque snapshot returned by [`Machine::checkpoint`].
#[derive(Debug, Clone, Copy)]
pub struct MachineCheckpoint {
    cycles: u64,
    extra_time: SimTime,
    breakdown: EnergyBreakdown,
}

/// Maximum number of distinct core-energy additions one plan can hold
/// (one lead instruction plus each nonzero class of each folded mix).
pub const CHARGE_PLAN_SLOTS: usize = 12;

/// A precompiled per-dispatch charge plan for [`Machine::step_planned`].
///
/// Captures, once, the machine work the interpreter performs for every
/// executed bytecode: the instruction fetch (an I-cache access at the
/// handler's address), the lead instruction's core energy, and the
/// core energies of one or more fixed [`InstrMix`]es (dispatch
/// overhead + per-op operand traffic). The core charges are stored as
/// the *individual* `energy(class) * count` products, in the exact
/// order `charge_mix` would issue them, so replaying a plan is
/// bit-identical to the unbatched call sequence — see
/// [`Machine::step_planned`].
///
/// Plans depend only on an [`EnergyTable`], so they can be built once
/// per machine configuration and reused for the whole run.
#[derive(Debug, Clone, Copy)]
pub struct ChargePlan {
    /// Simulated fetch address (drives the I-cache).
    fetch_pc: u64,
    /// Ordered core-energy additions.
    core: [Energy; CHARGE_PLAN_SLOTS],
    /// Number of valid entries in `core`.
    ncore: u8,
    /// Folded instruction-histogram delta (lead + all mixes), stored
    /// as nonzero `(class, count)` pairs so replay touches only the
    /// classes actually present.
    classes: [(InstrClass, u64); 6],
    /// Number of valid entries in `classes`.
    nclasses: u8,
    /// Folded cycle delta (miss penalties are added dynamically).
    cycles: u64,
}

impl ChargePlan {
    /// Compile a plan equivalent to `step(fetch_pc, lead, MemOp::None)`
    /// followed by `charge_mix(m)` for each mix in `mixes`, in order.
    ///
    /// # Panics
    /// If a mix records main-memory accesses (those need dynamic
    /// pricing, which a static plan cannot fold), or if the mixes need
    /// more than [`CHARGE_PLAN_SLOTS`] distinct core additions.
    pub fn compile(
        table: &EnergyTable,
        fetch_pc: u64,
        lead: InstrClass,
        mixes: &[InstrMix],
    ) -> Self {
        let mut core = [Energy::ZERO; CHARGE_PLAN_SLOTS];
        core[0] = table.energy(lead);
        let mut ncore = 1usize;
        let mut folded = InstrMix::new().with(lead, 1);
        let mut cycles = 1u64;
        for mix in mixes {
            assert_eq!(
                mix.mem_accesses, 0,
                "ChargePlan cannot fold mixes with main-memory accesses"
            );
            for class in InstrClass::ALL {
                let n = mix.count(class);
                if n > 0 {
                    assert!(ncore < CHARGE_PLAN_SLOTS, "ChargePlan overflow");
                    // The identical product `charge_mix` computes, so
                    // the replayed addition carries identical bits.
                    core[ncore] = table.energy(class) * n as f64;
                    ncore += 1;
                }
            }
            folded += *mix;
            cycles += mix.total();
        }
        let mut classes = [(InstrClass::Nop, 0u64); 6];
        let mut nclasses = 0usize;
        for class in InstrClass::ALL {
            let n = folded.count(class);
            if n > 0 {
                classes[nclasses] = (class, n);
                nclasses += 1;
            }
        }
        ChargePlan {
            fetch_pc,
            core,
            ncore: ncore as u8,
            classes,
            nclasses: nclasses as u8,
            cycles,
        }
    }

    /// The simulated fetch address this plan accesses.
    pub fn fetch_pc(&self) -> u64 {
        self.fetch_pc
    }
}

/// Several consecutive [`ChargePlan`]s merged into one batched replay
/// for [`Machine::step_charge_seq`] — the "superinstruction" charge
/// form: one call replays what would otherwise be several
/// `step_planned` dispatches.
///
/// Merging is purely structural: the fetch addresses are kept
/// individually (cache outcomes stay dynamic) and the core-energy
/// products are concatenated in plan order, so replay is bit-exact
/// with the unmerged sequence — see [`Machine::step_charge_seq`].
#[derive(Debug, Clone)]
pub struct ChargeSeq {
    /// Fetch addresses of the folded plans, in order.
    fetch_pcs: Box<[u64]>,
    /// Concatenated ordered core-energy additions.
    core: Box<[Energy]>,
    /// Folded instruction-histogram delta, as nonzero
    /// `(class, count)` pairs.
    classes: Box<[(InstrClass, u64)]>,
    /// Folded base cycles (miss penalties are added dynamically).
    cycles: u64,
}

impl ChargeSeq {
    /// Merge `plans` into one replay equivalent to
    /// `step_planned(plans[0]); step_planned(plans[1]); ...`.
    pub fn merge(plans: &[&ChargePlan]) -> Self {
        let fetch_pcs: Vec<u64> = plans.iter().map(|p| p.fetch_pc).collect();
        let mut core = Vec::new();
        let mut folded = InstrMix::new();
        let mut cycles = 0u64;
        for p in plans {
            core.extend_from_slice(&p.core[..p.ncore as usize]);
            for &(class, n) in &p.classes[..p.nclasses as usize] {
                folded.record(class, n);
            }
            cycles += p.cycles;
        }
        let classes: Vec<(InstrClass, u64)> = InstrClass::ALL
            .into_iter()
            .filter_map(|class| {
                let n = folded.count(class);
                (n > 0).then_some((class, n))
            })
            .collect();
        ChargeSeq {
            fetch_pcs: fetch_pcs.into_boxed_slice(),
            core: core.into_boxed_slice(),
            classes: classes.into_boxed_slice(),
            cycles,
        }
    }

    /// Number of folded dispatches (= step-budget increments the
    /// caller owes when replaying this merged plan).
    #[inline]
    pub fn steps(&self) -> u64 {
        self.fetch_pcs.len() as u64
    }
}

/// Data access performed by one micro-instruction of a [`SeqPlan`].
///
/// Addresses are split into a static part (captured at compile time)
/// and a dynamic part (supplied to [`Machine::step_seq`] per replay),
/// mirroring how JIT-emitted code addresses its spill frame and heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqDataRef {
    /// No data access.
    None,
    /// Spill-frame access at `frame_base + offset`.
    Frame {
        /// Write (store) rather than read.
        store: bool,
        /// Byte offset from the frame base supplied at replay time.
        offset: u64,
    },
    /// Heap access at the address supplied at replay time.
    Heap {
        /// Write (store) rather than read.
        store: bool,
    },
}

/// A precompiled batched charge plan for one straight-line sequence of
/// emitted micro-instructions, replayed by [`Machine::step_seq`].
///
/// Compiled once per (sequence, energy table, I-cache geometry) — in
/// practice when native code is installed into a VM — and replayed on
/// every execution of the sequence. The plan pre-resolves everything
/// static about the accounting (line grouping of the consecutive
/// fetches, per-micro core-energy products, folded instruction
/// histogram and base cycles) while keeping everything dynamic (cache
/// hit/miss outcomes, data addresses) live. Replay is bit-exact with
/// the equivalent per-micro [`Machine::step`] loop — see
/// [`Machine::step_seq`] for the argument.
#[derive(Debug, Clone)]
pub struct SeqPlan {
    /// One entry per I-cache line the sequence's fetches touch, in
    /// first-touch order: byte offset (from the line-aligned code
    /// base) of the line's first fetch, plus the number of guaranteed
    /// follow-on hits to that line.
    lines: Box<[(u64, u32)]>,
    /// Ordered per-micro core-energy additions.
    core: Box<[Energy]>,
    /// Data-bearing micros, in issue order.
    mems: Box<[SeqDataRef]>,
    /// Folded instruction histogram of the whole sequence, as nonzero
    /// `(class, count)` pairs.
    classes: Box<[(InstrClass, u64)]>,
    /// Micro count (= base cycles).
    n: u64,
    /// Whether any [`SeqDataRef::Heap`] entry exists.
    has_heap: bool,
    /// I-cache line size the line grouping assumes.
    line_bytes: u32,
}

impl SeqPlan {
    /// Compile a plan equivalent to, for each `(class, mem)` micro at
    /// index `i`,
    /// `step(code_base + start_byte + i * instr_bytes, class, mem)`,
    /// assuming `code_base` will be aligned to `line_bytes`.
    ///
    /// `line_bytes` is the grouping granule: any power of two that
    /// divides the target I-cache's actual line size is sound (two
    /// fetches within one granule are then always within one cache
    /// line), so callers unsure of the exact geometry can group
    /// conservatively, e.g. at `actual_line_bytes.min(32)` when code
    /// bases are 32-byte aligned.
    ///
    /// # Panics
    /// If `line_bytes` is not a power of two or `instr_bytes` is zero.
    pub fn compile(
        table: &EnergyTable,
        start_byte: u64,
        instr_bytes: u64,
        line_bytes: u32,
        micros: &[(InstrClass, SeqDataRef)],
    ) -> Self {
        assert!(instr_bytes > 0, "zero-size instructions");
        let offs: Vec<(u64, InstrClass, SeqDataRef)> = micros
            .iter()
            .enumerate()
            .map(|(i, &(class, mem))| (start_byte + i as u64 * instr_bytes, class, mem))
            .collect();
        Self::compile_at(table, line_bytes, &offs)
    }

    /// Compile a plan equivalent to, for each `(off, class, mem)` micro,
    /// `step(code_base + off, class, mem)` in slice order, assuming
    /// `code_base` will be aligned to `line_bytes`.
    ///
    /// Unlike [`SeqPlan::compile`] the fetch offsets are explicit, so a
    /// caller can merge several consecutive emitted sequences (e.g. a
    /// straight-line run of JIT'd instructions) into one plan. Offsets
    /// need not be contiguous or even monotonic: only *consecutive*
    /// same-line fetches are grouped into guaranteed hits, which is
    /// sound regardless of the overall offset pattern.
    ///
    /// # Panics
    /// If `line_bytes` is not a power of two.
    pub fn compile_at(
        table: &EnergyTable,
        line_bytes: u32,
        micros: &[(u64, InstrClass, SeqDataRef)],
    ) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let lb = u64::from(line_bytes);
        let mut lines: Vec<(u64, u32)> = Vec::new();
        let mut core = Vec::with_capacity(micros.len());
        let mut mems = Vec::new();
        let mut mix = InstrMix::new();
        let mut has_heap = false;
        for &(off, class, mem) in micros {
            match lines.last_mut() {
                Some(&mut (first, ref mut extra)) if off / lb == first / lb => *extra += 1,
                _ => lines.push((off, 0)),
            }
            core.push(table.energy(class));
            mix.record(class, 1);
            match mem {
                SeqDataRef::None => {}
                SeqDataRef::Frame { .. } => mems.push(mem),
                SeqDataRef::Heap { .. } => {
                    has_heap = true;
                    mems.push(mem);
                }
            }
        }
        let classes: Vec<(InstrClass, u64)> = InstrClass::ALL
            .into_iter()
            .filter_map(|class| {
                let n = mix.count(class);
                (n > 0).then_some((class, n))
            })
            .collect();
        SeqPlan {
            lines: lines.into_boxed_slice(),
            core: core.into_boxed_slice(),
            mems: mems.into_boxed_slice(),
            classes: classes.into_boxed_slice(),
            n: micros.len() as u64,
            has_heap,
            line_bytes,
        }
    }

    /// Number of micro-instructions the plan replays.
    #[inline]
    pub fn len(&self) -> u64 {
        self.n
    }

    /// True when the plan replays no micros at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// True when replay needs a resolved heap address (the sequence
    /// contains a heap-touching micro).
    #[inline]
    pub fn wants_heap_addr(&self) -> bool {
        self.has_heap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client() -> Machine {
        Machine::new(MachineConfig::mobile_client())
    }

    #[test]
    fn single_alu_instruction() {
        let mut m = client();
        m.step(0, InstrClass::AluSimple, MemOp::None);
        // First fetch misses the I-cache: 1 + 10 cycles, core energy
        // 2.846 nJ + one DRAM access 4.94 nJ.
        assert_eq!(m.cycles(), 11);
        assert!((m.breakdown()[Component::Core].nanojoules() - 2.846).abs() < 1e-9);
        assert!((m.breakdown()[Component::Dram].nanojoules() - 4.94).abs() < 1e-9);
    }

    #[test]
    fn hot_loop_hits_caches() {
        let mut m = client();
        // Re-execute the same instruction; after the first fetch the
        // line is resident, so each iteration is one cycle.
        m.step(0, InstrClass::AluSimple, MemOp::None);
        let c0 = m.cycles();
        for _ in 0..100 {
            m.step(0, InstrClass::AluSimple, MemOp::None);
        }
        assert_eq!(m.cycles() - c0, 100);
    }

    #[test]
    fn load_with_dcache_miss_and_hit() {
        let mut m = client();
        m.step(0, InstrClass::Load, MemOp::Read(0x8000));
        // icache miss + dcache miss: 1 + 10 + 10.
        assert_eq!(m.cycles(), 21);
        m.step(0, InstrClass::Load, MemOp::Read(0x8004));
        // Both hit now.
        assert_eq!(m.cycles(), 22);
        assert_eq!(m.mix().count(InstrClass::Load), 2);
    }

    #[test]
    fn charge_mix_bulk() {
        let mut m = client();
        let mix = InstrMix::new()
            .with(InstrClass::AluSimple, 10)
            .with(InstrClass::Load, 5)
            .with_mem(2);
        m.charge_mix(&mix);
        assert_eq!(m.cycles(), 15 + 2 * 10);
        let expect = 10.0 * 2.846 + 5.0 * 4.814 + 2.0 * 4.94;
        assert!((m.energy().nanojoules() - expect).abs() < 1e-9);
    }

    #[test]
    fn step_planned_is_bit_exact_with_unbatched_sequence() {
        // A plan replay must leave the machine in *bit-identical*
        // state to the step + charge_mix sequence it compiles.
        let dispatch = InstrMix::new()
            .with(InstrClass::Load, 1)
            .with(InstrClass::AluSimple, 2);
        let work = InstrMix::new()
            .with(InstrClass::Load, 3)
            .with(InstrClass::AluSimple, 1)
            .with(InstrClass::Branch, 1);
        let mut slow = client();
        let mut fast = client();
        let plan = ChargePlan::compile(
            &fast.config().table.clone(),
            0x1000_0080,
            InstrClass::Branch,
            &[dispatch, work],
        );
        for rep in 0..1000 {
            // Interleave other traffic so the accumulators hold
            // "ugly" partial sums, not round numbers.
            slow.step(0x9000 + rep * 64, InstrClass::Load, MemOp::Read(rep * 8));
            fast.step(0x9000 + rep * 64, InstrClass::Load, MemOp::Read(rep * 8));
            slow.step(0x1000_0080, InstrClass::Branch, MemOp::None);
            slow.charge_mix(&dispatch);
            slow.charge_mix(&work);
            fast.step_planned(&plan);
            assert_eq!(slow.breakdown(), fast.breakdown(), "rep {rep}");
        }
        assert_eq!(slow.cycles(), fast.cycles());
        assert_eq!(slow.mix(), fast.mix());
        assert_eq!(slow.icache_stats(), fast.icache_stats());
        assert_eq!(slow.dcache_stats(), fast.dcache_stats());
        assert_eq!(
            slow.energy().nanojoules().to_bits(),
            fast.energy().nanojoules().to_bits()
        );
    }

    #[test]
    fn step_charge_seq_is_bit_exact_with_per_plan_replay() {
        // A merged ChargeSeq must leave the machine bit-identical to
        // replaying its component plans one at a time.
        let table = EnergyTable::microsparc_iiep();
        let mixes = [
            InstrMix::new()
                .with(InstrClass::Load, 1)
                .with(InstrClass::AluSimple, 2),
            InstrMix::new().with(InstrClass::AluSimple, 1),
            InstrMix::new()
                .with(InstrClass::Load, 2)
                .with(InstrClass::Branch, 1)
                .with(InstrClass::AluComplex, 1),
        ];
        let plans: Vec<ChargePlan> = (0..3)
            .map(|i| {
                ChargePlan::compile(
                    &table,
                    0x1000_0000 + i * 0x40,
                    InstrClass::Branch,
                    &mixes[..=i as usize],
                )
            })
            .collect();
        let seq = ChargeSeq::merge(&plans.iter().collect::<Vec<_>>());
        assert_eq!(seq.steps(), 3);
        let mut slow = client();
        let mut fast = client();
        for rep in 0..1000u64 {
            // Interleave other traffic so accumulators hold ugly
            // partial sums and the fetched lines get evicted.
            slow.step(rep * 8192, InstrClass::Load, MemOp::Read(rep * 16));
            fast.step(rep * 8192, InstrClass::Load, MemOp::Read(rep * 16));
            for p in &plans {
                slow.step_planned(p);
            }
            fast.step_charge_seq(&seq);
            assert_eq!(slow.breakdown(), fast.breakdown(), "rep {rep}");
        }
        assert_eq!(slow.export_state(), fast.export_state());
        assert_eq!(
            slow.energy().nanojoules().to_bits(),
            fast.energy().nanojoules().to_bits()
        );
    }

    #[test]
    fn step_seq_is_bit_exact_with_per_micro_steps() {
        // Replaying a SeqPlan must leave the machine bit-identical to
        // the per-micro step loop it compiles: same energy bits, same
        // cycles, mixes, and cache counters/residency.
        use InstrClass::*;
        let seqs: Vec<(u64, Vec<(InstrClass, SeqDataRef)>)> = vec![
            // Unaligned start, crosses a 32-byte line boundary.
            (
                20,
                vec![
                    (Load, SeqDataRef::None),
                    (
                        AluSimple,
                        SeqDataRef::Frame {
                            store: false,
                            offset: 8,
                        },
                    ),
                    (
                        Store,
                        SeqDataRef::Frame {
                            store: true,
                            offset: 16,
                        },
                    ),
                    (Load, SeqDataRef::Heap { store: false }),
                    (Branch, SeqDataRef::None),
                ],
            ),
            // Empty sequence.
            (0, vec![]),
            // Long sequence spanning many lines.
            (
                64,
                (0..40)
                    .map(|i| {
                        (
                            if i % 3 == 0 { AluComplex } else { Nop },
                            if i % 7 == 0 {
                                SeqDataRef::Heap { store: i % 2 == 0 }
                            } else {
                                SeqDataRef::None
                            },
                        )
                    })
                    .collect(),
            ),
        ];
        let mut slow = client();
        let mut fast = client();
        let table = slow.config().table.clone();
        let plans: Vec<SeqPlan> = seqs
            .iter()
            .map(|(start, micros)| SeqPlan::compile(&table, *start, 4, 32, micros))
            .collect();
        let code_base = 0x3000_0040;
        let frame_base = 0x5000_2000;
        for rep in 0..500u64 {
            // Interleave unrelated traffic so accumulators hold ugly
            // partial sums and cache residency churns.
            slow.step(rep * 96, Load, MemOp::Read(rep * 40));
            fast.step(rep * 96, Load, MemOp::Read(rep * 40));
            for ((start, micros), plan) in seqs.iter().zip(&plans) {
                let heap_addr = if rep % 5 == 4 {
                    None
                } else {
                    Some(0x8000 + rep * 24)
                };
                let mut pc = code_base + start;
                for &(class, mem) in micros {
                    let op = match mem {
                        SeqDataRef::None => MemOp::None,
                        SeqDataRef::Frame { store, offset } => {
                            let a = frame_base + offset;
                            if store {
                                MemOp::Write(a)
                            } else {
                                MemOp::Read(a)
                            }
                        }
                        SeqDataRef::Heap { store } => match heap_addr {
                            Some(a) if store => MemOp::Write(a),
                            Some(a) => MemOp::Read(a),
                            None => MemOp::None,
                        },
                    };
                    slow.step(pc, class, op);
                    pc += 4;
                }
                fast.step_seq(plan, code_base, frame_base, heap_addr);
                assert_eq!(slow.breakdown(), fast.breakdown(), "rep {rep}");
            }
        }
        assert_eq!(slow.cycles(), fast.cycles());
        assert_eq!(slow.mix(), fast.mix());
        assert_eq!(slow.icache_stats(), fast.icache_stats());
        assert_eq!(slow.dcache_stats(), fast.dcache_stats());
        assert_eq!(slow.export_state(), fast.export_state());
        assert_eq!(
            slow.energy().nanojoules().to_bits(),
            fast.energy().nanojoules().to_bits()
        );
    }

    #[test]
    fn power_down_burns_only_leakage() {
        let mut m = client();
        m.power_down(SimTime::from_millis(10.0));
        // 10 % of 350 mW for 10 ms = 350 uJ.
        let leak = m.breakdown()[Component::Leakage];
        assert!((leak.microjoules() - 350.0).abs() < 1e-6);
        assert_eq!(m.breakdown()[Component::Core], Energy::ZERO);
        assert!((m.elapsed().millis() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn power_down_is_cheaper_than_active_idle() {
        let mut a = client();
        let mut b = client();
        let t = SimTime::from_millis(5.0);
        a.power_down(t);
        b.active_idle(t);
        assert!(a.energy() < b.energy());
        assert!((b.energy().ratio(a.energy()) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn elapsed_combines_cycles_and_waits() {
        let mut m = client();
        m.charge_mix(&InstrMix::new().with(InstrClass::Nop, 100));
        m.power_down(SimTime::from_micros(1.0));
        // 100 cycles at 100 MHz = 1 us, plus 1 us wait.
        assert!((m.elapsed().micros() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn checkpoint_delta() {
        let mut m = client();
        m.charge_mix(&InstrMix::new().with(InstrClass::Nop, 10));
        let cp = m.checkpoint();
        m.charge_mix(&InstrMix::new().with(InstrClass::Nop, 5));
        let (e, t) = m.since(&cp);
        assert!((e.nanojoules() - 5.0 * 2.644).abs() < 1e-9);
        assert!((t.nanos() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn server_is_faster() {
        let client_cfg = MachineConfig::mobile_client();
        let server_cfg = MachineConfig::sparc_server();
        assert!(server_cfg.clock_hz > 7.0 * client_cfg.clock_hz);
        assert!(server_cfg.cycle_time() < client_cfg.cycle_time());
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = client();
        m.step(0, InstrClass::Load, MemOp::Read(0));
        m.power_down(SimTime::from_millis(1.0));
        m.reset();
        assert_eq!(m.cycles(), 0);
        assert_eq!(m.energy(), Energy::ZERO);
        assert_eq!(m.elapsed(), SimTime::ZERO);
        assert_eq!(m.mix().total(), 0);
    }

    #[test]
    fn radio_charges_land_in_radio_components() {
        let mut m = client();
        m.charge_radio(Energy::from_microjoules(3.0), Energy::from_microjoules(1.0));
        assert!((m.breakdown().communication().microjoules() - 4.0).abs() < 1e-9);
        assert_eq!(m.breakdown().computation(), Energy::ZERO);
    }
}

//! The simulated execution machine: prices instruction events and
//! tracks time.
//!
//! A [`Machine`] is the meeting point between the MJVM (which produces
//! abstract instruction events while interpreting bytecode or running
//! JIT-generated native code) and the energy model. It simulates
//! instruction fetch through the I-cache, data accesses through the
//! D-cache, charges Fig 1 energies to an [`EnergyBreakdown`], and
//! counts cycles.
//!
//! Two machines exist in every experiment:
//!
//! * the **client**: a 100 MHz microSPARC-IIep-like core with 16 KB
//!   I-cache / 8 KB D-cache, whose energy we care about, and
//! * the **server**: a 750 MHz SPARC workstation with larger caches.
//!   Its energy is free (the paper optimizes *client* energy) but its
//!   cycle count determines how long the client stays powered down.
//!
//! During remote execution the paper places "the processor, memory and
//! the receiver into a power-down state" in which the processor still
//! burns leakage, "assumed to be 10 % of the normal power consumption".
//! [`Machine::power_down`] implements exactly that.

use crate::cache::{CacheConfig, CacheSim, CacheState, CacheStats};
use crate::itable::{EnergyTable, InstrClass, InstrMix};
use crate::meter::{Component, EnergyBreakdown};
use crate::units::{Energy, Power, SimTime};
use serde::{Deserialize, Serialize};

/// Data-memory behaviour of one instruction event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// No data access.
    None,
    /// Data read from the given simulated byte address.
    Read(u64),
    /// Data write to the given simulated byte address.
    Write(u64),
}

/// CPU power state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PowerState {
    /// Executing normally.
    Active,
    /// Powered down (remote execution in flight); only leakage burns.
    PowerDown,
}

/// Static configuration of a simulated machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Per-instruction energy table (Fig 1).
    pub table: EnergyTable,
    /// Instruction cache geometry (`None` disables fetch simulation).
    pub icache: Option<CacheConfig>,
    /// Data cache geometry (`None` disables data-access simulation).
    pub dcache: Option<CacheConfig>,
    /// Pipeline stall cycles per cache miss (DRAM latency).
    pub miss_penalty_cycles: u32,
    /// Nominal active power of core + memory, used to price leakage
    /// during power-down.
    pub nominal_power: Power,
    /// Fraction of nominal power burned while powered down (the paper
    /// assumes 0.10).
    pub leak_fraction: f64,
}

impl MachineConfig {
    /// The paper's mobile client: 100 MHz microSPARC-IIep, 16 KB
    /// I-cache, 8 KB D-cache, 32 MB off-chip DRAM.
    ///
    /// The nominal active power follows from the energy table itself:
    /// ~3.5 nJ/instruction at 100 MIPS is ~350 mW, consistent with the
    /// low-power embedded cores of the period.
    pub fn mobile_client() -> Self {
        MachineConfig {
            clock_hz: 100e6,
            table: EnergyTable::microsparc_iiep(),
            icache: Some(CacheConfig::client_icache()),
            dcache: Some(CacheConfig::client_dcache()),
            miss_penalty_cycles: 10,
            nominal_power: Power::from_milliwatts(350.0),
            leak_fraction: 0.10,
        }
    }

    /// The paper's remote server: a 750 MHz SPARC workstation. Caches
    /// are larger and the miss penalty (in cycles) higher, as on real
    /// workstation-class parts. Its energy ledger is maintained but
    /// never charged to the client.
    pub fn sparc_server() -> Self {
        MachineConfig {
            clock_hz: 750e6,
            table: EnergyTable::microsparc_iiep(),
            icache: Some(CacheConfig {
                size_bytes: 64 * 1024,
                line_bytes: 32,
            }),
            dcache: Some(CacheConfig {
                size_bytes: 64 * 1024,
                line_bytes: 32,
            }),
            miss_penalty_cycles: 40,
            nominal_power: Power::from_watts(25.0),
            leak_fraction: 0.10,
        }
    }

    /// Duration of one clock cycle.
    pub fn cycle_time(&self) -> SimTime {
        SimTime::from_nanos(1e9 / self.clock_hz)
    }
}

/// A running machine instance.
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
    icache: Option<CacheSim>,
    dcache: Option<CacheSim>,
    cycles: u64,
    /// Wall time spent outside normal execution (power-down waits).
    extra_time: SimTime,
    breakdown: EnergyBreakdown,
    mix: InstrMix,
    state: PowerState,
}

impl Machine {
    /// Build a machine in the [`PowerState::Active`] state.
    pub fn new(config: MachineConfig) -> Self {
        Machine {
            icache: config.icache.map(CacheSim::new),
            dcache: config.dcache.map(CacheSim::new),
            cycles: 0,
            extra_time: SimTime::ZERO,
            breakdown: EnergyBreakdown::new(),
            mix: InstrMix::new(),
            state: PowerState::Active,
            config,
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Current power state.
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// Execute one instruction event.
    ///
    /// `pc` is the simulated byte address the instruction was fetched
    /// from (drives the I-cache); `mem` describes its data access
    /// (drives the D-cache). Charges core energy per Fig 1 and DRAM
    /// energy per miss, and advances the cycle counter (1 cycle base +
    /// miss penalties).
    ///
    /// # Panics
    /// In debug builds, if called while powered down — the caller must
    /// wake the machine first.
    #[inline]
    pub fn step(&mut self, pc: u64, class: InstrClass, mem: MemOp) {
        debug_assert_eq!(self.state, PowerState::Active, "step while powered down");
        let mut cycles: u64 = 1;
        if let Some(icache) = &mut self.icache {
            if !icache.access(pc) {
                cycles += self.config.miss_penalty_cycles as u64;
                self.breakdown
                    .charge(Component::Dram, self.config.table.main_memory);
                self.mix.mem_accesses += 1;
            }
        }
        match mem {
            MemOp::None => {}
            MemOp::Read(addr) | MemOp::Write(addr) => {
                if let Some(dcache) = &mut self.dcache {
                    if !dcache.access(addr) {
                        cycles += self.config.miss_penalty_cycles as u64;
                        self.breakdown
                            .charge(Component::Dram, self.config.table.main_memory);
                        self.mix.mem_accesses += 1;
                    }
                }
            }
        }
        self.breakdown
            .charge(Component::Core, self.config.table.energy(class));
        self.mix.record(class, 1);
        self.cycles += cycles;
    }

    /// Bulk-charge an instruction mix without cache simulation — used
    /// for work whose memory behaviour is summarized rather than
    /// traced (e.g. JIT compiler passes, serialization loops). Each
    /// recorded memory access is priced as a DRAM access plus the miss
    /// penalty.
    pub fn charge_mix(&mut self, mix: &InstrMix) {
        debug_assert_eq!(self.state, PowerState::Active, "charge while powered down");
        for class in InstrClass::ALL {
            let n = mix.count(class);
            if n > 0 {
                self.breakdown
                    .charge(Component::Core, self.config.table.energy(class) * n as f64);
            }
        }
        if mix.mem_accesses > 0 {
            self.breakdown.charge(
                Component::Dram,
                self.config.table.main_memory * mix.mem_accesses as f64,
            );
        }
        self.mix += *mix;
        self.cycles += mix.total() + mix.mem_accesses * self.config.miss_penalty_cycles as u64;
    }

    /// Enter the power-down state for `duration`: wall time advances,
    /// and leakage (10 % of nominal power) is charged.
    pub fn power_down(&mut self, duration: SimTime) {
        self.state = PowerState::PowerDown;
        let leak = self.config.nominal_power * self.config.leak_fraction;
        self.breakdown
            .charge(Component::Leakage, leak.over(duration));
        self.extra_time += duration;
        self.state = PowerState::Active;
    }

    /// Busy-wait (active idle) for `duration`: wall time advances and
    /// the core burns nominal power — what happens when the client
    /// waits for the radio *without* powering down.
    pub fn active_idle(&mut self, duration: SimTime) {
        self.breakdown
            .charge(Component::Core, self.config.nominal_power.over(duration));
        self.extra_time += duration;
    }

    /// Charge radio energy onto this machine's ledger.
    pub fn charge_radio(&mut self, tx: Energy, rx: Energy) {
        self.breakdown.charge(Component::RadioTx, tx);
        self.breakdown.charge(Component::RadioRx, rx);
    }

    /// Cycles executed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total elapsed simulated time (execution + waits).
    pub fn elapsed(&self) -> SimTime {
        SimTime::from_cycles(self.cycles, self.config.clock_hz) + self.extra_time
    }

    /// The energy ledger.
    pub fn breakdown(&self) -> EnergyBreakdown {
        self.breakdown
    }

    /// Total energy so far.
    pub fn energy(&self) -> Energy {
        self.breakdown.total()
    }

    /// Executed instruction histogram.
    pub fn mix(&self) -> InstrMix {
        self.mix
    }

    /// I-cache statistics, if an I-cache is configured.
    pub fn icache_stats(&self) -> Option<CacheStats> {
        self.icache.as_ref().map(|c| c.stats())
    }

    /// D-cache statistics, if a D-cache is configured.
    pub fn dcache_stats(&self) -> Option<CacheStats> {
        self.dcache.as_ref().map(|c| c.stats())
    }

    /// Snapshot of (cycles, energy) — used to meter a sub-interval.
    pub fn checkpoint(&self) -> MachineCheckpoint {
        MachineCheckpoint {
            cycles: self.cycles,
            extra_time: self.extra_time,
            breakdown: self.breakdown,
        }
    }

    /// Energy and time consumed since `checkpoint`.
    pub fn since(&self, checkpoint: &MachineCheckpoint) -> (Energy, SimTime) {
        let energy = self.breakdown.total() - checkpoint.breakdown.total();
        let time = SimTime::from_cycles(self.cycles - checkpoint.cycles, self.config.clock_hz)
            + (self.extra_time - checkpoint.extra_time);
        (energy, time)
    }

    /// Snapshot the complete mutable state — counters, ledger, mix,
    /// power state and cache residency — for checkpointing. Restoring
    /// with [`Machine::import_state`] on a machine of the same
    /// configuration reproduces all subsequent accounting bit-exactly.
    pub fn export_state(&self) -> MachineState {
        MachineState {
            cycles: self.cycles,
            extra_time: self.extra_time,
            breakdown: self.breakdown,
            mix: self.mix,
            state: self.state,
            icache: self.icache.as_ref().map(CacheSim::export_state),
            dcache: self.dcache.as_ref().map(CacheSim::export_state),
        }
    }

    /// Restore state captured by [`Machine::export_state`].
    ///
    /// # Panics
    /// If the snapshot's cache presence or geometry does not match
    /// this machine's configuration.
    pub fn import_state(&mut self, state: &MachineState) {
        self.cycles = state.cycles;
        self.extra_time = state.extra_time;
        self.breakdown = state.breakdown;
        self.mix = state.mix;
        self.state = state.state;
        match (&mut self.icache, &state.icache) {
            (Some(sim), Some(s)) => sim.import_state(s),
            (None, None) => {}
            _ => panic!("machine state icache presence mismatch"),
        }
        match (&mut self.dcache, &state.dcache) {
            (Some(sim), Some(s)) => sim.import_state(s),
            (None, None) => {}
            _ => panic!("machine state dcache presence mismatch"),
        }
    }

    /// Reset energy/cycle accounting and caches (fresh run on the same
    /// configuration).
    pub fn reset(&mut self) {
        self.cycles = 0;
        self.extra_time = SimTime::ZERO;
        self.breakdown = EnergyBreakdown::new();
        self.mix = InstrMix::new();
        if let Some(c) = &mut self.icache {
            c.flush();
            c.reset_stats();
        }
        if let Some(c) = &mut self.dcache {
            c.flush();
            c.reset_stats();
        }
        self.state = PowerState::Active;
    }
}

/// Serializable snapshot of a [`Machine`]'s complete mutable state
/// (configuration excluded — it is static and re-derivable).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineState {
    /// Cycle counter.
    pub cycles: u64,
    /// Wall time spent outside normal execution.
    pub extra_time: SimTime,
    /// Energy ledger.
    pub breakdown: EnergyBreakdown,
    /// Executed instruction histogram.
    pub mix: InstrMix,
    /// Power state.
    pub state: PowerState,
    /// I-cache residency, if configured.
    pub icache: Option<CacheState>,
    /// D-cache residency, if configured.
    pub dcache: Option<CacheState>,
}

/// Opaque snapshot returned by [`Machine::checkpoint`].
#[derive(Debug, Clone, Copy)]
pub struct MachineCheckpoint {
    cycles: u64,
    extra_time: SimTime,
    breakdown: EnergyBreakdown,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client() -> Machine {
        Machine::new(MachineConfig::mobile_client())
    }

    #[test]
    fn single_alu_instruction() {
        let mut m = client();
        m.step(0, InstrClass::AluSimple, MemOp::None);
        // First fetch misses the I-cache: 1 + 10 cycles, core energy
        // 2.846 nJ + one DRAM access 4.94 nJ.
        assert_eq!(m.cycles(), 11);
        assert!((m.breakdown()[Component::Core].nanojoules() - 2.846).abs() < 1e-9);
        assert!((m.breakdown()[Component::Dram].nanojoules() - 4.94).abs() < 1e-9);
    }

    #[test]
    fn hot_loop_hits_caches() {
        let mut m = client();
        // Re-execute the same instruction; after the first fetch the
        // line is resident, so each iteration is one cycle.
        m.step(0, InstrClass::AluSimple, MemOp::None);
        let c0 = m.cycles();
        for _ in 0..100 {
            m.step(0, InstrClass::AluSimple, MemOp::None);
        }
        assert_eq!(m.cycles() - c0, 100);
    }

    #[test]
    fn load_with_dcache_miss_and_hit() {
        let mut m = client();
        m.step(0, InstrClass::Load, MemOp::Read(0x8000));
        // icache miss + dcache miss: 1 + 10 + 10.
        assert_eq!(m.cycles(), 21);
        m.step(0, InstrClass::Load, MemOp::Read(0x8004));
        // Both hit now.
        assert_eq!(m.cycles(), 22);
        assert_eq!(m.mix().count(InstrClass::Load), 2);
    }

    #[test]
    fn charge_mix_bulk() {
        let mut m = client();
        let mix = InstrMix::new()
            .with(InstrClass::AluSimple, 10)
            .with(InstrClass::Load, 5)
            .with_mem(2);
        m.charge_mix(&mix);
        assert_eq!(m.cycles(), 15 + 2 * 10);
        let expect = 10.0 * 2.846 + 5.0 * 4.814 + 2.0 * 4.94;
        assert!((m.energy().nanojoules() - expect).abs() < 1e-9);
    }

    #[test]
    fn power_down_burns_only_leakage() {
        let mut m = client();
        m.power_down(SimTime::from_millis(10.0));
        // 10 % of 350 mW for 10 ms = 350 uJ.
        let leak = m.breakdown()[Component::Leakage];
        assert!((leak.microjoules() - 350.0).abs() < 1e-6);
        assert_eq!(m.breakdown()[Component::Core], Energy::ZERO);
        assert!((m.elapsed().millis() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn power_down_is_cheaper_than_active_idle() {
        let mut a = client();
        let mut b = client();
        let t = SimTime::from_millis(5.0);
        a.power_down(t);
        b.active_idle(t);
        assert!(a.energy() < b.energy());
        assert!((b.energy().ratio(a.energy()) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn elapsed_combines_cycles_and_waits() {
        let mut m = client();
        m.charge_mix(&InstrMix::new().with(InstrClass::Nop, 100));
        m.power_down(SimTime::from_micros(1.0));
        // 100 cycles at 100 MHz = 1 us, plus 1 us wait.
        assert!((m.elapsed().micros() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn checkpoint_delta() {
        let mut m = client();
        m.charge_mix(&InstrMix::new().with(InstrClass::Nop, 10));
        let cp = m.checkpoint();
        m.charge_mix(&InstrMix::new().with(InstrClass::Nop, 5));
        let (e, t) = m.since(&cp);
        assert!((e.nanojoules() - 5.0 * 2.644).abs() < 1e-9);
        assert!((t.nanos() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn server_is_faster() {
        let client_cfg = MachineConfig::mobile_client();
        let server_cfg = MachineConfig::sparc_server();
        assert!(server_cfg.clock_hz > 7.0 * client_cfg.clock_hz);
        assert!(server_cfg.cycle_time() < client_cfg.cycle_time());
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = client();
        m.step(0, InstrClass::Load, MemOp::Read(0));
        m.power_down(SimTime::from_millis(1.0));
        m.reset();
        assert_eq!(m.cycles(), 0);
        assert_eq!(m.energy(), Energy::ZERO);
        assert_eq!(m.elapsed(), SimTime::ZERO);
        assert_eq!(m.mix().total(), 0);
    }

    #[test]
    fn radio_charges_land_in_radio_components() {
        let mut m = client();
        m.charge_radio(Energy::from_microjoules(3.0), Energy::from_microjoules(1.0));
        assert!((m.breakdown().communication().microjoules() - 4.0).abs() < 1e-9);
        assert_eq!(m.breakdown().computation(), Energy::ZERO);
    }
}

//! Per-component energy breakdown reports.
//!
//! The paper's simulator "tracks the energy consumptions in the
//! processor core (datapath), on-chip caches, off-chip DRAM module and
//! the wireless communication components". [`EnergyBreakdown`] is the
//! ledger all of those charges land in; every experiment harness
//! ultimately reports one of these (or a normalized view of it).

use crate::units::Energy;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Sub, SubAssign};

/// The energy-consuming components of the mobile client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Component {
    /// Processor datapath (per-instruction base energies, Fig 1).
    Core,
    /// Off-chip DRAM accesses (cache misses).
    Dram,
    /// Leakage burned while in the power-down state (10 % of nominal).
    Leakage,
    /// Radio transmit chain (DAC, modulator, driver amp, PA, VCO).
    RadioTx,
    /// Radio receive chain (mixer, demodulator, ADC, VCO).
    RadioRx,
}

impl Component {
    /// All components, in report order.
    pub const ALL: [Component; 5] = [
        Component::Core,
        Component::Dram,
        Component::Leakage,
        Component::RadioTx,
        Component::RadioRx,
    ];

    /// Stable index for array-backed storage.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Component::Core => 0,
            Component::Dram => 1,
            Component::Leakage => 2,
            Component::RadioTx => 3,
            Component::RadioRx => 4,
        }
    }

    /// Display name.
    pub const fn name(self) -> &'static str {
        match self {
            Component::Core => "core",
            Component::Dram => "dram",
            Component::Leakage => "leakage",
            Component::RadioTx => "radio-tx",
            Component::RadioRx => "radio-rx",
        }
    }
}

/// Energy charged to each [`Component`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    slots: [Energy; 5],
}

impl EnergyBreakdown {
    /// An all-zero ledger.
    pub const fn new() -> Self {
        EnergyBreakdown {
            slots: [Energy::ZERO; 5],
        }
    }

    /// Charge `amount` to `component`.
    #[inline]
    pub fn charge(&mut self, component: Component, amount: Energy) {
        self.slots[component.index()] += amount;
    }

    /// Total energy across all components.
    pub fn total(&self) -> Energy {
        self.slots.iter().copied().sum()
    }

    /// Computation-side energy (core + DRAM + leakage), i.e. everything
    /// that is not the radio.
    pub fn computation(&self) -> Energy {
        self[Component::Core] + self[Component::Dram] + self[Component::Leakage]
    }

    /// Communication-side energy (radio TX + RX).
    pub fn communication(&self) -> Energy {
        self[Component::RadioTx] + self[Component::RadioRx]
    }

    /// Iterate `(component, energy)` pairs in report order.
    pub fn iter(&self) -> impl Iterator<Item = (Component, Energy)> + '_ {
        Component::ALL.iter().map(move |&c| (c, self[c]))
    }
}

impl Index<Component> for EnergyBreakdown {
    type Output = Energy;
    #[inline]
    fn index(&self, c: Component) -> &Energy {
        &self.slots[c.index()]
    }
}

impl IndexMut<Component> for EnergyBreakdown {
    #[inline]
    fn index_mut(&mut self, c: Component) -> &mut Energy {
        &mut self.slots[c.index()]
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;
    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: EnergyBreakdown) {
        for i in 0..self.slots.len() {
            self.slots[i] += rhs.slots[i];
        }
    }
}

impl Sub for EnergyBreakdown {
    type Output = EnergyBreakdown;
    fn sub(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        let mut out = self;
        out -= rhs;
        out
    }
}

impl SubAssign for EnergyBreakdown {
    fn sub_assign(&mut self, rhs: EnergyBreakdown) {
        for i in 0..self.slots.len() {
            self.slots[i] -= rhs.slots[i];
        }
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "total {}", self.total())?;
        for (c, e) in self.iter() {
            write!(f, " | {} {}", c.name(), e)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_total() {
        let mut b = EnergyBreakdown::new();
        b.charge(Component::Core, Energy::from_nanojoules(10.0));
        b.charge(Component::Dram, Energy::from_nanojoules(5.0));
        b.charge(Component::RadioTx, Energy::from_nanojoules(2.0));
        assert_eq!(b.total().nanojoules(), 17.0);
        assert_eq!(b.computation().nanojoules(), 15.0);
        assert_eq!(b.communication().nanojoules(), 2.0);
    }

    #[test]
    fn add_merges_ledgers() {
        let mut a = EnergyBreakdown::new();
        a.charge(Component::Core, Energy::from_nanojoules(1.0));
        let mut b = EnergyBreakdown::new();
        b.charge(Component::Core, Energy::from_nanojoules(2.0));
        b.charge(Component::Leakage, Energy::from_nanojoules(3.0));
        let c = a + b;
        assert_eq!(c[Component::Core].nanojoules(), 3.0);
        assert_eq!(c[Component::Leakage].nanojoules(), 3.0);
        assert_eq!(c.total().nanojoules(), 6.0);
    }

    #[test]
    fn sub_inverts_add() {
        let mut a = EnergyBreakdown::new();
        a.charge(Component::Core, Energy::from_nanojoules(5.0));
        a.charge(Component::RadioRx, Energy::from_nanojoules(2.5));
        let mut b = EnergyBreakdown::new();
        b.charge(Component::Core, Energy::from_nanojoules(1.0));
        let d = a - b;
        assert_eq!(d[Component::Core].nanojoules(), 4.0);
        assert_eq!(d[Component::RadioRx].nanojoules(), 2.5);
        assert_eq!((b + d), a);
    }

    #[test]
    fn component_indices_are_bijective() {
        let mut seen = [false; 5];
        for c in Component::ALL {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn display_mentions_every_component() {
        let b = EnergyBreakdown::new();
        let s = format!("{b}");
        for c in Component::ALL {
            assert!(s.contains(c.name()), "missing {}", c.name());
        }
    }
}

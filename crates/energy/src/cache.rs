//! Direct-mapped cache simulator.
//!
//! The paper's client models an on-chip 8 KB direct-mapped data cache
//! and a 16 KB instruction cache (microSPARC-IIep). Cache behaviour
//! determines how many instruction and data references escape to the
//! off-chip DRAM, whose per-access energy dominates (Fig 1's
//! "Main Memory 4.94 nJ" row) and whose latency stalls the pipeline.
//!
//! The simulator is deliberately simple — tag array only, no data —
//! because only hit/miss outcomes matter for energy and time.

use serde::{Deserialize, Serialize};

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes (power of two).
    pub size_bytes: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
}

impl CacheConfig {
    /// The paper's 8 KB direct-mapped data cache (32-byte lines, the
    /// microSPARC-IIep line size).
    pub const fn client_dcache() -> Self {
        CacheConfig {
            size_bytes: 8 * 1024,
            line_bytes: 32,
        }
    }

    /// The paper's 16 KB instruction cache.
    pub const fn client_icache() -> Self {
        CacheConfig {
            size_bytes: 16 * 1024,
            line_bytes: 32,
        }
    }

    /// Number of lines.
    pub const fn num_lines(&self) -> u32 {
        self.size_bytes / self.line_bytes
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that hit in the cache.
    pub hits: u64,
    /// Accesses that missed and went to main memory.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when no accesses were made.
    pub fn miss_ratio(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            0.0
        } else {
            self.misses as f64 / n as f64
        }
    }
}

/// A direct-mapped, tag-only cache simulator.
#[derive(Debug, Clone)]
pub struct CacheSim {
    config: CacheConfig,
    /// `u64::MAX` marks an invalid (never filled) line.
    tags: Box<[u64]>,
    stats: CacheStats,
    line_shift: u32,
    index_mask: u64,
}

const INVALID: u64 = u64::MAX;

impl CacheSim {
    /// Build an empty (all-invalid) cache.
    ///
    /// # Panics
    /// If the configured sizes are not powers of two or the line is
    /// larger than the cache.
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.size_bytes.is_power_of_two(),
            "cache size must be a power of two"
        );
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            config.line_bytes <= config.size_bytes,
            "line larger than cache"
        );
        let lines = config.num_lines();
        CacheSim {
            config,
            tags: vec![INVALID; lines as usize].into_boxed_slice(),
            stats: CacheStats::default(),
            line_shift: config.line_bytes.trailing_zeros(),
            index_mask: (lines - 1) as u64,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Simulate an access to byte address `addr`. Returns `true` on a
    /// hit; on a miss the line is filled.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let line_addr = addr >> self.line_shift;
        let index = (line_addr & self.index_mask) as usize;
        let tag = line_addr >> self.index_mask.count_ones();
        // Tags never legitimately equal INVALID for realistic address
        // spaces (< 2^58 bytes), so a plain compare suffices.
        if self.tags[index] == tag {
            self.stats.hits += 1;
            true
        } else {
            self.tags[index] = tag;
            self.stats.misses += 1;
            false
        }
    }

    /// Credit `n` accesses that are statically guaranteed to hit —
    /// used by batched replay ([`crate::SeqPlan`]) when consecutive
    /// fetches stay within a just-accessed line. Counters advance
    /// exactly as if [`CacheSim::access`] had been called `n` times
    /// with the line resident; tags are untouched (hits never modify
    /// them), so the residency state stays bit-identical too.
    #[inline]
    pub fn credit_hits(&mut self, n: u64) {
        self.stats.hits += n;
    }

    /// Invalidate every line (e.g. after a simulated context switch).
    pub fn flush(&mut self) {
        self.tags.fill(INVALID);
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset the counters (contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Snapshot the residency state (tag array + counters) for
    /// checkpointing. Geometry is not included — it is configuration,
    /// re-derivable from [`CacheSim::config`].
    pub fn export_state(&self) -> CacheState {
        CacheState {
            tags: self.tags.to_vec(),
            stats: self.stats,
        }
    }

    /// Restore residency state captured by [`CacheSim::export_state`]
    /// on a cache of the same geometry.
    ///
    /// # Panics
    /// If the tag array length does not match this cache's line count.
    pub fn import_state(&mut self, state: &CacheState) {
        assert_eq!(
            state.tags.len(),
            self.tags.len(),
            "cache state geometry mismatch"
        );
        self.tags.copy_from_slice(&state.tags);
        self.stats = state.stats;
    }
}

/// Serializable residency snapshot of a [`CacheSim`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheState {
    /// Tag array contents (`u64::MAX` = invalid line).
    pub tags: Vec<u64>,
    /// Hit/miss counters at snapshot time.
    pub stats: CacheStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries() {
        let d = CacheConfig::client_dcache();
        assert_eq!(d.num_lines(), 256);
        let i = CacheConfig::client_icache();
        assert_eq!(i.num_lines(), 512);
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = CacheSim::new(CacheConfig::client_dcache());
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1004)); // same 32-byte line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn conflicting_lines_evict() {
        let cfg = CacheConfig {
            size_bytes: 1024,
            line_bytes: 32,
        };
        let mut c = CacheSim::new(cfg);
        // Two addresses exactly one cache size apart map to the same
        // direct-mapped set and thrash.
        assert!(!c.access(0));
        assert!(!c.access(1024));
        assert!(!c.access(0));
        assert!(!c.access(1024));
        assert_eq!(c.stats().misses, 4);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = CacheSim::new(CacheConfig::client_dcache());
        assert!(!c.access(0));
        assert!(!c.access(32));
        assert!(c.access(0));
        assert!(c.access(32));
    }

    #[test]
    fn sequential_scan_miss_rate_matches_line_size() {
        let mut c = CacheSim::new(CacheConfig::client_dcache());
        // Walk 4 KB byte-by-word: one miss per 32-byte line.
        for addr in (0..4096u64).step_by(4) {
            c.access(addr);
        }
        assert_eq!(c.stats().misses, 4096 / 32);
        assert_eq!(c.stats().accesses(), 1024);
        assert!((c.stats().miss_ratio() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = CacheSim::new(CacheConfig::client_dcache());
        // Two passes over a 32 KB array (4x the 8 KB cache): every
        // line access misses on both passes.
        for _ in 0..2 {
            for addr in (0..32 * 1024u64).step_by(32) {
                c.access(addr);
            }
        }
        assert_eq!(c.stats().misses, 2 * 1024);
    }

    #[test]
    fn working_set_smaller_than_cache_hits_on_second_pass() {
        let mut c = CacheSim::new(CacheConfig::client_dcache());
        for _ in 0..2 {
            for addr in (0..4 * 1024u64).step_by(32) {
                c.access(addr);
            }
        }
        // First pass misses (128 lines), second pass hits entirely.
        assert_eq!(c.stats().misses, 128);
        assert_eq!(c.stats().hits, 128);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = CacheSim::new(CacheConfig::client_dcache());
        c.access(64);
        assert!(c.access(64));
        c.flush();
        assert!(!c.access(64));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = CacheSim::new(CacheConfig {
            size_bytes: 3000,
            line_bytes: 32,
        });
    }
}

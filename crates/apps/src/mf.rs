//! **mf — Median-Filter** (paper Fig 3).
//!
//! "Given an image (in PGM format) and the size of the window,
//! generates a new image by applying median filtering." Size
//! parameter: the image edge length (the window is the classic 3×3).
//!
//! Border pixels use clamped (replicated-edge) sampling.

use crate::util::{alloc_ints, gen_image, read_ints};
use jem_core::Workload;
use jem_jvm::dsl::*;
use jem_jvm::{Heap, MethodAttrs, MethodId, Program, Value};
use rand::rngs::SmallRng;

/// Build the MJVM program.
pub fn build_program() -> Program {
    let mut m = ModuleBuilder::new();

    // clamp(v, lo, hi)
    m.func(
        "clamp",
        vec![("v", DType::Int), ("lo", DType::Int), ("hi", DType::Int)],
        Some(DType::Int),
        vec![
            if_(var("v").lt(var("lo")), vec![ret(var("lo"))]),
            if_(var("v").gt(var("hi")), vec![ret(var("hi"))]),
            ret(var("v")),
        ],
    );

    // Median of the 9-element window buffer (insertion sort, pick [4]).
    m.func(
        "median9",
        vec![("w", DType::int_arr())],
        Some(DType::Int),
        vec![
            for_(
                "i",
                iconst(1),
                iconst(9),
                vec![
                    let_("key", var("w").index(var("i"))),
                    let_("j", var("i").sub(iconst(1))),
                    let_("moving", iconst(1)),
                    while_(
                        var("moving").bitand(var("j").ge(iconst(0))),
                        vec![if_else(
                            var("w").index(var("j")).gt(var("key")),
                            vec![
                                set_index(
                                    var("w"),
                                    var("j").add(iconst(1)),
                                    var("w").index(var("j")),
                                ),
                                assign("j", var("j").sub(iconst(1))),
                            ],
                            vec![assign("moving", iconst(0))],
                        )],
                    ),
                    set_index(var("w"), var("j").add(iconst(1)), var("key")),
                ],
            ),
            ret(var("w").index(iconst(4))),
        ],
    );

    m.func_with_attrs(
        "median_filter",
        vec![("s", DType::Int), ("img", DType::int_arr())],
        Some(DType::int_arr()),
        vec![
            let_("out", new_arr(DType::Int, var("s").mul(var("s")))),
            let_("win", new_arr(DType::Int, iconst(9))),
            for_(
                "y",
                iconst(0),
                var("s"),
                vec![for_(
                    "x",
                    iconst(0),
                    var("s"),
                    vec![
                        let_("k", iconst(0)),
                        for_(
                            "dy",
                            iconst(-1),
                            iconst(2),
                            vec![for_(
                                "dx",
                                iconst(-1),
                                iconst(2),
                                vec![
                                    let_(
                                        "yy",
                                        call(
                                            "clamp",
                                            vec![
                                                var("y").add(var("dy")),
                                                iconst(0),
                                                var("s").sub(iconst(1)),
                                            ],
                                        ),
                                    ),
                                    let_(
                                        "xx",
                                        call(
                                            "clamp",
                                            vec![
                                                var("x").add(var("dx")),
                                                iconst(0),
                                                var("s").sub(iconst(1)),
                                            ],
                                        ),
                                    ),
                                    set_index(
                                        var("win"),
                                        var("k"),
                                        var("img").index(var("yy").mul(var("s")).add(var("xx"))),
                                    ),
                                    assign("k", var("k").add(iconst(1))),
                                ],
                            )],
                        ),
                        set_index(
                            var("out"),
                            var("y").mul(var("s")).add(var("x")),
                            call("median9", vec![var("win")]),
                        ),
                    ],
                )],
            ),
            ret(var("out")),
        ],
        MethodAttrs {
            potential: true,
            size_param: Some(0),
            ..Default::default()
        },
    );

    m.compile().expect("mf compiles")
}

/// Native reference implementation.
pub fn reference(s: usize, img: &[i32]) -> Vec<i32> {
    let clamp = |v: i64, hi: i64| v.clamp(0, hi) as usize;
    let mut out = vec![0; s * s];
    let mut win = [0i32; 9];
    for y in 0..s {
        for x in 0..s {
            let mut k = 0;
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let yy = clamp(y as i64 + dy, s as i64 - 1);
                    let xx = clamp(x as i64 + dx, s as i64 - 1);
                    win[k] = img[yy * s + xx];
                    k += 1;
                }
            }
            win.sort_unstable();
            out[y * s + x] = win[4];
        }
    }
    out
}

/// The mf workload.
pub struct Mf {
    program: Program,
    method: MethodId,
}

impl Mf {
    /// Build the workload.
    pub fn new() -> Mf {
        let program = build_program();
        let method = program
            .find_method(MODULE_CLASS, "median_filter")
            .expect("method");
        Mf { program, method }
    }
}

impl Default for Mf {
    fn default() -> Self {
        Mf::new()
    }
}

impl Workload for Mf {
    fn name(&self) -> &str {
        "mf"
    }
    fn description(&self) -> &str {
        "Given an image (in PGM format) and the size of the window, generates a new image by applying median filtering"
    }
    fn program(&self) -> &Program {
        &self.program
    }
    fn potential_method(&self) -> MethodId {
        self.method
    }
    fn sizes(&self) -> Vec<u32> {
        vec![8, 16, 24, 32, 48, 64, 96, 128]
    }
    fn calibration_sizes(&self) -> Vec<u32> {
        vec![8, 16, 32, 64, 128]
    }
    fn size_meaning(&self) -> &str {
        "image edge length (pixels)"
    }
    fn make_args(&self, heap: &mut Heap, size: u32, rng: &mut SmallRng) -> Vec<Value> {
        let img = gen_image(size, rng);
        vec![Value::Int(size as i32), Value::Ref(alloc_ints(heap, &img))]
    }
    fn check(&self, heap: &Heap, size: u32, result: Option<Value>) -> Option<bool> {
        let h = match result {
            Some(Value::Ref(h)) => h,
            _ => return Some(false),
        };
        let out = read_ints(heap, h);
        Some(out.len() == (size * size) as usize && out.iter().all(|&p| (0..=255).contains(&p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_jvm::verify::verify_program;
    use jem_jvm::Vm;
    use rand::SeedableRng;

    #[test]
    fn program_verifies() {
        verify_program(&build_program()).unwrap();
    }

    #[test]
    fn matches_reference() {
        let w = Mf::new();
        let mut rng = SmallRng::seed_from_u64(5);
        let img = gen_image(16, &mut rng.clone());
        let mut vm = Vm::client(w.program());
        let args = w.make_args(&mut vm.heap, 16, &mut rng);
        let out = vm.invoke(w.potential_method(), args).unwrap();
        let h = out.unwrap().as_ref().unwrap();
        assert_eq!(read_ints(&vm.heap, h), reference(16, &img));
    }

    #[test]
    fn median_removes_speckle() {
        // A constant image with one hot pixel: the median filter must
        // remove the speckle entirely.
        let w = Mf::new();
        let s = 8usize;
        let mut img = vec![100i32; s * s];
        img[3 * s + 4] = 255;
        let mut vm = Vm::client(w.program());
        let h = alloc_ints(&mut vm.heap, &img);
        let out = vm
            .invoke(
                w.potential_method(),
                vec![Value::Int(s as i32), Value::Ref(h)],
            )
            .unwrap();
        let res = read_ints(&vm.heap, out.unwrap().as_ref().unwrap());
        assert!(res.iter().all(|&p| p == 100), "{res:?}");
    }

    #[test]
    fn compiled_matches_interpreted() {
        let w = Mf::new();
        let rng = SmallRng::seed_from_u64(6);
        let mut interp = Vm::client(w.program());
        let args = w.make_args(&mut interp.heap, 12, &mut rng.clone());
        let out = interp.invoke(w.potential_method(), args).unwrap();
        let expect = read_ints(&interp.heap, out.unwrap().as_ref().unwrap());

        for level in jem_jvm::OptLevel::ALL {
            let mut vm = Vm::client(w.program());
            for i in 0..w.program().methods.len() {
                let id = jem_jvm::MethodId(i as u32);
                let c = jem_jvm::compile(w.program(), id, level);
                vm.install_native(id, std::rc::Rc::new(c.code));
            }
            let args = w.make_args(&mut vm.heap, 12, &mut rng.clone());
            let out = vm.invoke(w.potential_method(), args).unwrap();
            assert_eq!(
                read_ints(&vm.heap, out.unwrap().as_ref().unwrap()),
                expect,
                "{level}"
            );
        }
    }
}

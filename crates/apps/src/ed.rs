//! **ed — Edge-Detector** (paper Fig 3).
//!
//! "Given an image, detects its edges by using Canny's algorithm."
//! Size parameter: the image edge length.
//!
//! Full integer Canny pipeline: 3×3 Gaussian smoothing, Sobel
//! gradients, L1 gradient magnitude, 4-way direction quantization,
//! non-maximum suppression, and double-threshold hysteresis via an
//! explicit worklist (no recursion).

use crate::util::{alloc_ints, gen_image, read_ints};
use jem_core::Workload;
use jem_jvm::dsl::*;
use jem_jvm::{Heap, MethodAttrs, MethodId, Program, Value};
use rand::rngs::SmallRng;

/// Hysteresis thresholds on the L1 gradient magnitude.
pub const HI_THRESH: i32 = 250;
/// Low threshold: weak-edge candidates.
pub const LO_THRESH: i32 = 100;

/// Build the MJVM program.
pub fn build_program() -> Program {
    let mut m = ModuleBuilder::new();

    m.func(
        "clampi",
        vec![("v", DType::Int), ("lo", DType::Int), ("hi", DType::Int)],
        Some(DType::Int),
        vec![
            if_(var("v").lt(var("lo")), vec![ret(var("lo"))]),
            if_(var("v").gt(var("hi")), vec![ret(var("hi"))]),
            ret(var("v")),
        ],
    );

    // Clamped pixel fetch.
    m.func(
        "px",
        vec![
            ("s", DType::Int),
            ("img", DType::int_arr()),
            ("y", DType::Int),
            ("x", DType::Int),
        ],
        Some(DType::Int),
        vec![
            let_(
                "yy",
                call("clampi", vec![var("y"), iconst(0), var("s").sub(iconst(1))]),
            ),
            let_(
                "xx",
                call("clampi", vec![var("x"), iconst(0), var("s").sub(iconst(1))]),
            ),
            ret(var("img").index(var("yy").mul(var("s")).add(var("xx")))),
        ],
    );

    // 3x3 Gaussian smoothing (1 2 1 / 2 4 2 / 1 2 1, /16).
    m.func(
        "smooth",
        vec![("s", DType::Int), ("img", DType::int_arr())],
        Some(DType::int_arr()),
        vec![
            let_("out", new_arr(DType::Int, var("s").mul(var("s")))),
            for_(
                "y",
                iconst(0),
                var("s"),
                vec![for_(
                    "x",
                    iconst(0),
                    var("s"),
                    vec![
                        let_("acc", iconst(0)),
                        // Unrolled kernel taps keep the DSL readable.
                        assign(
                            "acc",
                            var("acc").add(call(
                                "px",
                                vec![
                                    var("s"),
                                    var("img"),
                                    var("y").sub(iconst(1)),
                                    var("x").sub(iconst(1)),
                                ],
                            )),
                        ),
                        assign(
                            "acc",
                            var("acc").add(
                                call(
                                    "px",
                                    vec![var("s"), var("img"), var("y").sub(iconst(1)), var("x")],
                                )
                                .mul(iconst(2)),
                            ),
                        ),
                        assign(
                            "acc",
                            var("acc").add(call(
                                "px",
                                vec![
                                    var("s"),
                                    var("img"),
                                    var("y").sub(iconst(1)),
                                    var("x").add(iconst(1)),
                                ],
                            )),
                        ),
                        assign(
                            "acc",
                            var("acc").add(
                                call(
                                    "px",
                                    vec![var("s"), var("img"), var("y"), var("x").sub(iconst(1))],
                                )
                                .mul(iconst(2)),
                            ),
                        ),
                        assign(
                            "acc",
                            var("acc").add(
                                call("px", vec![var("s"), var("img"), var("y"), var("x")])
                                    .mul(iconst(4)),
                            ),
                        ),
                        assign(
                            "acc",
                            var("acc").add(
                                call(
                                    "px",
                                    vec![var("s"), var("img"), var("y"), var("x").add(iconst(1))],
                                )
                                .mul(iconst(2)),
                            ),
                        ),
                        assign(
                            "acc",
                            var("acc").add(call(
                                "px",
                                vec![
                                    var("s"),
                                    var("img"),
                                    var("y").add(iconst(1)),
                                    var("x").sub(iconst(1)),
                                ],
                            )),
                        ),
                        assign(
                            "acc",
                            var("acc").add(
                                call(
                                    "px",
                                    vec![var("s"), var("img"), var("y").add(iconst(1)), var("x")],
                                )
                                .mul(iconst(2)),
                            ),
                        ),
                        assign(
                            "acc",
                            var("acc").add(call(
                                "px",
                                vec![
                                    var("s"),
                                    var("img"),
                                    var("y").add(iconst(1)),
                                    var("x").add(iconst(1)),
                                ],
                            )),
                        ),
                        set_index(
                            var("out"),
                            var("y").mul(var("s")).add(var("x")),
                            var("acc").div(iconst(16)),
                        ),
                    ],
                )],
            ),
            ret(var("out")),
        ],
    );

    // The main Canny pipeline.
    m.func_with_attrs(
        "edge_detect",
        vec![("s", DType::Int), ("img", DType::int_arr())],
        Some(DType::int_arr()),
        vec![
            let_("n", var("s").mul(var("s"))),
            let_("sm", call("smooth", vec![var("s"), var("img")])),
            let_("mag", new_arr(DType::Int, var("n"))),
            let_("dir", new_arr(DType::Int, var("n"))),
            // Sobel gradients + magnitude + direction.
            for_(
                "y",
                iconst(0),
                var("s"),
                vec![for_(
                    "x",
                    iconst(0),
                    var("s"),
                    vec![
                        let_(
                            "p00",
                            call(
                                "px",
                                vec![
                                    var("s"),
                                    var("sm"),
                                    var("y").sub(iconst(1)),
                                    var("x").sub(iconst(1)),
                                ],
                            ),
                        ),
                        let_(
                            "p01",
                            call(
                                "px",
                                vec![var("s"), var("sm"), var("y").sub(iconst(1)), var("x")],
                            ),
                        ),
                        let_(
                            "p02",
                            call(
                                "px",
                                vec![
                                    var("s"),
                                    var("sm"),
                                    var("y").sub(iconst(1)),
                                    var("x").add(iconst(1)),
                                ],
                            ),
                        ),
                        let_(
                            "p10",
                            call(
                                "px",
                                vec![var("s"), var("sm"), var("y"), var("x").sub(iconst(1))],
                            ),
                        ),
                        let_(
                            "p12",
                            call(
                                "px",
                                vec![var("s"), var("sm"), var("y"), var("x").add(iconst(1))],
                            ),
                        ),
                        let_(
                            "p20",
                            call(
                                "px",
                                vec![
                                    var("s"),
                                    var("sm"),
                                    var("y").add(iconst(1)),
                                    var("x").sub(iconst(1)),
                                ],
                            ),
                        ),
                        let_(
                            "p21",
                            call(
                                "px",
                                vec![var("s"), var("sm"), var("y").add(iconst(1)), var("x")],
                            ),
                        ),
                        let_(
                            "p22",
                            call(
                                "px",
                                vec![
                                    var("s"),
                                    var("sm"),
                                    var("y").add(iconst(1)),
                                    var("x").add(iconst(1)),
                                ],
                            ),
                        ),
                        // gx = (p02 + 2 p12 + p22) - (p00 + 2 p10 + p20)
                        let_(
                            "gx",
                            var("p02")
                                .add(var("p12").mul(iconst(2)))
                                .add(var("p22"))
                                .sub(var("p00").add(var("p10").mul(iconst(2))).add(var("p20"))),
                        ),
                        // gy = (p20 + 2 p21 + p22) - (p00 + 2 p01 + p02)
                        let_(
                            "gy",
                            var("p20")
                                .add(var("p21").mul(iconst(2)))
                                .add(var("p22"))
                                .sub(var("p00").add(var("p01").mul(iconst(2))).add(var("p02"))),
                        ),
                        let_("ax", var("gx")),
                        if_(var("ax").lt(iconst(0)), vec![assign("ax", var("ax").neg())]),
                        let_("ay", var("gy")),
                        if_(var("ay").lt(iconst(0)), vec![assign("ay", var("ay").neg())]),
                        let_("idx", var("y").mul(var("s")).add(var("x"))),
                        set_index(var("mag"), var("idx"), var("ax").add(var("ay"))),
                        // Quantized gradient direction.
                        let_("d", iconst(0)),
                        if_else(
                            var("ay").mul(iconst(2)).le(var("ax")),
                            vec![assign("d", iconst(0))], // horizontal gradient
                            vec![if_else(
                                var("ax").mul(iconst(2)).le(var("ay")),
                                vec![assign("d", iconst(2))], // vertical gradient
                                vec![if_else(
                                    var("gx").mul(var("gy")).ge(iconst(0)),
                                    vec![assign("d", iconst(1))], // main diagonal
                                    vec![assign("d", iconst(3))], // anti-diagonal
                                )],
                            )],
                        ),
                        set_index(var("dir"), var("idx"), var("d")),
                    ],
                )],
            ),
            // Non-maximum suppression (interior only).
            let_("nms", new_arr(DType::Int, var("n"))),
            for_(
                "y",
                iconst(1),
                var("s").sub(iconst(1)),
                vec![for_(
                    "x",
                    iconst(1),
                    var("s").sub(iconst(1)),
                    vec![
                        let_("idx", var("y").mul(var("s")).add(var("x"))),
                        let_("mv", var("mag").index(var("idx"))),
                        let_("d", var("dir").index(var("idx"))),
                        let_("dy", iconst(0)),
                        let_("dx", iconst(1)),
                        if_(
                            var("d").eq(iconst(1)),
                            vec![assign("dy", iconst(1)), assign("dx", iconst(1))],
                        ),
                        if_(
                            var("d").eq(iconst(2)),
                            vec![assign("dy", iconst(1)), assign("dx", iconst(0))],
                        ),
                        if_(
                            var("d").eq(iconst(3)),
                            vec![assign("dy", iconst(1)), assign("dx", iconst(-1))],
                        ),
                        let_(
                            "n1",
                            var("y")
                                .add(var("dy"))
                                .mul(var("s"))
                                .add(var("x").add(var("dx"))),
                        ),
                        let_(
                            "n2",
                            var("y")
                                .sub(var("dy"))
                                .mul(var("s"))
                                .add(var("x").sub(var("dx"))),
                        ),
                        if_else(
                            var("mv")
                                .ge(var("mag").index(var("n1")))
                                .bitand(var("mv").ge(var("mag").index(var("n2")))),
                            vec![set_index(var("nms"), var("idx"), var("mv"))],
                            vec![set_index(var("nms"), var("idx"), iconst(0))],
                        ),
                    ],
                )],
            ),
            // Double threshold + hysteresis with an explicit worklist.
            let_("out", new_arr(DType::Int, var("n"))),
            let_("stack", new_arr(DType::Int, var("n"))),
            let_("sp", iconst(0)),
            for_(
                "i",
                iconst(0),
                var("n"),
                vec![if_(
                    var("nms").index(var("i")).ge(iconst(HI_THRESH)),
                    vec![
                        set_index(var("out"), var("i"), iconst(255)),
                        set_index(var("stack"), var("sp"), var("i")),
                        assign("sp", var("sp").add(iconst(1))),
                    ],
                )],
            ),
            while_(
                var("sp").gt(iconst(0)),
                vec![
                    assign("sp", var("sp").sub(iconst(1))),
                    let_("i", var("stack").index(var("sp"))),
                    let_("cy", var("i").div(var("s"))),
                    let_("cx", var("i").rem(var("s"))),
                    for_(
                        "dy",
                        iconst(-1),
                        iconst(2),
                        vec![for_(
                            "dx",
                            iconst(-1),
                            iconst(2),
                            vec![
                                let_("ny", var("cy").add(var("dy"))),
                                let_("nx", var("cx").add(var("dx"))),
                                if_(
                                    var("ny")
                                        .ge(iconst(0))
                                        .bitand(var("ny").lt(var("s")))
                                        .bitand(var("nx").ge(iconst(0)))
                                        .bitand(var("nx").lt(var("s"))),
                                    vec![
                                        let_("ni", var("ny").mul(var("s")).add(var("nx"))),
                                        if_(
                                            var("out").index(var("ni")).eq(iconst(0)).bitand(
                                                var("nms").index(var("ni")).ge(iconst(LO_THRESH)),
                                            ),
                                            vec![
                                                set_index(var("out"), var("ni"), iconst(255)),
                                                set_index(var("stack"), var("sp"), var("ni")),
                                                assign("sp", var("sp").add(iconst(1))),
                                            ],
                                        ),
                                    ],
                                ),
                            ],
                        )],
                    ),
                ],
            ),
            ret(var("out")),
        ],
        MethodAttrs {
            potential: true,
            size_param: Some(0),
            ..Default::default()
        },
    );

    m.compile().expect("ed compiles")
}

/// Native reference implementation (identical pipeline).
pub fn reference(s: usize, img: &[i32]) -> Vec<i32> {
    let si = s as i32;
    let px = |buf: &[i32], y: i32, x: i32| -> i32 {
        let yy = y.clamp(0, si - 1) as usize;
        let xx = x.clamp(0, si - 1) as usize;
        buf[yy * s + xx]
    };
    let n = s * s;
    // Smooth.
    let mut sm = vec![0i32; n];
    for y in 0..si {
        for x in 0..si {
            let acc = px(img, y - 1, x - 1)
                + 2 * px(img, y - 1, x)
                + px(img, y - 1, x + 1)
                + 2 * px(img, y, x - 1)
                + 4 * px(img, y, x)
                + 2 * px(img, y, x + 1)
                + px(img, y + 1, x - 1)
                + 2 * px(img, y + 1, x)
                + px(img, y + 1, x + 1);
            sm[(y * si + x) as usize] = acc / 16;
        }
    }
    // Gradients.
    let mut mag = vec![0i32; n];
    let mut dir = vec![0i32; n];
    for y in 0..si {
        for x in 0..si {
            let p00 = px(&sm, y - 1, x - 1);
            let p01 = px(&sm, y - 1, x);
            let p02 = px(&sm, y - 1, x + 1);
            let p10 = px(&sm, y, x - 1);
            let p12 = px(&sm, y, x + 1);
            let p20 = px(&sm, y + 1, x - 1);
            let p21 = px(&sm, y + 1, x);
            let p22 = px(&sm, y + 1, x + 1);
            let gx = (p02 + 2 * p12 + p22) - (p00 + 2 * p10 + p20);
            let gy = (p20 + 2 * p21 + p22) - (p00 + 2 * p01 + p02);
            let (ax, ay) = (gx.abs(), gy.abs());
            let idx = (y * si + x) as usize;
            mag[idx] = ax + ay;
            dir[idx] = if 2 * ay <= ax {
                0
            } else if 2 * ax <= ay {
                2
            } else if gx * gy >= 0 {
                1
            } else {
                3
            };
        }
    }
    // NMS.
    let mut nms = vec![0i32; n];
    for y in 1..si - 1 {
        for x in 1..si - 1 {
            let idx = (y * si + x) as usize;
            let (dy, dx) = match dir[idx] {
                0 => (0, 1),
                1 => (1, 1),
                2 => (1, 0),
                _ => (1, -1),
            };
            let n1 = ((y + dy) * si + x + dx) as usize;
            let n2 = ((y - dy) * si + x - dx) as usize;
            nms[idx] = if mag[idx] >= mag[n1] && mag[idx] >= mag[n2] {
                mag[idx]
            } else {
                0
            };
        }
    }
    // Hysteresis.
    let mut out = vec![0i32; n];
    let mut stack = Vec::new();
    for i in 0..n {
        if nms[i] >= HI_THRESH {
            out[i] = 255;
            stack.push(i);
        }
    }
    while let Some(i) = stack.pop() {
        let (cy, cx) = ((i / s) as i32, (i % s) as i32);
        for dy in -1..=1 {
            for dx in -1..=1 {
                let (ny, nx) = (cy + dy, cx + dx);
                if ny >= 0 && ny < si && nx >= 0 && nx < si {
                    let ni = (ny * si + nx) as usize;
                    if out[ni] == 0 && nms[ni] >= LO_THRESH {
                        out[ni] = 255;
                        stack.push(ni);
                    }
                }
            }
        }
    }
    out
}

/// The ed workload.
pub struct Ed {
    program: Program,
    method: MethodId,
}

impl Ed {
    /// Build the workload.
    pub fn new() -> Ed {
        let program = build_program();
        let method = program
            .find_method(MODULE_CLASS, "edge_detect")
            .expect("method");
        Ed { program, method }
    }
}

impl Default for Ed {
    fn default() -> Self {
        Ed::new()
    }
}

impl Workload for Ed {
    fn name(&self) -> &str {
        "ed"
    }
    fn description(&self) -> &str {
        "Given an image, detects its edges by using Canny's algorithm"
    }
    fn program(&self) -> &Program {
        &self.program
    }
    fn potential_method(&self) -> MethodId {
        self.method
    }
    fn sizes(&self) -> Vec<u32> {
        vec![8, 16, 24, 32, 48, 64, 96, 128]
    }
    fn calibration_sizes(&self) -> Vec<u32> {
        vec![8, 16, 32, 64, 128]
    }
    fn size_meaning(&self) -> &str {
        "image edge length (pixels)"
    }
    fn make_args(&self, heap: &mut Heap, size: u32, rng: &mut SmallRng) -> Vec<Value> {
        let img = gen_image(size, rng);
        vec![Value::Int(size as i32), Value::Ref(alloc_ints(heap, &img))]
    }
    fn check(&self, heap: &Heap, size: u32, result: Option<Value>) -> Option<bool> {
        let h = match result {
            Some(Value::Ref(h)) => h,
            _ => return Some(false),
        };
        let out = read_ints(heap, h);
        Some(out.len() == (size * size) as usize && out.iter().all(|&p| p == 0 || p == 255))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_jvm::verify::verify_program;
    use jem_jvm::Vm;
    use rand::SeedableRng;

    #[test]
    fn program_verifies() {
        verify_program(&build_program()).unwrap();
    }

    #[test]
    fn matches_reference() {
        let w = Ed::new();
        let mut rng = SmallRng::seed_from_u64(21);
        let img = gen_image(20, &mut rng.clone());
        let mut vm = Vm::client(w.program());
        let args = w.make_args(&mut vm.heap, 20, &mut rng);
        let out = vm.invoke(w.potential_method(), args).unwrap();
        let h = out.unwrap().as_ref().unwrap();
        assert_eq!(read_ints(&vm.heap, h), reference(20, &img));
    }

    #[test]
    fn detects_a_sharp_boundary() {
        let w = Ed::new();
        let s = 16usize;
        let img: Vec<i32> = (0..s * s)
            .map(|i| if i % s < s / 2 { 10 } else { 240 })
            .collect();
        let mut vm = Vm::client(w.program());
        let h = alloc_ints(&mut vm.heap, &img);
        let out = vm
            .invoke(
                w.potential_method(),
                vec![Value::Int(s as i32), Value::Ref(h)],
            )
            .unwrap();
        let res = read_ints(&vm.heap, out.unwrap().as_ref().unwrap());
        let edges = res.iter().filter(|&&p| p == 255).count();
        assert!(edges > 0, "vertical boundary must be detected");
        // Edges should hug the middle column.
        for y in 2..s - 2 {
            let hit = (s / 2 - 2..s / 2 + 2).any(|x| res[y * s + x] == 255);
            assert!(hit, "row {y} missed the boundary");
        }
    }

    #[test]
    fn flat_image_has_no_edges() {
        let w = Ed::new();
        let s = 12usize;
        let img = vec![123i32; s * s];
        let mut vm = Vm::client(w.program());
        let h = alloc_ints(&mut vm.heap, &img);
        let out = vm
            .invoke(
                w.potential_method(),
                vec![Value::Int(s as i32), Value::Ref(h)],
            )
            .unwrap();
        let res = read_ints(&vm.heap, out.unwrap().as_ref().unwrap());
        assert!(res.iter().all(|&p| p == 0));
    }
}

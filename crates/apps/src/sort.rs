//! **sort — Sorting** (paper Fig 3).
//!
//! "Sorts a given set of array elements using Quicksort." Size
//! parameter: the array length.
//!
//! The MJVM implementation is a production-shaped quicksort:
//! median-of-three pivot, Hoare partition, recursion on the smaller
//! side only (bounded stack depth), insertion sort below a cutoff.

use crate::util::{alloc_ints, gen_ints, read_ints};
use jem_core::Workload;
use jem_jvm::dsl::*;
use jem_jvm::{Heap, MethodAttrs, MethodId, Program, Value};
use rand::rngs::SmallRng;

/// Insertion-sort cutoff (both in the DSL program and the reference).
const CUTOFF: i32 = 16;

/// Build the MJVM program.
pub fn build_program() -> Program {
    let mut m = ModuleBuilder::new();

    // Insertion sort of a[lo..hi).
    m.func(
        "isort",
        vec![
            ("a", DType::int_arr()),
            ("lo", DType::Int),
            ("hi", DType::Int),
        ],
        None,
        vec![
            for_(
                "i",
                var("lo").add(iconst(1)),
                var("hi"),
                vec![
                    let_("key", var("a").index(var("i"))),
                    let_("j", var("i").sub(iconst(1))),
                    // No short-circuit && in the DSL: guard the array
                    // read inside the loop body instead.
                    let_("moving", iconst(1)),
                    while_(
                        var("moving").bitand(var("j").ge(var("lo"))),
                        vec![if_else(
                            var("a").index(var("j")).gt(var("key")),
                            vec![
                                set_index(
                                    var("a"),
                                    var("j").add(iconst(1)),
                                    var("a").index(var("j")),
                                ),
                                assign("j", var("j").sub(iconst(1))),
                            ],
                            vec![assign("moving", iconst(0))],
                        )],
                    ),
                    set_index(var("a"), var("j").add(iconst(1)), var("key")),
                ],
            ),
            ret_void(),
        ],
    );

    // Median-of-three pivot *value* for a[lo..hi).
    m.func(
        "pivot",
        vec![
            ("a", DType::int_arr()),
            ("lo", DType::Int),
            ("hi", DType::Int),
        ],
        Some(DType::Int),
        vec![
            let_("x", var("a").index(var("lo"))),
            let_(
                "y",
                var("a").index(var("lo").add(var("hi").sub(var("lo")).div(iconst(2)))),
            ),
            let_("z", var("a").index(var("hi").sub(iconst(1)))),
            // Return the median of x, y, z.
            if_(
                var("x").gt(var("y")),
                vec![
                    // swap x,y via temp
                    let_("t", var("x")),
                    assign("x", var("y")),
                    assign("y", var("t")),
                ],
            ),
            if_(
                var("y").gt(var("z")),
                vec![
                    assign("y", var("z")),
                    // y is now min(y,z); re-establish x<=y
                    if_(var("x").gt(var("y")), vec![assign("y", var("x"))]),
                ],
            ),
            ret(var("y")),
        ],
    );

    // Hoare partition around pivot value p; returns split point.
    m.func(
        "partition",
        vec![
            ("a", DType::int_arr()),
            ("lo", DType::Int),
            ("hi", DType::Int),
            ("p", DType::Int),
        ],
        Some(DType::Int),
        vec![
            let_("i", var("lo").sub(iconst(1))),
            let_("j", var("hi")),
            while_(
                iconst(1),
                vec![
                    assign("i", var("i").add(iconst(1))),
                    while_(
                        var("a").index(var("i")).lt(var("p")),
                        vec![assign("i", var("i").add(iconst(1)))],
                    ),
                    assign("j", var("j").sub(iconst(1))),
                    while_(
                        var("a").index(var("j")).gt(var("p")),
                        vec![assign("j", var("j").sub(iconst(1)))],
                    ),
                    if_(var("i").ge(var("j")), vec![ret(var("j").add(iconst(1)))]),
                    let_("t", var("a").index(var("i"))),
                    set_index(var("a"), var("i"), var("a").index(var("j"))),
                    set_index(var("a"), var("j"), var("t")),
                ],
            ),
            ret(var("lo")), // unreachable; satisfies the verifier
        ],
    );

    // Quicksort with smaller-side recursion.
    m.func(
        "qsort",
        vec![
            ("a", DType::int_arr()),
            ("lo", DType::Int),
            ("hi", DType::Int),
        ],
        None,
        vec![
            let_("l", var("lo")),
            let_("h", var("hi")),
            while_(
                var("h").sub(var("l")).gt(iconst(CUTOFF)),
                vec![
                    let_("p", call("pivot", vec![var("a"), var("l"), var("h")])),
                    let_(
                        "mid",
                        call("partition", vec![var("a"), var("l"), var("h"), var("p")]),
                    ),
                    if_else(
                        var("mid").sub(var("l")).lt(var("h").sub(var("mid"))),
                        vec![
                            expr_stmt(call("qsort", vec![var("a"), var("l"), var("mid")])),
                            assign("l", var("mid")),
                        ],
                        vec![
                            expr_stmt(call("qsort", vec![var("a"), var("mid"), var("h")])),
                            assign("h", var("mid")),
                        ],
                    ),
                ],
            ),
            expr_stmt(call("isort", vec![var("a"), var("l"), var("h")])),
            ret_void(),
        ],
    );

    m.func_with_attrs(
        "sort",
        vec![("a", DType::int_arr())],
        Some(DType::int_arr()),
        vec![
            expr_stmt(call("qsort", vec![var("a"), iconst(0), var("a").len()])),
            ret(var("a")),
        ],
        MethodAttrs {
            potential: true,
            size_param: Some(0),
            ..Default::default()
        },
    );

    m.compile().expect("sort compiles")
}

/// Native reference: plain sort (the result contract is "ascending",
/// not a particular algorithm).
pub fn reference(mut data: Vec<i32>) -> Vec<i32> {
    data.sort_unstable();
    data
}

/// The sort workload.
pub struct Sort {
    program: Program,
    method: MethodId,
}

impl Sort {
    /// Build the workload.
    pub fn new() -> Sort {
        let program = build_program();
        let method = program.find_method(MODULE_CLASS, "sort").expect("method");
        Sort { program, method }
    }
}

impl Default for Sort {
    fn default() -> Self {
        Sort::new()
    }
}

impl Workload for Sort {
    fn name(&self) -> &str {
        "sort"
    }
    fn description(&self) -> &str {
        "Sorts a given set of array elements using Quicksort"
    }
    fn program(&self) -> &Program {
        &self.program
    }
    fn potential_method(&self) -> MethodId {
        self.method
    }
    fn sizes(&self) -> Vec<u32> {
        vec![256, 512, 1024, 2048]
    }
    fn size_meaning(&self) -> &str {
        "array length"
    }
    fn make_args(&self, heap: &mut Heap, size: u32, rng: &mut SmallRng) -> Vec<Value> {
        let data = gen_ints(size, -100_000, 100_000, rng);
        vec![Value::Ref(alloc_ints(heap, &data))]
    }
    fn check(&self, heap: &Heap, _size: u32, result: Option<Value>) -> Option<bool> {
        let h = match result {
            Some(Value::Ref(h)) => h,
            _ => return Some(false),
        };
        let out = read_ints(heap, h);
        Some(out.windows(2).all(|w| w[0] <= w[1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_jvm::verify::verify_program;
    use jem_jvm::Vm;
    use rand::SeedableRng;

    #[test]
    fn program_verifies() {
        verify_program(&build_program()).unwrap();
    }

    #[test]
    fn sorts_correctly() {
        let w = Sort::new();
        let mut vm = Vm::client(w.program());
        let mut rng = SmallRng::seed_from_u64(3);
        // Must match make_args' generation exactly.
        let data = gen_ints(500, -100_000, 100_000, &mut rng.clone());
        let args = w.make_args(&mut vm.heap, 500, &mut rng);
        let out = vm.invoke(w.potential_method(), args).unwrap();
        let h = out.unwrap().as_ref().unwrap();
        assert_eq!(read_ints(&vm.heap, h), reference(data));
    }

    #[test]
    fn handles_adversarial_inputs() {
        let w = Sort::new();
        for data in [
            vec![],
            vec![1],
            vec![2, 1],
            vec![5; 100],                         // all equal
            (0..200).collect::<Vec<i32>>(),       // sorted
            (0..200).rev().collect::<Vec<i32>>(), // reversed
        ] {
            let mut vm = Vm::client(w.program());
            let h = alloc_ints(&mut vm.heap, &data);
            let out = vm
                .invoke(w.potential_method(), vec![Value::Ref(h)])
                .unwrap();
            let hh = out.unwrap().as_ref().unwrap();
            assert_eq!(read_ints(&vm.heap, hh), reference(data));
        }
    }

    #[test]
    fn compiled_matches_interpreted() {
        let w = Sort::new();
        let rng = SmallRng::seed_from_u64(9);
        let mut interp_vm = Vm::client(w.program());
        let args = w.make_args(&mut interp_vm.heap, 400, &mut rng.clone());
        let out = interp_vm.invoke(w.potential_method(), args).unwrap();
        let expect = read_ints(&interp_vm.heap, out.unwrap().as_ref().unwrap());

        for level in jem_jvm::OptLevel::ALL {
            let mut vm = Vm::client(w.program());
            for i in 0..w.program().methods.len() {
                let id = jem_jvm::MethodId(i as u32);
                let c = jem_jvm::compile(w.program(), id, level);
                vm.install_native(id, std::rc::Rc::new(c.code));
            }
            let args = w.make_args(&mut vm.heap, 400, &mut rng.clone());
            let out = vm.invoke(w.potential_method(), args).unwrap();
            let got = read_ints(&vm.heap, out.unwrap().as_ref().unwrap());
            assert_eq!(got, expect, "{level}");
        }
    }
}

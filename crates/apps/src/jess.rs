//! **jess — expert system shell** (paper Fig 3).
//!
//! "An expert system shell from the SpecJVM98 benchmark suite"; the
//! paper used the s1 dataset and modified the code to make offloading
//! possible while retaining the core logic. Our stand-in retains that
//! core logic: a forward-chaining production system — rules with two
//! antecedent facts and one consequent fire repeatedly over a working
//! memory until fixpoint. Size parameter: the number of rules.
//!
//! The generator builds layered rule bases where early facts enable
//! later rules, producing multi-pass inference cascades like a real
//! rule engine's agenda.

use crate::util::{alloc_ints, read_ints};
use jem_core::Workload;
use jem_jvm::dsl::*;
use jem_jvm::{Heap, MethodAttrs, MethodId, Program, Value};
use rand::rngs::SmallRng;
use rand::Rng;

/// Initially asserted facts.
pub const SEED_FACTS: usize = 8;

/// Build the MJVM program.
pub fn build_program() -> Program {
    let mut m = ModuleBuilder::new();

    m.func_with_attrs(
        "infer",
        vec![
            ("nrules", DType::Int),
            ("a1", DType::int_arr()),
            ("a2", DType::int_arr()),
            ("cons", DType::int_arr()),
            ("facts", DType::int_arr()),
        ],
        Some(DType::Int),
        vec![
            let_("fired", new_arr(DType::Int, var("nrules"))),
            let_("count", iconst(0)),
            let_("changed", iconst(1)),
            while_(
                var("changed").gt(iconst(0)),
                vec![
                    assign("changed", iconst(0)),
                    for_(
                        "r",
                        iconst(0),
                        var("nrules"),
                        vec![if_(
                            var("fired").index(var("r")).eq(iconst(0)),
                            vec![if_(
                                var("facts")
                                    .index(var("a1").index(var("r")))
                                    .gt(iconst(0))
                                    .bitand(
                                        var("facts").index(var("a2").index(var("r"))).gt(iconst(0)),
                                    ),
                                vec![
                                    set_index(var("facts"), var("cons").index(var("r")), iconst(1)),
                                    set_index(var("fired"), var("r"), iconst(1)),
                                    assign("changed", iconst(1)),
                                    assign("count", var("count").add(iconst(1))),
                                ],
                            )],
                        )],
                    ),
                ],
            ),
            ret(var("count")),
        ],
        MethodAttrs {
            potential: true,
            size_param: Some(0),
            ..Default::default()
        },
    );

    m.compile().expect("jess compiles")
}

/// Generate a layered rule base: `(a1, a2, cons, facts)` where the
/// fact universe has `2·nrules + SEED_FACTS` slots.
pub fn gen_rules(nrules: u32, rng: &mut SmallRng) -> (Vec<i32>, Vec<i32>, Vec<i32>, Vec<i32>) {
    let nrules = nrules as usize;
    let universe = 2 * nrules + SEED_FACTS;
    let mut a1 = Vec::with_capacity(nrules);
    let mut a2 = Vec::with_capacity(nrules);
    let mut cons = Vec::with_capacity(nrules);
    for r in 0..nrules {
        // Antecedents reference facts that can plausibly be true by the
        // time the rule is considered: the seeds plus consequents of
        // earlier rules. A fraction of rules reference never-derivable
        // facts so the engine also pays for rules that never fire.
        let derivable_pool = SEED_FACTS + r;
        let pick = |rng: &mut SmallRng, pool: usize| -> i32 {
            if pool == 0 || rng.gen::<f64>() < 0.15 {
                // Possibly underivable: point into the upper half.
                (SEED_FACTS + nrules + rng.gen_range(0..nrules.max(1))) as i32
            } else {
                let idx = rng.gen_range(0..pool);
                if idx < SEED_FACTS {
                    idx as i32
                } else {
                    // Consequent slot of an earlier rule.
                    (SEED_FACTS + (idx - SEED_FACTS)) as i32
                }
            }
        };
        a1.push(pick(rng, derivable_pool));
        a2.push(pick(rng, derivable_pool));
        // Rule r's consequent gets its own fact slot.
        cons.push((SEED_FACTS + r) as i32);
    }
    let mut facts = vec![0i32; universe];
    for f in facts.iter_mut().take(SEED_FACTS) {
        *f = 1;
    }
    (a1, a2, cons, facts)
}

/// Native reference (identical fixpoint iteration).
pub fn reference(a1: &[i32], a2: &[i32], cons: &[i32], facts: &mut [i32]) -> i32 {
    let nrules = a1.len();
    let mut fired = vec![false; nrules];
    let mut count = 0;
    let mut changed = true;
    while changed {
        changed = false;
        for r in 0..nrules {
            if !fired[r] && facts[a1[r] as usize] > 0 && facts[a2[r] as usize] > 0 {
                facts[cons[r] as usize] = 1;
                fired[r] = true;
                changed = true;
                count += 1;
            }
        }
    }
    count
}

/// The jess workload.
pub struct Jess {
    program: Program,
    method: MethodId,
}

impl Jess {
    /// Build the workload.
    pub fn new() -> Jess {
        let program = build_program();
        let method = program.find_method(MODULE_CLASS, "infer").expect("method");
        Jess { program, method }
    }
}

impl Default for Jess {
    fn default() -> Self {
        Jess::new()
    }
}

impl Workload for Jess {
    fn name(&self) -> &str {
        "jess"
    }
    fn description(&self) -> &str {
        "An expert system shell from SpecJVM98 benchmark suite"
    }
    fn program(&self) -> &Program {
        &self.program
    }
    fn potential_method(&self) -> MethodId {
        self.method
    }
    fn sizes(&self) -> Vec<u32> {
        vec![64, 128, 256, 512]
    }
    fn size_meaning(&self) -> &str {
        "number of rules"
    }
    fn make_args(&self, heap: &mut Heap, size: u32, rng: &mut SmallRng) -> Vec<Value> {
        let (a1, a2, cons, facts) = gen_rules(size, rng);
        vec![
            Value::Int(size as i32),
            Value::Ref(alloc_ints(heap, &a1)),
            Value::Ref(alloc_ints(heap, &a2)),
            Value::Ref(alloc_ints(heap, &cons)),
            Value::Ref(alloc_ints(heap, &facts)),
        ]
    }
    fn check(&self, _heap: &Heap, size: u32, result: Option<Value>) -> Option<bool> {
        match result {
            Some(Value::Int(fired)) => Some(fired >= 0 && fired <= size as i32),
            _ => Some(false),
        }
    }
}

/// Read the final working memory (for examples).
pub fn final_facts(heap: &Heap, facts: jem_jvm::Handle) -> Vec<i32> {
    read_ints(heap, facts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_jvm::verify::verify_program;
    use jem_jvm::Vm;
    use rand::SeedableRng;

    #[test]
    fn program_verifies() {
        verify_program(&build_program()).unwrap();
    }

    #[test]
    fn chains_simple_rules() {
        // fact0 & fact1 → fact8; fact8 & fact0 → fact9.
        let w = Jess::new();
        let a1 = vec![0, 8];
        let a2 = vec![1, 0];
        let cons = vec![8, 9];
        let mut facts = vec![0i32; 10];
        facts[0] = 1;
        facts[1] = 1;
        let mut vm = Vm::client(w.program());
        let args = vec![
            Value::Int(2),
            Value::Ref(alloc_ints(&mut vm.heap, &a1)),
            Value::Ref(alloc_ints(&mut vm.heap, &a2)),
            Value::Ref(alloc_ints(&mut vm.heap, &cons)),
            Value::Ref(alloc_ints(&mut vm.heap, &facts)),
        ];
        let out = vm.invoke(w.potential_method(), args).unwrap();
        assert_eq!(out, Some(Value::Int(2)), "both rules fire");
    }

    #[test]
    fn matches_reference_on_generated_rulebases() {
        let w = Jess::new();
        for seed in [4u64, 5, 6] {
            let mut rng = SmallRng::seed_from_u64(seed);
            let (a1, a2, cons, mut facts) = gen_rules(100, &mut rng.clone());
            let expect = reference(&a1, &a2, &cons, &mut facts);
            let mut vm = Vm::client(w.program());
            let args = w.make_args(&mut vm.heap, 100, &mut rng);
            let out = vm.invoke(w.potential_method(), args).unwrap();
            assert_eq!(out, Some(Value::Int(expect)), "seed {seed}");
        }
    }

    #[test]
    fn generated_rulebases_cascade() {
        // The generator must produce real inference work, not a dead
        // rule base.
        let mut rng = SmallRng::seed_from_u64(1);
        let (a1, a2, cons, mut facts) = gen_rules(200, &mut rng);
        let fired = reference(&a1, &a2, &cons, &mut facts);
        assert!(fired > 20, "only {fired} rules fired");
        assert!(fired <= 200);
    }
}

//! # jem-apps — the eight benchmark applications (paper Fig 3)
//!
//! | app | description | size parameter |
//! |---|---|---|
//! | [`fe`] | integral of f(x) over a range | step count |
//! | [`pf`] | shortest path tree on a map | number of nodes |
//! | [`mf`] | median filtering of a PGM image | image edge |
//! | [`hpf`] | high-pass filter of an image | image edge |
//! | [`ed`] | Canny edge detection | image edge |
//! | [`sort`] | quicksort | array length |
//! | [`jess`] | expert-system shell (SpecJVM98 stand-in) | number of rules |
//! | [`db`] | database query system (SpecJVM98 stand-in) | number of records |
//!
//! Each module contains: the MJVM program (written in the `jem-jvm`
//! DSL and compiled to bytecode), a [`jem_core::Workload`]
//! implementation with the workload generator, and a native Rust
//! reference implementation used by the differential tests (results
//! must match bit-for-bit across the interpreter and every JIT level).

#![warn(missing_docs)]

pub mod db;
pub mod ed;
pub mod fe;
pub mod hpf;
pub mod jess;
pub mod mf;
pub mod pf;
pub mod pgm;
pub mod sort;
pub mod util;

use jem_core::Workload;

/// All eight workloads, in the paper's Fig 3 order.
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(fe::Fe::new()),
        Box::new(pf::Pf::new()),
        Box::new(mf::Mf::new()),
        Box::new(hpf::Hpf::new()),
        Box::new(ed::Ed::new()),
        Box::new(sort::Sort::new()),
        Box::new(jess::Jess::new()),
        Box::new(db::Db::new()),
    ]
}

/// Build a single workload by its Fig 3 short name.
pub fn workload_by_name(name: &str) -> Option<Box<dyn Workload>> {
    Some(match name {
        "fe" => Box::new(fe::Fe::new()) as Box<dyn Workload>,
        "pf" => Box::new(pf::Pf::new()),
        "mf" => Box::new(mf::Mf::new()),
        "hpf" => Box::new(hpf::Hpf::new()),
        "ed" => Box::new(ed::Ed::new()),
        "sort" => Box::new(sort::Sort::new()),
        "jess" => Box::new(jess::Jess::new()),
        "db" => Box::new(db::Db::new()),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_core::Partition;
    use jem_jvm::verify::verify_program;

    #[test]
    fn every_workload_builds_verifies_and_partitions() {
        for w in all_workloads() {
            verify_program(w.program()).unwrap_or_else(|e| panic!("{}: {e}", w.name()));
            let part =
                Partition::analyze(w.program()).unwrap_or_else(|e| panic!("{}: {e}", w.name()));
            assert!(
                part.is_potential(w.potential_method()),
                "{}: potential method not annotated",
                w.name()
            );
            assert!(!w.sizes().is_empty(), "{}", w.name());
            assert!(!w.description().is_empty());
        }
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let names: Vec<String> = all_workloads()
            .iter()
            .map(|w| w.name().to_string())
            .collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for n in &names {
            assert!(workload_by_name(n).is_some(), "{n}");
        }
        assert!(workload_by_name("nope").is_none());
    }

    #[test]
    fn every_workload_runs_and_checks_at_smallest_size() {
        use jem_jvm::Vm;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        for w in all_workloads() {
            let size = w.sizes()[0];
            let mut vm = Vm::client(w.program());
            let mut rng = SmallRng::seed_from_u64(99);
            let args = w.make_args(&mut vm.heap, size, &mut rng);
            let out = vm
                .invoke(w.potential_method(), args)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
            assert_eq!(
                w.check(&vm.heap, size, out),
                Some(true),
                "{} failed its check",
                w.name()
            );
        }
    }
}

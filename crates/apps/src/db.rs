//! **db — database query system** (paper Fig 3).
//!
//! "A database query system from the SpecJVM98 benchmark suite"; as
//! with jess, the paper modified it for offloading while retaining the
//! core logic. Our stand-in keeps that logic: a table of records with
//! three integer columns, a conjunctive selection (`a < qa AND
//! b % qb == 0`), and an order-by on the third column — scan, filter,
//! sort, project. Size parameter: the number of records.

use crate::util::{alloc_ints, gen_ints, read_ints};
use jem_core::Workload;
use jem_jvm::dsl::*;
use jem_jvm::{Heap, MethodAttrs, MethodId, Program, Value};
use rand::rngs::SmallRng;

/// Query constant: `a < QA`.
pub const QA: i32 = 500;
/// Query constant: `b % QB == 0`.
pub const QB: i32 = 3;

/// Build the MJVM program.
pub fn build_program() -> Program {
    let mut m = ModuleBuilder::new();

    // Insertion sort of ids[0..k) keyed by c[ids[i]].
    m.func(
        "sort_by_key",
        vec![
            ("ids", DType::int_arr()),
            ("k", DType::Int),
            ("c", DType::int_arr()),
        ],
        None,
        vec![
            for_(
                "i",
                iconst(1),
                var("k"),
                vec![
                    let_("id", var("ids").index(var("i"))),
                    let_("key", var("c").index(var("id"))),
                    let_("j", var("i").sub(iconst(1))),
                    let_("moving", iconst(1)),
                    while_(
                        var("moving").bitand(var("j").ge(iconst(0))),
                        vec![if_else(
                            var("c").index(var("ids").index(var("j"))).gt(var("key")),
                            vec![
                                set_index(
                                    var("ids"),
                                    var("j").add(iconst(1)),
                                    var("ids").index(var("j")),
                                ),
                                assign("j", var("j").sub(iconst(1))),
                            ],
                            vec![assign("moving", iconst(0))],
                        )],
                    ),
                    set_index(var("ids"), var("j").add(iconst(1)), var("id")),
                ],
            ),
            ret_void(),
        ],
    );

    // query: select ids where a[i] < qa && b[i] % qb == 0,
    // order by c, return [count, id0, id1, ...].
    m.func_with_attrs(
        "query",
        vec![
            ("n", DType::Int),
            ("a", DType::int_arr()),
            ("b", DType::int_arr()),
            ("c", DType::int_arr()),
            ("qa", DType::Int),
            ("qb", DType::Int),
        ],
        Some(DType::int_arr()),
        vec![
            let_("ids", new_arr(DType::Int, var("n"))),
            let_("k", iconst(0)),
            for_(
                "i",
                iconst(0),
                var("n"),
                vec![if_(
                    var("a")
                        .index(var("i"))
                        .lt(var("qa"))
                        .bitand(var("b").index(var("i")).rem(var("qb")).eq(iconst(0))),
                    vec![
                        set_index(var("ids"), var("k"), var("i")),
                        assign("k", var("k").add(iconst(1))),
                    ],
                )],
            ),
            expr_stmt(call("sort_by_key", vec![var("ids"), var("k"), var("c")])),
            let_("out", new_arr(DType::Int, var("k").add(iconst(1)))),
            set_index(var("out"), iconst(0), var("k")),
            for_(
                "i",
                iconst(0),
                var("k"),
                vec![set_index(
                    var("out"),
                    var("i").add(iconst(1)),
                    var("ids").index(var("i")),
                )],
            ),
            ret(var("out")),
        ],
        MethodAttrs {
            potential: true,
            size_param: Some(0),
            ..Default::default()
        },
    );

    m.compile().expect("db compiles")
}

/// Native reference (stable insertion order preserved for equal keys,
/// matching the MJVM's insertion sort).
pub fn reference(a: &[i32], b: &[i32], c: &[i32], qa: i32, qb: i32) -> Vec<i32> {
    let mut ids: Vec<i32> = (0..a.len() as i32)
        .filter(|&i| a[i as usize] < qa && b[i as usize] % qb == 0)
        .collect();
    ids.sort_by_key(|&i| c[i as usize]); // stable, like insertion sort
    let mut out = vec![ids.len() as i32];
    out.extend(ids);
    out
}

/// The db workload.
pub struct Db {
    program: Program,
    method: MethodId,
}

impl Db {
    /// Build the workload.
    pub fn new() -> Db {
        let program = build_program();
        let method = program.find_method(MODULE_CLASS, "query").expect("method");
        Db { program, method }
    }
}

impl Default for Db {
    fn default() -> Self {
        Db::new()
    }
}

impl Workload for Db {
    fn name(&self) -> &str {
        "db"
    }
    fn description(&self) -> &str {
        "A database query system from SpecJVM98 benchmark suite"
    }
    fn program(&self) -> &Program {
        &self.program
    }
    fn potential_method(&self) -> MethodId {
        self.method
    }
    fn sizes(&self) -> Vec<u32> {
        vec![128, 256, 512, 1024]
    }
    fn size_meaning(&self) -> &str {
        "number of table records"
    }
    fn make_args(&self, heap: &mut Heap, size: u32, rng: &mut SmallRng) -> Vec<Value> {
        let a = gen_ints(size, 0, 1000, rng);
        let b = gen_ints(size, 0, 1000, rng);
        let c = gen_ints(size, 0, 1_000_000, rng);
        vec![
            Value::Int(size as i32),
            Value::Ref(alloc_ints(heap, &a)),
            Value::Ref(alloc_ints(heap, &b)),
            Value::Ref(alloc_ints(heap, &c)),
            Value::Int(QA),
            Value::Int(QB),
        ]
    }
    fn check(&self, heap: &Heap, size: u32, result: Option<Value>) -> Option<bool> {
        let h = match result {
            Some(Value::Ref(h)) => h,
            _ => return Some(false),
        };
        let out = read_ints(heap, h);
        let count = *out.first()? as usize;
        Some(out.len() == count + 1 && count <= size as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_jvm::verify::verify_program;
    use jem_jvm::Vm;
    use rand::SeedableRng;

    #[test]
    fn program_verifies() {
        verify_program(&build_program()).unwrap();
    }

    #[test]
    fn handcrafted_query() {
        let w = Db::new();
        let a = vec![100, 600, 200, 300];
        let b = vec![3, 3, 4, 9];
        let c = vec![50, 10, 30, 20];
        // Matches: id0 (a<500, b%3==0), id3. Ordered by c: id3 (20), id0 (50).
        let mut vm = Vm::client(w.program());
        let args = vec![
            Value::Int(4),
            Value::Ref(alloc_ints(&mut vm.heap, &a)),
            Value::Ref(alloc_ints(&mut vm.heap, &b)),
            Value::Ref(alloc_ints(&mut vm.heap, &c)),
            Value::Int(QA),
            Value::Int(QB),
        ];
        let out = vm.invoke(w.potential_method(), args).unwrap();
        let res = read_ints(&vm.heap, out.unwrap().as_ref().unwrap());
        assert_eq!(res, vec![2, 3, 0]);
    }

    #[test]
    fn matches_reference_on_random_tables() {
        let w = Db::new();
        for seed in [7u64, 8, 9] {
            let rng = SmallRng::seed_from_u64(seed);
            let a = gen_ints(150, 0, 1000, &mut rng.clone());
            let mut rng2 = rng.clone();
            let _ = gen_ints(150, 0, 1000, &mut rng2);
            let b = gen_ints(150, 0, 1000, &mut rng2.clone());
            // Rebuild exactly as make_args does.
            let mut rng3 = SmallRng::seed_from_u64(seed);
            let aa = gen_ints(150, 0, 1000, &mut rng3);
            let bb = gen_ints(150, 0, 1000, &mut rng3);
            let cc = gen_ints(150, 0, 1_000_000, &mut rng3);
            assert_eq!(a, aa);
            let _ = b;
            let expect = reference(&aa, &bb, &cc, QA, QB);

            let mut vm = Vm::client(w.program());
            let mut rng = SmallRng::seed_from_u64(seed);
            let args = w.make_args(&mut vm.heap, 150, &mut rng);
            let out = vm.invoke(w.potential_method(), args).unwrap();
            let res = read_ints(&vm.heap, out.unwrap().as_ref().unwrap());
            assert_eq!(res, expect, "seed {seed}");
        }
    }

    #[test]
    fn empty_result_sets_work() {
        let w = Db::new();
        let a = vec![900, 901];
        let b = vec![1, 2];
        let c = vec![0, 0];
        let mut vm = Vm::client(w.program());
        let args = vec![
            Value::Int(2),
            Value::Ref(alloc_ints(&mut vm.heap, &a)),
            Value::Ref(alloc_ints(&mut vm.heap, &b)),
            Value::Ref(alloc_ints(&mut vm.heap, &c)),
            Value::Int(QA),
            Value::Int(QB),
        ];
        let out = vm.invoke(w.potential_method(), args).unwrap();
        let res = read_ints(&vm.heap, out.unwrap().as_ref().unwrap());
        assert_eq!(res, vec![0]);
    }
}

//! **pf — Path-Finder** (paper Fig 3).
//!
//! "Given a map and a source location (node), finds the shortest path
//! tree with the source location as root." Size parameter: the number
//! of nodes (the generated maps carry ~3 edges per node).
//!
//! Dijkstra with O(n²) linear minimum extraction — the standard choice
//! on embedded targets without a priority-queue library.

use crate::util::{alloc_ints, gen_graph, read_ints};
use jem_core::Workload;
use jem_jvm::dsl::*;
use jem_jvm::{Heap, MethodAttrs, MethodId, Program, Value};
use rand::rngs::SmallRng;

/// "Infinity" distance marker (fits in i32 with headroom for adds).
pub const INF: i32 = 1 << 29;

/// Build the MJVM program.
pub fn build_program() -> Program {
    let mut m = ModuleBuilder::new();

    m.func_with_attrs(
        "shortest_paths",
        vec![
            ("n", DType::Int),
            ("off", DType::int_arr()),
            ("dst", DType::int_arr()),
            ("wt", DType::int_arr()),
            ("src", DType::Int),
        ],
        Some(DType::int_arr()),
        vec![
            let_("dist", new_arr(DType::Int, var("n"))),
            let_("done", new_arr(DType::Int, var("n"))),
            for_(
                "i",
                iconst(0),
                var("n"),
                vec![set_index(var("dist"), var("i"), iconst(INF))],
            ),
            set_index(var("dist"), var("src"), iconst(0)),
            for_(
                "round",
                iconst(0),
                var("n"),
                vec![
                    // Find the unvisited node with minimum distance.
                    let_("u", iconst(-1)),
                    let_("best", iconst(INF)),
                    for_(
                        "i",
                        iconst(0),
                        var("n"),
                        vec![if_(
                            var("done")
                                .index(var("i"))
                                .eq(iconst(0))
                                .bitand(var("dist").index(var("i")).lt(var("best"))),
                            vec![
                                assign("best", var("dist").index(var("i"))),
                                assign("u", var("i")),
                            ],
                        )],
                    ),
                    if_(
                        var("u").ge(iconst(0)),
                        vec![
                            set_index(var("done"), var("u"), iconst(1)),
                            // Relax outgoing edges.
                            for_(
                                "e",
                                var("off").index(var("u")),
                                var("off").index(var("u").add(iconst(1))),
                                vec![
                                    let_("v", var("dst").index(var("e"))),
                                    let_(
                                        "nd",
                                        var("dist").index(var("u")).add(var("wt").index(var("e"))),
                                    ),
                                    if_(
                                        var("nd").lt(var("dist").index(var("v"))),
                                        vec![set_index(var("dist"), var("v"), var("nd"))],
                                    ),
                                ],
                            ),
                        ],
                    ),
                ],
            ),
            ret(var("dist")),
        ],
        MethodAttrs {
            potential: true,
            size_param: Some(0),
            ..Default::default()
        },
    );

    m.compile().expect("pf compiles")
}

/// Native reference (identical algorithm).
pub fn reference(n: usize, off: &[i32], dst: &[i32], wt: &[i32], src: usize) -> Vec<i32> {
    let mut dist = vec![INF; n];
    let mut done = vec![false; n];
    dist[src] = 0;
    for _ in 0..n {
        let mut u = usize::MAX;
        let mut best = INF;
        for i in 0..n {
            if !done[i] && dist[i] < best {
                best = dist[i];
                u = i;
            }
        }
        if u == usize::MAX {
            break;
        }
        done[u] = true;
        for e in off[u] as usize..off[u + 1] as usize {
            let v = dst[e] as usize;
            let nd = dist[u] + wt[e];
            if nd < dist[v] {
                dist[v] = nd;
            }
        }
    }
    dist
}

/// The pf workload.
pub struct Pf {
    program: Program,
    method: MethodId,
}

impl Pf {
    /// Build the workload.
    pub fn new() -> Pf {
        let program = build_program();
        let method = program
            .find_method(MODULE_CLASS, "shortest_paths")
            .expect("method");
        Pf { program, method }
    }
}

impl Default for Pf {
    fn default() -> Self {
        Pf::new()
    }
}

impl Workload for Pf {
    fn name(&self) -> &str {
        "pf"
    }
    fn description(&self) -> &str {
        "Given a map and a source location (node), finds the shortest path tree with the source location as root"
    }
    fn program(&self) -> &Program {
        &self.program
    }
    fn potential_method(&self) -> MethodId {
        self.method
    }
    fn sizes(&self) -> Vec<u32> {
        vec![16, 32, 64, 128]
    }
    fn size_meaning(&self) -> &str {
        "number of map nodes"
    }
    fn make_args(&self, heap: &mut Heap, size: u32, rng: &mut SmallRng) -> Vec<Value> {
        let (off, dst, wt) = gen_graph(size, 2, rng);
        vec![
            Value::Int(size as i32),
            Value::Ref(alloc_ints(heap, &off)),
            Value::Ref(alloc_ints(heap, &dst)),
            Value::Ref(alloc_ints(heap, &wt)),
            Value::Int(0),
        ]
    }
    fn check(&self, heap: &Heap, size: u32, result: Option<Value>) -> Option<bool> {
        let h = match result {
            Some(Value::Ref(h)) => h,
            _ => return Some(false),
        };
        let dist = read_ints(heap, h);
        // Connected graph: every node reachable, source at 0.
        Some(dist.len() == size as usize && dist[0] == 0 && dist.iter().all(|&d| d < INF))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_jvm::verify::verify_program;
    use jem_jvm::Vm;
    use rand::SeedableRng;

    #[test]
    fn program_verifies() {
        verify_program(&build_program()).unwrap();
    }

    #[test]
    fn matches_reference_on_random_graphs() {
        let w = Pf::new();
        for seed in [1u64, 2, 3] {
            let mut rng = SmallRng::seed_from_u64(seed);
            let (off, dst, wt) = gen_graph(40, 2, &mut rng.clone());
            let mut vm = Vm::client(w.program());
            let args = w.make_args(&mut vm.heap, 40, &mut rng);
            let out = vm.invoke(w.potential_method(), args).unwrap();
            let h = out.unwrap().as_ref().unwrap();
            assert_eq!(
                read_ints(&vm.heap, h),
                reference(40, &off, &dst, &wt, 0),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn tiny_handcrafted_graph() {
        // 0 -1- 1 -1- 2, plus a 10-weight shortcut 0-2.
        let w = Pf::new();
        let off = vec![0, 2, 4, 6];
        let dst = vec![1, 2, 0, 2, 1, 0];
        let wt = vec![1, 10, 1, 1, 1, 10];
        let mut vm = Vm::client(w.program());
        let args = vec![
            Value::Int(3),
            Value::Ref(alloc_ints(&mut vm.heap, &off)),
            Value::Ref(alloc_ints(&mut vm.heap, &dst)),
            Value::Ref(alloc_ints(&mut vm.heap, &wt)),
            Value::Int(0),
        ];
        let out = vm.invoke(w.potential_method(), args).unwrap();
        let dist = read_ints(&vm.heap, out.unwrap().as_ref().unwrap());
        assert_eq!(dist, vec![0, 1, 2]);
    }
}

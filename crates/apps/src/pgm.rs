//! Minimal PGM (portable graymap) reader/writer.
//!
//! The paper's image benchmarks take "an image (in PGM format)"; the
//! example binaries use this module to read/write real image files
//! around the MJVM pipeline. Supports P2 (ASCII) and P5 (binary),
//! 8-bit depth.

use std::fmt;

/// A grayscale image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pgm {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major pixels, 0..=255.
    pub pixels: Vec<i32>,
}

/// PGM parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PgmError {
    /// Bad magic number (not P2/P5).
    BadMagic,
    /// Malformed or missing header fields.
    BadHeader,
    /// Fewer pixels than the header promised.
    Truncated,
    /// Pixel value above the declared maximum.
    BadPixel,
}

impl fmt::Display for PgmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PgmError::BadMagic => write!(f, "not a P2/P5 PGM file"),
            PgmError::BadHeader => write!(f, "malformed PGM header"),
            PgmError::Truncated => write!(f, "PGM pixel data truncated"),
            PgmError::BadPixel => write!(f, "pixel exceeds maxval"),
        }
    }
}

impl std::error::Error for PgmError {}

impl Pgm {
    /// Wrap a square image buffer.
    ///
    /// # Panics
    /// If `pixels.len() != edge * edge`.
    pub fn square(edge: usize, pixels: Vec<i32>) -> Pgm {
        assert_eq!(pixels.len(), edge * edge, "pixel count mismatch");
        Pgm {
            width: edge,
            height: edge,
            pixels,
        }
    }

    /// Encode as binary P5.
    pub fn to_p5(&self) -> Vec<u8> {
        let mut out = format!("P5\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.extend(self.pixels.iter().map(|&p| p.clamp(0, 255) as u8));
        out
    }

    /// Encode as ASCII P2.
    pub fn to_p2(&self) -> String {
        let mut out = format!("P2\n{} {}\n255\n", self.width, self.height);
        for row in self.pixels.chunks(self.width) {
            let line: Vec<String> = row.iter().map(|&p| p.clamp(0, 255).to_string()).collect();
            out.push_str(&line.join(" "));
            out.push('\n');
        }
        out
    }

    /// Decode from P2 or P5 bytes.
    ///
    /// # Errors
    /// [`PgmError`] for malformed input.
    pub fn parse(bytes: &[u8]) -> Result<Pgm, PgmError> {
        if bytes.len() < 2 {
            return Err(PgmError::BadMagic);
        }
        let magic = &bytes[..2];
        match magic {
            b"P2" => parse_p2(bytes),
            b"P5" => parse_p5(bytes),
            _ => Err(PgmError::BadMagic),
        }
    }
}

/// Tokenize header fields, skipping whitespace and `#` comments.
/// Returns (width, height, maxval, offset-just-past-maxval-whitespace).
fn parse_header(bytes: &[u8]) -> Result<(usize, usize, u32, usize), PgmError> {
    let mut fields = Vec::with_capacity(3);
    let mut i = 2; // past magic
    while fields.len() < 3 {
        // Skip whitespace/comments.
        loop {
            match bytes.get(i) {
                Some(b'#') => {
                    while !matches!(bytes.get(i), None | Some(b'\n')) {
                        i += 1;
                    }
                }
                Some(c) if c.is_ascii_whitespace() => i += 1,
                _ => break,
            }
        }
        let start = i;
        while bytes.get(i).is_some_and(u8::is_ascii_digit) {
            i += 1;
        }
        if i == start {
            return Err(PgmError::BadHeader);
        }
        let text = std::str::from_utf8(&bytes[start..i]).map_err(|_| PgmError::BadHeader)?;
        fields.push(text.parse::<u64>().map_err(|_| PgmError::BadHeader)?);
    }
    // Exactly one whitespace byte after maxval (per spec) for P5.
    let (w, h, maxval) = (fields[0], fields[1], fields[2]);
    if w == 0 || h == 0 || maxval == 0 || maxval > 255 {
        return Err(PgmError::BadHeader);
    }
    Ok((w as usize, h as usize, maxval as u32, i + 1))
}

fn parse_p5(bytes: &[u8]) -> Result<Pgm, PgmError> {
    let (width, height, maxval, data_at) = parse_header(bytes)?;
    let n = width * height;
    let data = bytes.get(data_at..data_at + n).ok_or(PgmError::Truncated)?;
    let pixels: Vec<i32> = data.iter().map(|&b| i32::from(b)).collect();
    if pixels.iter().any(|&p| p as u32 > maxval) {
        return Err(PgmError::BadPixel);
    }
    Ok(Pgm {
        width,
        height,
        pixels,
    })
}

fn parse_p2(bytes: &[u8]) -> Result<Pgm, PgmError> {
    let (width, height, maxval, data_at) = parse_header(bytes)?;
    let text = std::str::from_utf8(&bytes[data_at.saturating_sub(1)..])
        .map_err(|_| PgmError::BadHeader)?;
    let mut pixels = Vec::with_capacity(width * height);
    for tok in text.split_ascii_whitespace() {
        let v: u32 = tok.parse().map_err(|_| PgmError::BadHeader)?;
        if v > maxval {
            return Err(PgmError::BadPixel);
        }
        pixels.push(v as i32);
        if pixels.len() == width * height {
            break;
        }
    }
    if pixels.len() < width * height {
        return Err(PgmError::Truncated);
    }
    Ok(Pgm {
        width,
        height,
        pixels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Pgm {
        Pgm {
            width: 3,
            height: 2,
            pixels: vec![0, 128, 255, 10, 20, 30],
        }
    }

    #[test]
    fn p5_round_trips() {
        let img = sample();
        let encoded = img.to_p5();
        assert_eq!(Pgm::parse(&encoded).unwrap(), img);
    }

    #[test]
    fn p2_round_trips() {
        let img = sample();
        let encoded = img.to_p2();
        assert_eq!(Pgm::parse(encoded.as_bytes()).unwrap(), img);
    }

    #[test]
    fn comments_are_skipped() {
        let text = "P2\n# created by jem\n3 2\n# another\n255\n0 128 255 10 20 30\n";
        assert_eq!(Pgm::parse(text.as_bytes()).unwrap(), sample());
    }

    #[test]
    fn bad_inputs_rejected() {
        assert_eq!(Pgm::parse(b"JPEG"), Err(PgmError::BadMagic));
        assert_eq!(Pgm::parse(b"P5\n3 2\n255\nab"), Err(PgmError::Truncated));
        assert_eq!(Pgm::parse(b"P2\nx y\n255\n"), Err(PgmError::BadHeader));
        assert_eq!(Pgm::parse(b"P2\n1 1\n100\n200\n"), Err(PgmError::BadPixel));
        assert_eq!(Pgm::parse(b"P2\n0 1\n255\n"), Err(PgmError::BadHeader));
    }

    #[test]
    fn square_helper_checks_length() {
        let img = Pgm::square(2, vec![1, 2, 3, 4]);
        assert_eq!(img.width, 2);
        assert_eq!(img.height, 2);
    }

    #[test]
    #[should_panic(expected = "pixel count mismatch")]
    fn square_rejects_bad_length() {
        let _ = Pgm::square(2, vec![1, 2, 3]);
    }
}

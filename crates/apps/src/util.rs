//! Shared helpers: moving data between Rust and the MJVM heap, and
//! deterministic workload generation.

use jem_jvm::{Handle, Heap, Value};
use rand::rngs::SmallRng;
use rand::Rng;

/// Allocate an `int[]` holding `data`.
pub fn alloc_ints(heap: &mut Heap, data: &[i32]) -> Handle {
    let h = heap.alloc_int_array(data.len());
    for (i, &x) in data.iter().enumerate() {
        heap.array_set(h, i, Value::Int(x)).expect("fresh array");
    }
    h
}

/// Allocate a `float[]` holding `data`.
pub fn alloc_floats(heap: &mut Heap, data: &[f64]) -> Handle {
    let h = heap.alloc_float_array(data.len());
    for (i, &x) in data.iter().enumerate() {
        heap.array_set(h, i, Value::Float(x)).expect("fresh array");
    }
    h
}

/// Read an `int[]` back into a Rust vector.
///
/// # Panics
/// If `h` is not an int array.
pub fn read_ints(heap: &Heap, h: Handle) -> Vec<i32> {
    let len = heap.array_len(h).expect("array handle");
    (0..len)
        .map(|i| {
            heap.array_get(h, i)
                .expect("in bounds")
                .as_int()
                .expect("int array")
        })
        .collect()
}

/// Read a `float[]` back into a Rust vector.
///
/// # Panics
/// If `h` is not a float array.
pub fn read_floats(heap: &Heap, h: Handle) -> Vec<f64> {
    let len = heap.array_len(h).expect("array handle");
    (0..len)
        .map(|i| {
            heap.array_get(h, i)
                .expect("in bounds")
                .as_float()
                .expect("float array")
        })
        .collect()
}

/// A deterministic grayscale test image (0..=255) with smooth
/// structure plus speckle — gives filters realistic gradients, edges
/// and noise.
pub fn gen_image(edge: u32, rng: &mut SmallRng) -> Vec<i32> {
    let s = edge as i32;
    let mut img = Vec::with_capacity((s * s) as usize);
    for y in 0..s {
        for x in 0..s {
            // Soft diagonal ramp + a bright disc + noise.
            let ramp = (x + y) * 255 / (2 * s).max(1);
            let cx = x - s / 2;
            let cy = y - s / 3;
            let disc = if cx * cx + cy * cy < (s / 4) * (s / 4) {
                80
            } else {
                0
            };
            let noise = rng.gen_range(-12..=12);
            img.push((ramp + disc + noise).clamp(0, 255));
        }
    }
    img
}

/// A deterministic random int array for sorting/database workloads.
pub fn gen_ints(n: u32, lo: i32, hi: i32, rng: &mut SmallRng) -> Vec<i32> {
    (0..n).map(|_| rng.gen_range(lo..=hi)).collect()
}

/// A random connected graph in CSR form: `(offsets, dst, weight)`.
/// Node 0 is connected to everything through a random spanning tree
/// plus `extra_per_node` extra edges per node. Edges are directed both
/// ways.
pub fn gen_graph(
    n: u32,
    extra_per_node: u32,
    rng: &mut SmallRng,
) -> (Vec<i32>, Vec<i32>, Vec<i32>) {
    let n = n as usize;
    let mut adj: Vec<Vec<(i32, i32)>> = vec![Vec::new(); n];
    // Spanning tree: each node i>0 links to a random earlier node.
    for i in 1..n {
        let j = rng.gen_range(0..i);
        let w = rng.gen_range(1..=100);
        adj[i].push((j as i32, w));
        adj[j].push((i as i32, w));
    }
    // Extra edges.
    for i in 0..n {
        for _ in 0..extra_per_node {
            let j = rng.gen_range(0..n);
            if j != i {
                let w = rng.gen_range(1..=100);
                adj[i].push((j as i32, w));
                adj[j].push((i as i32, w));
            }
        }
    }
    let mut offsets = Vec::with_capacity(n + 1);
    let mut dst = Vec::new();
    let mut weight = Vec::new();
    offsets.push(0);
    for edges in &adj {
        for &(d, w) in edges {
            dst.push(d);
            weight.push(w);
        }
        offsets.push(dst.len() as i32);
    }
    (offsets, dst, weight)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn int_array_round_trip() {
        let mut heap = Heap::new();
        let data = vec![3, -1, 4, 1, 5];
        let h = alloc_ints(&mut heap, &data);
        assert_eq!(read_ints(&heap, h), data);
    }

    #[test]
    fn float_array_round_trip() {
        let mut heap = Heap::new();
        let data = vec![0.5, -1.25];
        let h = alloc_floats(&mut heap, &data);
        assert_eq!(read_floats(&heap, h), data);
    }

    #[test]
    fn image_pixels_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let img = gen_image(32, &mut rng);
        assert_eq!(img.len(), 1024);
        assert!(img.iter().all(|&p| (0..=255).contains(&p)));
        // Not constant.
        assert!(img.iter().any(|&p| p != img[0]));
    }

    #[test]
    fn graph_is_well_formed_and_connected() {
        let mut rng = SmallRng::seed_from_u64(2);
        let (off, dst, w) = gen_graph(50, 2, &mut rng);
        assert_eq!(off.len(), 51);
        assert_eq!(dst.len(), w.len());
        assert_eq!(*off.last().unwrap() as usize, dst.len());
        // BFS from 0 reaches all.
        let mut seen = [false; 50];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for &d in &dst[off[u] as usize..off[u + 1] as usize] {
                let v = d as usize;
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = gen_image(16, &mut SmallRng::seed_from_u64(7));
        let b = gen_image(16, &mut SmallRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = gen_image(16, &mut SmallRng::seed_from_u64(8));
        assert_ne!(a, c);
    }
}

//! **hpf — High-Pass-Filter** (paper Fig 3).
//!
//! "Given an image and a threshold, returns the image after filtering
//! out all frequencies below the threshold." Size parameter: the
//! image edge length (a multiple of 8).
//!
//! A genuine frequency-domain filter: the image is processed in 8×8
//! blocks with a 2-D DCT-II, coefficients whose radial frequency
//! `u + v` lies below the threshold are zeroed, and the block is
//! reconstructed with the inverse DCT. All arithmetic is
//! double-precision float — on the FPU-less microSPARC-IIep this is
//! exactly the kind of computation that makes offloading attractive.
//! The cosine basis is built on the fly with the stable two-term
//! recurrence `cos((m+1)θ) = 2cosθ·cos(mθ) − cos((m−1)θ)`, θ = π/16.

use crate::util::{alloc_ints, gen_image, read_ints};
use jem_core::Workload;
use jem_jvm::dsl::*;
use jem_jvm::{Heap, MethodAttrs, MethodId, Program, Value};
use rand::rngs::SmallRng;

/// Radial frequency threshold: coefficients with `u + v < THRESHOLD`
/// are filtered out (the DC and the lowest AC bands).
pub const THRESHOLD: i32 = 3;

/// cos(π/16) to double precision — seeds the cosine recurrence.
const COS_PI_16: f64 = 0.980_785_280_403_230_4;

/// Build the MJVM program.
pub fn build_program() -> Program {
    let mut m = ModuleBuilder::new();

    m.func(
        "clampi",
        vec![("v", DType::Int), ("lo", DType::Int), ("hi", DType::Int)],
        Some(DType::Int),
        vec![
            if_(var("v").lt(var("lo")), vec![ret(var("lo"))]),
            if_(var("v").gt(var("hi")), vec![ret(var("hi"))]),
            ret(var("v")),
        ],
    );

    // cos(m·π/16) table for m = 0..=105 ((2n+1)·u ≤ 15·7 = 105).
    m.func(
        "cos_table",
        vec![],
        Some(DType::float_arr()),
        vec![
            let_("t", new_arr(DType::Float, iconst(106))),
            set_index(var("t"), iconst(0), fconst(1.0)),
            set_index(var("t"), iconst(1), fconst(COS_PI_16)),
            for_(
                "mi",
                iconst(2),
                iconst(106),
                vec![set_index(
                    var("t"),
                    var("mi"),
                    fconst(2.0 * COS_PI_16)
                        .mul(var("t").index(var("mi").sub(iconst(1))))
                        .sub(var("t").index(var("mi").sub(iconst(2)))),
                )],
            ),
            ret(var("t")),
        ],
    );

    // Forward 8-point DCT-II of row `r` of the 8x8 block `b` into
    // row `r` of `o`: o[u] = Σ_n b[n]·cos((2n+1)u·π/16).
    // (Normalization folded into the inverse.)
    m.func(
        "dct8_rows",
        vec![
            ("b", DType::float_arr()),
            ("o", DType::float_arr()),
            ("cosv", DType::float_arr()),
        ],
        None,
        vec![
            for_(
                "r",
                iconst(0),
                iconst(8),
                vec![for_(
                    "u",
                    iconst(0),
                    iconst(8),
                    vec![
                        let_("acc", fconst(0.0)),
                        for_(
                            "nn",
                            iconst(0),
                            iconst(8),
                            vec![assign(
                                "acc",
                                var("acc").add(
                                    var("b").index(var("r").mul(iconst(8)).add(var("nn"))).mul(
                                        var("cosv").index(
                                            var("nn").mul(iconst(2)).add(iconst(1)).mul(var("u")),
                                        ),
                                    ),
                                ),
                            )],
                        ),
                        set_index(var("o"), var("r").mul(iconst(8)).add(var("u")), var("acc")),
                    ],
                )],
            ),
            ret_void(),
        ],
    );

    // Forward 8-point DCT-II down columns.
    m.func(
        "dct8_cols",
        vec![
            ("b", DType::float_arr()),
            ("o", DType::float_arr()),
            ("cosv", DType::float_arr()),
        ],
        None,
        vec![
            for_(
                "c",
                iconst(0),
                iconst(8),
                vec![for_(
                    "u",
                    iconst(0),
                    iconst(8),
                    vec![
                        let_("acc", fconst(0.0)),
                        for_(
                            "nn",
                            iconst(0),
                            iconst(8),
                            vec![assign(
                                "acc",
                                var("acc").add(
                                    var("b").index(var("nn").mul(iconst(8)).add(var("c"))).mul(
                                        var("cosv").index(
                                            var("nn").mul(iconst(2)).add(iconst(1)).mul(var("u")),
                                        ),
                                    ),
                                ),
                            )],
                        ),
                        set_index(var("o"), var("u").mul(iconst(8)).add(var("c")), var("acc")),
                    ],
                )],
            ),
            ret_void(),
        ],
    );

    // Inverse in one dimension with the DCT-III weights:
    // x[n] = (1/4)·(c[0]/2 + Σ_{u≥1} c[u]·cos((2n+1)u·π/16)).
    m.func(
        "idct8_cols",
        vec![
            ("b", DType::float_arr()),
            ("o", DType::float_arr()),
            ("cosv", DType::float_arr()),
        ],
        None,
        vec![
            for_(
                "c",
                iconst(0),
                iconst(8),
                vec![for_(
                    "nn",
                    iconst(0),
                    iconst(8),
                    vec![
                        let_("acc", var("b").index(var("c")).div(fconst(2.0))),
                        for_(
                            "u",
                            iconst(1),
                            iconst(8),
                            vec![assign(
                                "acc",
                                var("acc").add(
                                    var("b").index(var("u").mul(iconst(8)).add(var("c"))).mul(
                                        var("cosv").index(
                                            var("nn").mul(iconst(2)).add(iconst(1)).mul(var("u")),
                                        ),
                                    ),
                                ),
                            )],
                        ),
                        set_index(
                            var("o"),
                            var("nn").mul(iconst(8)).add(var("c")),
                            var("acc").div(fconst(4.0)),
                        ),
                    ],
                )],
            ),
            ret_void(),
        ],
    );

    // Inverse along rows.
    m.func(
        "idct8_rows",
        vec![
            ("b", DType::float_arr()),
            ("o", DType::float_arr()),
            ("cosv", DType::float_arr()),
        ],
        None,
        vec![
            for_(
                "r",
                iconst(0),
                iconst(8),
                vec![for_(
                    "nn",
                    iconst(0),
                    iconst(8),
                    vec![
                        let_(
                            "acc",
                            var("b").index(var("r").mul(iconst(8))).div(fconst(2.0)),
                        ),
                        for_(
                            "u",
                            iconst(1),
                            iconst(8),
                            vec![assign(
                                "acc",
                                var("acc").add(
                                    var("b").index(var("r").mul(iconst(8)).add(var("u"))).mul(
                                        var("cosv").index(
                                            var("nn").mul(iconst(2)).add(iconst(1)).mul(var("u")),
                                        ),
                                    ),
                                ),
                            )],
                        ),
                        set_index(
                            var("o"),
                            var("r").mul(iconst(8)).add(var("nn")),
                            var("acc").div(fconst(4.0)),
                        ),
                    ],
                )],
            ),
            ret_void(),
        ],
    );

    m.func_with_attrs(
        "high_pass",
        vec![
            ("s", DType::Int),
            ("img", DType::int_arr()),
            ("thresh", DType::Int),
        ],
        Some(DType::int_arr()),
        vec![
            let_("n", var("s").mul(var("s"))),
            let_("out", new_arr(DType::Int, var("n"))),
            let_("cosv", call("cos_table", vec![])),
            let_("blk", new_arr(DType::Float, iconst(64))),
            let_("tmp", new_arr(DType::Float, iconst(64))),
            let_("coef", new_arr(DType::Float, iconst(64))),
            for_(
                "by",
                iconst(0),
                var("s").div(iconst(8)),
                vec![for_(
                    "bx",
                    iconst(0),
                    var("s").div(iconst(8)),
                    vec![
                        // Load block.
                        for_(
                            "y",
                            iconst(0),
                            iconst(8),
                            vec![for_(
                                "x",
                                iconst(0),
                                iconst(8),
                                vec![set_index(
                                    var("blk"),
                                    var("y").mul(iconst(8)).add(var("x")),
                                    var("img")
                                        .index(
                                            var("by")
                                                .mul(iconst(8))
                                                .add(var("y"))
                                                .mul(var("s"))
                                                .add(var("bx").mul(iconst(8)))
                                                .add(var("x")),
                                        )
                                        .to_f(),
                                )],
                            )],
                        ),
                        // Forward 2-D DCT.
                        expr_stmt(call("dct8_rows", vec![var("blk"), var("tmp"), var("cosv")])),
                        expr_stmt(call(
                            "dct8_cols",
                            vec![var("tmp"), var("coef"), var("cosv")],
                        )),
                        // Zero low-frequency coefficients (u + v < thresh).
                        for_(
                            "u",
                            iconst(0),
                            iconst(8),
                            vec![for_(
                                "v",
                                iconst(0),
                                iconst(8),
                                vec![if_(
                                    var("u").add(var("v")).lt(var("thresh")),
                                    vec![set_index(
                                        var("coef"),
                                        var("u").mul(iconst(8)).add(var("v")),
                                        fconst(0.0),
                                    )],
                                )],
                            )],
                        ),
                        // Inverse 2-D DCT.
                        expr_stmt(call(
                            "idct8_cols",
                            vec![var("coef"), var("tmp"), var("cosv")],
                        )),
                        expr_stmt(call(
                            "idct8_rows",
                            vec![var("tmp"), var("blk"), var("cosv")],
                        )),
                        // Store block, re-centered on mid-gray.
                        for_(
                            "y",
                            iconst(0),
                            iconst(8),
                            vec![for_(
                                "x",
                                iconst(0),
                                iconst(8),
                                vec![set_index(
                                    var("out"),
                                    var("by")
                                        .mul(iconst(8))
                                        .add(var("y"))
                                        .mul(var("s"))
                                        .add(var("bx").mul(iconst(8)))
                                        .add(var("x")),
                                    call(
                                        "clampi",
                                        vec![
                                            var("blk")
                                                .index(var("y").mul(iconst(8)).add(var("x")))
                                                .add(fconst(128.5))
                                                .to_i(),
                                            iconst(0),
                                            iconst(255),
                                        ],
                                    ),
                                )],
                            )],
                        ),
                    ],
                )],
            ),
            ret(var("out")),
        ],
        MethodAttrs {
            potential: true,
            size_param: Some(0),
            ..Default::default()
        },
    );

    m.compile().expect("hpf compiles")
}

/// Native reference implementation (identical arithmetic).
pub fn reference(s: usize, img: &[i32], thresh: i32) -> Vec<i32> {
    // Cosine table via the same recurrence (bit-identical).
    let mut cosv = [0.0f64; 106];
    cosv[0] = 1.0;
    cosv[1] = COS_PI_16;
    for m in 2..106 {
        cosv[m] = 2.0 * COS_PI_16 * cosv[m - 1] - cosv[m - 2];
    }
    let n = s * s;
    let mut out = vec![0i32; n];
    let mut blk = [0.0f64; 64];
    let mut tmp = [0.0f64; 64];
    let mut coef = [0.0f64; 64];
    for by in 0..s / 8 {
        for bx in 0..s / 8 {
            for y in 0..8 {
                for x in 0..8 {
                    blk[y * 8 + x] = f64::from(img[(by * 8 + y) * s + bx * 8 + x]);
                }
            }
            // dct rows
            for r in 0..8 {
                for u in 0..8 {
                    let mut acc = 0.0;
                    for nn in 0..8 {
                        acc += blk[r * 8 + nn] * cosv[(2 * nn + 1) * u];
                    }
                    tmp[r * 8 + u] = acc;
                }
            }
            // dct cols
            for c in 0..8 {
                for u in 0..8 {
                    let mut acc = 0.0;
                    for nn in 0..8 {
                        acc += tmp[nn * 8 + c] * cosv[(2 * nn + 1) * u];
                    }
                    coef[u * 8 + c] = acc;
                }
            }
            for u in 0..8 {
                for v in 0..8 {
                    if (u + v) < thresh as usize {
                        coef[u * 8 + v] = 0.0;
                    }
                }
            }
            // idct cols
            for c in 0..8 {
                for nn in 0..8 {
                    let mut acc = coef[c] / 2.0;
                    for u in 1..8 {
                        acc += coef[u * 8 + c] * cosv[(2 * nn + 1) * u];
                    }
                    tmp[nn * 8 + c] = acc / 4.0;
                }
            }
            // idct rows
            for r in 0..8 {
                for nn in 0..8 {
                    let mut acc = tmp[r * 8] / 2.0;
                    for u in 1..8 {
                        acc += tmp[r * 8 + u] * cosv[(2 * nn + 1) * u];
                    }
                    blk[r * 8 + nn] = acc / 4.0;
                }
            }
            for y in 0..8 {
                for x in 0..8 {
                    let v = (blk[y * 8 + x] + 128.5) as i32;
                    out[(by * 8 + y) * s + bx * 8 + x] = v.clamp(0, 255);
                }
            }
        }
    }
    out
}

/// The hpf workload.
pub struct Hpf {
    program: Program,
    method: MethodId,
}

impl Hpf {
    /// Build the workload.
    pub fn new() -> Hpf {
        let program = build_program();
        let method = program
            .find_method(MODULE_CLASS, "high_pass")
            .expect("method");
        Hpf { program, method }
    }
}

impl Default for Hpf {
    fn default() -> Self {
        Hpf::new()
    }
}

impl Workload for Hpf {
    fn name(&self) -> &str {
        "hpf"
    }
    fn description(&self) -> &str {
        "Given an image and a threshold, returns the image after filtering out all frequencies below the threshold"
    }
    fn program(&self) -> &Program {
        &self.program
    }
    fn potential_method(&self) -> MethodId {
        self.method
    }
    fn sizes(&self) -> Vec<u32> {
        vec![8, 16, 24, 32, 48, 64, 96, 128]
    }
    fn calibration_sizes(&self) -> Vec<u32> {
        vec![8, 16, 32, 64, 128]
    }
    fn size_meaning(&self) -> &str {
        "image edge length (pixels, multiple of 8)"
    }
    fn make_args(&self, heap: &mut Heap, size: u32, rng: &mut SmallRng) -> Vec<Value> {
        let img = gen_image(size, rng);
        vec![
            Value::Int(size as i32),
            Value::Ref(alloc_ints(heap, &img)),
            Value::Int(THRESHOLD),
        ]
    }
    fn check(&self, heap: &Heap, size: u32, result: Option<Value>) -> Option<bool> {
        let h = match result {
            Some(Value::Ref(h)) => h,
            _ => return Some(false),
        };
        let out = read_ints(heap, h);
        Some(out.len() == (size * size) as usize && out.iter().all(|&p| (0..=255).contains(&p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_jvm::verify::verify_program;
    use jem_jvm::Vm;
    use rand::SeedableRng;

    #[test]
    fn program_verifies() {
        verify_program(&build_program()).unwrap();
    }

    #[test]
    fn matches_reference() {
        let w = Hpf::new();
        let mut rng = SmallRng::seed_from_u64(11);
        let img = gen_image(16, &mut rng.clone());
        let mut vm = Vm::client(w.program());
        let args = w.make_args(&mut vm.heap, 16, &mut rng);
        let out = vm.invoke(w.potential_method(), args).unwrap();
        let h = out.unwrap().as_ref().unwrap();
        assert_eq!(read_ints(&vm.heap, h), reference(16, &img, THRESHOLD));
    }

    #[test]
    fn constant_image_maps_to_midgray() {
        // A flat image is pure DC: filtering it out leaves 128 (+0.5
        // rounding) everywhere.
        let w = Hpf::new();
        let s = 16usize;
        let img = vec![77i32; s * s];
        let mut vm = Vm::client(w.program());
        let h = alloc_ints(&mut vm.heap, &img);
        let out = vm
            .invoke(
                w.potential_method(),
                vec![Value::Int(s as i32), Value::Ref(h), Value::Int(THRESHOLD)],
            )
            .unwrap();
        let res = read_ints(&vm.heap, out.unwrap().as_ref().unwrap());
        assert!(
            res.iter().all(|&p| (127..=129).contains(&p)),
            "flat image should collapse to mid-gray, got {:?}",
            &res[..8]
        );
    }

    #[test]
    fn sharp_edge_passes() {
        let w = Hpf::new();
        let s = 16usize;
        // Edge at column 5 — inside the first 8x8 block, so the block
        // has real AC energy (an edge on a block boundary would leave
        // every block constant, i.e. pure DC).
        let img: Vec<i32> = (0..s * s)
            .map(|i| if i % s < 5 { 20 } else { 220 })
            .collect();
        let mut vm = Vm::client(w.program());
        let h = alloc_ints(&mut vm.heap, &img);
        let out = vm
            .invoke(
                w.potential_method(),
                vec![Value::Int(s as i32), Value::Ref(h), Value::Int(THRESHOLD)],
            )
            .unwrap();
        let res = read_ints(&vm.heap, out.unwrap().as_ref().unwrap());
        // High-frequency content survives: strong deviations from 128.
        let strong = res.iter().filter(|&&p| (p - 128).abs() > 30).count();
        assert!(strong > 10, "edge energy must pass the filter ({strong})");
    }

    #[test]
    fn zero_threshold_is_near_identity() {
        // With threshold 0 nothing is filtered; DCT→IDCT must
        // reconstruct img - 128 offset... i.e. out ≈ img shifted by
        // +128? No: reconstruction returns the original values, and we
        // add 128.5 before truncation, so out ≈ img + 128 clamped.
        // Verify reconstruction fidelity on the reference directly.
        let mut rng = SmallRng::seed_from_u64(3);
        let img = gen_image(16, &mut rng);
        let out = reference(16, &img, 0);
        for (i, (&o, &p)) in out.iter().zip(&img).enumerate() {
            let expect = (p + 128).clamp(0, 255);
            assert!(
                (o - expect).abs() <= 1,
                "pixel {i}: dct round-trip {o} vs {expect}"
            );
        }
    }
}

//! **fe — Function-Evaluator** (paper Fig 3).
//!
//! "Given a function `f`, a range `x`, and a step size, calculates the
//! integral of `f(x)` in this range." Size parameter: the step count.
//!
//! The integrand is `4 / (1 + x²)` evaluated by midpoint quadrature —
//! over `[0, 1]` the integral is π, which doubles as a correctness
//! oracle.

use crate::util::read_floats;
use jem_core::Workload;
use jem_jvm::dsl::*;
use jem_jvm::{Heap, MethodAttrs, MethodId, Program, Value};
use rand::rngs::SmallRng;

/// Build the MJVM program.
pub fn build_program() -> Program {
    let mut m = ModuleBuilder::new();

    m.func(
        "f",
        vec![("x", DType::Float)],
        Some(DType::Float),
        vec![ret(fconst(4.0).div(fconst(1.0).add(var("x").mul(var("x")))))],
    );

    m.func_with_attrs(
        "integrate",
        vec![
            ("steps", DType::Int),
            ("lo", DType::Float),
            ("hi", DType::Float),
        ],
        Some(DType::Float),
        vec![
            let_("h", var("hi").sub(var("lo")).div(var("steps").to_f())),
            let_("acc", fconst(0.0)),
            for_(
                "i",
                iconst(0),
                var("steps"),
                vec![
                    let_(
                        "x",
                        var("lo").add(var("i").to_f().add(fconst(0.5)).mul(var("h"))),
                    ),
                    assign("acc", var("acc").add(call("f", vec![var("x")]))),
                ],
            ),
            ret(var("acc").mul(var("h"))),
        ],
        MethodAttrs {
            potential: true,
            size_param: Some(0),
            ..Default::default()
        },
    );

    m.compile().expect("fe compiles")
}

/// Native Rust reference (bit-identical operation order).
pub fn reference(steps: u32, lo: f64, hi: f64) -> f64 {
    let h = (hi - lo) / f64::from(steps);
    let mut acc = 0.0f64;
    for i in 0..steps {
        let x = lo + (f64::from(i) + 0.5) * h;
        acc += 4.0 / (1.0 + x * x);
    }
    acc * h
}

/// The fe workload.
pub struct Fe {
    program: Program,
    method: MethodId,
}

impl Fe {
    /// Build the workload.
    pub fn new() -> Fe {
        let program = build_program();
        let method = program
            .find_method(MODULE_CLASS, "integrate")
            .expect("method");
        Fe { program, method }
    }
}

impl Default for Fe {
    fn default() -> Self {
        Fe::new()
    }
}

impl Workload for Fe {
    fn name(&self) -> &str {
        "fe"
    }
    fn description(&self) -> &str {
        "Given a function f, a range x, and a step size, calculates the integral of f(x) in this range"
    }
    fn program(&self) -> &Program {
        &self.program
    }
    fn potential_method(&self) -> MethodId {
        self.method
    }
    fn sizes(&self) -> Vec<u32> {
        vec![4096, 8192, 16384, 32768, 65536]
    }
    fn size_meaning(&self) -> &str {
        "step count over [0, 1]"
    }
    fn make_args(&self, _heap: &mut Heap, size: u32, _rng: &mut SmallRng) -> Vec<Value> {
        vec![
            Value::Int(size as i32),
            Value::Float(0.0),
            Value::Float(1.0),
        ]
    }
    fn check(&self, _heap: &Heap, size: u32, result: Option<Value>) -> Option<bool> {
        let got = match result {
            Some(Value::Float(v)) => v,
            _ => return Some(false),
        };
        Some(got == reference(size, 0.0, 1.0))
    }
}

/// Decode a float result (for examples).
pub fn result_value(heap: &Heap, result: Option<Value>) -> f64 {
    match result {
        Some(Value::Float(v)) => v,
        Some(Value::Ref(h)) => read_floats(heap, h)[0],
        _ => f64::NAN,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_jvm::verify::verify_program;
    use jem_jvm::Vm;
    use rand::SeedableRng;

    #[test]
    fn program_verifies() {
        verify_program(&build_program()).unwrap();
    }

    #[test]
    fn matches_reference_and_pi() {
        let fe = Fe::new();
        let mut vm = Vm::client(fe.program());
        let mut rng = SmallRng::seed_from_u64(0);
        let args = fe.make_args(&mut vm.heap, 512, &mut rng);
        let out = vm.invoke(fe.potential_method(), args).unwrap();
        assert_eq!(fe.check(&vm.heap, 512, out), Some(true));
        let v = match out {
            Some(Value::Float(v)) => v,
            other => panic!("{other:?}"),
        };
        assert!((v - std::f64::consts::PI).abs() < 1e-4, "{v}");
    }

    #[test]
    fn compiled_levels_bit_identical() {
        let fe = Fe::new();
        let m = fe.potential_method();
        let mut expect = None;
        for level in [
            None,
            Some(jem_jvm::OptLevel::L1),
            Some(jem_jvm::OptLevel::L2),
            Some(jem_jvm::OptLevel::L3),
        ] {
            let mut vm = Vm::client(fe.program());
            if let Some(level) = level {
                for mm in [fe.program().find_method(MODULE_CLASS, "f").unwrap(), m] {
                    let c = jem_jvm::compile(fe.program(), mm, level);
                    vm.install_native(mm, std::rc::Rc::new(c.code));
                }
            }
            let mut rng = SmallRng::seed_from_u64(0);
            let args = fe.make_args(&mut vm.heap, 300, &mut rng);
            let out = vm.invoke(m, args).unwrap();
            match &expect {
                None => expect = Some(out),
                Some(e) => assert_eq!(&out, e, "{level:?}"),
            }
        }
    }
}

//! `jem-top` — a live terminal dashboard for a running bench.
//!
//! ```text
//! jem-top <http://HOST:PORT | HOST:PORT | run.jts> [options]
//!   --refresh <ms>   wall-clock redraw cadence (default 500)
//!   --once           render a single frame and exit (no ANSI clear;
//!                    the scriptable/CI snapshot mode)
//!   --frames <n>     stop after n redraws
//!   --window a:b     restrict sparklines to [a, b] sim-ms
//!   --timeout <ms>   HTTP connect/read/write timeout (default 5000)
//! ```
//!
//! Two sources, picked by the argument's shape:
//!
//! * an address (`http://127.0.0.1:6220` or bare `127.0.0.1:6220`) —
//!   polls the embedded `--serve` endpoints of a live bench run:
//!   `/series` for the sparkline panels, `/health` for alerts, and
//!   `/metrics` for the decision mix and completion flag. Every
//!   request carries a connect *and* read/write deadline
//!   (`--timeout`, default 5 s), so `--once` against a server that
//!   never comes up fails fast with a clear error instead of hanging;
//! * a `.jts` path — tails the growing timeline of a run started with
//!   `--timeline run.jts --flush-every N` (no server needed), showing
//!   the same panels minus the decision mix and alerts, which only the
//!   live endpoints carry.
//!
//! Panels: per-component energy rate sparklines (per-sample deltas of
//! the cumulative ledger) with running totals, predictor relative
//! error, channel/breaker state, retry/fallback/degraded counters —
//! the run state the paper's adaptive strategies act on. The dashboard
//! is a pure reader: it never writes anywhere and the observed run is
//! byte-identical with or without it.
//!
//! Exit status: 0 on success (including a completed run), 1 on errors,
//! 2 on usage errors.

use jem_obs::tui::{fmt_si, spark_row, BOLD, CLEAR_HOME, RESET};
use jem_obs::wire::FollowStatus;
use jem_obs::{Json, JtsReader};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: jem-top <http://HOST:PORT | HOST:PORT | run.jts> \
                     [--refresh <ms>] [--once] [--frames <n>] [--window a:b] [--timeout <ms>]";

/// Per-series sample cap; sparkline resampling keeps the shape when
/// old samples roll off.
const KEEP: usize = 8192;

/// The energy components shown as rate panels, in ledger order.
const COMPONENTS: [&str; 5] = ["core", "dram", "leakage", "radio-tx", "radio-rx"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut source = None;
    let mut refresh_ms: u64 = 500;
    let mut frames: Option<usize> = None;
    let mut once = false;
    let mut window: Option<(f64, f64)> = None;
    let mut timeout_ms: u64 = 5000;
    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> Option<String> { args.get(i + 1).cloned() };
        match args[i].as_str() {
            "--refresh" => {
                let Some(v) = take(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("jem-top: --refresh needs a wall-clock millisecond count");
                    return ExitCode::from(2);
                };
                refresh_ms = v;
                i += 2;
            }
            "--frames" => {
                let Some(v) = take(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("jem-top: --frames needs an integer");
                    return ExitCode::from(2);
                };
                frames = Some(v);
                i += 2;
            }
            "--once" => {
                once = true;
                i += 1;
            }
            "--timeout" => {
                let Some(v) = take(i)
                    .and_then(|v| v.parse::<u64>().ok())
                    .filter(|&v| v > 0)
                else {
                    eprintln!("jem-top: --timeout needs a positive millisecond count");
                    return ExitCode::from(2);
                };
                timeout_ms = v;
                i += 2;
            }
            "--window" => {
                let parsed = take(i).and_then(|v| {
                    let (a, b) = v.split_once(':')?;
                    let a: f64 = a.parse().ok()?;
                    let b: f64 = b.parse().ok()?;
                    (a.is_finite() && b.is_finite() && a <= b).then_some((a, b))
                });
                let Some(w) = parsed else {
                    eprintln!("jem-top: --window needs a:b in sim-ms with a <= b");
                    return ExitCode::from(2);
                };
                window = Some(w);
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                if other.starts_with("--") {
                    eprintln!("jem-top: unknown option '{other}'");
                    return ExitCode::from(2);
                }
                if source.is_some() {
                    eprintln!("jem-top: unexpected argument '{other}'");
                    return ExitCode::from(2);
                }
                source = Some(other.to_string());
                i += 1;
            }
        }
    }
    let Some(source) = source else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if once {
        frames = Some(1);
    }
    let win_ns = window.map(|(a, b)| (a * 1e6, b * 1e6));

    // An existing .jts file (or a .jts-suffixed path) selects follow
    // mode; everything else is treated as a live-server address.
    if source.ends_with(".jts") || std::path::Path::new(&source).exists() {
        follow_jts(&source, refresh_ms, frames, once, win_ns)
    } else {
        let addr = source.strip_prefix("http://").unwrap_or(&source);
        watch_http(
            addr,
            refresh_ms,
            frames,
            once,
            win_ns,
            Duration::from_millis(timeout_ms),
        )
    }
}

// ---------------------------------------------------------------
// HTTP mode
// ---------------------------------------------------------------

/// One `GET` against the embedded server; returns the body of a 200.
/// Connect, read and write all carry `timeout` as their deadline, so
/// a server that never comes up (or stops mid-response) surfaces as a
/// prompt, explicit error rather than an indefinite hang.
fn http_get(addr: &str, path: &str, timeout: Duration) -> Result<String, String> {
    let sock = addr
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("cannot resolve {addr}: no addresses"))?;
    let mut stream = TcpStream::connect_timeout(&sock, timeout).map_err(|e| {
        format!(
            "cannot connect {addr} within {}ms: {e}",
            timeout.as_millis()
        )
    })?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| format!("cannot send to {addr}: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("cannot read from {addr}: {e}"))?;
    let Some((head, body)) = response.split_once("\r\n\r\n") else {
        return Err(format!("{addr}: malformed HTTP response"));
    };
    let status = head.lines().next().unwrap_or_default();
    if !status.contains(" 200 ") {
        return Err(format!("{addr}{path}: {status}"));
    }
    Ok(body.to_string())
}

/// Fetch one `/series` document and flatten it: all in-window sample
/// values across segments, plus the end value/label.
fn fetch_series(
    addr: &str,
    name: &str,
    win_ns: Option<(f64, f64)>,
    timeout: Duration,
) -> Result<(Vec<f64>, f64, Option<String>), String> {
    let mut path = format!("/series?name={name}");
    if let Some((a, b)) = win_ns {
        // The endpoint's window= is in sim-ms, like --window.
        path.push_str(&format!("&window={}:{}", a / 1e6, b / 1e6));
    }
    let body = http_get(addr, &path, timeout)?;
    let doc = Json::parse(&body).map_err(|e| format!("{name}: {e}"))?;
    let mut vals = Vec::new();
    if let Some(Json::Arr(segments)) = doc.get("segments") {
        for seg in segments {
            if let Some(Json::Arr(values)) = seg.get("values") {
                vals.extend(values.iter().filter_map(Json::as_f64));
            }
        }
    }
    let end = doc.get("end_value").and_then(Json::as_f64).unwrap_or(0.0);
    let end_label = doc
        .get("end_label")
        .and_then(Json::as_str)
        .map(str::to_string);
    Ok((vals, end, end_label))
}

/// Per-sample deltas of a cumulative column — the "rate" view the
/// energy panels sparkline.
fn deltas(cum: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(cum.len());
    let mut prev = 0.0;
    for &v in cum {
        out.push(v - prev);
        prev = v;
    }
    out
}

fn watch_http(
    addr: &str,
    refresh_ms: u64,
    frames: Option<usize>,
    once: bool,
    win_ns: Option<(f64, f64)>,
    timeout: Duration,
) -> ExitCode {
    let mut drawn = 0usize;
    loop {
        let frame = match render_http_frame(addr, win_ns, once, timeout) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("jem-top: {e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{frame}");
        let _ = std::io::stdout().flush();
        drawn += 1;
        let complete = frame.contains("(complete)");
        if complete || frames.is_some_and(|n| drawn >= n) {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(Duration::from_millis(refresh_ms));
    }
}

fn render_http_frame(
    addr: &str,
    win_ns: Option<(f64, f64)>,
    once: bool,
    timeout: Duration,
) -> Result<String, String> {
    let metrics = http_get(addr, "/metrics", timeout)?;
    let health =
        Json::parse(&http_get(addr, "/health", timeout)?).map_err(|e| format!("/health: {e}"))?;
    let complete = metric_value(&metrics, "jem_live_run_complete").unwrap_or(0.0) > 0.0;
    let events = metric_value(&metrics, "jem_live_events_total").unwrap_or(0.0);
    let invocations = metric_value(&metrics, "jem_live_invocations_total").unwrap_or(0.0);

    let mut out = String::new();
    if !once {
        out.push_str(CLEAR_HOME);
    }
    out.push_str(&format!(
        "{BOLD}jem-top{RESET}  http://{addr}  events={} invocations={}  {}\n",
        fmt_si(events),
        fmt_si(invocations),
        if complete { "(complete)" } else { "(running)" }
    ));

    let healthy = health.get("healthy").map(|h| matches!(h, Json::Bool(true)));
    let total_alerts = health
        .get("total_alerts")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    out.push_str(&format!(
        "health: {}  alerts={total_alerts}\n\n",
        match healthy {
            Some(true) => "OK",
            _ => "DEGRADED",
        }
    ));

    out.push_str(&format!("{BOLD}energy rate (nJ/sample){RESET}\n"));
    let name_w = COMPONENTS.iter().map(|c| c.len()).max().unwrap_or(0);
    for c in COMPONENTS {
        let (cum, end, _) = fetch_series(addr, &format!("energy.{c}.cum_nj"), win_ns, timeout)?;
        let rate = deltas(&cum);
        out.push_str(&format!(
            "  {}  total {} nJ\n",
            spark_row(c, name_w, &rate),
            fmt_si(end)
        ));
    }

    let (err, err_end, _) = fetch_series(addr, "predictor.err_rel", win_ns, timeout)?;
    out.push_str(&format!(
        "\n{BOLD}predictor{RESET}\n  {}  now {}\n",
        spark_row("err_rel", name_w, &err),
        fmt_si(err_end)
    ));

    let (_, _, breaker) = fetch_series(addr, "breaker.state", win_ns, timeout)?;
    let (_, retries, _) = fetch_series(addr, "counters.retries", win_ns, timeout)?;
    let (_, fallbacks, _) = fetch_series(addr, "counters.fallbacks", win_ns, timeout)?;
    let (_, degraded, _) = fetch_series(addr, "counters.degraded", win_ns, timeout)?;
    out.push_str(&format!(
        "\nbreaker: {}  retries={} fallbacks={} degraded={}\n",
        breaker.as_deref().unwrap_or("?"),
        fmt_si(retries),
        fmt_si(fallbacks),
        fmt_si(degraded)
    ));

    let decisions = decision_mix(&metrics);
    if !decisions.is_empty() {
        out.push_str("decisions:");
        for (mode, n) in &decisions {
            out.push_str(&format!("  {mode}={n}"));
        }
        out.push('\n');
    }

    if let Some(Json::Arr(alerts)) = health.get("alerts") {
        if !alerts.is_empty() {
            out.push_str(&format!("\n{BOLD}active alerts{RESET}\n"));
            for a in alerts.iter().take(8) {
                match (
                    a.get("monitor").and_then(Json::as_str),
                    a.get("message").and_then(Json::as_str),
                ) {
                    (Some(m), Some(msg)) => out.push_str(&format!("  [{m}] {msg}\n")),
                    _ => out.push_str(&format!("  {}\n", a.render())),
                }
            }
            if alerts.len() > 8 {
                out.push_str(&format!("  … and {} more\n", alerts.len() - 8));
            }
        }
    }
    Ok(out)
}

/// First sample of an unlabeled metric family in Prometheus text.
fn metric_value(text: &str, family: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(family)?;
        let rest = rest.trim_start();
        if rest.is_empty() || line.starts_with('#') {
            return None;
        }
        rest.split_whitespace().next()?.parse().ok()
    })
}

/// `jem_live_decisions_total{mode="…"} N` pairs, in exposition order.
fn decision_mix(text: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix("jem_live_decisions_total{mode=\"") else {
            continue;
        };
        let Some((mode, rest)) = rest.split_once('"') else {
            continue;
        };
        let Some(n) = rest
            .trim_start_matches('}')
            .split_whitespace()
            .next()
            .and_then(|v| v.parse::<f64>().ok())
        else {
            continue;
        };
        out.push((mode.to_string(), n as u64));
    }
    out
}

// ---------------------------------------------------------------
// .jts follow mode
// ---------------------------------------------------------------

fn follow_jts(
    path: &str,
    refresh_ms: u64,
    frames: Option<usize>,
    once: bool,
    win_ns: Option<(f64, f64)>,
) -> ExitCode {
    use jem_obs::timeline::{series_is_label, series_names};
    let catalogue = series_names();
    let idx_of = |name: &str| -> usize {
        catalogue
            .iter()
            .position(|s| s == name)
            .expect("v1 series catalogue")
    };
    let cum_idx: Vec<usize> = COMPONENTS
        .iter()
        .map(|c| idx_of(&format!("energy.{c}.cum_nj")))
        .collect();
    let err_idx = idx_of("predictor.err_rel");
    let breaker_idx = idx_of("breaker.state");
    let retries_idx = idx_of("counters.retries");
    let fallbacks_idx = idx_of("counters.fallbacks");
    let degraded_idx = idx_of("counters.degraded");

    let mut follower = match JtsReader::follow(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("jem-top: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Rate buffers per component plus the err_rel panel; scalars track
    // the latest sample only.
    let mut rates: Vec<Vec<f64>> = vec![Vec::new(); COMPONENTS.len()];
    let mut prev_cum = vec![0.0f64; COMPONENTS.len()];
    let mut prev_segment = usize::MAX;
    let mut errs: Vec<f64> = Vec::new();
    let mut last = [0.0f64; jem_obs::timeline::N_SERIES];
    let mut drawn = 0usize;
    loop {
        let mut done = false;
        loop {
            match follower.poll() {
                Ok(FollowStatus::Events(samples)) => {
                    for s in samples {
                        if win_ns.is_some_and(|(a, b)| s.t < a || s.t > b) {
                            continue;
                        }
                        if s.segment != prev_segment {
                            // Cumulative columns restart per segment.
                            prev_segment = s.segment;
                            prev_cum.iter_mut().for_each(|v| *v = 0.0);
                        }
                        for (slot, &idx) in cum_idx.iter().enumerate() {
                            rates[slot].push(s.vals[idx] - prev_cum[slot]);
                            prev_cum[slot] = s.vals[idx];
                            if rates[slot].len() > KEEP {
                                let cut = rates[slot].len() - KEEP;
                                rates[slot].drain(..cut);
                            }
                        }
                        errs.push(s.vals[err_idx]);
                        if errs.len() > KEEP {
                            let cut = errs.len() - KEEP;
                            errs.drain(..cut);
                        }
                        last.copy_from_slice(&s.vals);
                    }
                }
                Ok(FollowStatus::Idle) => break,
                Ok(FollowStatus::End) => {
                    done = true;
                    break;
                }
                Err(e) => {
                    eprintln!("jem-top: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }

        let mut out = String::new();
        if !once {
            out.push_str(CLEAR_HOME);
        }
        out.push_str(&format!(
            "{BOLD}jem-top{RESET}  {path}  segments={} samples={}  {}\n\n",
            follower.segments(),
            follower.samples(),
            if done { "(complete)" } else { "(following)" }
        ));
        out.push_str(&format!("{BOLD}energy rate (nJ/sample){RESET}\n"));
        let name_w = COMPONENTS.iter().map(|c| c.len()).max().unwrap_or(0);
        for (slot, c) in COMPONENTS.iter().enumerate() {
            out.push_str(&format!(
                "  {}  total {} nJ\n",
                spark_row(c, name_w, &rates[slot]),
                fmt_si(last[cum_idx[slot]])
            ));
        }
        out.push_str(&format!(
            "\n{BOLD}predictor{RESET}\n  {}  now {}\n",
            spark_row("err_rel", name_w, &errs),
            fmt_si(last[err_idx])
        ));
        debug_assert!(series_is_label(breaker_idx));
        // The .jts label table only lands in the footer, so a run
        // still in flight shows the numeric label id.
        let breaker = follower
            .labels()
            .get(last[breaker_idx] as usize)
            .cloned()
            .unwrap_or_else(|| format!("#{}", last[breaker_idx]));
        out.push_str(&format!(
            "\nbreaker: {breaker}  retries={} fallbacks={} degraded={}\n",
            fmt_si(last[retries_idx]),
            fmt_si(last[fallbacks_idx]),
            fmt_si(last[degraded_idx])
        ));
        // The decision mix and alerts only exist server-side; the .jts
        // panel set is the subset the timeline carries.
        print!("{out}");
        let _ = std::io::stdout().flush();
        drawn += 1;
        if done || frames.is_some_and(|n| drawn >= n) {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(Duration::from_millis(refresh_ms));
    }
}

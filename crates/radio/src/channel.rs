//! Wireless channel classes, distributions, and time-varying channel
//! processes.
//!
//! The paper's transmitter supports "four different power control
//! settings ... from a Class 1 setting for poor channel condition
//! (power = 5.88 W) to a Class 4 setting for the best (optimal)
//! channel condition (power = 0.37 W)". The evaluation drives the
//! channel with "user supplied distributions" over these classes and
//! builds three scenario families: predominantly good, predominantly
//! poor, and uniform.

use rand::distributions::Distribution;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four channel conditions / transmit power-control settings.
///
/// Class 1 = worst channel, highest transmit power;
/// Class 4 = best channel, lowest transmit power.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ChannelClass {
    /// Poor channel (PA at 5.88 W).
    C1,
    /// Fair channel (PA at 1.5 W).
    C2,
    /// Good channel (PA at 0.74 W).
    C3,
    /// Optimal channel (PA at 0.37 W).
    C4,
}

impl ChannelClass {
    /// All classes from worst to best.
    pub const ALL: [ChannelClass; 4] = [
        ChannelClass::C1,
        ChannelClass::C2,
        ChannelClass::C3,
        ChannelClass::C4,
    ];

    /// Zero-based index: C1 → 0 … C4 → 3.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            ChannelClass::C1 => 0,
            ChannelClass::C2 => 1,
            ChannelClass::C3 => 2,
            ChannelClass::C4 => 3,
        }
    }

    /// Build from a zero-based index.
    ///
    /// # Panics
    /// If `i >= 4`.
    pub fn from_index(i: usize) -> Self {
        Self::ALL[i]
    }

    /// A quality score in `[0, 1]`: 0 = worst (C1), 1 = best (C4).
    /// Used as the SNR proxy by the pilot estimator.
    pub fn quality(self) -> f64 {
        self.index() as f64 / 3.0
    }

    /// Map a quality score back to the nearest class.
    pub fn from_quality(q: f64) -> Self {
        let idx = (q.clamp(0.0, 1.0) * 3.0).round() as usize;
        Self::from_index(idx)
    }
}

impl fmt::Display for ChannelClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Class {}", self.index() + 1)
    }
}

/// A probability distribution over the four channel classes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelDist {
    /// Non-negative weights for C1..C4; normalized on sampling.
    pub weights: [f64; 4],
}

impl ChannelDist {
    /// Distribution placing all mass on one class.
    pub fn fixed(class: ChannelClass) -> Self {
        let mut weights = [0.0; 4];
        weights[class.index()] = 1.0;
        ChannelDist { weights }
    }

    /// Uniform over all four classes (the paper's situation iii).
    pub fn uniform() -> Self {
        ChannelDist { weights: [0.25; 4] }
    }

    /// "Predominantly good": mass concentrated on C4/C3
    /// (the paper's situation i).
    pub fn predominantly_good() -> Self {
        ChannelDist {
            weights: [0.05, 0.10, 0.25, 0.60],
        }
    }

    /// "Predominantly poor": mass concentrated on C1/C2
    /// (the paper's situation ii).
    pub fn predominantly_poor() -> Self {
        ChannelDist {
            weights: [0.60, 0.25, 0.10, 0.05],
        }
    }

    /// Construct from explicit weights.
    ///
    /// # Panics
    /// If any weight is negative or all are zero.
    pub fn from_weights(weights: [f64; 4]) -> Self {
        assert!(weights.iter().all(|&w| w >= 0.0), "negative weight");
        assert!(weights.iter().sum::<f64>() > 0.0, "all-zero weights");
        ChannelDist { weights }
    }

    /// Sample a class.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> ChannelClass {
        let total: f64 = self.weights.iter().sum();
        let mut x = rng.gen::<f64>() * total;
        for (i, &w) in self.weights.iter().enumerate() {
            if x < w {
                return ChannelClass::from_index(i);
            }
            x -= w;
        }
        ChannelClass::C4
    }

    /// Expected quality under this distribution.
    pub fn mean_quality(&self) -> f64 {
        let total: f64 = self.weights.iter().sum();
        self.weights
            .iter()
            .enumerate()
            .map(|(i, &w)| w * ChannelClass::from_index(i).quality())
            .sum::<f64>()
            / total
    }
}

impl Distribution<ChannelClass> for ChannelDist {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> ChannelClass {
        ChannelDist::sample(self, rng)
    }
}

/// A time-varying channel: successive calls to
/// [`ChannelProcess::advance`] yield the true channel class at
/// successive decision points.
///
/// "mobile wireless channels exhibit variations that change with time
/// and the spatial location of a mobile node ... we model such tracking
/// by varying the channel state using user supplied distributions."
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ChannelProcess {
    /// The channel never changes.
    Fixed(ChannelClass),
    /// Independent draws from a distribution at every step.
    Iid(ChannelDist),
    /// A sticky (first-order Markov) channel: with probability
    /// `persistence` the previous class is kept, otherwise a fresh
    /// class is drawn from the distribution. Models the temporal
    /// correlation of fading channels.
    Sticky {
        /// Stationary class distribution.
        dist: ChannelDist,
        /// Probability of repeating the previous class.
        persistence: f64,
        /// Most recent class (updated by [`ChannelProcess::advance`]).
        current: ChannelClass,
    },
    /// Replay a recorded trace, cycling at the end.
    Trace {
        /// The recorded class sequence (non-empty).
        classes: Vec<ChannelClass>,
        /// Next index to replay.
        cursor: usize,
    },
}

impl ChannelProcess {
    /// A sticky process starting from the distribution's likeliest
    /// class.
    pub fn sticky(dist: ChannelDist, persistence: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&persistence),
            "persistence out of range"
        );
        let start = dist
            .weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("weights are finite"))
            .map(|(i, _)| ChannelClass::from_index(i))
            .unwrap_or(ChannelClass::C4);
        ChannelProcess::Sticky {
            dist,
            persistence,
            current: start,
        }
    }

    /// A trace-replay process.
    ///
    /// # Panics
    /// If `classes` is empty.
    pub fn trace(classes: Vec<ChannelClass>) -> Self {
        assert!(!classes.is_empty(), "empty channel trace");
        ChannelProcess::Trace { classes, cursor: 0 }
    }

    /// The true channel class at the next decision point.
    pub fn advance<R: Rng + ?Sized>(&mut self, rng: &mut R) -> ChannelClass {
        match self {
            ChannelProcess::Fixed(c) => *c,
            ChannelProcess::Iid(dist) => dist.sample(rng),
            ChannelProcess::Sticky {
                dist,
                persistence,
                current,
            } => {
                if rng.gen::<f64>() >= *persistence {
                    *current = dist.sample(rng);
                }
                *current
            }
            ChannelProcess::Trace { classes, cursor } => {
                let c = classes[*cursor];
                *cursor = (*cursor + 1) % classes.len();
                c
            }
        }
    }

    /// The current class without advancing (for Fixed/Sticky/Trace;
    /// for Iid this is the distribution's most likely class).
    pub fn peek(&self) -> ChannelClass {
        match self {
            ChannelProcess::Fixed(c) => *c,
            ChannelProcess::Iid(dist) => {
                let i = dist
                    .weights
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                    .map(|(i, _)| i)
                    .unwrap_or(3);
                ChannelClass::from_index(i)
            }
            ChannelProcess::Sticky { current, .. } => *current,
            ChannelProcess::Trace { classes, cursor } => classes[*cursor],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn class_quality_ordering() {
        assert!(ChannelClass::C1.quality() < ChannelClass::C2.quality());
        assert!(ChannelClass::C2.quality() < ChannelClass::C3.quality());
        assert!(ChannelClass::C3.quality() < ChannelClass::C4.quality());
        assert_eq!(ChannelClass::C1.quality(), 0.0);
        assert_eq!(ChannelClass::C4.quality(), 1.0);
    }

    #[test]
    fn quality_round_trips() {
        for c in ChannelClass::ALL {
            assert_eq!(ChannelClass::from_quality(c.quality()), c);
        }
    }

    #[test]
    fn fixed_dist_always_samples_its_class() {
        let mut rng = SmallRng::seed_from_u64(7);
        let d = ChannelDist::fixed(ChannelClass::C2);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), ChannelClass::C2);
        }
    }

    #[test]
    fn good_dist_mostly_good_poor_dist_mostly_poor() {
        let mut rng = SmallRng::seed_from_u64(42);
        let good = ChannelDist::predominantly_good();
        let poor = ChannelDist::predominantly_poor();
        let n = 10_000;
        let good_hits = (0..n)
            .filter(|_| matches!(good.sample(&mut rng), ChannelClass::C3 | ChannelClass::C4))
            .count();
        let poor_hits = (0..n)
            .filter(|_| matches!(poor.sample(&mut rng), ChannelClass::C1 | ChannelClass::C2))
            .count();
        assert!(good_hits as f64 / n as f64 > 0.75, "good: {good_hits}");
        assert!(poor_hits as f64 / n as f64 > 0.75, "poor: {poor_hits}");
    }

    #[test]
    fn uniform_dist_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let d = ChannelDist::uniform();
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[d.sample(&mut rng).index()] += 1;
        }
        for c in counts {
            let frac = c as f64 / 40_000.0;
            assert!((frac - 0.25).abs() < 0.02, "{frac}");
        }
    }

    #[test]
    fn mean_quality_reflects_skew() {
        assert!(ChannelDist::predominantly_good().mean_quality() > 0.7);
        assert!(ChannelDist::predominantly_poor().mean_quality() < 0.3);
        assert!((ChannelDist::uniform().mean_quality() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sticky_process_repeats() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut p = ChannelProcess::sticky(ChannelDist::uniform(), 0.95);
        let mut repeats = 0usize;
        let mut prev = p.advance(&mut rng);
        for _ in 0..2_000 {
            let c = p.advance(&mut rng);
            if c == prev {
                repeats += 1;
            }
            prev = c;
        }
        // With persistence 0.95 + 25 % accidental repetition, the
        // repeat rate must be far above the iid baseline of 0.25.
        assert!(repeats as f64 / 2000.0 > 0.8, "{repeats}");
    }

    #[test]
    fn trace_process_replays_and_cycles() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut p =
            ChannelProcess::trace(vec![ChannelClass::C1, ChannelClass::C4, ChannelClass::C2]);
        let got: Vec<_> = (0..6).map(|_| p.advance(&mut rng)).collect();
        assert_eq!(
            got,
            vec![
                ChannelClass::C1,
                ChannelClass::C4,
                ChannelClass::C2,
                ChannelClass::C1,
                ChannelClass::C4,
                ChannelClass::C2,
            ]
        );
    }

    #[test]
    #[should_panic(expected = "empty channel trace")]
    fn empty_trace_rejected() {
        let _ = ChannelProcess::trace(vec![]);
    }

    #[test]
    #[should_panic(expected = "negative weight")]
    fn negative_weight_rejected() {
        let _ = ChannelDist::from_weights([0.5, -0.1, 0.3, 0.3]);
    }

    #[test]
    fn peek_does_not_advance_trace() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut p = ChannelProcess::trace(vec![ChannelClass::C3, ChannelClass::C1]);
        assert_eq!(p.peek(), ChannelClass::C3);
        assert_eq!(p.peek(), ChannelClass::C3);
        assert_eq!(p.advance(&mut rng), ChannelClass::C3);
        assert_eq!(p.peek(), ChannelClass::C1);
    }
}

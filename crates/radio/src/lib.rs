//! # jem-radio — component-level WCDMA radio model
//!
//! Reproduces the communication-energy model of Chen et al. (IPPS
//! 2003). The paper evaluates communication energy "by modeling the
//! individual components of the WCDMA chip set" with power values
//! taken from RFMD / Analog Devices data sheets (their Fig 2), an
//! effective data rate of **2.3 Mbps**, and a transmitter power
//! amplifier with **four power-control settings**: Class 1 for poor
//! channel conditions (5.88 W) down to Class 4 for the best channel
//! (0.37 W). Energy = bits × active-component power / rate.
//!
//! Channel conditions vary over time; the client tracks them with a
//! pilot-channel estimator (as in IS-95 CDMA) and picks its transmit
//! power class accordingly. In the simulation, the true channel is
//! produced by a [`channel::ChannelProcess`] driven by user-supplied
//! distributions — exactly how the paper models pilot tracking.
//!
//! * [`components`] — the Fig 2 power table,
//! * [`channel`] — channel classes, distributions, processes,
//! * [`pilot`] — the pilot-signal channel estimator,
//! * [`link`] — byte-counted transfer energy/latency accounting.

#![warn(missing_docs)]

pub mod channel;
pub mod components;
pub mod link;
pub mod pilot;

pub use channel::{ChannelClass, ChannelDist, ChannelProcess};
pub use components::{RadioComponent, RadioPowerTable};
pub use link::{Link, LinkConfig, TransferDirection, TransferReport};
pub use pilot::PilotEstimator;

//! The WCDMA chip-set power table — the paper's **Fig 2**.
//!
//! "The power consumptions of the individual components obtained from
//! data sheets are shown in Fig 2." Receive chain: mixer, demodulator,
//! ADC; transmit chain: DAC, power amplifier (four classes), driver
//! amplifier, modulator; the VCO is shared by both directions.

use crate::channel::ChannelClass;
use jem_energy::Power;
use serde::{Deserialize, Serialize};

/// One component of the WCDMA chip set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RadioComponent {
    /// Mixer (receive path).
    Mixer,
    /// Demodulator (receive path).
    Demodulator,
    /// Analog-to-digital converter (receive path).
    Adc,
    /// Digital-to-analog converter (transmit path).
    Dac,
    /// Transmit power amplifier (power depends on the channel class).
    PowerAmplifier,
    /// Driver amplifier (transmit path).
    DriverAmplifier,
    /// Modulator (transmit path).
    Modulator,
    /// Voltage-controlled oscillator (shared by RX and TX).
    Vco,
}

impl RadioComponent {
    /// All components in Fig 2 order.
    pub const ALL: [RadioComponent; 8] = [
        RadioComponent::Mixer,
        RadioComponent::Demodulator,
        RadioComponent::Adc,
        RadioComponent::Dac,
        RadioComponent::PowerAmplifier,
        RadioComponent::DriverAmplifier,
        RadioComponent::Modulator,
        RadioComponent::Vco,
    ];

    /// Display name matching the paper's table.
    pub const fn name(self) -> &'static str {
        match self {
            RadioComponent::Mixer => "Mixer (Rx)",
            RadioComponent::Demodulator => "Demodulator (Rx)",
            RadioComponent::Adc => "ADC (Rx)",
            RadioComponent::Dac => "DAC (Tx)",
            RadioComponent::PowerAmplifier => "Power Amplifier (Tx)",
            RadioComponent::DriverAmplifier => "Driver Amplifier (Tx)",
            RadioComponent::Modulator => "Modulator (Tx)",
            RadioComponent::Vco => "VCO (Rx/Tx)",
        }
    }

    /// True for components active while receiving.
    pub const fn is_rx(self) -> bool {
        matches!(
            self,
            RadioComponent::Mixer
                | RadioComponent::Demodulator
                | RadioComponent::Adc
                | RadioComponent::Vco
        )
    }

    /// True for components active while transmitting.
    pub const fn is_tx(self) -> bool {
        matches!(
            self,
            RadioComponent::Dac
                | RadioComponent::PowerAmplifier
                | RadioComponent::DriverAmplifier
                | RadioComponent::Modulator
                | RadioComponent::Vco
        )
    }
}

/// Power table for the chip set (Fig 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadioPowerTable {
    /// Mixer power.
    pub mixer: Power,
    /// Demodulator power.
    pub demodulator: Power,
    /// ADC power.
    pub adc: Power,
    /// DAC power.
    pub dac: Power,
    /// Power amplifier power per channel class (index = class index).
    pub power_amplifier: [Power; 4],
    /// Driver amplifier power.
    pub driver_amplifier: Power,
    /// Modulator power.
    pub modulator: Power,
    /// VCO power.
    pub vco: Power,
}

impl RadioPowerTable {
    /// The paper's exact Fig 2 values.
    pub fn wcdma() -> Self {
        RadioPowerTable {
            mixer: Power::from_milliwatts(33.75),
            demodulator: Power::from_milliwatts(37.8),
            adc: Power::from_milliwatts(710.0),
            dac: Power::from_milliwatts(185.0),
            power_amplifier: [
                Power::from_watts(5.88), // Class 1, poor channel
                Power::from_watts(1.5),  // Class 2
                Power::from_watts(0.74), // Class 3
                Power::from_watts(0.37), // Class 4, optimal channel
            ],
            driver_amplifier: Power::from_milliwatts(102.6),
            modulator: Power::from_milliwatts(108.0),
            vco: Power::from_milliwatts(90.0),
        }
    }

    /// Power of `component`, with the PA priced at `class`.
    pub fn power(&self, component: RadioComponent, class: ChannelClass) -> Power {
        match component {
            RadioComponent::Mixer => self.mixer,
            RadioComponent::Demodulator => self.demodulator,
            RadioComponent::Adc => self.adc,
            RadioComponent::Dac => self.dac,
            RadioComponent::PowerAmplifier => self.power_amplifier[class.index()],
            RadioComponent::DriverAmplifier => self.driver_amplifier,
            RadioComponent::Modulator => self.modulator,
            RadioComponent::Vco => self.vco,
        }
    }

    /// Total power drawn while transmitting at `class`
    /// (DAC + PA + driver amp + modulator + VCO).
    pub fn tx_power(&self, class: ChannelClass) -> Power {
        RadioComponent::ALL
            .iter()
            .filter(|c| c.is_tx())
            .map(|&c| self.power(c, class))
            .sum()
    }

    /// Total power drawn while receiving
    /// (mixer + demodulator + ADC + VCO). Independent of the class.
    pub fn rx_power(&self) -> Power {
        RadioComponent::ALL
            .iter()
            .filter(|c| c.is_rx())
            .map(|&c| self.power(c, ChannelClass::C4))
            .sum()
    }
}

impl Default for RadioPowerTable {
    fn default() -> Self {
        RadioPowerTable::wcdma()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_values_are_exact() {
        let t = RadioPowerTable::wcdma();
        assert_eq!(t.mixer.milliwatts(), 33.75);
        assert_eq!(t.demodulator.milliwatts(), 37.8);
        assert_eq!(t.adc.milliwatts(), 710.0);
        assert_eq!(t.dac.milliwatts(), 185.0);
        assert_eq!(t.power_amplifier[0].watts(), 5.88);
        assert_eq!(t.power_amplifier[1].watts(), 1.5);
        assert_eq!(t.power_amplifier[2].watts(), 0.74);
        assert_eq!(t.power_amplifier[3].watts(), 0.37);
        assert_eq!(t.driver_amplifier.milliwatts(), 102.6);
        assert_eq!(t.modulator.milliwatts(), 108.0);
        assert_eq!(t.vco.milliwatts(), 90.0);
    }

    #[test]
    fn pa_power_decreases_with_better_channel() {
        let t = RadioPowerTable::wcdma();
        for w in ChannelClass::ALL.windows(2) {
            assert!(
                t.power(RadioComponent::PowerAmplifier, w[0])
                    > t.power(RadioComponent::PowerAmplifier, w[1])
            );
        }
    }

    #[test]
    fn tx_power_totals() {
        let t = RadioPowerTable::wcdma();
        // C4: 185 + 370 + 102.6 + 108 + 90 = 855.6 mW.
        assert!((t.tx_power(ChannelClass::C4).milliwatts() - 855.6).abs() < 1e-9);
        // C1: 185 + 5880 + 102.6 + 108 + 90 = 6365.6 mW.
        assert!((t.tx_power(ChannelClass::C1).milliwatts() - 6365.6).abs() < 1e-9);
    }

    #[test]
    fn rx_power_total() {
        let t = RadioPowerTable::wcdma();
        // 33.75 + 37.8 + 710 + 90 = 871.55 mW.
        assert!((t.rx_power().milliwatts() - 871.55).abs() < 1e-9);
    }

    #[test]
    fn vco_is_shared() {
        assert!(RadioComponent::Vco.is_rx());
        assert!(RadioComponent::Vco.is_tx());
    }

    #[test]
    fn rx_tx_partition_covers_all_components() {
        for c in RadioComponent::ALL {
            assert!(c.is_rx() || c.is_tx(), "{} in neither chain", c.name());
        }
    }
}

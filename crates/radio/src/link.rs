//! Byte-counted link transfer model.
//!
//! "The energy cost of communication is evaluated by using the number
//! of bits transmitted/received, the power values of the corresponding
//! components used, and the data rate." The effective data rate is
//! 2.3 Mbps. We add a small per-message protocol overhead (framing,
//! serialization headers) so that tiny payloads still cost something,
//! as they do in any real protocol stack.

use crate::channel::ChannelClass;
use crate::components::RadioPowerTable;
use jem_energy::{Energy, Power, SimTime};
use serde::{Deserialize, Serialize};

/// Direction of a transfer, from the client's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransferDirection {
    /// Client → server (client transmits).
    Send,
    /// Server → client (client receives).
    Receive,
}

/// Link configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Effective data rate in bits per second (paper: 2.3 Mbps).
    pub data_rate_bps: f64,
    /// Fixed per-message overhead in bytes (framing + headers).
    pub overhead_bytes: u32,
    /// Component power table.
    pub powers: RadioPowerTable,
}

impl LinkConfig {
    /// The paper's link: 2.3 Mbps WCDMA with a modest 32-byte
    /// per-message overhead.
    pub fn wcdma_2_3mbps() -> Self {
        LinkConfig {
            data_rate_bps: 2.3e6,
            overhead_bytes: 32,
            powers: RadioPowerTable::wcdma(),
        }
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig::wcdma_2_3mbps()
    }
}

/// Outcome of one transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferReport {
    /// Time the radio was on the air.
    pub airtime: SimTime,
    /// Energy burned by the transmit chain (zero for receives).
    pub tx_energy: Energy,
    /// Energy burned by the receive chain (zero for sends).
    pub rx_energy: Energy,
    /// Payload bytes (excluding protocol overhead).
    pub payload_bytes: u64,
    /// Bytes on the wire (payload + overhead).
    pub wire_bytes: u64,
    /// Channel class the transfer used.
    pub class: ChannelClass,
}

impl TransferReport {
    /// Total radio energy of the transfer.
    pub fn energy(&self) -> Energy {
        self.tx_energy + self.rx_energy
    }
}

/// The client's wireless link.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Link {
    config: LinkConfig,
    /// Cumulative bytes sent (payload + overhead).
    pub bytes_sent: u64,
    /// Cumulative bytes received (payload + overhead).
    pub bytes_received: u64,
}

impl Link {
    /// Build a link.
    pub fn new(config: LinkConfig) -> Self {
        Link {
            config,
            bytes_sent: 0,
            bytes_received: 0,
        }
    }

    /// The link configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Time on the air for `wire_bytes` bytes.
    fn airtime(&self, wire_bytes: u64) -> SimTime {
        SimTime::from_secs(wire_bytes as f64 * 8.0 / self.config.data_rate_bps)
    }

    /// Power drawn during a transfer in `direction` at `class`.
    pub fn active_power(&self, direction: TransferDirection, class: ChannelClass) -> Power {
        match direction {
            TransferDirection::Send => self.config.powers.tx_power(class),
            TransferDirection::Receive => self.config.powers.rx_power(),
        }
    }

    /// Perform one transfer of `payload_bytes` in `direction` while the
    /// channel is at `class`, returning its time/energy accounting.
    pub fn transfer(
        &mut self,
        payload_bytes: u64,
        direction: TransferDirection,
        class: ChannelClass,
    ) -> TransferReport {
        let wire_bytes = payload_bytes + self.config.overhead_bytes as u64;
        let airtime = self.airtime(wire_bytes);
        let power = self.active_power(direction, class);
        let energy = power.over(airtime);
        let (tx_energy, rx_energy) = match direction {
            TransferDirection::Send => {
                self.bytes_sent += wire_bytes;
                (energy, Energy::ZERO)
            }
            TransferDirection::Receive => {
                self.bytes_received += wire_bytes;
                (Energy::ZERO, energy)
            }
        };
        TransferReport {
            airtime,
            tx_energy,
            rx_energy,
            payload_bytes,
            wire_bytes,
            class,
        }
    }

    /// Predict the energy of a transfer without performing it — the
    /// quantity helper methods need when comparing local and remote
    /// execution costs.
    pub fn estimate_energy(
        &self,
        payload_bytes: u64,
        direction: TransferDirection,
        class: ChannelClass,
    ) -> Energy {
        let wire_bytes = payload_bytes + self.config.overhead_bytes as u64;
        self.active_power(direction, class)
            .over(self.airtime(wire_bytes))
    }

    /// Predict the airtime of a transfer without performing it.
    pub fn estimate_airtime(&self, payload_bytes: u64) -> SimTime {
        self.airtime(payload_bytes + self.config.overhead_bytes as u64)
    }
}

impl Default for Link {
    fn default() -> Self {
        Link::new(LinkConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Link {
        Link::default()
    }

    #[test]
    fn airtime_matches_rate() {
        let mut l = link();
        // 2875 payload + 32 overhead = 2907 bytes = 23256 bits at
        // 2.3 Mbps ≈ 10.11 ms.
        let r = l.transfer(2875, TransferDirection::Send, ChannelClass::C4);
        assert!((r.airtime.millis() - 23256.0 / 2.3e6 * 1e3).abs() < 1e-9);
    }

    #[test]
    fn send_energy_scales_with_pa_class() {
        let mut l = link();
        let c4 = l.transfer(1000, TransferDirection::Send, ChannelClass::C4);
        let c1 = l.transfer(1000, TransferDirection::Send, ChannelClass::C1);
        // TX power ratio C1/C4 = 6365.6 / 855.6 ≈ 7.44.
        let ratio = c1.energy().ratio(c4.energy());
        assert!((ratio - 6365.6 / 855.6).abs() < 1e-6, "{ratio}");
    }

    #[test]
    fn receive_energy_is_class_independent() {
        let mut l = link();
        let a = l.transfer(1000, TransferDirection::Receive, ChannelClass::C1);
        let b = l.transfer(1000, TransferDirection::Receive, ChannelClass::C4);
        assert_eq!(a.energy(), b.energy());
        assert_eq!(a.tx_energy, Energy::ZERO);
        assert!(a.rx_energy > Energy::ZERO);
    }

    #[test]
    fn estimate_matches_actual() {
        let mut l = link();
        for &bytes in &[0u64, 1, 100, 65536] {
            for dir in [TransferDirection::Send, TransferDirection::Receive] {
                for class in ChannelClass::ALL {
                    let est = l.estimate_energy(bytes, dir, class);
                    let act = l.transfer(bytes, dir, class).energy();
                    assert!((est.nanojoules() - act.nanojoules()).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn zero_payload_still_costs_overhead() {
        let mut l = link();
        let r = l.transfer(0, TransferDirection::Send, ChannelClass::C4);
        assert_eq!(r.wire_bytes, 32);
        assert!(r.energy() > Energy::ZERO);
    }

    #[test]
    fn byte_counters_accumulate() {
        let mut l = link();
        l.transfer(100, TransferDirection::Send, ChannelClass::C4);
        l.transfer(200, TransferDirection::Receive, ChannelClass::C4);
        l.transfer(300, TransferDirection::Send, ChannelClass::C2);
        assert_eq!(l.bytes_sent, 100 + 32 + 300 + 32);
        assert_eq!(l.bytes_received, 200 + 32);
    }

    #[test]
    fn energy_is_linear_in_payload() {
        let l = link();
        let e1 = l.estimate_energy(1_000, TransferDirection::Send, ChannelClass::C3);
        let e2 = l.estimate_energy(2_032, TransferDirection::Send, ChannelClass::C3);
        // (2032+32) = 2 * (1000+32), so energy doubles exactly.
        assert!((e2.nanojoules() - 2.0 * e1.nanojoules()).abs() < 1e-6);
    }
}

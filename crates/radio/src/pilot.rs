//! Pilot-channel based channel estimation.
//!
//! "One such mechanism that is employed by wireless standards such as
//! the IS-95 CDMA system is the usage of a pilot channel. Here, pilot
//! CDMA signals are periodically transmitted by a base station to
//! provide a reference for all mobile nodes. A mobile station processes
//! the pilot signal and chooses the strongest signal among the multiple
//! copies of the transmitted signal to arrive at an accurate estimation
//! of its time delay, phase, and magnitude. These parameters are
//! tracked over time to help the mobile client decide on the
//! power-setting for its transmitter."
//!
//! We model this as follows: every pilot period the true channel class
//! yields a noisy quality observation (several multipath "fingers" —
//! the estimator takes the strongest, as a rake receiver does), which
//! the estimator folds into an exponentially-weighted tracker. The
//! tracked quality maps to the transmit power class the client will
//! use for its next transfer.

use crate::channel::ChannelClass;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Exponentially-weighted pilot-signal tracker.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PilotEstimator {
    /// Smoothing weight on history in `[0, 1)`; 0 = trust only the
    /// newest observation.
    alpha: f64,
    /// Std-dev of the per-finger observation noise (quality units).
    noise_sigma: f64,
    /// Number of multipath fingers per pilot observation.
    fingers: u32,
    /// Current tracked quality, `None` until the first observation.
    tracked: Option<f64>,
    /// Count of observations folded in.
    observations: u64,
}

impl PilotEstimator {
    /// A tracker with the given smoothing weight and observation noise.
    ///
    /// # Panics
    /// If `alpha` is outside `[0, 1)`, `noise_sigma` is negative, or
    /// `fingers` is zero.
    pub fn new(alpha: f64, noise_sigma: f64, fingers: u32) -> Self {
        assert!((0.0..1.0).contains(&alpha), "alpha out of [0,1)");
        assert!(noise_sigma >= 0.0, "negative noise");
        assert!(fingers > 0, "need at least one rake finger");
        PilotEstimator {
            alpha,
            noise_sigma,
            fingers,
            tracked: None,
            observations: 0,
        }
    }

    /// A reasonable default: moderate smoothing, light noise, 3-finger
    /// rake receiver.
    pub fn rake_default() -> Self {
        PilotEstimator::new(0.5, 0.08, 3)
    }

    /// Process one pilot broadcast while the true channel is
    /// `true_class`. Returns the updated tracked quality.
    pub fn observe<R: Rng + ?Sized>(&mut self, true_class: ChannelClass, rng: &mut R) -> f64 {
        let q = true_class.quality();
        // Strongest of `fingers` noisy copies: rake combining. Noise is
        // symmetric per finger, taking the max biases slightly upward,
        // which we counter by subtracting the expected max-bias of the
        // strongest of n standard normals (~sigma * E[max of n]).
        let mut best = f64::NEG_INFINITY;
        for _ in 0..self.fingers {
            let noise = gaussian(rng) * self.noise_sigma;
            best = best.max(q + noise);
        }
        let bias = self.noise_sigma * expected_max_std_normal(self.fingers);
        let obs = (best - bias).clamp(0.0, 1.0);
        let updated = match self.tracked {
            None => obs,
            Some(prev) => self.alpha * prev + (1.0 - self.alpha) * obs,
        };
        self.tracked = Some(updated);
        self.observations += 1;
        updated
    }

    /// The transmit power class implied by the current estimate;
    /// conservative (C1 = max power) before any observation.
    pub fn recommended_class(&self) -> ChannelClass {
        match self.tracked {
            None => ChannelClass::C1,
            Some(q) => ChannelClass::from_quality(q),
        }
    }

    /// Tracked quality, if any observation has arrived.
    pub fn tracked_quality(&self) -> Option<f64> {
        self.tracked
    }

    /// Number of pilot observations processed.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Snapshot the tracker's mutable state for checkpointing. The
    /// configuration (alpha, noise, fingers) is not included — it is
    /// fixed at construction.
    pub fn export_state(&self) -> (Option<f64>, u64) {
        (self.tracked, self.observations)
    }

    /// Restore state captured by [`PilotEstimator::export_state`].
    pub fn import_state(&mut self, tracked: Option<f64>, observations: u64) {
        self.tracked = tracked;
        self.observations = observations;
    }
}

impl Default for PilotEstimator {
    fn default() -> Self {
        PilotEstimator::rake_default()
    }
}

/// Standard normal via Box–Muller (we avoid depending on
/// `rand_distr`; two uniforms suffice).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// E[max of n iid standard normals] for small n (exact for n ≤ 4,
/// which covers realistic rake receivers; clamps beyond).
fn expected_max_std_normal(n: u32) -> f64 {
    match n {
        1 => 0.0,
        2 => 0.5642,
        3 => 0.8463,
        4 => 1.0294,
        _ => 1.0294 + 0.15 * ((n as f64).ln() - 4f64.ln()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn starts_conservative() {
        let e = PilotEstimator::rake_default();
        assert_eq!(e.recommended_class(), ChannelClass::C1);
        assert_eq!(e.tracked_quality(), None);
    }

    #[test]
    fn converges_to_true_class_on_stationary_channel() {
        let mut rng = SmallRng::seed_from_u64(11);
        for true_class in ChannelClass::ALL {
            let mut e = PilotEstimator::rake_default();
            for _ in 0..200 {
                e.observe(true_class, &mut rng);
            }
            assert_eq!(
                e.recommended_class(),
                true_class,
                "failed to converge to {true_class}"
            );
        }
    }

    #[test]
    fn noiseless_single_finger_is_exact() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut e = PilotEstimator::new(0.0, 0.0, 1);
        let q = e.observe(ChannelClass::C3, &mut rng);
        assert!((q - ChannelClass::C3.quality()).abs() < 1e-12);
        assert_eq!(e.recommended_class(), ChannelClass::C3);
    }

    #[test]
    fn tracks_channel_transitions() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut e = PilotEstimator::rake_default();
        for _ in 0..100 {
            e.observe(ChannelClass::C4, &mut rng);
        }
        assert_eq!(e.recommended_class(), ChannelClass::C4);
        for _ in 0..100 {
            e.observe(ChannelClass::C1, &mut rng);
        }
        assert_eq!(e.recommended_class(), ChannelClass::C1);
    }

    #[test]
    fn smoothing_damps_single_outliers() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut e = PilotEstimator::new(0.9, 0.0, 1);
        for _ in 0..50 {
            e.observe(ChannelClass::C4, &mut rng);
        }
        // One bad observation should not flip the recommendation with
        // alpha = 0.9.
        e.observe(ChannelClass::C1, &mut rng);
        assert_eq!(e.recommended_class(), ChannelClass::C4);
    }

    #[test]
    fn tracked_quality_stays_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut e = PilotEstimator::new(0.3, 0.5, 4);
        for i in 0..500 {
            let class = ChannelClass::from_index(i % 4);
            let q = e.observe(class, &mut rng);
            assert!((0.0..=1.0).contains(&q), "{q}");
        }
    }

    #[test]
    fn observation_counter() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut e = PilotEstimator::rake_default();
        for _ in 0..7 {
            e.observe(ChannelClass::C2, &mut rng);
        }
        assert_eq!(e.observations(), 7);
    }

    #[test]
    #[should_panic(expected = "alpha out of")]
    fn rejects_bad_alpha() {
        let _ = PilotEstimator::new(1.0, 0.1, 3);
    }
}

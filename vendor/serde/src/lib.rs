//! Offline stand-in for `serde`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as
//! documentation of wire-friendliness; nothing serializes through
//! serde at runtime. This facade re-exports the no-op derives from the
//! sibling `serde_derive` stub.

pub use serde_derive::{Deserialize, Serialize};

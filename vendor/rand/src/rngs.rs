//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, deterministic generator (xoshiro256++).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// The raw xoshiro256++ state words, for checkpointing. Restoring
    /// via [`SmallRng::from_state`] resumes the stream exactly.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from raw state words captured by
    /// [`SmallRng::state`].
    ///
    /// # Panics
    /// If `s` is the all-zero state (unreachable from any seed).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0; 4], "xoshiro state must be nonzero");
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        SmallRng { s }
    }
}

/// The standard generator; aliased to [`SmallRng`] in this stand-in.
pub type StdRng = SmallRng;

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the subset of `rand` 0.8's API that the workspace
//! actually uses: the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits,
//! [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64), uniform
//! `gen`/`gen_range` sampling, and the
//! [`distributions::Distribution`] trait.
//!
//! Streams are deterministic for a given seed, which is all the
//! simulator requires; no compatibility with upstream `rand` output is
//! promised.

pub mod distributions;
pub mod rngs;

use distributions::{Distribution, Standard, UniformSampler};

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// High-level sampling helpers, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: UniformSampler<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` convenience seed.
    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64 expansion, as upstream rand does.
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u32..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn range_covers_support() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

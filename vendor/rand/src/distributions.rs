//! Distributions over values, and uniform range sampling.
//!
//! The sampling algorithms reproduce rand 0.8.5's bit-exactly (same
//! source draws, same widening-multiply rejection) so that seeds from
//! runs against the real crate keep producing the same streams.

use crate::{Rng, RngCore};
use std::ops::{Range, RangeInclusive};

/// A distribution from which values of `T` can be sampled.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: full-range uniform for
/// integers, uniform `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

// Types up to 32 bits draw from next_u32, wider ones from next_u64,
// matching upstream's per-width source selection.
macro_rules! standard_int32 {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u32() as $t
            }
        }
    )*};
}
standard_int32!(u8, u16, u32, i8, i16, i32);

macro_rules! standard_int64 {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int64!(u64, i64, usize, isize);

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        // Compare against the most significant bit: low bits of some
        // generators have linear artifacts.
        rng.next_u32() & (1 << 31) != 0
    }
}

/// A range that knows how to sample a uniform value from itself
/// (stand-in for rand's `SampleRange`).
pub trait UniformSampler<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types `gen_range` can draw — blanket-implemented for ranges so type
/// inference unifies the range's element type with the output type the
/// way upstream rand's `SampleRange<T>` does.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> UniformSampler<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> UniformSampler<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_inclusive(lo, hi, rng)
    }
}

// $t: sampled type, $unsigned: its unsigned twin, $u_large: the width
// values are drawn at (u32 for small types, as upstream), $wide: the
// double width used for the multiply, $lemire: generated helper name.
macro_rules! uniform_int {
    ($($t:ty, $unsigned:ty, $u_large:ty, $wide:ty, $lemire:ident;)*) => {$(
        /// Lemire-style rejection: widening multiply, accept when the
        /// low half clears the zone (rand 0.8.5's `sample_single`).
        fn $lemire<R: RngCore + ?Sized>(lo: $t, range: $u_large, rng: &mut R) -> $t {
            let zone = if (<$unsigned>::MAX as u64) <= u16::MAX as u64 {
                // Small types: compute the exact acceptance zone.
                let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
                <$u_large>::MAX - ints_to_reject
            } else {
                // Conservative zone, avoiding the division.
                (range << range.leading_zeros()).wrapping_sub(1)
            };
            loop {
                let v: $u_large = Standard.sample(rng);
                let m = (v as $wide).wrapping_mul(range as $wide);
                let hi_part = (m >> <$u_large>::BITS) as $u_large;
                let lo_part = m as $u_large;
                if lo_part <= zone {
                    return lo.wrapping_add(hi_part as $t);
                }
            }
        }

        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let range = hi.wrapping_sub(lo) as $unsigned as $u_large;
                $lemire(lo, range, rng)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let range = hi.wrapping_sub(lo).wrapping_add(1) as $unsigned as $u_large;
                if range == 0 {
                    // The range covers the whole type.
                    return Standard.sample(rng);
                }
                $lemire(lo, range, rng)
            }
        }
    )*};
}
uniform_int! {
    i8, u8, u32, u64, lemire_i8;
    u8, u8, u32, u64, lemire_u8;
    i16, u16, u32, u64, lemire_i16;
    u16, u16, u32, u64, lemire_u16;
    i32, u32, u32, u64, lemire_i32;
    u32, u32, u32, u64, lemire_u32;
    i64, u64, u64, u128, lemire_i64;
    u64, u64, u64, u128, lemire_u64;
    isize, usize, usize, u128, lemire_isize;
    usize, usize, usize, u128, lemire_usize;
}

// Floats follow upstream's UniformFloat: draw a mantissa, build a
// value in [1, 2), then affine-map — rejecting the rare rounding case
// that lands on the excluded bound.
macro_rules! uniform_float {
    ($($t:ty, $bits:ty, $mant:expr, $exp_one:expr, $next:ident;)*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let scale = hi - lo;
                loop {
                    let mant = rng.$next() >> (<$bits>::BITS - $mant);
                    let value1_2 = <$t>::from_bits($exp_one | mant);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + lo;
                    if res < hi {
                        return res;
                    }
                }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let scale = hi - lo;
                let mant = rng.$next() >> (<$bits>::BITS - $mant);
                let value1_2 = <$t>::from_bits($exp_one | mant);
                let value0_1 = value1_2 - 1.0;
                let res = value0_1 * scale + lo;
                if res > hi {
                    hi
                } else {
                    res
                }
            }
        }
    )*};
}
uniform_float! {
    f64, u64, 52, 1023u64 << 52, next_u64;
    f32, u32, 23, 127u32 << 23, next_u32;
}

//! Offline stand-in for `serde_derive`.
//!
//! Nothing in this workspace serializes through serde at runtime — the
//! derives exist so types document their wire-friendliness and stay
//! source-compatible with the real crate. Both derives therefore
//! expand to nothing (and accept `#[serde(...)]` helper attributes).

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline stand-in for the `criterion` crate.
//!
//! Implements the bench-definition surface the workspace uses
//! ([`Criterion::bench_function`], benchmark groups,
//! [`Bencher::iter`]/[`Bencher::iter_batched`], the
//! [`criterion_group!`]/[`criterion_main!`] macros) with a simple
//! measurement loop: a short warm-up, then `sample_size` timed
//! samples whose median per-iteration time is printed. No statistics
//! engine, baselines, or HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Controls how `iter_batched` amortizes setup cost. The stub times
/// every iteration individually, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Parameterized benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to bench closures; runs and times the measured routine.
pub struct Bencher<'a> {
    config: &'a Criterion,
    /// (median per-iteration nanoseconds, iterations timed)
    result: Option<(f64, u64)>,
}

impl Bencher<'_> {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.run(|| {
            let start = Instant::now();
            let out = routine();
            let dt = start.elapsed();
            drop(out);
            dt
        });
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.run(|| {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            let dt = start.elapsed();
            drop(out);
            dt
        });
    }

    fn run(&mut self, mut one: impl FnMut() -> Duration) {
        let warm_up_end = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_up_end {
            one();
        }
        let deadline = Instant::now() + self.config.measurement_time;
        let mut samples: Vec<f64> = Vec::with_capacity(self.config.sample_size);
        for _ in 0..self.config.sample_size {
            samples.push(one().as_nanos() as f64);
            if Instant::now() >= deadline {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        self.result = Some((median, samples.len() as u64));
    }
}

/// Collection of related benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group_id: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full_id = format!("{}/{}", self.group_id, id.id);
        let mut b = Bencher {
            config: self.criterion,
            result: None,
        };
        f(&mut b, input);
        report(&full_id, b.result);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full_id = format!("{}/{}", self.group_id, id.into());
        let mut b = Bencher {
            config: self.criterion,
            result: None,
        };
        f(&mut b);
        report(&full_id, b.result);
        self
    }

    pub fn finish(self) {}
}

fn report(id: &str, result: Option<(f64, u64)>) {
    match result {
        Some((median_ns, n)) => {
            println!("{id:<40} median {:>12.1} ns  ({n} samples)", median_ns);
        }
        None => println!("{id:<40} (no measurement)"),
    }
}

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, dur: Duration) -> Self {
        self.measurement_time = dur;
        self
    }

    pub fn warm_up_time(mut self, dur: Duration) -> Self {
        self.warm_up_time = dur;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut b = Bencher {
            config: self,
            result: None,
        };
        f(&mut b);
        report(id, b.result);
        self
    }

    pub fn benchmark_group(&mut self, group_id: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            group_id: group_id.into(),
            criterion: self,
        }
    }

    /// Called by [`criterion_main!`]; nothing to flush in the stub.
    pub fn final_summary(&mut self) {}
}

/// Declare a group of benchmark functions with a shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

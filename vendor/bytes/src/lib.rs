//! Offline stand-in for the `bytes` crate: just the [`Buf`]/[`BufMut`]
//! methods the MJVM serializer uses, implemented for `&[u8]` readers
//! and `Vec<u8>` writers.

/// Sequential little-endian reader.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Read the next `n` bytes.
    ///
    /// # Panics
    /// If fewer than `n` bytes remain.
    fn take(&mut self, n: usize) -> &[u8];

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }
    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }
    /// Read a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        i32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }
    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }
    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        let (head, tail) = self.split_at(n);
        *self = tail;
        head
    }
}

/// Sequential little-endian writer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_i32_le(-42);
        out.put_f64_le(1.5);
        let mut buf = out.as_slice();
        assert_eq!(buf.remaining(), 1 + 4 + 4 + 8);
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(buf.get_i32_le(), -42);
        assert_eq!(buf.get_f64_le(), 1.5);
        assert_eq!(buf.remaining(), 0);
    }
}

//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::distributions::{Distribution, Standard};
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy is just a deterministic sampler over a [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `recurse` receives a strategy for
    /// the inner level and returns the composite level. `depth`
    /// bounds nesting; size hints are accepted for API parity and
    /// ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut levels = vec![leaf];
        for _ in 0..depth {
            // Each deeper level may recurse into any shallower one,
            // so generated values bottom out at the leaf strategy.
            let inner = Union::new(levels.clone()).boxed();
            levels.push(recurse(inner).boxed());
        }
        Union::new(levels).boxed()
    }

    /// Type-erase into a clonable, shareable strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Equal-weight choice among alternative strategies
/// (what [`crate::prop_oneof!`] builds).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Union<T> {
    /// Union over the given alternatives.
    ///
    /// # Panics
    /// If `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "empty prop_oneof");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy behind [`crate::prelude::any`]: full-range uniform values.
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Any<T> {
    pub(crate) fn new() -> Self {
        Any(PhantomData)
    }
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T> Strategy for Any<T>
where
    Standard: Distribution<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
